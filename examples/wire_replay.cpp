/**
 * @file
 * Wire replay: monitoring from raw log lines only.
 *
 * CloudSeer's pitch is non-intrusive monitoring over logs that already
 * exist. This example makes that concrete: the simulated cluster's
 * logs are serialised to a plain text file (what Logstash would ship),
 * and the monitor consumes that file line by line with no access to
 * the simulator — proving the information barrier end to end.
 */

#include <cstdio>
#include <fstream>
#include <string>

#include "collect/log_store.hpp"
#include "collect/node_sinks.hpp"
#include "collect/stream_merger.hpp"
#include "common/string_util.hpp"
#include "core/monitor/report_json.hpp"
#include "eval/modeling_harness.hpp"
#include "workload/workload_generator.hpp"

using namespace cloudseer;

int
main()
{
    std::printf("CloudSeer wire replay\n=====================\n\n");

    // Offline stage.
    eval::ModelingConfig modeling;
    modeling.minRuns = 60;
    modeling.maxRuns = 300;
    eval::ModeledSystem models = eval::buildModels(modeling);

    // Produce per-node, per-service log files from a three-user
    // workload — the on-disk layout a real deployment has
    // (/var/log/nova/nova-compute.log on each node, ...).
    const char *path = "cloudseer_replay.log";
    std::size_t tasks = 0;
    std::vector<std::string> files;
    {
        sim::Simulation simulation(sim::SimConfig{}, 1234);
        workload::WorkloadConfig wl;
        wl.users = 3;
        wl.tasksPerUser = 8;
        wl.seed = 5;
        tasks = workload::WorkloadGenerator(wl).submitAll(simulation);
        simulation.run();

        collect::NodeSinks sinks;
        sinks.appendStream(simulation.records());
        for (const auto &[key, records] : sinks.files()) {
            std::string file =
                key.node + "_" + key.service + ".log";
            std::ofstream out(file);
            for (const std::string &line : sinks.toLines(key))
                out << line << "\n";
            files.push_back(file);
        }
        std::printf("wrote %zu per-service log files (%zu lines, %zu "
                    "tasks)\n",
                    sinks.fileCount(), sinks.recordCount(), tasks);

        // The "Logstash" step: read every file back, merge by
        // timestamp, apply shipping skew, and persist the collector's
        // stream.
        collect::NodeSinks reread;
        std::size_t malformed = 0;
        for (const std::string &file : files) {
            std::ifstream in(file);
            std::string line;
            std::vector<std::string> lines;
            while (std::getline(in, line))
                lines.push_back(line);
            collect::LogStore parsed =
                collect::LogStore::fromLines(lines, &malformed);
            reread.appendStream(parsed.all());
        }
        std::vector<logging::LogRecord> merged =
            collect::mergeStream(reread.mergeByTimestamp(), {});
        collect::LogStore central;
        central.appendStream(merged);
        std::ofstream out(path);
        for (const std::string &line : central.toLines())
            out << line << "\n";
        std::printf("merged them into %s (%zu lines, %zu malformed)"
                    "\n\n",
                    path, central.size(), malformed);
    }

    // Online stage: read the file back, feed one line at a time.
    core::MonitorConfig config;
    core::WorkflowMonitor monitor(config, models.catalog,
                                  models.automataCopy());

    std::ifstream in(path);
    std::string line;
    std::size_t lines = 0;
    std::size_t accepted = 0;
    std::size_t problems = 0;
    while (std::getline(in, line)) {
        ++lines;
        for (const core::MonitorReport &report :
             monitor.feedLine(line)) {
            if (report.event.kind == core::CheckEventKind::Accepted) {
                ++accepted;
                std::printf("  %s\n",
                            report.summary(monitor.catalog()).c_str());
            } else {
                ++problems;
                std::printf("%s",
                            report.describe(monitor.catalog()).c_str());
            }
        }
    }
    for (const core::MonitorReport &report : monitor.finish()) {
        if (report.event.kind == core::CheckEventKind::Accepted)
            ++accepted;
        else
            ++problems;
    }

    std::printf("\nreplayed %zu lines (%zu malformed), accepted "
                "%zu/%zu sequences, %zu problem reports\n",
                lines, monitor.malformedLines(), accepted, tasks,
                problems);
    std::printf("decisive checking: %s\n",
                common::formatPercent(
                    monitor.stats().decisiveFraction()).c_str());

    // Close the report stream with the machine-readable SUMMARY record
    // an alerting consumer would score the run from.
    std::printf("\n%s\n",
                core::statsSummaryJson(monitor.stats(),
                                       monitor.ingestStats(),
                                       monitor.lastTime())
                    .c_str());
    std::remove(path);
    for (const std::string &file : files)
        std::remove(file.c_str());
    return problems == 0 && accepted == tasks ? 0 : 1;
}
