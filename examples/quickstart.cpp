/**
 * @file
 * Quickstart: the full CloudSeer pipeline in one sitting.
 *
 *  1. Model the eight VM tasks from correct executions on the
 *     simulated OpenStack deployment (offline stage).
 *  2. Generate an interleaved multi-user workload stream.
 *  3. Monitor the stream online and print what CloudSeer reports.
 */

#include <cstdio>

#include "common/string_util.hpp"
#include "common/table.hpp"
#include "eval/accuracy_harness.hpp"
#include "eval/modeling_harness.hpp"

using namespace cloudseer;

int
main()
{
    std::printf("CloudSeer quickstart\n====================\n\n");

    // The simulated deployment (paper Figure 1 / §5.1).
    {
        common::Rng rng(1);
        sim::Cluster cluster(rng);
        std::printf("Simulated deployment:\n%s\n",
                    cluster.describe().c_str());
    }

    // --- offline modeling ------------------------------------------------
    eval::ModelingConfig modeling;
    modeling.minRuns = 40;
    modeling.checkEvery = 10;
    modeling.stableChecks = 3;
    modeling.maxRuns = 200;
    std::printf("Modeling the eight VM tasks from correct runs...\n");
    eval::ModeledSystem models = eval::buildModels(modeling);

    common::TextTable table({"Task", "Msgs", "Trans", "Runs"});
    for (const eval::TaskModelInfo &info : models.perTask) {
        table.addRow({sim::taskTypeName(info.type),
                      std::to_string(info.messages),
                      std::to_string(info.transitions),
                      std::to_string(info.runsUsed)});
    }
    std::printf("%s\n", table.toString().c_str());

    // --- online monitoring ----------------------------------------------
    eval::DatasetConfig dataset;
    dataset.users = 3;
    dataset.tasksPerUser = 10;
    dataset.seed = 42;
    eval::GeneratedDataset generated = eval::generateDataset(dataset);
    std::printf("Generated %zu tasks -> %zu log messages "
                "(interleaved stream).\n\n",
                generated.totalTasks, generated.stream.size());

    core::MonitorConfig monitor_config;
    monitor_config.timeoutSeconds = 10.0;
    core::WorkflowMonitor monitor(monitor_config, models.catalog,
                                  models.automataCopy());

    std::size_t accepted = 0;
    std::size_t problems = 0;
    for (const logging::LogRecord &record : generated.stream) {
        for (const core::MonitorReport &report : monitor.feed(record)) {
            if (report.event.kind == core::CheckEventKind::Accepted) {
                ++accepted;
            } else {
                ++problems;
                std::printf("%s",
                            report.describe(monitor.catalog()).c_str());
            }
        }
    }
    for (const core::MonitorReport &report : monitor.finish()) {
        if (report.event.kind == core::CheckEventKind::Accepted)
            ++accepted;
        else
            ++problems;
    }

    const core::CheckerStats &stats = monitor.stats();
    std::printf("Accepted sequences: %zu / %zu tasks\n", accepted,
                generated.totalTasks);
    std::printf("Problem reports:    %zu (expected 0; no faults "
                "injected)\n",
                problems);
    std::printf("Decisive checking:  %s\n",
                common::formatPercent(stats.decisiveFraction()).c_str());
    std::printf("Messages processed: %llu (unknown passed through: "
                "%llu)\n",
                static_cast<unsigned long long>(stats.messages),
                static_cast<unsigned long long>(
                    stats.recoveredPassUnknown));
    return 0;
}
