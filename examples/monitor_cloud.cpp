/**
 * @file
 * Operations scenario: monitor a faulty cloud in real time.
 *
 * A four-user workload runs while faults are injected at the
 * AMQP-receiver boundary (network problems between controller and
 * compute nodes). CloudSeer watches the merged log stream; every
 * problem report is printed with its workflow context, and the central
 * log store is then queried around the report time — the diagnosis
 * workflow an administrator would follow (paper §2.3, "Interpreting
 * Results").
 *
 * The monitor itself runs instrumented (seer-scope, DESIGN.md §11):
 * it emits periodic health snapshots on the message clock, and the
 * run leaves behind cloudseer_health.jsonl (pretty-print with
 * seer-stats), cloudseer_trace.json (open in Perfetto or
 * about:tracing), and a Prometheus exposition excerpt on stdout.
 */

#include <cstdio>
#include <fstream>

#include "collect/log_store.hpp"
#include "common/string_util.hpp"
#include "core/monitor/report_json.hpp"
#include "eval/accuracy_harness.hpp"
#include "eval/modeling_harness.hpp"
#include "eval/streaming_session.hpp"
#include "workload/workload_generator.hpp"

using namespace cloudseer;

int
main()
{
    std::printf("CloudSeer cloud-monitoring drill\n"
                "================================\n\n");

    // Offline stage: model the eight tasks from correct executions.
    eval::ModelingConfig modeling;
    modeling.minRuns = 60;
    modeling.maxRuns = 300;
    eval::ModeledSystem models = eval::buildModels(modeling);
    std::printf("Modeled %zu task automata over %zu message "
                "templates.\n\n",
                models.automata.size(), models.catalog->size());

    // A faulty deployment: AMQP problems trigger on 25%% of crossings.
    sim::SimConfig sim_config;
    sim::Simulation simulation(sim_config, 4242);
    simulation.setInjector(sim::FaultInjector(
        sim::InjectionPoint::AmqpReceiver, 0.25, 0.7, 99,
        /*max_problems=*/3));

    workload::WorkloadConfig wl;
    wl.users = 4;
    wl.tasksPerUser = 8;
    wl.seed = 7;
    workload::WorkloadGenerator generator(wl);
    std::size_t tasks = generator.submitAll(simulation);

    // Everything also lands in the central store (Elasticsearch role)
    // as it is emitted; the monitor runs live off the same tail.
    collect::LogStore store;

    core::MonitorConfig config;
    config.timeoutSeconds = 10.0;
    config.observability.metrics = true;
    config.observability.tracing = true;
    config.observability.snapshotIntervalSeconds = 30.0;
    core::WorkflowMonitor monitor(config, models.catalog,
                                  models.automataCopy());

    std::size_t accepted = 0;
    auto handle = [&](const core::MonitorReport &report) {
        if (report.event.kind == core::CheckEventKind::Accepted) {
            ++accepted;
            return;
        }
        std::printf("--- problem report "
                    "---------------------------------------\n");
        std::printf("%s", report.describe(monitor.catalog()).c_str());
        std::printf("  webhook payload: %s\n",
                    core::reportToJson(report,
                                       monitor.catalog()).c_str());

        // Diagnosis: pull surrounding ERROR messages from the store.
        collect::LogQuery query;
        query.errorOnly = true;
        query.fromTime = report.event.time - 15.0;
        query.toTime = report.event.time + 1.0;
        auto errors = store.search(query);
        if (errors.empty()) {
            std::printf("  (no error messages near this report — a "
                        "silent failure or delay)\n");
        } else {
            std::printf("  error messages within 15s:\n");
            for (const logging::LogRecord &record : errors) {
                std::printf("    %s %s: %s\n",
                            record.node.c_str(),
                            record.service.c_str(),
                            record.body.c_str());
            }
        }
        std::printf("\n");
    };

    // Live monitoring: reports fire while the cluster is running. The
    // session owns the emission tail; it feeds the monitor, and the
    // monitor's feed path sees each record after its shipping delay.
    // The store fills from the same records as they land, so the
    // diagnosis queries inside handle() see everything shipped so far.
    eval::StreamingSession live(
        simulation, monitor, collect::ShippingConfig{},
        [&](const core::MonitorReport &report) { handle(report); });
    // Mirror the stream into the store via a wrapper tail (the session
    // installed its own callback at construction; replace it with one
    // that feeds both consumers).
    simulation.setEmissionCallback(
        [&store, &live](const logging::LogRecord &record) {
            store.append(record);
            live.tail(record);
        });
    live.run();
    std::size_t messages = simulation.records().size();
    std::printf("Workload: %zu tasks from %d users -> %zu messages; "
                "%zu problems injected (monitored live).\n\n",
                tasks, wl.users, messages,
                simulation.injector().records().size());

    std::printf("Summary: %zu/%zu sequences accepted; %llu timeout "
                "and %llu error reports; decisive checking %s.\n",
                accepted, tasks,
                static_cast<unsigned long long>(
                    monitor.stats().timeoutsReported),
                static_cast<unsigned long long>(
                    monitor.stats().errorsReported),
                common::formatPercent(
                    monitor.stats().decisiveFraction()).c_str());
    std::printf("%s\n",
                core::statsSummaryJson(monitor.stats(),
                                       monitor.ingestStats(),
                                       monitor.lastTime())
                    .c_str());

    // seer-scope artifacts: health series, execution trace, and a
    // Prometheus exposition excerpt of the headline series.
    {
        std::ofstream health("cloudseer_health.jsonl");
        health << monitor.observability()->snapshotJsonLines();
    }
    {
        std::ofstream trace("cloudseer_trace.json");
        trace << monitor.chromeTraceJson();
    }
    std::printf("\nwrote cloudseer_health.jsonl (seer-stats "
                "cloudseer_health.jsonl) and cloudseer_trace.json "
                "(Perfetto / about:tracing)\n\n");
    std::printf("Prometheus exposition excerpt:\n");
    std::string prom = monitor.prometheusText();
    std::size_t shown = 0;
    std::size_t pos = 0;
    while (pos < prom.size() && shown < 12) {
        std::size_t end = prom.find('\n', pos);
        if (end == std::string::npos)
            end = prom.size();
        std::string line = prom.substr(pos, end - pos);
        if (!line.empty() && line[0] != '#') {
            std::printf("  %s\n", line.c_str());
            ++shown;
        }
        pos = end + 1;
    }
    return 0;
}
