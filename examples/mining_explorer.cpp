/**
 * @file
 * Offline-modeling explorer: mines each task's automaton, prints its
 * structure (initial/final/fork/join states, strong vs weak edges),
 * shows what preprocessing filtered out, and writes Graphviz files —
 * the artefacts an operator would review before trusting the models
 * (paper §3, Figure 3).
 */

#include <cstdio>
#include <fstream>

#include "common/table.hpp"
#include "core/mining/model_builder.hpp"
#include "core/mining/preprocessor.hpp"
#include "eval/modeling_harness.hpp"

using namespace cloudseer;

int
main()
{
    std::printf("CloudSeer mining explorer\n=========================\n\n");

    eval::ModelingConfig modeling;
    modeling.minRuns = 60;
    modeling.maxRuns = 400;
    eval::ModeledSystem models = eval::buildModels(modeling);

    common::TextTable table({"Task", "Events", "Edges", "Strong",
                             "Weak", "Forks", "Joins", "Runs"});
    for (std::size_t i = 0; i < models.automata.size(); ++i) {
        const core::TaskAutomaton &automaton = models.automata[i];
        std::size_t strong = 0;
        for (const core::DependencyEdge &edge : automaton.edges()) {
            if (edge.strong)
                ++strong;
        }
        table.addRow({automaton.name(),
                      std::to_string(automaton.eventCount()),
                      std::to_string(automaton.edgeCount()),
                      std::to_string(strong),
                      std::to_string(automaton.edgeCount() - strong),
                      std::to_string(automaton.forkStates().size()),
                      std::to_string(automaton.joinStates().size()),
                      std::to_string(models.perTask[i].runsUsed)});
    }
    std::printf("%s\n", table.toString().c_str());

    // Dump Graphviz files (render with `dot -Tsvg boot.dot`).
    for (const core::TaskAutomaton &automaton : models.automata) {
        std::string path = automaton.name() + ".dot";
        std::ofstream out(path);
        out << automaton.toDot(*models.catalog);
        std::printf("wrote %s\n", path.c_str());
    }

    // Show the boot workflow's fork structure in text.
    const core::TaskAutomaton &boot = models.automata[0];
    std::printf("\nboot workflow forks (async branches):\n");
    for (int fork : boot.forkStates()) {
        std::printf("  after \"%s\":\n",
                    models.catalog->label(boot.event(fork).tpl).c_str());
        for (int succ : boot.succs(fork)) {
            std::printf("    -> %s\n",
                        models.catalog->label(boot.event(succ).tpl)
                            .c_str());
        }
    }

    // Demonstrate preprocessing: model boot with raw (noisy) logs and
    // report what the key-message filter dropped.
    std::printf("\npreprocessing demo (boot, 40 runs):\n");
    {
        logging::TemplateCatalog catalog;
        core::TaskModeler modeler(catalog);
        sim::SimConfig sim_config; // noise on by default
        sim::Simulation simulation(sim_config, 31);
        sim::UserProfile user = simulation.makeUser();
        std::vector<core::TemplateSequence> runs;
        std::size_t cursor = 0;
        for (int r = 0; r < 40; ++r) {
            sim::VmHandle vm = simulation.makeVm();
            simulation.submit(sim::TaskType::Boot, 1.0 + r * 40.0, user,
                              vm);
            simulation.run();
            std::vector<logging::LogRecord> window(
                simulation.records().begin() +
                    static_cast<long>(cursor),
                simulation.records().end());
            cursor = simulation.records().size();
            runs.push_back(modeler.toTemplateSequence(window));
        }
        core::PreprocessResult pre = core::preprocessSequences(runs);
        std::printf("  key templates: %zu, dropped: %zu\n",
                    pre.keyTemplates.size(),
                    pre.droppedTemplates.size());
        for (logging::TemplateId tpl : pre.droppedTemplates) {
            std::printf("    dropped: %s\n",
                        catalog.label(tpl).c_str());
        }
    }
    return 0;
}
