/**
 * @file
 * Model lifecycle: mine once, persist, reload, monitor, refine.
 *
 * Demonstrates how a deployment operates CloudSeer over time:
 *
 *  1. Mine task automata from correct executions and learn per-task
 *     timeouts.
 *  2. Persist everything to a model file (survives restarts).
 *  3. Reload in a "new process" and monitor a workload whose log
 *     shipper reorders messages under load.
 *  4. Harvest the false dependencies the checker removed on the fly
 *     and refine the models — the next generation accepts those
 *     reorderings natively.
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.hpp"
#include "core/mining/model_io.hpp"
#include "eval/accuracy_harness.hpp"
#include "eval/modeling_harness.hpp"
#include "eval/timeout_learning.hpp"

using namespace cloudseer;

namespace {

/** Check a reordering-heavy dataset; returns recovery-(d) count. */
std::uint64_t
monitorOnce(const eval::ModeledSystem &models,
            const core::MonitorConfig &config,
            core::RemovalCounts *removals_out)
{
    eval::DatasetConfig dataset;
    dataset.users = 3;
    dataset.tasksPerUser = 20;
    dataset.seed = 99;
    dataset.shipping.tailProbability = 0.03; // loaded shipper
    dataset.shipping.tailMin = 0.2;
    dataset.shipping.tailMax = 0.8;
    eval::GeneratedDataset generated = eval::generateDataset(dataset);

    core::WorkflowMonitor monitor(config, models.catalog,
                                  models.automataCopy());
    for (const logging::LogRecord &record : generated.stream)
        monitor.feed(record);
    monitor.finish();
    if (removals_out != nullptr)
        *removals_out = monitor.dependencyRemovals();
    return monitor.stats().recoveredFalseDependency;
}

} // namespace

int
main(int argc, char **argv)
{
    // --no-verify: the load-time seer-lint escape hatch, for replaying
    // a historical model bundle the current lint would reject.
    bool verify = true;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--no-verify") {
            verify = false;
        } else {
            std::fprintf(stderr, "usage: %s [--no-verify]\n", argv[0]);
            return 2;
        }
    }

    std::printf("CloudSeer model lifecycle\n"
                "=========================\n\n");

    const char *model_path = "cloudseer.models";

    // --- generation 1: mine, learn timeouts, persist -----------------
    {
        eval::ModelingConfig modeling;
        modeling.minRuns = 60;
        modeling.maxRuns = 300;
        eval::ModeledSystem models = eval::buildModels(modeling);
        std::ofstream out(model_path);
        core::saveModels(out, *models.catalog, models.automata);
        std::printf("[gen 1] mined %zu automata, saved to %s\n",
                    models.automata.size(), model_path);
    }
    core::TimeoutPolicy policy = eval::learnTimeoutPolicy(40, 5);
    std::printf("[gen 1] learned per-task timeouts (boot %.1fs, "
                "stop %.1fs)\n\n",
                policy.timeoutFor("boot"), policy.timeoutFor("stop"));

    // --- restart: reload and monitor under a loaded shipper -----------
    std::ifstream in(model_path);
    auto bundle = core::loadModels(in);
    if (!bundle) {
        std::fprintf(stderr, "failed to reload %s\n", model_path);
        return 1;
    }
    eval::ModeledSystem reloaded;
    reloaded.catalog = bundle->catalog;
    reloaded.automata = std::move(bundle->automata);
    std::printf("[gen 1] reloaded %zu automata from disk\n",
                reloaded.automata.size());

    core::MonitorConfig config;
    config.timeoutSeconds = policy.defaultTimeout;
    config.perTaskTimeouts = policy.perTask;
    config.verifyModelOnLoad = verify;
    if (!verify)
        std::printf("[gen 1] --no-verify: load-time model lint "
                    "downgraded to report-only\n");

    core::RemovalCounts removals;
    std::uint64_t repairs = monitorOnce(reloaded, config, &removals);
    std::printf("[gen 1] loaded shipper reordered messages; checker "
                "removed %llu false dependencies on the fly\n",
                static_cast<unsigned long long>(repairs));
    for (const auto &[task, edges] : removals) {
        for (const auto &[edge, count] : edges) {
            std::printf("        %s: edge %d->%d removed %d time(s)\n",
                        task.c_str(), edge.first, edge.second, count);
        }
    }

    // --- generation 2: refine and re-monitor ---------------------------
    eval::ModeledSystem refined;
    refined.catalog = reloaded.catalog;
    refined.automata =
        core::refineFromRemovals(reloaded.automata, removals, 2);
    std::uint64_t repairs_after = monitorOnce(refined, config, nullptr);
    std::printf("\n[gen 2] after refinement the same workload needs "
                "%llu on-the-fly removals (was %llu)\n",
                static_cast<unsigned long long>(repairs_after),
                static_cast<unsigned long long>(repairs));

    std::remove(model_path);
    return repairs_after <= repairs ? 0 : 1;
}
