/**
 * @file
 * Offline statistical log-anomaly baseline.
 *
 * The paper's related work (§6) contrasts CloudSeer with offline
 * mining/learning approaches (Fu et al. ICDM'09, Lou et al. ATC'10,
 * Xu et al. SOSP'09) that need the complete log before they can
 * decide anything. This detector is a faithful small member of that
 * family: it learns per-template message-count statistics over fixed
 * time windows from correct logs, then flags windows whose counts
 * deviate, that contain never-seen templates, or that carry error
 * messages.
 *
 * The comparison it enables (bench_baseline_comparison) reproduces
 * the paper's two arguments: an offline detector cannot report until
 * the log is complete (detection latency), and a window-level alarm
 * carries no workflow context (which task, which step).
 */

#ifndef CLOUDSEER_BASELINE_OFFLINE_DETECTOR_HPP
#define CLOUDSEER_BASELINE_OFFLINE_DETECTOR_HPP

#include <map>
#include <string>
#include <vector>

#include "logging/log_record.hpp"
#include "logging/template_catalog.hpp"
#include "logging/variable_extractor.hpp"

namespace cloudseer::baseline {

/** Detector knobs. */
struct OfflineDetectorConfig
{
    /** Window width, seconds. */
    double windowSeconds = 10.0;

    /** A template count deviating more than this many standard
     *  deviations from its training mean is "deviant". */
    double deviationSigma = 4.0;

    /** Windows need at least this many deviant templates to alarm
     *  on count statistics alone. */
    int minDeviantTemplates = 2;

    /** Alarm on templates never seen in training. */
    bool flagUnseenTemplates = true;

    /** Alarm on ERROR/CRITICAL messages. */
    bool flagErrorMessages = true;
};

/** One flagged window. */
struct AnomalousWindow
{
    common::SimTime start = 0.0;
    common::SimTime end = 0.0;
    std::vector<logging::RecordId> records; ///< everything in window
    double score = 0.0;                     ///< deviant-template count
    bool hadError = false;
    bool hadUnseenTemplate = false;
};

/** Train-once, analyze-complete-logs anomaly detector. */
class OfflineAnomalyDetector
{
  public:
    explicit OfflineAnomalyDetector(const OfflineDetectorConfig &config);

    /**
     * Learn per-template window-count statistics from a correct
     * (problem-free) log stream. May be called repeatedly; statistics
     * accumulate.
     */
    void train(const std::vector<logging::LogRecord> &correct_stream);

    /** Number of training windows accumulated. */
    std::size_t trainingWindows() const { return windowsSeen; }

    /**
     * Analyze a complete log (this is the point: nothing can be
     * flagged until the whole stream is available). Non-const only
     * because template interning is shared with training; no
     * statistics change.
     */
    std::vector<AnomalousWindow>
    analyze(const std::vector<logging::LogRecord> &stream);

  private:
    OfflineDetectorConfig config;
    logging::TemplateCatalog catalog;
    logging::VariableExtractor extractor;

    /** Running per-template count moments over training windows. */
    struct Moments
    {
        double sum = 0.0;
        double sumSquares = 0.0;
    };
    std::vector<Moments> moments; ///< indexed by TemplateId
    std::size_t windowsSeen = 0;

    /** Per-window template counts for one stream. */
    struct Window
    {
        common::SimTime start = 0.0;
        std::map<logging::TemplateId, int> counts;
        std::vector<logging::RecordId> records;
        bool hadError = false;
        bool hadUnseen = false;
    };

    std::vector<Window>
    slice(const std::vector<logging::LogRecord> &stream,
          bool intern_new);

    double meanOf(logging::TemplateId tpl) const;
    double stddevOf(logging::TemplateId tpl) const;
};

} // namespace cloudseer::baseline

#endif // CLOUDSEER_BASELINE_OFFLINE_DETECTOR_HPP
