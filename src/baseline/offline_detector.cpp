#include "baseline/offline_detector.hpp"

#include <algorithm>
#include <cmath>

namespace cloudseer::baseline {

OfflineAnomalyDetector::OfflineAnomalyDetector(
    const OfflineDetectorConfig &config_)
    : config(config_)
{
}

std::vector<OfflineAnomalyDetector::Window>
OfflineAnomalyDetector::slice(
    const std::vector<logging::LogRecord> &stream, bool intern_new)
{
    std::vector<Window> windows;
    if (stream.empty())
        return windows;

    double origin = stream.front().timestamp;
    for (const logging::LogRecord &record : stream) {
        std::size_t index = static_cast<std::size_t>(
            std::max(0.0, (record.timestamp - origin) /
                              config.windowSeconds));
        while (windows.size() <= index) {
            Window window;
            window.start = origin + static_cast<double>(windows.size()) *
                                        config.windowSeconds;
            windows.push_back(std::move(window));
        }
        Window &window = windows[index];

        logging::ParsedBody parsed = extractor.parse(record.body);
        logging::TemplateId tpl;
        if (intern_new) {
            tpl = catalog.intern(record.service, parsed.templateText);
        } else {
            tpl = catalog.find(record.service, parsed.templateText);
            if (tpl == logging::kInvalidTemplate)
                window.hadUnseen = true;
        }
        if (tpl != logging::kInvalidTemplate)
            ++window.counts[tpl];
        window.records.push_back(record.id);
        if (logging::isErrorLevel(record.level))
            window.hadError = true;
    }
    return windows;
}

void
OfflineAnomalyDetector::train(
    const std::vector<logging::LogRecord> &correct_stream)
{
    std::vector<Window> windows = slice(correct_stream, true);
    if (moments.size() < catalog.size())
        moments.resize(catalog.size());
    for (const Window &window : windows) {
        for (const auto &[tpl, count] : window.counts) {
            moments[tpl].sum += count;
            moments[tpl].sumSquares +=
                static_cast<double>(count) * count;
        }
        ++windowsSeen;
    }
}

double
OfflineAnomalyDetector::meanOf(logging::TemplateId tpl) const
{
    if (windowsSeen == 0 || tpl >= moments.size())
        return 0.0;
    return moments[tpl].sum / static_cast<double>(windowsSeen);
}

double
OfflineAnomalyDetector::stddevOf(logging::TemplateId tpl) const
{
    if (windowsSeen == 0 || tpl >= moments.size())
        return 0.0;
    double mean = meanOf(tpl);
    double variance = moments[tpl].sumSquares /
                          static_cast<double>(windowsSeen) -
                      mean * mean;
    return variance <= 0.0 ? 0.0 : std::sqrt(variance);
}

std::vector<AnomalousWindow>
OfflineAnomalyDetector::analyze(
    const std::vector<logging::LogRecord> &stream)
{
    std::vector<AnomalousWindow> out;
    std::vector<Window> windows = slice(stream, false);
    for (const Window &window : windows) {
        int deviant = 0;
        for (const auto &[tpl, count] : window.counts) {
            double sigma = stddevOf(tpl);
            double mean = meanOf(tpl);
            // A flat training distribution (sigma 0) flags any count
            // different from the mean.
            double deviation = sigma > 0.0
                ? std::fabs(count - mean) / sigma
                : (std::fabs(count - mean) > 0.5
                       ? config.deviationSigma + 1.0
                       : 0.0);
            if (deviation > config.deviationSigma)
                ++deviant;
        }
        bool alarm =
            deviant >= config.minDeviantTemplates ||
            (config.flagErrorMessages && window.hadError) ||
            (config.flagUnseenTemplates && window.hadUnseen);
        if (!alarm)
            continue;
        AnomalousWindow anomaly;
        anomaly.start = window.start;
        anomaly.end = window.start + config.windowSeconds;
        anomaly.records = window.records;
        anomaly.score = deviant;
        anomaly.hadError = window.hadError;
        anomaly.hadUnseenTemplate = window.hadUnseen;
        out.push_back(std::move(anomaly));
    }
    return out;
}

} // namespace cloudseer::baseline
