/**
 * @file
 * seer-pulse: the live telemetry-and-alerting plane (DESIGN.md §16).
 *
 * seer-scope made the monitor introspectable after the fact; pulse
 * makes it observable while it runs. Three pieces compose here:
 *
 *  - RateEngine: rolling-window + EWMA rates over HealthSample
 *    deltas. Samples are keyed to the *message clock*, so a replay of
 *    the same stream yields the same rate series — the rates that
 *    drive alerting are as deterministic as the checker itself.
 *  - AlertEngine: a burn-rate rule pack with a pending → firing →
 *    resolved state machine (pending min-age before firing, a
 *    hysteresis ratio plus min-hold before resolving) that emits
 *    {"kind":"ALERT"} JSONL records for the report stream and a
 *    dedicated alert log.
 *  - TelemetryServer: a push-model wrapper over common::HttpServer.
 *    The monitor renders /metrics, /healthz, /alerts, and /buildz
 *    bodies at snapshot cadence and publishes them under the server
 *    mutex; scrape handlers copy the latest published string and
 *    never touch checker state.
 *
 * The default rule pack uses only engine-invariant signals (counters
 * the serial and sharded engines produce bit-identically, measured on
 * the message clock), so serial and sharded runs of one stream emit
 * identical ALERT records. Wall-clock signals (feed latency, WAL
 * append latency) are available to user rule files but excluded from
 * the deterministic defaults.
 */

#ifndef CLOUDSEER_OBS_PULSE_HPP
#define CLOUDSEER_OBS_PULSE_HPP

#include <array>
#include <cstdint>
#include <deque>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/http_server.hpp"
#include "obs/observability.hpp"

namespace cloudseer::obs {

/** Signals the rate engine computes each snapshot. */
enum class PulseSignal : std::uint8_t
{
    TemplateMissRate,       ///< recovery (a) per checker message
    DivergenceRecoveryRate, ///< recoveries (c)+(d) per message
    ShedRate,               ///< cap sheds + evictions per second
    BackpressureRate,       ///< forced reorder releases per second
    ErrorRate,              ///< error reports per message
    TimeoutRate,            ///< timeout reports per message
    WalAppendP99Us,         ///< WAL append p99 level (wall clock)
    FeedP99Us,              ///< feed latency p99 level (wall clock)
};

constexpr std::size_t kPulseSignalCount = 8;

/** Stable exposition name ("template_miss_rate", ...). */
const char *pulseSignalName(PulseSignal signal);

/** Parse an exposition name back; false on unknown. */
bool parsePulseSignal(const std::string &name, PulseSignal &signal);

/** True for signals derived from wall-clock latencies (see @file). */
bool pulseSignalIsWallClock(PulseSignal signal);

/** One rate-engine evaluation: instantaneous window rates + EWMA. */
struct PulseRates
{
    double time = 0.0;          ///< message-clock time of newest sample
    double windowSeconds = 0.0; ///< span actually covered
    std::uint64_t samplesInWindow = 0;

    std::array<double, kPulseSignalCount> value{};
    std::array<double, kPulseSignalCount> ewma{};

    // Raw window deltas the /healthz degraded verdict keys off.
    std::uint64_t shedDelta = 0;
    std::uint64_t evictionDelta = 0;
    std::uint64_t forcedReleaseDelta = 0;
    std::uint64_t capRejectDelta = 0;

    double valueOf(PulseSignal s) const
    {
        return value[static_cast<std::size_t>(s)];
    }
    double ewmaOf(PulseSignal s) const
    {
        return ewma[static_cast<std::size_t>(s)];
    }

    /** {"time":...,"signals":{name:{"value":v,"ewma":e},...}} */
    std::string toJson() const;
};

/** One burn-rate rule: fire when a signal stays above threshold. */
struct AlertRule
{
    std::string name;
    PulseSignal signal = PulseSignal::ErrorRate;
    double threshold = 0.0;      ///< fire when value > threshold
    double pendingSeconds = 0.0; ///< min age above threshold to fire
    double holdSeconds = 0.0;    ///< min firing age before resolving
    /** Hysteresis: resolve only once value < resolveRatio*threshold. */
    double resolveRatio = 0.8;
    bool useEwma = false; ///< evaluate the EWMA instead of the window
};

/**
 * The deterministic default pack: template-miss, divergence-recovery,
 * shed, backpressure, error, and timeout burn rules — message-clock
 * signals only.
 */
std::vector<AlertRule> defaultAlertRules();

/**
 * Parse a rules file: one `rule <name> signal=<s> threshold=<v>
 * [pending=<sec>] [hold=<sec>] [resolve=<ratio>] [ewma]` per line,
 * '#' comments and blank lines ignored. Returns false and sets
 * `error` (with a line number) on the first malformed rule.
 */
bool parseAlertRules(const std::string &text,
                     std::vector<AlertRule> &rules,
                     std::string &error);

/** Alert lifecycle states. */
enum class AlertState : std::uint8_t
{
    Inactive,
    Pending,
    Firing,
};

const char *alertStateName(AlertState state);

/** One emitted lifecycle transition. */
struct AlertRecord
{
    std::string rule;
    PulseSignal signal = PulseSignal::ErrorRate;
    std::string state; ///< "pending", "firing", or "resolved"
    double time = 0.0;
    double since = 0.0; ///< when the condition began
    double value = 0.0;
    double threshold = 0.0;

    /** Single-line {"kind":"ALERT",...} JSON. */
    std::string toJson() const;
};

/** Pending → firing → resolved evaluation over a rule pack. */
class AlertEngine
{
  public:
    explicit AlertEngine(std::vector<AlertRule> rule_pack);

    /**
     * Evaluate every rule against one rate observation; returns the
     * lifecycle transitions that occurred (a cancelled pending emits
     * nothing — it never paged anyone).
     */
    std::vector<AlertRecord> evaluate(const PulseRates &rates);

    const std::vector<AlertRule> &rules() const { return pack; }

    bool anyFiring() const;

    /** {"active":[...]} — pending and firing alerts. */
    std::string activeJson(double now) const;

  private:
    struct RuleState
    {
        AlertState state = AlertState::Inactive;
        double since = 0.0;       ///< condition start (pending entry)
        double firingSince = 0.0; ///< firing entry, for the min-hold
        double lastValue = 0.0;
    };

    std::vector<AlertRule> pack;
    std::vector<RuleState> states;
};

/** Rolling-window + EWMA rates over the health-snapshot series. */
class RateEngine
{
  public:
    RateEngine(double window_seconds, double ewma_alpha);

    /** Fold one snapshot in and recompute every signal. */
    const PulseRates &observe(const HealthSample &sample);

    const PulseRates &rates() const { return current; }

  private:
    double windowSeconds;
    double alpha;
    std::deque<HealthSample> window; // oldest first, spans the window
    PulseRates current;
    bool anyEwma = false;
};

/** seer-pulse knobs (MonitorConfig → ObsConfig.pulse); default off. */
struct PulseConfig
{
    /** Master switch for the rate engine + alert engine. */
    bool enabled = false;

    /** Sliding-window span, message-clock seconds. */
    double windowSeconds = 60.0;

    /** EWMA smoothing factor in (0, 1]. */
    double ewmaAlpha = 0.2;

    /**
     * Scrape-server port: <0 = no HTTP endpoint, 0 = ephemeral (read
     * back via WorkflowMonitor::pulsePort()), >0 = fixed.
     */
    int httpPort = -1;

    std::string httpBindAddress = "127.0.0.1";

    /** Rule pack; empty = defaultAlertRules(). */
    std::vector<AlertRule> rules;

    /** Dedicated alert log (JSONL, appended); "" = off. */
    std::string alertLogPath;

    /**
     * Sample one in this many records through the per-stage pipeline
     * timers (sink→parse→route→check→verdict); 0 = timers off.
     */
    std::size_t stageSampleEvery = 0;

    bool enabledAny() const { return enabled; }
};

/**
 * The per-monitor pulse bundle: rate engine + alert engine + alert
 * sinks. The monitor calls observe() right after each addSnapshot, so
 * the alert series rides the same message-clock cadence as the health
 * series.
 */
class PulseEngine
{
  public:
    explicit PulseEngine(const PulseConfig &config);

    const PulseConfig &config() const { return cfg; }

    /** Fold a snapshot in; evaluate rules; log + queue any records. */
    void observe(const HealthSample &sample);

    const PulseRates &rates() const { return rateEngine.rates(); }
    const AlertEngine &alerts() const { return alertEngine; }

    /** Firing alerts or degradation deltas in the current window. */
    bool degraded() const;

    /** {"status":"ok"|"degraded",...} body for /healthz. */
    std::string healthzJson() const;

    /** Active-alert JSON body for /alerts. */
    std::string alertsJson() const;

    /**
     * ALERT JSONL lines emitted since the last drain (for the report
     * stream); the dedicated alert log receives them regardless.
     */
    std::vector<std::string> drainAlertLines();

  private:
    PulseConfig cfg;
    RateEngine rateEngine;
    AlertEngine alertEngine;
    std::vector<std::string> pendingLines;
    std::ofstream alertLog; // open iff cfg.alertLogPath non-empty
};

/** Rendered /buildz body (version, model, shards, uptime). */
std::string buildInfoJson(const std::string &version,
                          const std::string &model_fingerprint,
                          std::size_t shard_count,
                          double uptime_seconds);

/**
 * Push-model scrape endpoint. The owner publishes rendered documents;
 * handlers serve the latest copies. Thread-safe: publish() and the
 * HTTP thread synchronise on one mutex held only for string copies.
 */
class TelemetryServer
{
  public:
    struct Documents
    {
        std::string metrics; ///< Prometheus text
        std::string healthz; ///< JSON
        std::string alerts;  ///< JSON
        std::string buildz;  ///< JSON
    };

    TelemetryServer(const std::string &bind_address,
                    std::uint16_t port);

    /** Bind + launch; false (error() set) when the bind fails. */
    bool start();
    void stop();

    bool running() const { return server.running(); }
    std::uint16_t port() const { return server.boundPort(); }
    const std::string &error() const { return server.error(); }

    void publish(Documents docs);

    /**
     * Arm `/profilez?seconds=N` (seer-probe, DESIGN.md §17): the
     * provider is called with the clamped capture window (0.1–60 s,
     * default 5) and returns the profile JSON — empty means "profiler
     * busy" and maps to 503. Runs on the HTTP thread and blocks it
     * for the window, which is fine for a one-scraper pull endpoint.
     * Must be set before start(). Without a provider the path 404s.
     */
    void setProfileProvider(
        std::function<std::string(double seconds)> provider);

  private:
    common::HttpServer server;
    std::mutex mutex;
    Documents current;
    std::function<std::string(double)> profileProvider;

    common::HttpResponse serve(const std::string &body,
                               const std::string &content_type);
};

} // namespace cloudseer::obs

#endif // CLOUDSEER_OBS_PULSE_HPP
