#include "obs/profiler.hpp"

#include "common/stackcapture.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <new>
#include <sstream>
#include <thread>

#include <cxxabi.h>
#include <dlfcn.h>
#include <signal.h>

namespace cloudseer::obs {

namespace detail {
thread_local volatile std::uint32_t tlsStageWord = 0;
} // namespace detail

namespace {

constexpr const char *kStageNames[kProfStageCount] = {
    "untagged",    "sink",    "parse",       "route",
    "check",       "verdict", "shard_check", "wal_append",
};

/** The running profiler the SIGPROF handler delivers samples to.
 *  Acquire/release paired with start()/stop() publication. */
std::atomic<Profiler *> gActiveProfiler{nullptr};

/** The signal trampoline's address (libc's __restore_rt), learned
 *  from the handler's own return address: the kernel pushes it as
 *  the frame the handler returns to, so it shows up in every walked
 *  stack — usually unnamed (libc keeps it private), so collect()
 *  strips it by address rather than by symbol. */
std::atomic<std::uintptr_t> gSigTrampoline{0};

extern "C" void
profilerSignalHandler(int)
{
    // The handler may interrupt code mid-errno-check; everything
    // below is async-signal-safe (atomics, bounded stack walk, plain
    // stores into a preallocated ring).
    int saved_errno = errno;
    gSigTrampoline.store(reinterpret_cast<std::uintptr_t>(
                             __builtin_extract_return_addr(
                                 __builtin_return_address(0))),
                         std::memory_order_relaxed);
    Profiler *profiler =
        gActiveProfiler.load(std::memory_order_acquire);
    if (profiler != nullptr)
        profiler->recordSample();
    errno = saved_errno;
}

#if defined(CLOUDSEER_PROFILE_ALLOC)
struct AllocCell
{
    std::atomic<std::uint64_t> bytes{0};
    std::atomic<std::uint64_t> count{0};
};
AllocCell gAllocCells[kProfStageCount];
std::atomic<bool> gAllocTracking{false};
#endif

/** Best-effort symbol for a return address: demangled function name
 *  via dladdr, else "module+0xoff", else the raw address. */
std::string
symbolize(void *addr)
{
    Dl_info info;
    std::memset(&info, 0, sizeof(info));
    if (dladdr(addr, &info) != 0) {
        if (info.dli_sname != nullptr) {
            int status = -1;
            char *demangled = abi::__cxa_demangle(info.dli_sname,
                                                  nullptr, nullptr,
                                                  &status);
            std::string name = status == 0 && demangled != nullptr
                                   ? demangled
                                   : info.dli_sname;
            std::free(demangled);
            return name;
        }
        if (info.dli_fname != nullptr) {
            const char *base = std::strrchr(info.dli_fname, '/');
            base = base != nullptr ? base + 1 : info.dli_fname;
            char buf[256];
            std::snprintf(
                buf, sizeof(buf), "%s+0x%llx", base,
                static_cast<unsigned long long>(
                    reinterpret_cast<std::uintptr_t>(addr) -
                    reinterpret_cast<std::uintptr_t>(info.dli_fbase)));
            return buf;
        }
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(
                      reinterpret_cast<std::uintptr_t>(addr)));
    return buf;
}

/** Frames belonging to the sampling machinery itself — stripped from
 *  the leaf end of every stack so flamegraphs show the interrupted
 *  code, not the profiler. */
bool
isProfilerFrame(const std::string &symbol)
{
    static const char *kInternal[] = {
        "captureStack",     "walkFramePointers", "recordSample",
        "profilerSignalHandler", "__restore_rt",  "backtrace",
    };
    for (const char *needle : kInternal)
        if (symbol.find(needle) != std::string::npos)
            return true;
    return false;
}

/** Folded-format frame sanitiser: flamegraph.pl splits on ';' and the
 *  final space, so neither may appear inside a frame name. */
std::string
foldedFrame(const std::string &symbol)
{
    std::string out = symbol;
    for (char &c : out) {
        if (c == ';')
            c = ':';
        else if (c == ' ')
            c = '_';
    }
    return out;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonUnescape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] != '\\' || i + 1 >= text.size()) {
            out += text[i];
            continue;
        }
        char next = text[++i];
        switch (next) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'u':
            if (i + 4 < text.size()) {
                out += static_cast<char>(
                    std::strtol(text.substr(i + 1, 4).c_str(),
                                nullptr, 16));
                i += 4;
            }
            break;
        default: out += next; break;
        }
    }
    return out;
}

/** Substring-JSON number lookup, the seer_pulse idiom: finds
 *  `"key": <number>` at or after `from`. */
bool
numberField(const std::string &text, const std::string &key,
            double &out, std::size_t from = 0)
{
    std::string needle = "\"" + key + "\":";
    std::size_t pos = text.find(needle, from);
    if (pos == std::string::npos)
        return false;
    out = std::atof(text.c_str() + pos + needle.size());
    return true;
}

} // namespace

const char *
profStageName(ProfStage stage)
{
    unsigned index = static_cast<unsigned>(stage);
    return index < kProfStageCount ? kStageNames[index] : "unknown";
}

void
prepareThreadForProfiling()
{
    common::prepareThreadForStackCapture();
}

double
Profile::taggedFraction() const
{
    if (samples == 0)
        return 0.0;
    std::uint64_t tagged = samples - stageSamples[0];
    return static_cast<double>(tagged) /
           static_cast<double>(samples);
}

std::string
Profile::toFolded() const
{
    std::ostringstream out;
    for (const ProfileStack &stack : stacks) {
        out << "[" << profStageName(stack.stage);
        if (stack.stage == ProfStage::ShardCheck)
            out << "#" << stack.shard;
        out << "]";
        for (const std::string &frame : stack.frames)
            out << ";" << foldedFrame(frame);
        out << " " << stack.count << "\n";
    }
    return out.str();
}

std::string
Profile::toJson() const
{
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(6);
    out << "{\"kind\": \"PROFILE\", \"hz\": " << hz
        << ", \"duration_s\": " << durationSeconds
        << ", \"samples\": " << samples << ", \"dropped\": " << dropped
        << ", \"tagged_fraction\": " << taggedFraction() << ",\n";
    out << " \"stages\": {";
    for (int i = 0; i < kProfStageCount; ++i)
        out << (i == 0 ? "" : ", ") << "\"" << kStageNames[i]
            << "\": " << stageSamples[static_cast<std::size_t>(i)];
    out << "},\n";
    out << " \"alloc\": {\"tracked\": "
        << (allocTracked ? "true" : "false");
    if (allocTracked) {
        out << ", \"bytes\": {";
        for (int i = 0; i < kProfStageCount; ++i)
            out << (i == 0 ? "" : ", ") << "\"" << kStageNames[i]
                << "\": " << allocBytes[static_cast<std::size_t>(i)];
        out << "}, \"counts\": {";
        for (int i = 0; i < kProfStageCount; ++i)
            out << (i == 0 ? "" : ", ") << "\"" << kStageNames[i]
                << "\": " << allocCounts[static_cast<std::size_t>(i)];
        out << "}";
    }
    out << "},\n";
    out << " \"stacks\": [\n";
    for (std::size_t i = 0; i < stacks.size(); ++i) {
        const ProfileStack &stack = stacks[i];
        out << "{\"stage\": \"" << profStageName(stack.stage)
            << "\", \"shard\": " << stack.shard
            << ", \"count\": " << stack.count << ", \"frames\": [";
        for (std::size_t f = 0; f < stack.frames.size(); ++f)
            out << (f == 0 ? "" : ", ") << "\""
                << jsonEscape(stack.frames[f]) << "\"";
        out << "]}" << (i + 1 < stacks.size() ? "," : "") << "\n";
    }
    out << " ]}\n";
    return out.str();
}

bool
parseProfileJson(const std::string &text, Profile &out)
{
    if (text.find("\"kind\": \"PROFILE\"") == std::string::npos &&
        text.find("\"kind\":\"PROFILE\"") == std::string::npos)
        return false;
    Profile profile;
    double value = 0.0;
    if (numberField(text, "hz", value))
        profile.hz = static_cast<int>(value);
    if (numberField(text, "duration_s", value))
        profile.durationSeconds = value;
    if (numberField(text, "samples", value))
        profile.samples = static_cast<std::uint64_t>(value);
    if (numberField(text, "dropped", value))
        profile.dropped = static_cast<std::uint64_t>(value);

    std::size_t stages_at = text.find("\"stages\":");
    std::size_t stages_end = stages_at != std::string::npos
                                 ? text.find('}', stages_at)
                                 : std::string::npos;
    if (stages_at != std::string::npos &&
        stages_end != std::string::npos) {
        std::string section =
            text.substr(stages_at, stages_end - stages_at);
        for (int i = 0; i < kProfStageCount; ++i)
            if (numberField(section, kStageNames[i], value))
                profile.stageSamples[static_cast<std::size_t>(i)] =
                    static_cast<std::uint64_t>(value);
    }

    profile.allocTracked =
        text.find("\"tracked\": true") != std::string::npos;
    if (profile.allocTracked) {
        std::size_t bytes_at = text.find("\"bytes\":");
        std::size_t counts_at = text.find("\"counts\":");
        if (bytes_at != std::string::npos &&
            counts_at != std::string::npos) {
            std::string bytes_sec =
                text.substr(bytes_at, counts_at - bytes_at);
            std::string counts_sec = text.substr(
                counts_at, text.find('}', counts_at) - counts_at);
            for (int i = 0; i < kProfStageCount; ++i) {
                if (numberField(bytes_sec, kStageNames[i], value))
                    profile.allocBytes[static_cast<std::size_t>(i)] =
                        static_cast<std::uint64_t>(value);
                if (numberField(counts_sec, kStageNames[i], value))
                    profile.allocCounts[static_cast<std::size_t>(i)] =
                        static_cast<std::uint64_t>(value);
            }
        }
    }

    std::size_t stacks_at = text.find("\"stacks\": [");
    if (stacks_at != std::string::npos) {
        std::istringstream lines(text.substr(stacks_at));
        std::string line;
        while (std::getline(lines, line)) {
            std::size_t open = line.find("{\"stage\": \"");
            if (open == std::string::npos)
                continue;
            ProfileStack stack;
            std::size_t name_at = open + 11;
            std::size_t name_end = line.find('"', name_at);
            if (name_end == std::string::npos)
                continue;
            std::string name =
                line.substr(name_at, name_end - name_at);
            for (int i = 0; i < kProfStageCount; ++i)
                if (name == kStageNames[i])
                    stack.stage = static_cast<ProfStage>(i);
            if (numberField(line, "shard", value))
                stack.shard = static_cast<unsigned>(value);
            if (numberField(line, "count", value))
                stack.count = static_cast<std::uint64_t>(value);
            std::size_t frames_at = line.find("\"frames\": [");
            std::size_t frames_end = line.rfind(']');
            if (frames_at != std::string::npos &&
                frames_end != std::string::npos &&
                frames_end > frames_at) {
                std::size_t cursor = frames_at + 11;
                while (cursor < frames_end) {
                    std::size_t quote = line.find('"', cursor);
                    if (quote == std::string::npos ||
                        quote >= frames_end)
                        break;
                    std::size_t close = quote + 1;
                    while (close < frames_end &&
                           !(line[close] == '"' &&
                             line[close - 1] != '\\'))
                        ++close;
                    if (close >= frames_end &&
                        line[close] != '"')
                        break;
                    stack.frames.push_back(jsonUnescape(line.substr(
                        quote + 1, close - quote - 1)));
                    cursor = close + 1;
                }
            }
            profile.stacks.push_back(std::move(stack));
        }
    }
    out = std::move(profile);
    return true;
}

Profiler::Profiler(const ProfilerConfig &config) : config_(config)
{
    if (config_.hz <= 0)
        config_.hz = 99;
    if (config_.maxSamples == 0)
        config_.maxSamples = 16384;
    ring_ = std::make_unique<RawSample[]>(config_.maxSamples);
}

Profiler::~Profiler()
{
    stop();
}

bool
Profiler::start()
{
    if (running_)
        return true;
    Profiler *expected = nullptr;
    if (!gActiveProfiler.compare_exchange_strong(
            expected, this, std::memory_order_acq_rel))
        return false;
    common::prepareThreadForStackCapture();
    common::warmStackCapture();
    for (std::size_t i = 0; i < config_.maxSamples; ++i)
        ring_[i].ready.store(0, std::memory_order_relaxed);
    writeIndex_.store(0, std::memory_order_relaxed);
    dropped_.store(0, std::memory_order_relaxed);
#if defined(CLOUDSEER_PROFILE_ALLOC)
    for (AllocCell &cell : gAllocCells) {
        cell.bytes.store(0, std::memory_order_relaxed);
        cell.count.store(0, std::memory_order_relaxed);
    }
    gAllocTracking.store(true, std::memory_order_relaxed);
#endif
    struct sigaction action = {};
    action.sa_handler = &profilerSignalHandler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = SA_RESTART;
    if (sigaction(SIGPROF, &action, &oldAction_) != 0) {
        gActiveProfiler.store(nullptr, std::memory_order_release);
        return false;
    }
    if (!timer_.start(config_.hz)) {
        sigaction(SIGPROF, &oldAction_, nullptr);
        gActiveProfiler.store(nullptr, std::memory_order_release);
        return false;
    }
    startTime_ = std::chrono::steady_clock::now();
    running_ = true;
    return true;
}

void
Profiler::stop()
{
    if (!running_)
        return;
    timer_.stop();
    // Let any signal generated before the timer died be delivered to
    // the still-installed handler before the old disposition (usually
    // SIG_DFL, which would terminate the process) comes back.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    sigaction(SIGPROF, &oldAction_, nullptr);
    gActiveProfiler.store(nullptr, std::memory_order_release);
#if defined(CLOUDSEER_PROFILE_ALLOC)
    gAllocTracking.store(false, std::memory_order_relaxed);
#endif
    stoppedDuration_ +=
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - startTime_)
            .count();
    running_ = false;
}

void
Profiler::recordSample() noexcept
{
    std::uint64_t index =
        writeIndex_.fetch_add(1, std::memory_order_relaxed);
    if (index >= config_.maxSamples) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    RawSample &slot = ring_[index];
    slot.stageWord = detail::tlsStageWord;
    int depth = common::captureStack(slot.frames, kMaxFrames);
    slot.depth = static_cast<std::uint16_t>(std::max(depth, 0));
    slot.ready.store(1, std::memory_order_release);
}

Profile
Profiler::collect() const
{
    Profile out;
    out.hz = config_.hz;
    out.dropped = dropped_.load(std::memory_order_relaxed);
    out.durationSeconds =
        running_ ? stoppedDuration_ +
                       std::chrono::duration<double>(
                           std::chrono::steady_clock::now() -
                           startTime_)
                           .count()
                 : stoppedDuration_;

    std::uint64_t written =
        std::min<std::uint64_t>(
            writeIndex_.load(std::memory_order_relaxed),
            config_.maxSamples);

    // Aggregate by (stage word, address vector) first so each unique
    // address is symbolised exactly once.
    std::map<std::vector<std::uintptr_t>, std::uint64_t> grouped;
    for (std::uint64_t i = 0; i < written; ++i) {
        const RawSample &slot = ring_[i];
        if (slot.ready.load(std::memory_order_acquire) == 0)
            continue;
        std::vector<std::uintptr_t> key;
        key.reserve(static_cast<std::size_t>(slot.depth) + 1);
        key.push_back(slot.stageWord);
        for (int f = 0; f < slot.depth; ++f)
            key.push_back(reinterpret_cast<std::uintptr_t>(
                slot.frames[f]));
        ++grouped[std::move(key)];
    }

    std::map<std::uintptr_t, std::string> symbols;
    auto symbolFor = [&symbols](std::uintptr_t addr) {
        auto it = symbols.find(addr);
        if (it == symbols.end())
            it = symbols
                     .emplace(addr, symbolize(reinterpret_cast<void *>(
                                        addr)))
                     .first;
        return it->second;
    };

    for (const auto &[key, count] : grouped) {
        ProfileStack stack;
        std::uint32_t word = static_cast<std::uint32_t>(key.front());
        unsigned stage_index = word & 0xffu;
        if (stage_index >= kProfStageCount)
            stage_index = 0;
        stack.stage = static_cast<ProfStage>(stage_index);
        stack.shard = (word >> 8) & 0xffu;
        stack.count = count;
        out.samples += count;
        out.stageSamples[stage_index] += count;
        // Frames arrive innermost first; strip the profiler's own
        // leaf frames (by symbol, plus the signal trampoline by
        // address — see gSigTrampoline), then reverse to root-first
        // for folded output.
        std::uintptr_t trampoline =
            gSigTrampoline.load(std::memory_order_relaxed);
        std::vector<std::string> leaf_first;
        for (std::size_t f = 1; f < key.size(); ++f)
            leaf_first.push_back(symbolFor(key[f]));
        std::size_t skip = 0;
        while (skip < leaf_first.size() &&
               (key[skip + 1] == trampoline ||
                isProfilerFrame(leaf_first[skip])))
            ++skip;
        stack.frames.assign(leaf_first.rbegin(),
                            leaf_first.rend() -
                                static_cast<std::ptrdiff_t>(skip));
        out.stacks.push_back(std::move(stack));
    }

    std::sort(out.stacks.begin(), out.stacks.end(),
              [](const ProfileStack &a, const ProfileStack &b) {
                  if (a.count != b.count)
                      return a.count > b.count;
                  if (a.stage != b.stage)
                      return a.stage < b.stage;
                  if (a.shard != b.shard)
                      return a.shard < b.shard;
                  return a.frames < b.frames;
              });

#if defined(CLOUDSEER_PROFILE_ALLOC)
    out.allocTracked = true;
    for (int i = 0; i < kProfStageCount; ++i) {
        out.allocBytes[static_cast<std::size_t>(i)] =
            gAllocCells[i].bytes.load(std::memory_order_relaxed);
        out.allocCounts[static_cast<std::size_t>(i)] =
            gAllocCells[i].count.load(std::memory_order_relaxed);
    }
#endif
    return out;
}

bool
Profiler::allocTrackingCompiledIn()
{
#if defined(CLOUDSEER_PROFILE_ALLOC)
    return true;
#else
    return false;
#endif
}

} // namespace cloudseer::obs

#if defined(CLOUDSEER_PROFILE_ALLOC)

namespace {

void *
trackedAlloc(std::size_t size)
{
    using namespace cloudseer::obs;
    if (gAllocTracking.load(std::memory_order_relaxed)) {
        unsigned stage = detail::tlsStageWord & 0xffu;
        if (stage < kProfStageCount) {
            gAllocCells[stage].bytes.fetch_add(
                size, std::memory_order_relaxed);
            gAllocCells[stage].count.fetch_add(
                1, std::memory_order_relaxed);
        }
    }
    void *ptr = std::malloc(size != 0 ? size : 1);
    if (ptr == nullptr)
        throw std::bad_alloc();
    return ptr;
}

} // namespace

void *
operator new(std::size_t size)
{
    return trackedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return trackedAlloc(size);
}

void
operator delete(void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

#endif // CLOUDSEER_PROFILE_ALLOC
