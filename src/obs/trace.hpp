/**
 * @file
 * Execution-lifecycle tracing (DESIGN.md §11).
 *
 * The checker narrates each automaton group's life to an
 * ExecutionTracer: a span opens when the group is created (recovery
 * (b) or a case-2 fork), collects one annotation per consumed message
 * naming the Algorithm 2 outcome that routed it, and closes with the
 * group's fate — accepted, error, timed out, shed, pruned as a losing
 * hypothesis, or cut off by end of stream. Times are message-clock
 * seconds, the same clock every report uses.
 *
 * Spans export as Chrome trace_event JSON (one "X" complete event per
 * span on tid = group id, one "i" instant event per annotation), which
 * loads directly in about:tracing and Perfetto. Retention is bounded:
 * past maxSpans closed spans, the oldest are dropped and counted, so
 * a long monitor run cannot grow the tracer without bound.
 *
 * All hooks are O(1) amortized and safe to call for unknown groups
 * (endSpan on a never-opened or already-closed group is a no-op) —
 * the checker does not need to know which groups the tracer kept.
 */

#ifndef CLOUDSEER_OBS_TRACE_HPP
#define CLOUDSEER_OBS_TRACE_HPP

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"

namespace cloudseer::obs {

/** How a span (an automaton group's life) ended. */
enum class SpanEnd
{
    Accepted,    ///< concluded: an instance accepted the sequence
    Diverged,    ///< error-message criterion fired on the group
    TimedOut,    ///< timeout criterion reported the group
    Shed,        ///< evicted under cap pressure (verdict unknown)
    Pruned,      ///< losing hypothesis removed by lineage pruning
    EndOfStream, ///< still open when the stream ended
};

/** Canonical lower-case token ("accepted", "timed-out", ...). */
const char *spanEndName(SpanEnd end);

/** Which Algorithm 2 outcome consumed a message into the group. */
enum class ConsumeAnnotation
{
    Decisive,                ///< case (1)
    Ambiguous,               ///< case (2) fork
    RecoveryNewSequence,     ///< recovery (b)
    RecoveryOtherSet,        ///< recovery (c)
    RecoveryFalseDependency, ///< recovery (d)
};

/** Canonical lower-case token ("decisive", "recovery-b", ...). */
const char *consumeAnnotationName(ConsumeAnnotation kind);

/** One annotated moment in a span. */
struct SpanEvent
{
    double time = 0.0;
    ConsumeAnnotation kind = ConsumeAnnotation::Decisive;
};

/**
 * One automaton transition rendered as a child slice of its
 * execution span (seer-flight, DESIGN.md §12). Nested "X" events on
 * the span's tid, so Perfetto stacks per-edge latency under the
 * execution.
 */
struct SpanTransition
{
    std::string name; ///< e.g. "e3->e5"
    double start = 0.0;
    double dur = 0.0;
    bool overBudget = false;
};

/** One automaton group's recorded life. */
struct ExecutionSpan
{
    std::uint64_t group = 0;
    double start = 0.0;
    double end = 0.0;
    bool open = true;
    SpanEnd endReason = SpanEnd::EndOfStream;
    std::string task; ///< resolved task name ("" until known)
    std::uint64_t messages = 0;
    std::vector<SpanEvent> events;
    std::vector<SpanTransition> transitions;
};

/** Recorder for per-execution spans with bounded retention. */
class ExecutionTracer
{
  public:
    explicit ExecutionTracer(std::size_t max_spans = 4096);

    /** Open a span for a freshly created group. */
    void beginSpan(std::uint64_t group, double time);

    /** Record a consume outcome on an open span (no-op if unknown). */
    void annotate(std::uint64_t group, double time,
                  ConsumeAnnotation kind);

    /**
     * Attach per-transition child slices to an open span (seer-flight;
     * call before endSpan). No-op for unknown groups.
     */
    void addTransitions(std::uint64_t group,
                        std::vector<SpanTransition> transitions);

    /**
     * Close a span. `task` is the group's resolved (or most likely)
     * task name; `messages` the consumed-message count. Unknown or
     * already-closed groups are ignored, so callers may end a span
     * eagerly at the report site and let the generic erase path try
     * again with SpanEnd::Pruned.
     */
    void endSpan(std::uint64_t group, double time, SpanEnd reason,
                 const std::string &task = std::string(),
                 std::uint64_t messages = 0);

    /** Spans closed so far, oldest first (bounded by maxSpans). */
    const std::deque<ExecutionSpan> &closedSpans() const
    {
        return closed;
    }

    /** Spans still open (live groups). */
    std::size_t openSpans() const { return open.size(); }

    /** Closed spans dropped past the retention cap. */
    std::uint64_t droppedSpans() const { return dropped; }

    /**
     * Feed span statistics into registry histograms at close time
     * (duration in seconds, messages per span). Either may be null.
     */
    void attachHistograms(Histogram *duration_seconds,
                          Histogram *messages_per_span);

    /**
     * Chrome trace_event JSON: {"traceEvents":[...]} with one
     * complete ("X") event per span and instant ("i") events for its
     * annotations; open spans export with their last known time and
     * an "open" end marker. Loads in about:tracing / Perfetto.
     */
    std::string chromeTraceJson() const;

  private:
    std::size_t maxSpans;
    std::unordered_map<std::uint64_t, ExecutionSpan> open;
    std::deque<ExecutionSpan> closed;
    std::uint64_t dropped = 0;
    Histogram *durationHistogram = nullptr;
    Histogram *messagesHistogram = nullptr;

    static void appendSpanJson(std::string &out,
                               const ExecutionSpan &span, bool &first);
};

} // namespace cloudseer::obs

#endif // CLOUDSEER_OBS_TRACE_HPP
