/**
 * @file
 * seer-flight recorder: bounded forensic capture for postmortems
 * (DESIGN.md §12).
 *
 * The monitor's reports say *what* went wrong (diverged, timed out,
 * over latency budget) but the raw evidence — the log lines around the
 * failure — is gone by the time an operator reads them. The flight
 * recorder keeps a small per-node ring of recent raw lines in the
 * ingest path; when a report fires, the monitor freezes the rings plus
 * the group's state into a forensic bundle (a JSON object) that the
 * seer_postmortem CLI renders offline.
 *
 * Null-sink contract (same as the rest of obs): the default config has
 * perNodeCapacity == 0, a monitor with that config constructs no
 * FlightRecorder at all, and reports stay bit-identical. Every bound —
 * lines per node, nodes tracked, bundles retained — is a hard cap, so
 * a long run cannot grow the recorder without limit.
 */

#ifndef CLOUDSEER_OBS_FLIGHT_RECORDER_HPP
#define CLOUDSEER_OBS_FLIGHT_RECORDER_HPP

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace cloudseer::obs {

/** Flight-recorder knobs. Defaults are off (the null sink). */
struct FlightRecorderConfig
{
    /** Raw lines retained per node; 0 disables the recorder. */
    std::size_t perNodeCapacity = 0;

    /** Distinct nodes tracked; lines from further nodes are counted
     *  as dropped rather than evicting an existing ring. */
    std::size_t maxNodes = 64;

    /** Forensic bundles retained (ring; oldest dropped). */
    std::size_t maxBundles = 256;

    /** True when the recorder captures anything. */
    bool enabled() const { return perNodeCapacity > 0; }
};

/** One captured raw line with its origin and message-clock stamp. */
struct ContextLine
{
    std::string node;
    double time = 0.0;
    std::string line;
};

/** Bounded per-node ring buffers plus the bundle store. */
class FlightRecorder
{
  public:
    explicit FlightRecorder(const FlightRecorderConfig &config);

    const FlightRecorderConfig &config() const { return cfg; }

    /**
     * Capture one raw line into its node's ring. This sits on the
     * per-message ingest path, so it takes views and copies into the
     * slot's existing buffer: once every slot has seen a line at
     * least as long as the current one, recording allocates nothing
     * (the node text lives once in the ring key, not per entry).
     */
    void record(std::string_view node, double time,
                std::string_view line);

    /**
     * Merged snapshot of every ring, time order (ties by node then
     * capture order) — the "context" section of a forensic bundle.
     */
    std::vector<ContextLine> context() const;

    /** Store one rendered bundle (JSON object, single line). */
    void addBundle(std::string bundle_json);

    /** Retained bundles, oldest first. */
    const std::vector<std::string> &bundles() const { return store; }

    /** Bundles dropped past maxBundles. */
    std::uint64_t droppedBundles() const { return droppedBundleCount; }

    /** Lines offered to record() so far. */
    std::uint64_t linesRecorded() const { return recorded; }

    /** Lines rejected because the node cap was reached. */
    std::uint64_t droppedLines() const { return droppedLineCount; }

    /** Bundles as newline-separated JSON lines (postmortem input). */
    std::string bundleJsonLines() const;

  private:
    /** One retained line; the node is the owning ring's map key. */
    struct Slot
    {
        double time = 0.0;
        std::string line; ///< capacity reused across overwrites
    };

    /** Fixed-size ring: `slots` grows to capacity then wraps at
     *  `next`; `seq` preserves capture order across the wrap. */
    struct NodeRing
    {
        std::vector<Slot> slots;
        std::size_t next = 0;
        std::uint64_t seq = 0;
    };

    FlightRecorderConfig cfg;
    // std::less<> lets record() probe with a string_view; the node
    // string is materialised only when a new ring is created.
    std::map<std::string, NodeRing, std::less<>> rings;
    std::vector<std::string> store;
    std::uint64_t recorded = 0;
    std::uint64_t droppedLineCount = 0;
    std::uint64_t droppedBundleCount = 0;
};

} // namespace cloudseer::obs

#endif // CLOUDSEER_OBS_FLIGHT_RECORDER_HPP
