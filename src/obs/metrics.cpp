#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace cloudseer::obs {

namespace {

constexpr int kSubBuckets = 9; // mantissa 1..9 per decade

std::string
formatNumber(double value)
{
    std::ostringstream out;
    out << value;
    return out.str();
}

/**
 * HELP-text escaping per the Prometheus exposition spec: backslash
 * and line feed only (quotes are legal in HELP).
 */
std::string
escapeHelp(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

/** Label-value escaping: backslash, double quote, and line feed. */
std::string
escapeLabelValue(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

/** Minimal JSON string escaping for metric keys in jsonSnapshot. */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

} // namespace

Histogram::Histogram(int min_exp, int max_exp)
{
    CS_ASSERT(max_exp > min_exp, "histogram range must be non-empty");
    for (int e = min_exp; e < max_exp; ++e) {
        double decade = std::pow(10.0, e);
        for (int m = 1; m <= kSubBuckets; ++m)
            bounds.push_back(static_cast<double>(m) * decade);
    }
    bounds.push_back(std::pow(10.0, max_exp));
    hits.assign(bounds.size() - 1, 0);
}

void
Histogram::record(double value)
{
    if (samples == 0) {
        minValue = maxValue = value;
    } else {
        minValue = std::min(minValue, value);
        maxValue = std::max(maxValue, value);
    }
    ++samples;
    total += value;

    if (value < bounds.front()) {
        ++underflowCount;
        return;
    }
    if (value >= bounds.back()) {
        ++overflowCount;
        return;
    }
    // First boundary strictly above the value; the bucket before it
    // covers [bounds[i], bounds[i+1]).
    auto it = std::upper_bound(bounds.begin(), bounds.end(), value);
    ++hits[static_cast<std::size_t>(it - bounds.begin()) - 1];
}

double
Histogram::mean() const
{
    return samples == 0 ? 0.0
                        : total / static_cast<double>(samples);
}

double
Histogram::percentile(double p) const
{
    if (samples == 0)
        return 0.0;
    double clamped = std::min(100.0, std::max(0.0, p));
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(clamped / 100.0 * static_cast<double>(samples)));
    rank = std::max<std::uint64_t>(rank, 1);

    std::uint64_t seen = underflowCount;
    if (rank <= seen)
        return minValue; // inside the underflow region
    for (std::size_t i = 0; i < hits.size(); ++i) {
        seen += hits[i];
        if (rank <= seen) {
            return std::max(minValue,
                            std::min(bounds[i + 1], maxValue));
        }
    }
    return maxValue; // overflow region
}

double
Histogram::percentileInterpolated(double p) const
{
    if (samples == 0)
        return 0.0;
    double clamped = std::min(100.0, std::max(0.0, p));
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(clamped / 100.0 * static_cast<double>(samples)));
    rank = std::max<std::uint64_t>(rank, 1);

    // Linear interpolation of the rank's position within its region;
    // the clamp keeps estimates inside the observed [min, max].
    std::uint64_t before = 0;
    auto interpolate = [&](double lo, double hi,
                           std::uint64_t region_hits) {
        double fraction =
            (static_cast<double>(rank) - static_cast<double>(before)) /
            static_cast<double>(region_hits);
        double value = lo + fraction * (hi - lo);
        return std::max(minValue, std::min(value, maxValue));
    };

    if (rank <= underflowCount)
        return interpolate(minValue, bounds.front(), underflowCount);
    before = underflowCount;
    for (std::size_t i = 0; i < hits.size(); ++i) {
        if (hits[i] != 0 && rank <= before + hits[i])
            return interpolate(bounds[i], bounds[i + 1], hits[i]);
        before += hits[i];
    }
    if (overflowCount == 0)
        return maxValue;
    return interpolate(bounds.back(), maxValue, overflowCount);
}

void
Histogram::saveState(common::BinWriter &out) const
{
    out.writeU64(hits.size());
    for (std::uint64_t h : hits)
        out.writeU64(h);
    out.writeU64(underflowCount);
    out.writeU64(overflowCount);
    out.writeU64(samples);
    out.writeF64(total);
    out.writeF64(minValue);
    out.writeF64(maxValue);
}

bool
Histogram::restoreState(common::BinReader &in)
{
    std::uint64_t bucket_count = in.readU64();
    if (!in.ok() || bucket_count != hits.size()) {
        in.fail();
        return false;
    }
    std::vector<std::uint64_t> restored(hits.size());
    for (std::size_t i = 0; i < restored.size(); ++i)
        restored[i] = in.readU64();
    std::uint64_t under = in.readU64();
    std::uint64_t over = in.readU64();
    std::uint64_t count = in.readU64();
    double sum_restored = in.readF64();
    double min_restored = in.readF64();
    double max_restored = in.readF64();
    if (!in.ok())
        return false;
    hits = std::move(restored);
    underflowCount = under;
    overflowCount = over;
    samples = count;
    total = sum_restored;
    minValue = min_restored;
    maxValue = max_restored;
    return true;
}

Counter &
MetricsRegistry::counter(const std::string &name,
                         const std::string &help)
{
    auto [it, fresh] = counters.try_emplace(name);
    if (fresh)
        it->second.help = help;
    return it->second.metric;
}

Gauge &
MetricsRegistry::gauge(const std::string &name, const std::string &help)
{
    auto [it, fresh] = gauges.try_emplace(name);
    if (fresh)
        it->second.help = help;
    return it->second.metric;
}

Gauge &
MetricsRegistry::labeledGauge(
    const std::string &name,
    const std::vector<std::pair<std::string, std::string>> &labels,
    const std::string &help)
{
    // The rendered label block becomes part of the storage key, so
    // two label sets on one family are two series, and re-requesting
    // the same set yields the same instrument.
    std::string key = name + "{";
    for (std::size_t i = 0; i < labels.size(); ++i) {
        key += (i == 0 ? "" : ",");
        key += labels[i].first + "=\"" +
               escapeLabelValue(labels[i].second) + "\"";
    }
    key += "}";
    auto [it, fresh] = gauges.try_emplace(key);
    if (fresh)
        it->second.help = help;
    return it->second.metric;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           const std::string &help, int min_exp,
                           int max_exp)
{
    auto it = histograms.find(name);
    if (it == histograms.end()) {
        it = histograms
                 .emplace(name,
                          Named<Histogram>{Histogram(min_exp, max_exp),
                                           help})
                 .first;
    }
    return it->second.metric;
}

std::size_t
MetricsRegistry::size() const
{
    return counters.size() + gauges.size() + histograms.size();
}

std::string
MetricsRegistry::prometheusText() const
{
    std::ostringstream out;
    for (const auto &[name, entry] : counters) {
        out << "# HELP " << name << " " << escapeHelp(entry.help)
            << "\n";
        out << "# TYPE " << name << " counter\n";
        out << name << " " << entry.metric.value() << "\n";
    }
    // Gauge keys may carry a rendered label block; HELP/TYPE belong
    // to the family (the key up to '{') and must appear exactly once
    // per family, so group series by family before emitting.
    std::map<std::string,
             std::vector<std::pair<std::string, const Named<Gauge> *>>>
        families;
    for (const auto &[key, entry] : gauges) {
        std::size_t brace = key.find('{');
        std::string family =
            brace == std::string::npos ? key : key.substr(0, brace);
        families[family].emplace_back(key, &entry);
    }
    for (const auto &[family, series] : families) {
        out << "# HELP " << family << " "
            << escapeHelp(series.front().second->help) << "\n";
        out << "# TYPE " << family << " gauge\n";
        for (const auto &[key, entry] : series)
            out << key << " " << formatNumber(entry->metric.value())
                << "\n";
    }
    for (const auto &[name, entry] : histograms) {
        const Histogram &h = entry.metric;
        out << "# HELP " << name << " " << escapeHelp(entry.help)
            << "\n";
        out << "# TYPE " << name << " histogram\n";
        // Cumulative buckets; the underflow region folds into the
        // first bucket's tally, per Prometheus le-semantics.
        std::uint64_t cumulative = h.underflow();
        for (std::size_t i = 0; i < h.buckets(); ++i) {
            cumulative += h.bucketHits(i);
            // Only boundaries that carry mass keep the text compact.
            if (h.bucketHits(i) == 0 && i + 1 != h.buckets())
                continue;
            out << name << "_bucket{le=\""
                << escapeLabelValue(formatNumber(h.bucketUpper(i)))
                << "\"} " << cumulative << "\n";
        }
        out << name << "_bucket{le=\"+Inf\"} " << h.count() << "\n";
        out << name << "_sum " << formatNumber(h.sum()) << "\n";
        out << name << "_count " << h.count() << "\n";
    }
    return out.str();
}

std::string
MetricsRegistry::jsonSnapshot() const
{
    std::ostringstream out;
    out << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, entry] : counters) {
        out << (first ? "" : ",") << "\"" << name
            << "\":" << entry.metric.value();
        first = false;
    }
    out << "},\"gauges\":{";
    first = true;
    for (const auto &[name, entry] : gauges) {
        out << (first ? "" : ",") << "\"" << jsonEscape(name)
            << "\":" << formatNumber(entry.metric.value());
        first = false;
    }
    out << "},\"histograms\":{";
    first = true;
    for (const auto &[name, entry] : histograms) {
        const Histogram &h = entry.metric;
        out << (first ? "" : ",") << "\"" << name << "\":{\"count\":"
            << h.count() << ",\"sum\":" << formatNumber(h.sum())
            << ",\"min\":" << formatNumber(h.minSeen())
            << ",\"max\":" << formatNumber(h.maxSeen())
            << ",\"p50\":"
            << formatNumber(h.percentileInterpolated(50.0))
            << ",\"p90\":"
            << formatNumber(h.percentileInterpolated(90.0))
            << ",\"p95\":"
            << formatNumber(h.percentileInterpolated(95.0))
            << ",\"p99\":"
            << formatNumber(h.percentileInterpolated(99.0))
            << ",\"underflow\":" << h.underflow()
            << ",\"overflow\":" << h.overflow() << "}";
        first = false;
    }
    out << "}}";
    return out.str();
}

} // namespace cloudseer::obs
