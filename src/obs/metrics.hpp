/**
 * @file
 * seer-scope metric primitives (DESIGN.md §11).
 *
 * A MetricsRegistry owns named counters, gauges, and log-linear
 * histograms and renders them as Prometheus text exposition or a JSON
 * snapshot. The primitives are deliberately minimal: a counter is one
 * uint64, a gauge one double, and a histogram a fixed array of buckets
 * sized at construction — recording on the hot path is an array
 * increment with zero allocation. Monotonic checker/ingest tallies are
 * *sampled* into registry counters at exposition time rather than
 * incremented per message, so an uninstrumented monitor pays nothing.
 *
 * Histogram buckets are log-linear: each power-of-ten decade in
 * [10^min_exp, 10^max_exp) is split into nine linear sub-buckets with
 * boundaries m·10^e for m in 1..9 — constant relative error (~11%)
 * over the full range with a small fixed bucket count, the same
 * trade-off HdrHistogram makes. Values outside the range land in
 * dedicated underflow/overflow tallies instead of silently clamping.
 */

#ifndef CLOUDSEER_OBS_METRICS_HPP
#define CLOUDSEER_OBS_METRICS_HPP

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/binio.hpp"

namespace cloudseer::obs {

/** Monotonic counter. set() exists for sampling an upstream tally. */
class Counter
{
  public:
    void inc(std::uint64_t by = 1) { total += by; }

    /** Sample from an upstream monotonic source (never decreases). */
    void
    set(std::uint64_t value)
    {
        if (value > total)
            total = value;
    }

    std::uint64_t value() const { return total; }

  private:
    std::uint64_t total = 0;
};

/** Point-in-time value. */
class Gauge
{
  public:
    void set(double value) { current = value; }
    double value() const { return current; }

  private:
    double current = 0.0;
};

/** Fixed-size log-linear histogram (no allocation after construction). */
class Histogram
{
  public:
    /**
     * Buckets cover [10^min_exp, 10^max_exp) with nine linear
     * sub-buckets per decade; values outside are tallied as
     * underflow/overflow (still contributing to count/sum/min/max).
     */
    Histogram(int min_exp, int max_exp);

    /** Record one sample. O(log buckets), allocation-free. */
    void record(double value);

    std::uint64_t count() const { return samples; }
    double sum() const { return total; }
    double minSeen() const { return samples == 0 ? 0.0 : minValue; }
    double maxSeen() const { return samples == 0 ? 0.0 : maxValue; }
    double mean() const;

    /**
     * Percentile estimate by nearest rank over buckets: the answer is
     * the upper bound of the bucket holding the rank (clamped to the
     * exact min/max), so the estimate never under-reports a latency.
     */
    double percentile(double p) const;

    /**
     * Percentile estimate with linear interpolation inside the
     * bucket holding the rank (clamped to the exact min/max). Tighter
     * than percentile() — use for dashboards and JSON exposition;
     * percentile() remains the conservative never-under-report bound.
     */
    double percentileInterpolated(double p) const;

    // Bucket introspection (exposition and tests).
    std::size_t buckets() const { return hits.size(); }
    double bucketLower(std::size_t i) const { return bounds[i]; }
    double bucketUpper(std::size_t i) const { return bounds[i + 1]; }
    std::uint64_t bucketHits(std::size_t i) const { return hits[i]; }
    std::uint64_t underflow() const { return underflowCount; }
    std::uint64_t overflow() const { return overflowCount; }

    /**
     * Serialise the tallies (seer-vault, DESIGN.md §13). Bucket
     * boundaries are construction parameters, not state: restore
     * requires a histogram built with the same exponent range and
     * fails on a bucket-count mismatch.
     */
    void saveState(common::BinWriter &out) const;

    /** Replace this histogram's tallies with saved ones. */
    bool restoreState(common::BinReader &in);

  private:
    std::vector<double> bounds;       // buckets()+1 boundaries
    std::vector<std::uint64_t> hits;  // per-bucket tallies
    std::uint64_t underflowCount = 0;
    std::uint64_t overflowCount = 0;
    std::uint64_t samples = 0;
    double total = 0.0;
    double minValue = 0.0;
    double maxValue = 0.0;
};

/**
 * Named metric registry with Prometheus-text and JSON exposition.
 * References returned by counter()/gauge()/histogram() stay valid for
 * the registry's lifetime (node-based storage); looking a name up
 * twice yields the same instrument.
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name, const std::string &help);
    Gauge &gauge(const std::string &name, const std::string &help);
    Histogram &histogram(const std::string &name,
                         const std::string &help, int min_exp,
                         int max_exp);

    /**
     * A gauge carrying constant labels (seer_build_info-style info
     * metrics). Label values are escaped per the exposition spec at
     * registration; the same (name, labels) pair always yields the
     * same instrument.
     */
    Gauge &labeledGauge(
        const std::string &name,
        const std::vector<std::pair<std::string, std::string>> &labels,
        const std::string &help);

    /** Prometheus text exposition format (sorted by metric name). */
    std::string prometheusText() const;

    /** One-line JSON snapshot of every instrument. */
    std::string jsonSnapshot() const;

    std::size_t size() const;

  private:
    template <typename T> struct Named
    {
        T metric;
        std::string help;
    };

    std::map<std::string, Named<Counter>> counters;
    std::map<std::string, Named<Gauge>> gauges;
    std::map<std::string, Named<Histogram>> histograms;
};

} // namespace cloudseer::obs

#endif // CLOUDSEER_OBS_METRICS_HPP
