#include "obs/trace.hpp"

#include <algorithm>

namespace cloudseer::obs {

const char *
spanEndName(SpanEnd end)
{
    switch (end) {
      case SpanEnd::Accepted:
        return "accepted";
      case SpanEnd::Diverged:
        return "diverged";
      case SpanEnd::TimedOut:
        return "timed-out";
      case SpanEnd::Shed:
        return "shed";
      case SpanEnd::Pruned:
        return "pruned";
      case SpanEnd::EndOfStream:
        return "end-of-stream";
    }
    return "unknown";
}

const char *
consumeAnnotationName(ConsumeAnnotation kind)
{
    switch (kind) {
      case ConsumeAnnotation::Decisive:
        return "decisive";
      case ConsumeAnnotation::Ambiguous:
        return "ambiguous";
      case ConsumeAnnotation::RecoveryNewSequence:
        return "recovery-b-new-sequence";
      case ConsumeAnnotation::RecoveryOtherSet:
        return "recovery-c-other-set";
      case ConsumeAnnotation::RecoveryFalseDependency:
        return "recovery-d-false-dependency";
    }
    return "unknown";
}

ExecutionTracer::ExecutionTracer(std::size_t max_spans)
    : maxSpans(std::max<std::size_t>(max_spans, 1))
{
}

void
ExecutionTracer::attachHistograms(Histogram *duration_seconds,
                                  Histogram *messages_per_span)
{
    durationHistogram = duration_seconds;
    messagesHistogram = messages_per_span;
}

void
ExecutionTracer::beginSpan(std::uint64_t group, double time)
{
    ExecutionSpan span;
    span.group = group;
    span.start = time;
    span.end = time;
    open.insert_or_assign(group, std::move(span));
}

void
ExecutionTracer::annotate(std::uint64_t group, double time,
                          ConsumeAnnotation kind)
{
    auto it = open.find(group);
    if (it == open.end())
        return;
    it->second.events.push_back({time, kind});
    it->second.end = std::max(it->second.end, time);
}

void
ExecutionTracer::addTransitions(std::uint64_t group,
                                std::vector<SpanTransition> transitions)
{
    auto it = open.find(group);
    if (it == open.end())
        return;
    std::vector<SpanTransition> &dest = it->second.transitions;
    if (dest.empty()) {
        dest = std::move(transitions);
    } else {
        dest.insert(dest.end(),
                    std::make_move_iterator(transitions.begin()),
                    std::make_move_iterator(transitions.end()));
    }
}

void
ExecutionTracer::endSpan(std::uint64_t group, double time,
                         SpanEnd reason, const std::string &task,
                         std::uint64_t messages)
{
    auto it = open.find(group);
    if (it == open.end())
        return;
    ExecutionSpan span = std::move(it->second);
    open.erase(it);
    span.open = false;
    span.end = std::max(span.start, time);
    span.endReason = reason;
    span.task = task;
    span.messages = messages;
    if (durationHistogram != nullptr)
        durationHistogram->record(span.end - span.start);
    if (messagesHistogram != nullptr)
        messagesHistogram->record(static_cast<double>(messages));
    closed.push_back(std::move(span));
    while (closed.size() > maxSpans) {
        closed.pop_front();
        ++dropped;
    }
}

namespace {

/** Message-clock seconds -> integral trace microseconds. */
long long
traceMicros(double seconds)
{
    return static_cast<long long>(seconds * 1e6 + 0.5);
}

} // namespace

void
ExecutionTracer::appendSpanJson(std::string &out,
                                const ExecutionSpan &span, bool &first)
{
    auto comma = [&out, &first] {
        if (!first)
            out += ",\n";
        first = false;
    };

    std::string name =
        span.task.empty() ? "group-" + std::to_string(span.group)
                          : span.task;
    comma();
    out += "{\"name\":\"" + name +
           "\",\"cat\":\"execution\",\"ph\":\"X\",\"ts\":" +
           std::to_string(traceMicros(span.start)) +
           ",\"dur\":" +
           std::to_string(traceMicros(span.end) -
                          traceMicros(span.start)) +
           ",\"pid\":1,\"tid\":" + std::to_string(span.group) +
           ",\"args\":{\"group\":" + std::to_string(span.group) +
           ",\"end\":\"" +
           (span.open ? "open" : spanEndName(span.endReason)) +
           "\",\"messages\":" + std::to_string(span.messages) + "}}";
    for (const SpanEvent &event : span.events) {
        comma();
        out += "{\"name\":\"";
        out += consumeAnnotationName(event.kind);
        out += "\",\"cat\":\"consume\",\"ph\":\"i\",\"ts\":" +
               std::to_string(traceMicros(event.time)) +
               ",\"pid\":1,\"tid\":" + std::to_string(span.group) +
               ",\"s\":\"t\"}";
    }
    // Transition slices nest under the span in Perfetto because they
    // share its tid and fall inside its [start, end] window.
    for (const SpanTransition &transition : span.transitions) {
        comma();
        out += "{\"name\":\"" + transition.name +
               "\",\"cat\":\"transition\",\"ph\":\"X\",\"ts\":" +
               std::to_string(traceMicros(transition.start)) +
               ",\"dur\":" +
               std::to_string(
                   traceMicros(transition.start + transition.dur) -
                   traceMicros(transition.start)) +
               ",\"pid\":1,\"tid\":" + std::to_string(span.group) +
               ",\"args\":{\"overBudget\":" +
               (transition.overBudget ? "true" : "false") + "}}";
    }
}

std::string
ExecutionTracer::chromeTraceJson() const
{
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    bool first = true;
    for (const ExecutionSpan &span : closed)
        appendSpanJson(out, span, first);
    // Open spans export too (a live monitor can snapshot mid-run);
    // sorted by group id for deterministic output.
    std::vector<const ExecutionSpan *> live;
    live.reserve(open.size());
    for (const auto &[gid, span] : open)
        live.push_back(&span);
    std::sort(live.begin(), live.end(),
              [](const ExecutionSpan *a, const ExecutionSpan *b) {
                  return a->group < b->group;
              });
    for (const ExecutionSpan *span : live)
        appendSpanJson(out, *span, first);
    out += "\n]}\n";
    return out;
}

} // namespace cloudseer::obs
