#pragma once

/**
 * seer-probe: in-process sampling CPU profiler with per-stage cost
 * attribution (DESIGN.md §17).
 *
 * A SIGPROF handler driven by a process-CPU-time timer captures the
 * interrupted thread's stack (common/stackcapture) into a fixed
 * preallocated sample ring, tagging each sample with the pipeline
 * stage the thread was executing — sink → parse → route → check →
 * verdict, per-shard check lanes, and the WAL append — via cheap
 * `StageScope` RAII markers that write one thread-local word. Nothing
 * in the handler allocates, locks, or formats; symbolisation happens
 * at `collect()` time only.
 *
 * The profiler is a null object when disabled: the monitor constructs
 * nothing, no signal handler or timer is installed, and the stage
 * markers degrade to two TLS stores per scope, so reports and
 * event-stream digests are bit-identical with profiling on or off
 * (pinned by tests/profiler_test and the `bench_throughput --profile`
 * digest gate).
 *
 * Optional allocation attribution (per-stage byte/count tallies via
 * global operator-new hooks) is compiled out by default; configure
 * with -DCLOUDSEER_PROFILE_ALLOC=ON to enable it.
 */

#include "common/stackcapture.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <signal.h>

namespace cloudseer::obs {

/** Pipeline stages a sample can be attributed to — aligned with the
 *  seer-pulse stage lanes (DESIGN.md §16). */
enum class ProfStage : std::uint8_t {
    None = 0,   ///< untagged: outside any marked pipeline section
    Sink,       ///< ingest arrival (decode, flight capture, buffering)
    Parse,      ///< template match + identifier extraction/interning
    Route,      ///< clock guard, dedup, routing-index selection
    Check,      ///< Algorithm 2 step (serial engine)
    Verdict,    ///< shedding, report assembly, snapshot publishing
    ShardCheck, ///< sharded worker check lane (shard id in the tag)
    WalAppend,  ///< seer-vault write-ahead ledger append
};

inline constexpr int kProfStageCount = 8;

/** Stable lower-case stage name ("untagged", "sink", ...). */
const char *profStageName(ProfStage stage);

namespace detail {
/** The active stage tag for this thread: stage in the low byte, shard
 *  index in the next. `volatile` because the SIGPROF handler reads it
 *  between any two instructions of the same thread; no atomicity is
 *  needed for a single-thread-written word. */
extern thread_local volatile std::uint32_t tlsStageWord;
} // namespace detail

/**
 * RAII stage marker: two TLS stores per scope (save + set, restore on
 * exit), cheap enough to sit unconditionally on the hot path. Scopes
 * nest; the innermost wins.
 */
class StageScope
{
public:
    explicit StageScope(ProfStage stage, unsigned shard = 0) noexcept
        : saved_(detail::tlsStageWord)
    {
        detail::tlsStageWord =
            static_cast<std::uint32_t>(stage) |
            ((static_cast<std::uint32_t>(shard) & 0xffu) << 8);
    }
    ~StageScope() { detail::tlsStageWord = saved_; }
    StageScope(const StageScope &) = delete;
    StageScope &operator=(const StageScope &) = delete;

private:
    std::uint32_t saved_;
};

/** The calling thread's active stage tag (for scopes that defer to
 *  an enclosing lane, e.g. the serial check inside a shard worker). */
inline ProfStage
currentProfStage() noexcept
{
    return static_cast<ProfStage>(detail::tlsStageWord & 0xffu);
}

/** The shard index of the calling thread's active tag. */
inline unsigned
currentProfShard() noexcept
{
    return (detail::tlsStageWord >> 8) & 0xffu;
}

/** Cache the calling thread's stack bounds for in-handler capture.
 *  Worker threads (shards) call this once at startup; threads that
 *  skip it still sample via the unwinder fallback. */
void prepareThreadForProfiling();

struct ProfilerConfig
{
    bool enabled = false; ///< off by default: nothing is installed
    int hz = 99;          ///< SIGPROF rate (process CPU time)
    std::size_t maxSamples = 16384; ///< ring capacity; overflow drops
};

/** One aggregated stack in a collected profile: root-first symbolised
 *  frames under a stage tag, with its sample count. */
struct ProfileStack
{
    ProfStage stage = ProfStage::None;
    unsigned shard = 0;
    std::uint64_t count = 0;
    std::vector<std::string> frames; ///< root first, leaf last
};

/** A collected, symbolised profile — what `/profilez`, the bench and
 *  `seer_prof` all consume. */
struct Profile
{
    int hz = 0;
    double durationSeconds = 0.0;
    std::uint64_t samples = 0; ///< kept samples (excludes dropped)
    std::uint64_t dropped = 0; ///< ring-overflow drops
    std::array<std::uint64_t, kProfStageCount> stageSamples{};
    std::vector<ProfileStack> stacks; ///< count-desc, deterministic
    bool allocTracked = false;
    std::array<std::uint64_t, kProfStageCount> allocBytes{};
    std::array<std::uint64_t, kProfStageCount> allocCounts{};

    /** Fraction of samples attributed to any tagged stage. */
    double taggedFraction() const;

    /** flamegraph.pl-compatible collapsed stacks: one line per stack,
     *  root-first semicolon-joined frames (stage tag as the root
     *  frame), a space, and the sample count. */
    std::string toFolded() const;

    /** Self-describing JSON ({"kind":"PROFILE", ...}); one stack per
     *  line so line-oriented tools can stream it. */
    std::string toJson() const;
};

/** Parse a profile back from its `toJson()` form. Returns false (and
 *  leaves `out` untouched) when `text` is not a PROFILE document. */
bool parseProfileJson(const std::string &text, Profile &out);

/**
 * The sampling profiler. At most one instance can be running per
 * process (the SIGPROF disposition is process-global); a second
 * `start()` fails cleanly. Construction allocates the sample ring but
 * installs nothing — only `start()` touches signal state, and
 * `stop()`/destruction restores the previous disposition.
 */
class Profiler
{
public:
    explicit Profiler(const ProfilerConfig &config);
    ~Profiler();
    Profiler(const Profiler &) = delete;
    Profiler &operator=(const Profiler &) = delete;

    /** Install the SIGPROF handler and arm the timer. False when
     *  another profiler is already running or the timer fails. */
    bool start();

    /** Disarm the timer and restore the previous SIGPROF disposition.
     *  Safe to call repeatedly. */
    void stop();

    bool running() const { return running_; }
    const ProfilerConfig &config() const { return config_; }

    /** Samples kept so far — one atomic load, no symbolisation, so a
     *  driver can poll it to decide when a run has enough evidence. */
    std::uint64_t
    sampleCount() const
    {
        std::uint64_t claimed =
            writeIndex_.load(std::memory_order_relaxed);
        return claimed < config_.maxSamples ? claimed
                                            : config_.maxSamples;
    }

    /** Symbolise and aggregate everything sampled so far. Callable
     *  while running (a live `/profilez` pull) or after `stop()`. */
    Profile collect() const;

    /** True when operator-new allocation attribution was compiled in
     *  (-DCLOUDSEER_PROFILE_ALLOC=ON). */
    static bool allocTrackingCompiledIn();

    /// @cond internal — handler-side entry point, not user API.
    void recordSample() noexcept;
    /// @endcond

private:
    static constexpr int kMaxFrames = 32;

    struct RawSample
    {
        std::atomic<std::uint32_t> ready{0};
        std::uint32_t stageWord = 0;
        std::uint16_t depth = 0;
        void *frames[kMaxFrames];
    };

    ProfilerConfig config_;
    std::unique_ptr<RawSample[]> ring_;
    std::atomic<std::uint64_t> writeIndex_{0};
    std::atomic<std::uint64_t> dropped_{0};
    common::ProfTimer timer_;
    struct sigaction oldAction_ = {};
    std::chrono::steady_clock::time_point startTime_{};
    double stoppedDuration_ = 0.0;
    bool running_ = false;
};

} // namespace cloudseer::obs
