#include "obs/observability.hpp"

#include <sstream>

namespace cloudseer::obs {

namespace {

std::string
formatNumber(double value)
{
    std::ostringstream out;
    out << value;
    return out.str();
}

} // namespace

std::string
HealthSample::toJson() const
{
    std::ostringstream out;
    out << "{\"kind\":\"HEALTH\",\"time\":" << formatNumber(time)
        << ",\"messages\":" << messages
        << ",\"delivered\":" << recordsDelivered
        << ",\"activeGroups\":" << activeGroups
        << ",\"idsets\":" << activeIdentifierSets
        << ",\"decisive\":" << decisive
        << ",\"ambiguous\":" << ambiguous
        << ",\"recoveries\":{\"a\":" << recoveredPassUnknown
        << ",\"b\":" << recoveredNewSequence
        << ",\"c\":" << recoveredOtherSet
        << ",\"d\":" << recoveredFalseDependency << "}"
        << ",\"unmatched\":" << unmatched
        << ",\"accepted\":" << accepted
        << ",\"errors\":" << errorsReported
        << ",\"timeouts\":" << timeoutsReported
        << ",\"suppressed\":" << timeoutsSuppressed
        << ",\"shed\":" << groupsShed
        << ",\"consumeAttempts\":" << consumeAttempts
        << ",\"decisiveFraction\":" << formatNumber(decisiveFraction)
        << ",\"ingest\":{\"lines\":" << linesSeen
        << ",\"malformed\":" << malformedLines
        << ",\"clamped\":" << nonMonotonicClamped
        << ",\"duplicates\":" << duplicatesSuppressed
        << ",\"forced\":" << forcedReleases
        << ",\"reorderPeak\":" << reorderBufferPeak << "}"
        << ",\"interner\":{\"size\":" << internerSize
        << ",\"hits\":" << internerHits
        << ",\"misses\":" << internerMisses << "}"
        << ",\"timeoutPolicy\":{\"resolutions\":" << timeoutResolutions
        << ",\"fallbacks\":" << timeoutDefaultFallbacks << "}"
        << ",\"feedLatencyUs\":{\"p50\":" << formatNumber(feedP50us)
        << ",\"p90\":" << formatNumber(feedP90us)
        << ",\"p99\":" << formatNumber(feedP99us)
        << ",\"max\":" << formatNumber(feedMaxUs) << "}}";
    return out.str();
}

Observability::Observability(const ObsConfig &config) : cfg(config)
{
    if (cfg.metrics) {
        // Feed latencies span sub-microsecond to seconds: 0.1us..1s.
        feedLatencyHist = &registry.histogram(
            "seer_feed_latency_us",
            "per-record monitor feed latency, microseconds", -1, 6);
    }
    if (cfg.flightRecorder.enabled())
        flightPtr = std::make_unique<FlightRecorder>(cfg.flightRecorder);
    if (cfg.tracing) {
        tracerPtr =
            std::make_unique<ExecutionTracer>(cfg.maxTraceSpans);
        if (cfg.metrics) {
            tracerPtr->attachHistograms(
                &registry.histogram(
                    "seer_span_duration_seconds",
                    "automaton-group lifetime, message-clock seconds",
                    -3, 5),
                &registry.histogram(
                    "seer_span_messages",
                    "messages consumed per automaton group", 0, 5));
        }
    }
}

void
Observability::recordFeedLatency(double micros)
{
    if (feedLatencyHist != nullptr)
        feedLatencyHist->record(micros);
}

bool
Observability::snapshotDue(double message_time) const
{
    if (cfg.snapshotIntervalSeconds <= 0.0)
        return false;
    return !anySnapshot || message_time - lastSnapshotTime >=
                               cfg.snapshotIntervalSeconds;
}

void
Observability::addSnapshot(const HealthSample &sample)
{
    lastSnapshotTime = sample.time;
    anySnapshot = true;
    updateRegistry(sample);
    history.push_back(sample);
    if (history.size() > cfg.maxSnapshots)
        history.erase(history.begin(),
                      history.begin() +
                          static_cast<std::ptrdiff_t>(
                              history.size() - cfg.maxSnapshots));
}

void
Observability::updateRegistry(const HealthSample &s)
{
    auto c = [this](const char *name, const char *help,
                    std::uint64_t value) {
        registry.counter(name, help).set(value);
    };
    auto g = [this](const char *name, const char *help, double value) {
        registry.gauge(name, help).set(value);
    };

    c("seer_messages_total", "messages the checker processed",
      s.messages);
    c("seer_decisive_total", "Algorithm 2 case-1 consumptions",
      s.decisive);
    c("seer_ambiguous_total", "Algorithm 2 case-2 forks", s.ambiguous);
    c("seer_recovery_pass_unknown_total",
      "recovery (a): unknown-template pass-throughs",
      s.recoveredPassUnknown);
    c("seer_recovery_new_sequence_total",
      "recovery (b): new-sequence starts", s.recoveredNewSequence);
    c("seer_recovery_other_set_total",
      "recovery (c): re-routed to another identifier set",
      s.recoveredOtherSet);
    c("seer_recovery_false_dependency_total",
      "recovery (d): false-dependency repairs",
      s.recoveredFalseDependency);
    c("seer_unmatched_total", "messages no recovery could place",
      s.unmatched);
    c("seer_accepted_total", "sequences accepted", s.accepted);
    c("seer_errors_reported_total", "error-criterion reports",
      s.errorsReported);
    c("seer_timeouts_reported_total", "timeout-criterion reports",
      s.timeoutsReported);
    c("seer_timeouts_suppressed_total",
      "timeouts pruned by lineage coverage", s.timeoutsSuppressed);
    c("seer_groups_shed_total", "groups evicted under cap pressure",
      s.groupsShed);
    c("seer_consume_attempts_total", "group consumption probes",
      s.consumeAttempts);

    c("seer_ingest_lines_total", "raw lines offered to feedLine",
      s.linesSeen);
    c("seer_ingest_records_delivered_total",
      "records that reached the checker", s.recordsDelivered);
    c("seer_ingest_malformed_total", "quarantined malformed lines",
      s.malformedLines);
    c("seer_ingest_clamped_total",
      "non-monotonic timestamps seen by the guard",
      s.nonMonotonicClamped);
    c("seer_ingest_duplicates_suppressed_total",
      "near-duplicate deliveries suppressed", s.duplicatesSuppressed);
    c("seer_ingest_forced_releases_total",
      "reorder-buffer overflow force-outs", s.forcedReleases);
    c("seer_timeout_resolutions_total",
      "per-group timeout resolutions", s.timeoutResolutions);
    c("seer_timeout_default_fallbacks_total",
      "timeout resolutions that fell back to the default",
      s.timeoutDefaultFallbacks);

    g("seer_active_groups", "automaton groups currently in flight",
      static_cast<double>(s.activeGroups));
    g("seer_active_identifier_sets",
      "identifier sets currently tracked",
      static_cast<double>(s.activeIdentifierSets));
    g("seer_reorder_buffer_peak", "largest reorder-buffer depth seen",
      static_cast<double>(s.reorderBufferPeak));
    g("seer_interner_size", "identifiers interned process-wide",
      static_cast<double>(s.internerSize));
    double lookups =
        static_cast<double>(s.internerHits + s.internerMisses);
    g("seer_interner_hit_rate",
      "fraction of intern lookups served from the table",
      lookups > 0.0 ? static_cast<double>(s.internerHits) / lookups
                    : 0.0);
    g("seer_decisive_fraction",
      "fraction of routed messages resolved decisively",
      s.decisiveFraction);
    if (tracerPtr != nullptr) {
        c("seer_trace_spans_dropped_total",
          "closed spans dropped past the retention cap",
          tracerPtr->droppedSpans());
        g("seer_trace_open_spans", "spans currently open",
          static_cast<double>(tracerPtr->openSpans()));
    }
}

std::string
Observability::prometheusText(const HealthSample &current)
{
    if (!cfg.metrics)
        return "";
    updateRegistry(current);
    return registry.prometheusText();
}

std::string
Observability::snapshotJsonLines() const
{
    std::string out;
    for (const HealthSample &sample : history) {
        out += sample.toJson();
        out += "\n";
    }
    return out;
}

} // namespace cloudseer::obs
