#include "obs/observability.hpp"

#include <sstream>

namespace cloudseer::obs {

namespace {

std::string
formatNumber(double value)
{
    std::ostringstream out;
    out << value;
    return out.str();
}

} // namespace

std::string
HealthSample::toJson() const
{
    std::ostringstream out;
    out << "{\"kind\":\"HEALTH\",\"time\":" << formatNumber(time)
        << ",\"messages\":" << messages
        << ",\"delivered\":" << recordsDelivered
        << ",\"activeGroups\":" << activeGroups
        << ",\"idsets\":" << activeIdentifierSets
        << ",\"decisive\":" << decisive
        << ",\"ambiguous\":" << ambiguous
        << ",\"recoveries\":{\"a\":" << recoveredPassUnknown
        << ",\"b\":" << recoveredNewSequence
        << ",\"c\":" << recoveredOtherSet
        << ",\"d\":" << recoveredFalseDependency << "}"
        << ",\"unmatched\":" << unmatched
        << ",\"accepted\":" << accepted
        << ",\"errors\":" << errorsReported
        << ",\"timeouts\":" << timeoutsReported
        << ",\"suppressed\":" << timeoutsSuppressed
        << ",\"shed\":" << groupsShed
        << ",\"consumeAttempts\":" << consumeAttempts
        << ",\"decisiveFraction\":" << formatNumber(decisiveFraction)
        << ",\"ingest\":{\"lines\":" << linesSeen
        << ",\"malformed\":" << malformedLines
        << ",\"clamped\":" << nonMonotonicClamped
        << ",\"duplicates\":" << duplicatesSuppressed
        << ",\"forced\":" << forcedReleases
        << ",\"reorderPeak\":" << reorderBufferPeak << "}"
        << ",\"memory\":{\"evictions\":" << memoryEvictions
        << ",\"internerCapRejected\":" << internerCapRejected << "}"
        << ",\"interner\":{\"size\":" << internerSize
        << ",\"hits\":" << internerHits
        << ",\"misses\":" << internerMisses << "}"
        << ",\"timeoutPolicy\":{\"resolutions\":" << timeoutResolutions
        << ",\"fallbacks\":" << timeoutDefaultFallbacks << "}"
        << ",\"feedLatencyUs\":{\"p50\":" << formatNumber(feedP50us)
        << ",\"p90\":" << formatNumber(feedP90us)
        << ",\"p99\":" << formatNumber(feedP99us)
        << ",\"max\":" << formatNumber(feedMaxUs) << "}"
        << ",\"walAppendUs\":{\"p50\":" << formatNumber(walAppendP50us)
        << ",\"p99\":" << formatNumber(walAppendP99us) << "}";
    if (!shardLanes.empty()) {
        out << ",\"shards\":{\"count\":" << shardLanes.size()
            << ",\"reconciles\":" << shardReconcilerHits
            << ",\"crossUnions\":" << shardCrossUnions
            << ",\"globalFallbacks\":" << shardGlobalFallbacks
            << ",\"quiesces\":" << shardQuiesces
            << ",\"imbalance\":" << formatNumber(shardImbalance)
            << ",\"lanes\":[";
        for (std::size_t i = 0; i < shardLanes.size(); ++i) {
            const ShardLane &lane = shardLanes[i];
            out << (i == 0 ? "" : ",") << "{\"routed\":" << lane.routed
                << ",\"inPeak\":" << lane.inputPeak
                << ",\"outPeak\":" << lane.outputPeak
                << ",\"groups\":" << lane.activeGroups
                << ",\"checkP50us\":" << formatNumber(lane.checkP50us)
                << ",\"checkP99us\":" << formatNumber(lane.checkP99us)
                << "}";
        }
        out << "]}";
    }
    out << "}";
    return out.str();
}

void
HealthSample::saveState(common::BinWriter &out) const
{
    out.writeF64(time);
    out.writeU64(messages);
    out.writeU64(decisive);
    out.writeU64(ambiguous);
    out.writeU64(recoveredPassUnknown);
    out.writeU64(recoveredNewSequence);
    out.writeU64(recoveredOtherSet);
    out.writeU64(recoveredFalseDependency);
    out.writeU64(unmatched);
    out.writeU64(accepted);
    out.writeU64(errorsReported);
    out.writeU64(timeoutsReported);
    out.writeU64(timeoutsSuppressed);
    out.writeU64(groupsShed);
    out.writeU64(consumeAttempts);
    out.writeF64(decisiveFraction);
    out.writeU64(activeGroups);
    out.writeU64(activeIdentifierSets);
    out.writeU64(linesSeen);
    out.writeU64(recordsDelivered);
    out.writeU64(malformedLines);
    out.writeU64(nonMonotonicClamped);
    out.writeU64(duplicatesSuppressed);
    out.writeU64(forcedReleases);
    out.writeU64(reorderBufferPeak);
    out.writeU64(memoryEvictions);
    out.writeU64(internerCapRejected);
    out.writeU64(internerSize);
    out.writeU64(internerHits);
    out.writeU64(internerMisses);
    out.writeU64(timeoutResolutions);
    out.writeU64(timeoutDefaultFallbacks);
    out.writeF64(feedP50us);
    out.writeF64(feedP90us);
    out.writeF64(feedP99us);
    out.writeF64(feedMaxUs);
    out.writeF64(walAppendP50us);
    out.writeF64(walAppendP99us);
    out.writeU64(shardLanes.size());
    for (const ShardLane &lane : shardLanes) {
        out.writeU64(lane.routed);
        out.writeU64(lane.inputPeak);
        out.writeU64(lane.outputPeak);
        out.writeU64(lane.activeGroups);
        out.writeF64(lane.checkP50us);
        out.writeF64(lane.checkP99us);
    }
    out.writeU64(shardReconcilerHits);
    out.writeU64(shardCrossUnions);
    out.writeU64(shardGlobalFallbacks);
    out.writeU64(shardQuiesces);
    out.writeF64(shardImbalance);
}

bool
HealthSample::restoreState(common::BinReader &in)
{
    time = in.readF64();
    messages = in.readU64();
    decisive = in.readU64();
    ambiguous = in.readU64();
    recoveredPassUnknown = in.readU64();
    recoveredNewSequence = in.readU64();
    recoveredOtherSet = in.readU64();
    recoveredFalseDependency = in.readU64();
    unmatched = in.readU64();
    accepted = in.readU64();
    errorsReported = in.readU64();
    timeoutsReported = in.readU64();
    timeoutsSuppressed = in.readU64();
    groupsShed = in.readU64();
    consumeAttempts = in.readU64();
    decisiveFraction = in.readF64();
    activeGroups = in.readU64();
    activeIdentifierSets = in.readU64();
    linesSeen = in.readU64();
    recordsDelivered = in.readU64();
    malformedLines = in.readU64();
    nonMonotonicClamped = in.readU64();
    duplicatesSuppressed = in.readU64();
    forcedReleases = in.readU64();
    reorderBufferPeak = in.readU64();
    memoryEvictions = in.readU64();
    internerCapRejected = in.readU64();
    internerSize = in.readU64();
    internerHits = in.readU64();
    internerMisses = in.readU64();
    timeoutResolutions = in.readU64();
    timeoutDefaultFallbacks = in.readU64();
    feedP50us = in.readF64();
    feedP90us = in.readF64();
    feedP99us = in.readF64();
    feedMaxUs = in.readF64();
    walAppendP50us = in.readF64();
    walAppendP99us = in.readF64();
    std::uint64_t lane_count = in.readU64();
    if (!in.ok())
        return false;
    shardLanes.clear();
    for (std::uint64_t i = 0; i < lane_count; ++i) {
        ShardLane lane;
        lane.routed = in.readU64();
        lane.inputPeak = in.readU64();
        lane.outputPeak = in.readU64();
        lane.activeGroups = in.readU64();
        lane.checkP50us = in.readF64();
        lane.checkP99us = in.readF64();
        if (!in.ok())
            return false;
        shardLanes.push_back(lane);
    }
    shardReconcilerHits = in.readU64();
    shardCrossUnions = in.readU64();
    shardGlobalFallbacks = in.readU64();
    shardQuiesces = in.readU64();
    shardImbalance = in.readF64();
    return in.ok();
}

Observability::Observability(const ObsConfig &config)
    : cfg(config), startedAt(std::chrono::steady_clock::now())
{
    if (cfg.metrics) {
        // Feed latencies span sub-microsecond to seconds: 0.1us..1s.
        feedLatencyHist = &registry.histogram(
            "seer_feed_latency_us",
            "per-record monitor feed latency, microseconds", -1, 6);
    }
    if (cfg.flightRecorder.enabled())
        flightPtr = std::make_unique<FlightRecorder>(cfg.flightRecorder);
    if (cfg.tracing) {
        tracerPtr =
            std::make_unique<ExecutionTracer>(cfg.maxTraceSpans);
        if (cfg.metrics) {
            tracerPtr->attachHistograms(
                &registry.histogram(
                    "seer_span_duration_seconds",
                    "automaton-group lifetime, message-clock seconds",
                    -3, 5),
                &registry.histogram(
                    "seer_span_messages",
                    "messages consumed per automaton group", 0, 5));
        }
    }
}

void
Observability::recordFeedLatency(double micros)
{
    if (feedLatencyHist != nullptr)
        feedLatencyHist->record(micros);
}

Histogram *
Observability::walAppendLatency()
{
    if (!cfg.metrics)
        return nullptr;
    if (walHist == nullptr) {
        // Group-committed appends span sub-microsecond (coalesced)
        // to milliseconds (fsync'd): 0.1us..1s.
        walHist = &registry.histogram(
            "seer_wal_append_us",
            "vault ledger append latency, microseconds", -1, 6);
    }
    return walHist;
}

void
Observability::setBuildInfo(const std::string &build_version,
                            const std::string &model_fingerprint,
                            std::size_t shard_count)
{
    version = build_version;
    fingerprint = model_fingerprint;
    shards = shard_count;
}

double
Observability::uptimeSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - startedAt)
        .count();
}

bool
Observability::snapshotDue(double message_time) const
{
    if (cfg.snapshotIntervalSeconds <= 0.0)
        return false;
    return !anySnapshot || message_time - lastSnapshotTime >=
                               cfg.snapshotIntervalSeconds;
}

void
Observability::addSnapshot(const HealthSample &sample)
{
    lastSnapshotTime = sample.time;
    anySnapshot = true;
    updateRegistry(sample);
    history.push_back(sample);
    if (history.size() > cfg.maxSnapshots)
        history.erase(history.begin(),
                      history.begin() +
                          static_cast<std::ptrdiff_t>(
                              history.size() - cfg.maxSnapshots));
}

void
Observability::updateRegistry(const HealthSample &s)
{
    auto c = [this](const char *name, const char *help,
                    std::uint64_t value) {
        registry.counter(name, help).set(value);
    };
    auto g = [this](const char *name, const char *help, double value) {
        registry.gauge(name, help).set(value);
    };

    c("seer_messages_total", "messages the checker processed",
      s.messages);
    c("seer_decisive_total", "Algorithm 2 case-1 consumptions",
      s.decisive);
    c("seer_ambiguous_total", "Algorithm 2 case-2 forks", s.ambiguous);
    c("seer_recovery_pass_unknown_total",
      "recovery (a): unknown-template pass-throughs",
      s.recoveredPassUnknown);
    c("seer_recovery_new_sequence_total",
      "recovery (b): new-sequence starts", s.recoveredNewSequence);
    c("seer_recovery_other_set_total",
      "recovery (c): re-routed to another identifier set",
      s.recoveredOtherSet);
    c("seer_recovery_false_dependency_total",
      "recovery (d): false-dependency repairs",
      s.recoveredFalseDependency);
    c("seer_unmatched_total", "messages no recovery could place",
      s.unmatched);
    c("seer_accepted_total", "sequences accepted", s.accepted);
    c("seer_errors_reported_total", "error-criterion reports",
      s.errorsReported);
    c("seer_timeouts_reported_total", "timeout-criterion reports",
      s.timeoutsReported);
    c("seer_timeouts_suppressed_total",
      "timeouts pruned by lineage coverage", s.timeoutsSuppressed);
    c("seer_groups_shed_total", "groups evicted under cap pressure",
      s.groupsShed);
    c("seer_consume_attempts_total", "group consumption probes",
      s.consumeAttempts);

    c("seer_ingest_lines_total", "raw lines offered to feedLine",
      s.linesSeen);
    c("seer_ingest_records_delivered_total",
      "records that reached the checker", s.recordsDelivered);
    c("seer_ingest_malformed_total", "quarantined malformed lines",
      s.malformedLines);
    c("seer_ingest_clamped_total",
      "non-monotonic timestamps seen by the guard",
      s.nonMonotonicClamped);
    c("seer_ingest_duplicates_suppressed_total",
      "near-duplicate deliveries suppressed", s.duplicatesSuppressed);
    c("seer_ingest_forced_releases_total",
      "reorder-buffer overflow force-outs", s.forcedReleases);
    c("seer_memory_evictions_total",
      "groups evicted by the memory ceiling", s.memoryEvictions);
    c("seer_interner_cap_rejected_total",
      "identifiers refused at the interner capacity",
      s.internerCapRejected);
    c("seer_timeout_resolutions_total",
      "per-group timeout resolutions", s.timeoutResolutions);
    c("seer_timeout_default_fallbacks_total",
      "timeout resolutions that fell back to the default",
      s.timeoutDefaultFallbacks);

    g("seer_active_groups", "automaton groups currently in flight",
      static_cast<double>(s.activeGroups));
    g("seer_active_identifier_sets",
      "identifier sets currently tracked",
      static_cast<double>(s.activeIdentifierSets));
    g("seer_reorder_buffer_peak", "largest reorder-buffer depth seen",
      static_cast<double>(s.reorderBufferPeak));
    g("seer_interner_size", "identifiers interned process-wide",
      static_cast<double>(s.internerSize));
    double lookups =
        static_cast<double>(s.internerHits + s.internerMisses);
    g("seer_interner_hit_rate",
      "fraction of intern lookups served from the table",
      lookups > 0.0 ? static_cast<double>(s.internerHits) / lookups
                    : 0.0);
    g("seer_decisive_fraction",
      "fraction of routed messages resolved decisively",
      s.decisiveFraction);
    if (tracerPtr != nullptr) {
        c("seer_trace_spans_dropped_total",
          "closed spans dropped past the retention cap",
          tracerPtr->droppedSpans());
        g("seer_trace_open_spans", "spans currently open",
          static_cast<double>(tracerPtr->openSpans()));
    }

    // Build identity (seer-pulse: scrapes are self-describing).
    if (!version.empty() || !fingerprint.empty()) {
        registry
            .labeledGauge("seer_build_info",
                          {{"model_fingerprint", fingerprint},
                           {"version", version}},
                          "build identity; value is always 1")
            .set(1.0);
        g("seer_shard_count", "checker shards (0 = serial engine)",
          static_cast<double>(shards));
        g("seer_uptime_seconds",
          "wall-clock seconds since the monitor came up",
          uptimeSeconds());
    }
}

std::string
Observability::prometheusText(const HealthSample &current)
{
    if (!cfg.metrics)
        return "";
    updateRegistry(current);
    return registry.prometheusText();
}

std::string
Observability::snapshotJsonLines() const
{
    std::string out;
    for (const HealthSample &sample : history) {
        out += sample.toJson();
        out += "\n";
    }
    return out;
}

void
Observability::saveState(common::BinWriter &out) const
{
    out.writeBool(feedLatencyHist != nullptr);
    if (feedLatencyHist != nullptr)
        feedLatencyHist->saveState(out);
    out.writeBool(walHist != nullptr);
    if (walHist != nullptr)
        walHist->saveState(out);
    out.writeU64(history.size());
    for (const HealthSample &sample : history)
        sample.saveState(out);
    out.writeF64(lastSnapshotTime);
    out.writeBool(anySnapshot);
}

bool
Observability::restoreState(common::BinReader &in)
{
    bool has_hist = in.readBool();
    if (!in.ok() || has_hist != (feedLatencyHist != nullptr)) {
        in.fail();
        return false;
    }
    if (has_hist && !feedLatencyHist->restoreState(in))
        return false;
    bool has_wal = in.readBool();
    if (!in.ok())
        return false;
    if (has_wal) {
        // Created on demand: a restoring vaulted monitor may not
        // have touched the ledger yet, so materialise it here.
        Histogram *wal = walAppendLatency();
        if (wal == nullptr || !wal->restoreState(in)) {
            in.fail();
            return false;
        }
    }
    std::uint64_t sample_count = in.readU64();
    if (!in.ok())
        return false;
    history.clear();
    history.reserve(static_cast<std::size_t>(sample_count));
    for (std::uint64_t i = 0; i < sample_count; ++i) {
        HealthSample sample;
        if (!sample.restoreState(in))
            return false;
        history.push_back(sample);
    }
    lastSnapshotTime = in.readF64();
    anySnapshot = in.readBool();
    if (!in.ok())
        return false;
    if (!history.empty())
        updateRegistry(history.back());
    return true;
}

} // namespace cloudseer::obs
