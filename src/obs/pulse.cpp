#include "obs/pulse.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/error.hpp"

namespace cloudseer::obs {

namespace {

std::string
formatNumber(double value)
{
    std::ostringstream out;
    out << value;
    return out.str();
}

constexpr std::array<const char *, kPulseSignalCount> kSignalNames = {
    "template_miss_rate",  "divergence_recovery_rate",
    "shed_rate",           "backpressure_rate",
    "error_rate",          "timeout_rate",
    "wal_append_p99_us",   "feed_p99_us",
};

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

} // namespace

const char *
pulseSignalName(PulseSignal signal)
{
    return kSignalNames[static_cast<std::size_t>(signal)];
}

bool
parsePulseSignal(const std::string &name, PulseSignal &signal)
{
    for (std::size_t i = 0; i < kSignalNames.size(); ++i) {
        if (name == kSignalNames[i]) {
            signal = static_cast<PulseSignal>(i);
            return true;
        }
    }
    return false;
}

bool
pulseSignalIsWallClock(PulseSignal signal)
{
    return signal == PulseSignal::WalAppendP99Us ||
           signal == PulseSignal::FeedP99Us;
}

std::string
PulseRates::toJson() const
{
    std::ostringstream out;
    out << "{\"time\":" << formatNumber(time)
        << ",\"window\":" << formatNumber(windowSeconds)
        << ",\"samples\":" << samplesInWindow << ",\"signals\":{";
    for (std::size_t i = 0; i < kPulseSignalCount; ++i) {
        out << (i == 0 ? "" : ",") << "\"" << kSignalNames[i]
            << "\":{\"value\":" << formatNumber(value[i])
            << ",\"ewma\":" << formatNumber(ewma[i]) << "}";
    }
    out << "}}";
    return out.str();
}

std::vector<AlertRule>
defaultAlertRules()
{
    // Message-clock, engine-invariant signals only: the pack must
    // emit identical records from serial and sharded runs of one
    // stream (wall-clock latency signals are opt-in via rules files).
    auto rule = [](const char *name, PulseSignal signal,
                   double threshold, double pending, double hold) {
        AlertRule r;
        r.name = name;
        r.signal = signal;
        r.threshold = threshold;
        r.pendingSeconds = pending;
        r.holdSeconds = hold;
        r.resolveRatio = 0.5;
        return r;
    };
    return {
        rule("template_miss_burn", PulseSignal::TemplateMissRate,
             0.05, 10.0, 30.0),
        rule("divergence_burn", PulseSignal::DivergenceRecoveryRate,
             0.10, 10.0, 30.0),
        rule("shed_burn", PulseSignal::ShedRate, 0.0, 0.0, 30.0),
        rule("backpressure_burn", PulseSignal::BackpressureRate, 1.0,
             10.0, 30.0),
        rule("error_burn", PulseSignal::ErrorRate, 0.01, 10.0, 30.0),
        rule("timeout_burn", PulseSignal::TimeoutRate, 0.05, 10.0,
             30.0),
    };
}

bool
parseAlertRules(const std::string &text,
                std::vector<AlertRule> &rules, std::string &error)
{
    rules.clear();
    std::istringstream in(text);
    std::string line;
    std::size_t line_no = 0;
    auto fail = [&](const std::string &what) {
        error = "line " + std::to_string(line_no) + ": " + what;
        rules.clear();
        return false;
    };
    while (std::getline(in, line)) {
        ++line_no;
        std::istringstream tokens(line);
        std::string word;
        if (!(tokens >> word) || word[0] == '#')
            continue;
        if (word != "rule")
            return fail("expected 'rule', got '" + word + "'");
        AlertRule rule;
        if (!(tokens >> rule.name))
            return fail("missing rule name");
        bool has_signal = false;
        while (tokens >> word) {
            if (word == "ewma") {
                rule.useEwma = true;
                continue;
            }
            std::size_t eq = word.find('=');
            if (eq == std::string::npos)
                return fail("expected key=value, got '" + word + "'");
            std::string key = word.substr(0, eq);
            std::string value = word.substr(eq + 1);
            if (key == "signal") {
                if (!parsePulseSignal(value, rule.signal))
                    return fail("unknown signal '" + value + "'");
                has_signal = true;
            } else if (key == "threshold") {
                rule.threshold = std::atof(value.c_str());
            } else if (key == "pending") {
                rule.pendingSeconds = std::atof(value.c_str());
            } else if (key == "hold") {
                rule.holdSeconds = std::atof(value.c_str());
            } else if (key == "resolve") {
                rule.resolveRatio = std::atof(value.c_str());
                if (rule.resolveRatio <= 0.0 ||
                    rule.resolveRatio > 1.0)
                    return fail("resolve ratio must be in (0, 1]");
            } else {
                return fail("unknown key '" + key + "'");
            }
        }
        if (!has_signal)
            return fail("rule '" + rule.name + "' needs signal=");
        rules.push_back(std::move(rule));
    }
    if (rules.empty())
        return fail("no rules found");
    return true;
}

const char *
alertStateName(AlertState state)
{
    switch (state) {
    case AlertState::Inactive:
        return "inactive";
    case AlertState::Pending:
        return "pending";
    case AlertState::Firing:
        return "firing";
    }
    return "unknown";
}

std::string
AlertRecord::toJson() const
{
    std::ostringstream out;
    out << "{\"kind\":\"ALERT\",\"time\":" << formatNumber(time)
        << ",\"rule\":\"" << jsonEscape(rule) << "\",\"signal\":\""
        << pulseSignalName(signal) << "\",\"state\":\"" << state
        << "\",\"since\":" << formatNumber(since)
        << ",\"value\":" << formatNumber(value)
        << ",\"threshold\":" << formatNumber(threshold) << "}";
    return out.str();
}

AlertEngine::AlertEngine(std::vector<AlertRule> rule_pack)
    : pack(std::move(rule_pack)), states(pack.size())
{
}

std::vector<AlertRecord>
AlertEngine::evaluate(const PulseRates &rates)
{
    std::vector<AlertRecord> out;
    for (std::size_t i = 0; i < pack.size(); ++i) {
        const AlertRule &rule = pack[i];
        RuleState &st = states[i];
        double value = rule.useEwma ? rates.ewmaOf(rule.signal)
                                    : rates.valueOf(rule.signal);
        st.lastValue = value;
        double now = rates.time;
        bool above = value > rule.threshold;

        auto record = [&](const char *state_name) {
            AlertRecord rec;
            rec.rule = rule.name;
            rec.signal = rule.signal;
            rec.state = state_name;
            rec.time = now;
            rec.since = st.since;
            rec.value = value;
            rec.threshold = rule.threshold;
            out.push_back(std::move(rec));
        };

        switch (st.state) {
        case AlertState::Inactive:
            if (above) {
                st.since = now;
                if (rule.pendingSeconds <= 0.0) {
                    st.state = AlertState::Firing;
                    st.firingSince = now;
                    record("firing");
                } else {
                    st.state = AlertState::Pending;
                    record("pending");
                }
            }
            break;
        case AlertState::Pending:
            if (!above) {
                // Cancelled before firing: silent — it never paged.
                st.state = AlertState::Inactive;
            } else if (now - st.since >= rule.pendingSeconds) {
                st.state = AlertState::Firing;
                st.firingSince = now;
                record("firing");
            }
            break;
        case AlertState::Firing: {
            // Hysteresis (drop below resolveRatio*threshold) AND the
            // min-hold must both pass before the page resolves. A
            // zero-threshold rule has no hysteresis band below it, so
            // it clears once the signal returns to the threshold
            // itself — otherwise a single shed would page forever.
            bool cleared =
                rule.threshold > 0.0
                    ? value < rule.resolveRatio * rule.threshold
                    : value <= rule.threshold;
            if (cleared && now - st.firingSince >= rule.holdSeconds) {
                st.state = AlertState::Inactive;
                record("resolved");
            }
            break;
        }
        }
    }
    return out;
}

bool
AlertEngine::anyFiring() const
{
    for (const RuleState &st : states)
        if (st.state == AlertState::Firing)
            return true;
    return false;
}

std::string
AlertEngine::activeJson(double now) const
{
    std::ostringstream out;
    out << "{\"time\":" << formatNumber(now) << ",\"active\":[";
    bool first = true;
    for (std::size_t i = 0; i < pack.size(); ++i) {
        const RuleState &st = states[i];
        if (st.state == AlertState::Inactive)
            continue;
        out << (first ? "" : ",") << "{\"rule\":\""
            << jsonEscape(pack[i].name) << "\",\"signal\":\""
            << pulseSignalName(pack[i].signal) << "\",\"state\":\""
            << alertStateName(st.state)
            << "\",\"since\":" << formatNumber(st.since)
            << ",\"value\":" << formatNumber(st.lastValue)
            << ",\"threshold\":" << formatNumber(pack[i].threshold)
            << "}";
        first = false;
    }
    out << "]}";
    return out.str();
}

RateEngine::RateEngine(double window_seconds, double ewma_alpha)
    : windowSeconds(window_seconds), alpha(ewma_alpha)
{
    CS_ASSERT(windowSeconds > 0.0, "pulse window must be positive");
    CS_ASSERT(alpha > 0.0 && alpha <= 1.0,
              "EWMA alpha must be in (0, 1]");
}

const PulseRates &
RateEngine::observe(const HealthSample &sample)
{
    window.push_back(sample);
    // Keep the window spanning windowSeconds behind the newest
    // sample; the oldest retained sample anchors the deltas.
    while (window.size() >= 2 &&
           window[1].time <= sample.time - windowSeconds)
        window.pop_front();

    const HealthSample &oldest = window.front();
    const HealthSample &newest = window.back();
    double elapsed = std::max(newest.time - oldest.time, 1e-9);
    auto delta = [](std::uint64_t now_v, std::uint64_t then_v) {
        return now_v >= then_v ? now_v - then_v : 0;
    };

    std::uint64_t messages = delta(newest.messages, oldest.messages);
    double per_message =
        messages == 0 ? 0.0 : 1.0 / static_cast<double>(messages);

    current.time = newest.time;
    current.windowSeconds = newest.time - oldest.time;
    current.samplesInWindow = window.size();
    current.shedDelta = delta(newest.groupsShed, oldest.groupsShed);
    current.evictionDelta =
        delta(newest.memoryEvictions, oldest.memoryEvictions);
    current.forcedReleaseDelta =
        delta(newest.forcedReleases, oldest.forcedReleases);
    current.capRejectDelta =
        delta(newest.internerCapRejected, oldest.internerCapRejected);

    auto set = [this](PulseSignal s, double v) {
        current.value[static_cast<std::size_t>(s)] = v;
    };
    set(PulseSignal::TemplateMissRate,
        static_cast<double>(delta(newest.recoveredPassUnknown,
                                  oldest.recoveredPassUnknown)) *
            per_message);
    set(PulseSignal::DivergenceRecoveryRate,
        static_cast<double>(
            delta(newest.recoveredOtherSet, oldest.recoveredOtherSet) +
            delta(newest.recoveredFalseDependency,
                  oldest.recoveredFalseDependency)) *
            per_message);
    set(PulseSignal::ShedRate,
        static_cast<double>(current.shedDelta +
                            current.evictionDelta) /
            elapsed);
    set(PulseSignal::BackpressureRate,
        static_cast<double>(current.forcedReleaseDelta) / elapsed);
    set(PulseSignal::ErrorRate,
        static_cast<double>(
            delta(newest.errorsReported, oldest.errorsReported)) *
            per_message);
    set(PulseSignal::TimeoutRate,
        static_cast<double>(
            delta(newest.timeoutsReported, oldest.timeoutsReported)) *
            per_message);
    set(PulseSignal::WalAppendP99Us, newest.walAppendP99us);
    set(PulseSignal::FeedP99Us, newest.feedP99us);

    if (!anyEwma) {
        current.ewma = current.value;
        anyEwma = true;
    } else {
        for (std::size_t i = 0; i < kPulseSignalCount; ++i)
            current.ewma[i] = alpha * current.value[i] +
                              (1.0 - alpha) * current.ewma[i];
    }
    return current;
}

PulseEngine::PulseEngine(const PulseConfig &config)
    : cfg(config), rateEngine(config.windowSeconds, config.ewmaAlpha),
      alertEngine(config.rules.empty() ? defaultAlertRules()
                                       : config.rules)
{
    if (!cfg.alertLogPath.empty())
        alertLog.open(cfg.alertLogPath, std::ios::app);
}

void
PulseEngine::observe(const HealthSample &sample)
{
    const PulseRates &rates = rateEngine.observe(sample);
    for (const AlertRecord &record : alertEngine.evaluate(rates)) {
        std::string line = record.toJson();
        if (alertLog.is_open()) {
            alertLog << line << "\n";
            alertLog.flush();
        }
        pendingLines.push_back(std::move(line));
    }
}

bool
PulseEngine::degraded() const
{
    const PulseRates &r = rateEngine.rates();
    return alertEngine.anyFiring() || r.shedDelta > 0 ||
           r.evictionDelta > 0 || r.forcedReleaseDelta > 0 ||
           r.capRejectDelta > 0;
}

std::string
PulseEngine::healthzJson() const
{
    const PulseRates &r = rateEngine.rates();
    std::ostringstream out;
    out << "{\"status\":\"" << (degraded() ? "degraded" : "ok")
        << "\",\"time\":" << formatNumber(r.time)
        << ",\"firing\":" << (alertEngine.anyFiring() ? 1 : 0)
        << ",\"window\":{\"shed\":" << r.shedDelta
        << ",\"evictions\":" << r.evictionDelta
        << ",\"forcedReleases\":" << r.forcedReleaseDelta
        << ",\"internerCapRejected\":" << r.capRejectDelta << "}}";
    return out.str();
}

std::string
PulseEngine::alertsJson() const
{
    return alertEngine.activeJson(rateEngine.rates().time);
}

std::vector<std::string>
PulseEngine::drainAlertLines()
{
    std::vector<std::string> out;
    out.swap(pendingLines);
    return out;
}

std::string
buildInfoJson(const std::string &version,
              const std::string &model_fingerprint,
              std::size_t shard_count, double uptime_seconds)
{
    std::ostringstream out;
    out << "{\"version\":\"" << jsonEscape(version)
        << "\",\"modelFingerprint\":\"" << jsonEscape(model_fingerprint)
        << "\",\"shards\":" << shard_count
        << ",\"uptimeSeconds\":" << formatNumber(uptime_seconds)
        << "}";
    return out.str();
}

TelemetryServer::TelemetryServer(const std::string &bind_address,
                                 std::uint16_t port)
    : server(bind_address, port)
{
    current.metrics = "";
    current.healthz = "{\"status\":\"ok\",\"time\":0}";
    current.alerts = "{\"time\":0,\"active\":[]}";
    current.buildz = "{}";
    server.handle("/metrics", [this] {
        std::lock_guard<std::mutex> lock(mutex);
        return serve(current.metrics,
                     "text/plain; version=0.0.4; charset=utf-8");
    });
    server.handle("/healthz", [this] {
        std::lock_guard<std::mutex> lock(mutex);
        return serve(current.healthz, "application/json");
    });
    server.handle("/alerts", [this] {
        std::lock_guard<std::mutex> lock(mutex);
        return serve(current.alerts, "application/json");
    });
    server.handle("/buildz", [this] {
        std::lock_guard<std::mutex> lock(mutex);
        return serve(current.buildz, "application/json");
    });
}

bool
TelemetryServer::start()
{
    return server.start();
}

void
TelemetryServer::stop()
{
    server.stop();
}

void
TelemetryServer::setProfileProvider(
    std::function<std::string(double)> provider)
{
    profileProvider = std::move(provider);
    server.handleWithQuery(
        "/profilez", [this](const std::string &query) {
            double seconds = 5.0;
            std::size_t at = query.find("seconds=");
            if (at != std::string::npos) {
                const char *start = query.c_str() + at + 8;
                char *end = nullptr;
                seconds = std::strtod(start, &end);
                if (end == start || !(seconds > 0.0))
                    return common::HttpResponse{
                        400, "text/plain; charset=utf-8",
                        "bad seconds value\n"};
            }
            seconds = std::clamp(seconds, 0.1, 60.0);
            std::string profile = profileProvider(seconds);
            if (profile.empty())
                return common::HttpResponse{
                    503, "text/plain; charset=utf-8",
                    "profiler busy\n"};
            return common::HttpResponse{200, "application/json",
                                        std::move(profile)};
        });
}

void
TelemetryServer::publish(Documents docs)
{
    std::lock_guard<std::mutex> lock(mutex);
    current = std::move(docs);
}

common::HttpResponse
TelemetryServer::serve(const std::string &body,
                       const std::string &content_type)
{
    common::HttpResponse response;
    response.status = body.empty() ? 503 : 200;
    response.contentType = content_type;
    response.body = body.empty() ? "not published yet\n" : body;
    return response;
}

} // namespace cloudseer::obs
