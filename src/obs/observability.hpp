/**
 * @file
 * seer-scope facade: one object bundling the monitor's metric
 * registry, execution tracer, and periodic health-snapshot stream
 * (DESIGN.md §11).
 *
 * Null-sink by default: MonitorConfig carries an ObsConfig whose
 * every field is off, and a monitor with that config never constructs
 * an Observability at all — the hot path sees a null pointer test and
 * nothing else, keeping the uninstrumented monitor bit-identical in
 * behavior and within noise in throughput.
 *
 * The facade deliberately knows nothing about checker or monitor
 * types (obs sits below core in the link graph). The monitor flattens
 * its CheckerStats/IngestStats/interner/timeout-policy state into a
 * HealthSample of plain numbers; the facade stores the sample series,
 * refreshes the registry from the newest sample, and renders both.
 */

#ifndef CLOUDSEER_OBS_OBSERVABILITY_HPP
#define CLOUDSEER_OBS_OBSERVABILITY_HPP

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cloudseer::obs {

/** Observability knobs. Every default is off (the null sink). */
struct ObsConfig
{
    /** Maintain the metric registry and feed-latency histogram. */
    bool metrics = false;

    /** Record per-execution spans (implies their histograms). */
    bool tracing = false;

    /**
     * Emit a health snapshot every this many seconds of *message*
     * time (the monitor clock, not wall time — replays of the same
     * stream produce the same snapshot series). 0 = off.
     */
    double snapshotIntervalSeconds = 0.0;

    /** Closed spans retained before the oldest are dropped. */
    std::size_t maxTraceSpans = 4096;

    /** Health snapshots retained (ring; oldest dropped). */
    std::size_t maxSnapshots = 4096;

    /** Flight recorder (seer-flight forensics); default off. */
    FlightRecorderConfig flightRecorder;

    /** True when any sink is active. */
    bool
    enabled() const
    {
        return metrics || tracing || snapshotIntervalSeconds > 0.0 ||
               flightRecorder.enabled();
    }
};

/**
 * One flattened health observation of a running monitor. Field names
 * mirror the stable metric catalog in DESIGN.md §11.
 */
struct HealthSample
{
    double time = 0.0; ///< message-clock seconds

    // Checker (CheckerStats).
    std::uint64_t messages = 0;
    std::uint64_t decisive = 0;
    std::uint64_t ambiguous = 0;
    std::uint64_t recoveredPassUnknown = 0;
    std::uint64_t recoveredNewSequence = 0;
    std::uint64_t recoveredOtherSet = 0;
    std::uint64_t recoveredFalseDependency = 0;
    std::uint64_t unmatched = 0;
    std::uint64_t accepted = 0;
    std::uint64_t errorsReported = 0;
    std::uint64_t timeoutsReported = 0;
    std::uint64_t timeoutsSuppressed = 0;
    std::uint64_t groupsShed = 0;
    std::uint64_t consumeAttempts = 0;
    double decisiveFraction = 0.0;

    // Live state.
    std::uint64_t activeGroups = 0;
    std::uint64_t activeIdentifierSets = 0;

    // Ingest guards (IngestStats).
    std::uint64_t linesSeen = 0;
    std::uint64_t recordsDelivered = 0;
    std::uint64_t malformedLines = 0;
    std::uint64_t nonMonotonicClamped = 0;
    std::uint64_t duplicatesSuppressed = 0;
    std::uint64_t forcedReleases = 0;
    std::uint64_t reorderBufferPeak = 0;

    // Bounded-memory guards (seer-vault, DESIGN.md §13).
    std::uint64_t memoryEvictions = 0;
    std::uint64_t internerCapRejected = 0;

    // Identifier interner.
    std::uint64_t internerSize = 0;
    std::uint64_t internerHits = 0;
    std::uint64_t internerMisses = 0;

    // Timeout policy resolution.
    std::uint64_t timeoutResolutions = 0;
    std::uint64_t timeoutDefaultFallbacks = 0;

    // Feed latency (microseconds; zero until metrics record some).
    double feedP50us = 0.0;
    double feedP90us = 0.0;
    double feedP99us = 0.0;
    double feedMaxUs = 0.0;

    // WAL append latency (seer-vault ledger; zero unless a
    // VaultedMonitor with metrics is recording, seer-pulse §16).
    double walAppendP50us = 0.0;
    double walAppendP99us = 0.0;

    /** One sharded-engine worker lane (seer-swarm, DESIGN.md §14). */
    struct ShardLane
    {
        std::uint64_t routed = 0;       ///< messages homed here
        std::uint64_t inputPeak = 0;    ///< deepest input ring seen
        std::uint64_t outputPeak = 0;   ///< deepest output ring seen
        std::uint64_t activeGroups = 0; ///< live groups on this shard
        double checkP50us = 0.0; ///< sampled check-stage latency
        double checkP99us = 0.0; ///< (zero unless stage timers on)
    };

    // Sharded engine (seer-swarm); all zero / empty on serial.
    std::vector<ShardLane> shardLanes;
    std::uint64_t shardReconcilerHits = 0;
    std::uint64_t shardCrossUnions = 0;
    std::uint64_t shardGlobalFallbacks = 0;
    std::uint64_t shardQuiesces = 0;
    double shardImbalance = 0.0;

    /** Single-line JSON rendering ({"kind":"HEALTH",...}). */
    std::string toJson() const;

    /** Serialise every field (seer-vault, DESIGN.md §13). */
    void saveState(common::BinWriter &out) const;

    /** Replace this sample with a saved one. */
    bool restoreState(common::BinReader &in);
};

/** The per-monitor observability bundle. */
class Observability
{
  public:
    explicit Observability(const ObsConfig &config);

    const ObsConfig &config() const { return cfg; }

    MetricsRegistry &metrics() { return registry; }
    const MetricsRegistry &metrics() const { return registry; }

    /** The tracer, or nullptr when tracing is off. */
    ExecutionTracer *tracer() { return tracerPtr.get(); }
    const ExecutionTracer *tracer() const { return tracerPtr.get(); }

    /** The flight recorder, or nullptr when it is off. */
    FlightRecorder *flight() { return flightPtr.get(); }
    const FlightRecorder *flight() const { return flightPtr.get(); }

    /** Record one feed's processing latency (microseconds). */
    void recordFeedLatency(double micros);

    /** Feed-latency histogram (null when metrics are off). */
    const Histogram *feedLatency() const { return feedLatencyHist; }

    /**
     * WAL append-latency histogram, created on first request (null
     * when metrics are off). VaultedMonitor requests it at
     * construction so a vaulted instrumented monitor always exposes
     * seer_wal_append_us; bare monitors never create it.
     */
    Histogram *walAppendLatency();
    const Histogram *walAppendLatencyIfAny() const { return walHist; }

    /**
     * Identify this build in exposition (seer_build_info,
     * seer_shard_count, seer_uptime_seconds and the /buildz payload —
     * seer-pulse, DESIGN.md §16). Uptime counts from construction.
     */
    void setBuildInfo(const std::string &version,
                      const std::string &model_fingerprint,
                      std::size_t shard_count);

    const std::string &buildVersion() const { return version; }
    const std::string &modelFingerprint() const { return fingerprint; }
    std::size_t shardCount() const { return shards; }

    /** Wall-clock seconds since this facade was constructed. */
    double uptimeSeconds() const;

    /** True when the message clock crossed the snapshot interval. */
    bool snapshotDue(double message_time) const;

    /**
     * Store one sample (advancing the snapshot clock) and refresh
     * the registry counters/gauges from it.
     */
    void addSnapshot(const HealthSample &sample);

    /** Snapshot series, oldest first (bounded by maxSnapshots). */
    const std::vector<HealthSample> &snapshots() const
    {
        return history;
    }

    /** Refresh the registry from `current` and render Prometheus.
     *  Empty when metrics are off (e.g. a flight-only config). */
    std::string prometheusText(const HealthSample &current);

    /** The snapshot series as newline-separated JSON lines. */
    std::string snapshotJsonLines() const;

    /**
     * Serialise the durable observability state (seer-vault, DESIGN.md
     * §13): the feed-latency histogram, the health-snapshot series,
     * and the snapshot clock. Tracer spans and flight-recorder rings
     * are deliberately excluded — both are short-horizon diagnostics
     * that re-warm during WAL replay.
     */
    void saveState(common::BinWriter &out) const;

    /**
     * Restore state written by saveState into a facade constructed
     * with the same ObsConfig (the config decides which sinks exist;
     * a histogram-shape mismatch fails the restore).
     */
    bool restoreState(common::BinReader &in);

  private:
    ObsConfig cfg;
    MetricsRegistry registry;
    std::unique_ptr<ExecutionTracer> tracerPtr;
    std::unique_ptr<FlightRecorder> flightPtr;
    Histogram *feedLatencyHist = nullptr;
    Histogram *walHist = nullptr;
    std::vector<HealthSample> history;
    double lastSnapshotTime = 0.0;
    bool anySnapshot = false;
    std::string version;
    std::string fingerprint;
    std::size_t shards = 0;
    std::chrono::steady_clock::time_point startedAt;

    void updateRegistry(const HealthSample &sample);
};

} // namespace cloudseer::obs

#endif // CLOUDSEER_OBS_OBSERVABILITY_HPP
