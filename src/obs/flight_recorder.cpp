#include "obs/flight_recorder.hpp"

#include <algorithm>

namespace cloudseer::obs {

FlightRecorder::FlightRecorder(const FlightRecorderConfig &config)
    : cfg(config)
{
}

void
FlightRecorder::record(const std::string &node, double time,
                       const std::string &line)
{
    if (cfg.perNodeCapacity == 0)
        return;
    auto it = rings.find(node);
    if (it == rings.end()) {
        if (rings.size() >= cfg.maxNodes) {
            ++droppedLineCount;
            return;
        }
        it = rings.emplace(node, NodeRing{}).first;
        it->second.lines.reserve(cfg.perNodeCapacity);
    }
    NodeRing &ring = it->second;
    ContextLine entry{node, time, line};
    if (ring.lines.size() < cfg.perNodeCapacity) {
        ring.lines.push_back(std::move(entry));
    } else {
        ring.lines[ring.next] = std::move(entry);
        ring.next = (ring.next + 1) % cfg.perNodeCapacity;
    }
    ++ring.seq;
    ++recorded;
}

std::vector<ContextLine>
FlightRecorder::context() const
{
    std::vector<ContextLine> out;
    for (const auto &[node, ring] : rings) {
        // Oldest-first within the ring: the wrap point is `next`.
        for (std::size_t i = 0; i < ring.lines.size(); ++i) {
            std::size_t at = ring.lines.size() < cfg.perNodeCapacity
                                 ? i
                                 : (ring.next + i) % ring.lines.size();
            out.push_back(ring.lines[at]);
        }
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const ContextLine &a, const ContextLine &b) {
                         if (a.time != b.time)
                             return a.time < b.time;
                         return a.node < b.node;
                     });
    return out;
}

void
FlightRecorder::addBundle(std::string bundle_json)
{
    store.push_back(std::move(bundle_json));
    while (store.size() > cfg.maxBundles) {
        store.erase(store.begin());
        ++droppedBundleCount;
    }
}

std::string
FlightRecorder::bundleJsonLines() const
{
    std::string out;
    for (const std::string &bundle : store) {
        out += bundle;
        out += "\n";
    }
    return out;
}

} // namespace cloudseer::obs
