#include "obs/flight_recorder.hpp"

#include <algorithm>

namespace cloudseer::obs {

FlightRecorder::FlightRecorder(const FlightRecorderConfig &config)
    : cfg(config)
{
}

void
FlightRecorder::record(std::string_view node, double time,
                       std::string_view line)
{
    if (cfg.perNodeCapacity == 0)
        return;
    auto it = rings.find(node);
    if (it == rings.end()) {
        if (rings.size() >= cfg.maxNodes) {
            ++droppedLineCount;
            return;
        }
        it = rings.emplace(std::string(node), NodeRing{}).first;
        it->second.slots.reserve(cfg.perNodeCapacity);
    }
    NodeRing &ring = it->second;
    if (ring.slots.size() < cfg.perNodeCapacity) {
        ring.slots.push_back({time, std::string(line)});
    } else {
        // Overwrite in place: assign() reuses the evicted line's
        // capacity, so a warmed-up ring records without allocating.
        Slot &slot = ring.slots[ring.next];
        slot.time = time;
        slot.line.assign(line.data(), line.size());
        ring.next = (ring.next + 1) % cfg.perNodeCapacity;
    }
    ++ring.seq;
    ++recorded;
}

std::vector<ContextLine>
FlightRecorder::context() const
{
    std::vector<ContextLine> out;
    for (const auto &[node, ring] : rings) {
        // Oldest-first within the ring: the wrap point is `next`.
        for (std::size_t i = 0; i < ring.slots.size(); ++i) {
            std::size_t at = ring.slots.size() < cfg.perNodeCapacity
                                 ? i
                                 : (ring.next + i) % ring.slots.size();
            out.push_back(
                {node, ring.slots[at].time, ring.slots[at].line});
        }
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const ContextLine &a, const ContextLine &b) {
                         if (a.time != b.time)
                             return a.time < b.time;
                         return a.node < b.node;
                     });
    return out;
}

void
FlightRecorder::addBundle(std::string bundle_json)
{
    store.push_back(std::move(bundle_json));
    while (store.size() > cfg.maxBundles) {
        store.erase(store.begin());
        ++droppedBundleCount;
    }
}

std::string
FlightRecorder::bundleJsonLines() const
{
    std::string out;
    for (const std::string &bundle : store) {
        out += bundle;
        out += "\n";
    }
    return out;
}

} // namespace cloudseer::obs
