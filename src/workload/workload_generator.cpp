#include "workload/workload_generator.hpp"

#include "common/error.hpp"

namespace cloudseer::workload {

using sim::TaskType;

WorkloadGenerator::WorkloadGenerator(const WorkloadConfig &config_)
    : config(config_)
{
    CS_ASSERT(config.users >= 1, "workload needs at least one user");
    CS_ASSERT(config.tasksPerUser >= 2 && config.tasksPerUser % 2 == 0,
              "tasksPerUser must be even and >= 2 (boot..delete groups)");
}

std::vector<TaskType>
WorkloadGenerator::scriptFor(common::Rng &rng) const
{
    std::vector<TaskType> script;
    int remaining = config.tasksPerUser;
    while (remaining > 0) {
        // A group consumes 2 + 2k tasks; keep k within what remains.
        int max_pairs = (remaining - 2) / 2;
        int pairs = rng.uniformInt(0, std::min(3, max_pairs));
        script.push_back(TaskType::Boot);
        for (int p = 0; p < pairs; ++p) {
            switch (rng.uniformInt(0, 2)) {
              case 0:
                script.push_back(TaskType::Stop);
                script.push_back(TaskType::Start);
                break;
              case 1:
                script.push_back(TaskType::Pause);
                script.push_back(TaskType::Unpause);
                break;
              default:
                script.push_back(TaskType::Suspend);
                script.push_back(TaskType::Resume);
                break;
            }
        }
        script.push_back(TaskType::Delete);
        remaining -= 2 + 2 * pairs;
    }
    CS_ASSERT(static_cast<int>(script.size()) == config.tasksPerUser,
              "script length drifted from tasksPerUser");
    CS_ASSERT(matchesWorkloadGrammar(script),
              "generated script violates the workload grammar");
    return script;
}

std::vector<PlannedTask>
WorkloadGenerator::plan() const
{
    common::Rng rng(config.seed);
    std::vector<PlannedTask> out;
    for (int u = 0; u < config.users; ++u) {
        common::Rng user_rng = rng.fork();
        std::vector<TaskType> script = scriptFor(user_rng);
        double t = u * config.userStagger +
                   user_rng.uniformReal(0.0, 1.0);
        for (TaskType type : script) {
            out.push_back({u, type, t});
            t += config.interTaskWait +
                 user_rng.uniformReal(-1.0, 1.0);
        }
    }
    return out;
}

std::size_t
WorkloadGenerator::submitAll(sim::Simulation &simulation) const
{
    std::vector<PlannedTask> planned = plan();

    std::vector<sim::UserProfile> profiles;
    for (int u = 0; u < config.users; ++u) {
        profiles.push_back(config.singleUid ? simulation.sharedUser()
                                            : simulation.makeUser());
    }

    // Each user's current VM; boot opens a fresh one.
    std::vector<sim::VmHandle> current(
        static_cast<std::size_t>(config.users));
    for (const PlannedTask &task : planned) {
        std::size_t u = static_cast<std::size_t>(task.user);
        if (task.type == TaskType::Boot)
            current[u] = simulation.makeVm();
        simulation.submit(task.type, task.submitTime, profiles[u],
                          current[u]);
    }
    return planned.size();
}

bool
matchesWorkloadGrammar(const std::vector<TaskType> &script)
{
    std::size_t i = 0;
    if (script.empty())
        return false;
    while (i < script.size()) {
        if (script[i] != TaskType::Boot)
            return false;
        ++i;
        while (i < script.size() && script[i] != TaskType::Delete) {
            TaskType first = script[i];
            TaskType second;
            if (first == TaskType::Stop) {
                second = TaskType::Start;
            } else if (first == TaskType::Pause) {
                second = TaskType::Unpause;
            } else if (first == TaskType::Suspend) {
                second = TaskType::Resume;
            } else {
                return false;
            }
            if (i + 1 >= script.size() || script[i + 1] != second)
                return false;
            i += 2;
        }
        if (i >= script.size())
            return false; // group never closed with delete
        ++i;              // consume the delete
    }
    return true;
}

} // namespace cloudseer::workload
