/**
 * @file
 * Multi-user workload generation (paper §5.2).
 *
 * Each simulated user submits task groups drawn from the paper's
 * regular expression
 *
 *     (Boot (StopStart | PauseUnpause | SuspendResume)* Delete)+
 *
 * with a fixed inter-task wait (15 s in the paper) so each task
 * finishes before the user's next one, while different users' tasks
 * overlap freely.
 */

#ifndef CLOUDSEER_WORKLOAD_WORKLOAD_GENERATOR_HPP
#define CLOUDSEER_WORKLOAD_WORKLOAD_GENERATOR_HPP

#include <cstdint>
#include <vector>

#include "sim/simulation.hpp"
#include "sim/task_type.hpp"

namespace cloudseer::workload {

/** Knobs mirroring the paper's Table 3 experiment axes. */
struct WorkloadConfig
{
    int users = 2;              ///< concurrent users
    int tasksPerUser = 80;      ///< tasks each user submits (even)
    bool singleUid = false;     ///< all users share one identity
    double interTaskWait = 15.0; ///< seconds between a user's tasks
    double userStagger = 3.0;   ///< seconds between user start times
    std::uint64_t seed = 1;     ///< task-script randomness
};

/** One planned submission. */
struct PlannedTask
{
    int user = 0;
    sim::TaskType type = sim::TaskType::Boot;
    double submitTime = 0.0;
};

/**
 * Generates task scripts and submits them to a Simulation. The ground
 * truth of what ran lives in the Simulation's ledger.
 */
class WorkloadGenerator
{
  public:
    explicit WorkloadGenerator(const WorkloadConfig &config);

    /**
     * Build the per-user task scripts. Deterministic in the seed.
     * Every script matches the paper's regular expression exactly.
     */
    std::vector<PlannedTask> plan() const;

    /**
     * Submit the full plan into a simulation. VM identities are created
     * per task group (boot creates, delete retires).
     *
     * @return Number of submitted tasks.
     */
    std::size_t submitAll(sim::Simulation &simulation) const;

  private:
    WorkloadConfig config;

    /** One user's task-type script honouring the regex. */
    std::vector<sim::TaskType> scriptFor(common::Rng &rng) const;
};

/**
 * Validate that a task sequence matches the paper's regular expression.
 * Exposed for tests and the generator's own self-check.
 */
bool matchesWorkloadGrammar(const std::vector<sim::TaskType> &script);

} // namespace cloudseer::workload

#endif // CLOUDSEER_WORKLOAD_WORKLOAD_GENERATOR_HPP
