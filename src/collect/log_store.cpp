#include "collect/log_store.hpp"

#include "logging/log_codec.hpp"

namespace cloudseer::collect {

void
LogStore::append(const logging::LogRecord &record)
{
    records.push_back(record);
}

void
LogStore::appendStream(const std::vector<logging::LogRecord> &stream)
{
    records.insert(records.end(), stream.begin(), stream.end());
}

bool
LogStore::matches(const logging::LogRecord &record, const LogQuery &query)
{
    if (!query.service.empty() && record.service != query.service)
        return false;
    if (!query.node.empty() && record.node != query.node)
        return false;
    if (query.errorOnly && !logging::isErrorLevel(record.level))
        return false;
    if (query.fromTime >= 0 && record.timestamp < query.fromTime)
        return false;
    if (query.toTime >= 0 && record.timestamp > query.toTime)
        return false;
    if (!query.bodyContains.empty() &&
        record.body.find(query.bodyContains) == std::string::npos) {
        return false;
    }
    return true;
}

std::vector<logging::LogRecord>
LogStore::search(const LogQuery &query) const
{
    std::vector<logging::LogRecord> out;
    for (const logging::LogRecord &record : records) {
        if (matches(record, query))
            out.push_back(record);
    }
    return out;
}

std::size_t
LogStore::count(const LogQuery &query) const
{
    std::size_t n = 0;
    for (const logging::LogRecord &record : records) {
        if (matches(record, query))
            ++n;
    }
    return n;
}

std::vector<std::string>
LogStore::toLines() const
{
    std::vector<std::string> lines;
    lines.reserve(records.size());
    for (const logging::LogRecord &record : records)
        lines.push_back(logging::encodeLogLine(record));
    return lines;
}

LogStore
LogStore::fromLines(const std::vector<std::string> &lines,
                    std::size_t *malformed)
{
    LogStore store;
    std::size_t bad = 0;
    logging::RecordId next_id = 1;
    for (const std::string &line : lines) {
        auto decoded = logging::decodeLogLine(line);
        if (!decoded) {
            ++bad;
            continue;
        }
        decoded->id = next_id++;
        store.append(*decoded);
    }
    if (malformed != nullptr)
        *malformed = bad;
    return store;
}

} // namespace cloudseer::collect
