#include "collect/node_sinks.hpp"

#include <queue>

#include "logging/log_codec.hpp"

namespace cloudseer::collect {

const std::vector<logging::LogRecord> NodeSinks::kEmpty;

void
NodeSinks::append(const logging::LogRecord &record)
{
    sinks[{record.node, record.service}].push_back(record);
}

void
NodeSinks::appendStream(const std::vector<logging::LogRecord> &records)
{
    for (const logging::LogRecord &record : records)
        append(record);
}

const std::vector<logging::LogRecord> &
NodeSinks::file(const std::string &node,
                const std::string &service) const
{
    auto it = sinks.find({node, service});
    return it == sinks.end() ? kEmpty : it->second;
}

std::size_t
NodeSinks::recordCount() const
{
    std::size_t total = 0;
    for (const auto &[key, records] : sinks)
        total += records.size();
    return total;
}

std::vector<std::string>
NodeSinks::toLines(const SinkKey &key) const
{
    std::vector<std::string> out;
    auto it = sinks.find(key);
    if (it == sinks.end())
        return out;
    out.reserve(it->second.size());
    for (const logging::LogRecord &record : it->second)
        out.push_back(logging::encodeLogLine(record));
    return out;
}

std::vector<logging::LogRecord>
NodeSinks::mergeByTimestamp() const
{
    // K-way merge over per-file cursors with a min-heap keyed by
    // (timestamp, file index) — files are already time-ordered.
    struct Cursor
    {
        const std::vector<logging::LogRecord> *records;
        std::size_t next;
        std::size_t fileIndex;
    };
    struct Later
    {
        bool
        operator()(const Cursor &a, const Cursor &b) const
        {
            double ta = (*a.records)[a.next].timestamp;
            double tb = (*b.records)[b.next].timestamp;
            if (ta != tb)
                return ta > tb;
            return a.fileIndex > b.fileIndex;
        }
    };

    std::priority_queue<Cursor, std::vector<Cursor>, Later> heap;
    std::size_t file_index = 0;
    std::size_t total = 0;
    for (const auto &[key, records] : sinks) {
        if (!records.empty())
            heap.push({&records, 0, file_index});
        total += records.size();
        ++file_index;
    }

    std::vector<logging::LogRecord> out;
    out.reserve(total);
    while (!heap.empty()) {
        Cursor cursor = heap.top();
        heap.pop();
        out.push_back((*cursor.records)[cursor.next]);
        if (++cursor.next < cursor.records->size())
            heap.push(cursor);
    }
    return out;
}

} // namespace cloudseer::collect
