#include "collect/stream_perturber.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "logging/log_codec.hpp"

namespace cloudseer::collect {

const char *
perturbationKindName(PerturbationKind kind)
{
    switch (kind) {
      case PerturbationKind::Drop: return "DROP";
      case PerturbationKind::Duplicate: return "DUPLICATE";
      case PerturbationKind::Truncate: return "TRUNCATE";
      case PerturbationKind::Corrupt: return "CORRUPT";
      case PerturbationKind::ClockSkew: return "CLOCK-SKEW";
      case PerturbationKind::BurstLoss: return "BURST-LOSS";
    }
    return "UNKNOWN";
}

PerturbationConfig
PerturbationConfig::scaled(double factor) const
{
    PerturbationConfig out = *this;
    out.dropProbability *= factor;
    out.duplicateProbability *= factor;
    out.truncateProbability *= factor;
    out.corruptProbability *= factor;
    out.clockSkewMaxSeconds *= factor;
    out.clockDriftMaxPerSecond *= factor;
    out.burstProbability *= factor;
    return out;
}

bool
PerturbationConfig::inert() const
{
    return dropProbability <= 0.0 && duplicateProbability <= 0.0 &&
           truncateProbability <= 0.0 && corruptProbability <= 0.0 &&
           clockSkewMaxSeconds <= 0.0 &&
           clockDriftMaxPerSecond <= 0.0 && burstProbability <= 0.0;
}

StreamPerturber::StreamPerturber(const PerturbationConfig &config_)
    : config(config_)
{
}

namespace {

/** A surviving record waiting for wire encoding. */
struct PendingEntry
{
    logging::LogRecord record;
    bool isDuplicate = false;
};

} // namespace

PerturbedStream
StreamPerturber::apply(
    const std::vector<logging::LogRecord> &arrival_ordered)
{
    PerturbedStream out;
    if (config.inert()) {
        out.records = arrival_ordered;
        out.lines.reserve(arrival_ordered.size());
        for (const logging::LogRecord &record : arrival_ordered)
            out.lines.push_back(logging::encodeLogLine(record));
        return out;
    }

    common::Rng rng(config.seed);
    common::SimTime stream_start =
        arrival_ordered.empty() ? 0.0 : arrival_ordered.front().timestamp;

    // Per-node clock model: fixed offset plus linear drift, sampled
    // once per node in first-appearance order (deterministic).
    std::map<std::string, std::pair<double, double>> clock;
    auto clockFor = [&](const logging::LogRecord &record)
        -> std::pair<double, double> {
        auto it = clock.find(record.node);
        if (it != clock.end())
            return it->second;
        double offset =
            config.clockSkewMaxSeconds > 0.0
                ? rng.uniformReal(-config.clockSkewMaxSeconds,
                                  config.clockSkewMaxSeconds)
                : 0.0;
        double drift =
            config.clockDriftMaxPerSecond > 0.0
                ? rng.uniformReal(-config.clockDriftMaxPerSecond,
                                  config.clockDriftMaxPerSecond)
                : 0.0;
        clock.emplace(record.node, std::make_pair(offset, drift));
        out.nodeSkew[record.node] = offset;
        if (offset != 0.0 || drift != 0.0) {
            PerturbationRecord event;
            event.kind = PerturbationKind::ClockSkew;
            event.node = record.node;
            event.time = record.timestamp;
            event.amount = offset;
            out.events.push_back(event);
        }
        return {offset, drift};
    };

    // Pass 1: transport-level faults on records (burst loss, drop,
    // duplication, skewed timestamps). Duplicates are re-deliveries:
    // the same record appears again a sampled number of positions
    // later, exactly as an at-least-once shipper replays a batch.
    std::vector<PendingEntry> pending;
    pending.reserve(arrival_ordered.size());
    std::multimap<std::size_t, logging::LogRecord> redeliveries;
    int burst_remaining = 0;

    for (std::size_t i = 0; i < arrival_ordered.size(); ++i) {
        // Flush re-deliveries scheduled for this position.
        auto [lo, hi] = redeliveries.equal_range(i);
        for (auto it = lo; it != hi; ++it)
            pending.push_back({it->second, /*isDuplicate=*/true});
        redeliveries.erase(lo, hi);

        const logging::LogRecord &original = arrival_ordered[i];
        if (burst_remaining > 0) {
            --burst_remaining;
            ++out.dropped;
            continue; // lost inside an ongoing burst (already logged)
        }
        if (config.burstProbability > 0.0 &&
            rng.chance(config.burstProbability)) {
            int length = rng.uniformInt(config.burstLengthMin,
                                        config.burstLengthMax);
            PerturbationRecord event;
            event.kind = PerturbationKind::BurstLoss;
            event.record = original.id;
            event.node = original.node;
            event.time = original.timestamp;
            event.amount = static_cast<double>(length);
            out.events.push_back(event);
            burst_remaining = length - 1;
            ++out.dropped;
            continue;
        }
        if (config.dropProbability > 0.0 &&
            rng.chance(config.dropProbability)) {
            PerturbationRecord event;
            event.kind = PerturbationKind::Drop;
            event.record = original.id;
            event.node = original.node;
            event.time = original.timestamp;
            out.events.push_back(event);
            ++out.dropped;
            continue;
        }

        logging::LogRecord record = original;
        auto [offset, drift] = clockFor(record);
        record.timestamp +=
            offset + drift * (record.timestamp - stream_start);

        if (config.duplicateProbability > 0.0 &&
            rng.chance(config.duplicateProbability)) {
            int lag = rng.uniformInt(config.duplicateLagMin,
                                     config.duplicateLagMax);
            PerturbationRecord event;
            event.kind = PerturbationKind::Duplicate;
            event.record = record.id;
            event.node = record.node;
            event.time = original.timestamp;
            event.amount = static_cast<double>(lag);
            out.events.push_back(event);
            redeliveries.emplace(i + static_cast<std::size_t>(lag),
                                 record);
            ++out.duplicated;
        }
        pending.push_back({std::move(record), /*isDuplicate=*/false});
    }
    // Re-deliveries scheduled past the end arrive as a tail.
    for (auto &[pos, record] : redeliveries)
        pending.push_back({std::move(record), /*isDuplicate=*/true});

    // Pass 2: wire-level faults on the encoded lines.
    out.records.reserve(pending.size());
    out.lines.reserve(pending.size());
    for (PendingEntry &entry : pending) {
        std::string line = logging::encodeLogLine(entry.record);
        if (config.truncateProbability > 0.0 &&
            rng.chance(config.truncateProbability)) {
            double kept = rng.uniformReal(0.1, 0.9);
            std::size_t cut = static_cast<std::size_t>(
                static_cast<double>(line.size()) * kept);
            PerturbationRecord event;
            event.kind = PerturbationKind::Truncate;
            event.record = entry.record.id;
            event.node = entry.record.node;
            event.time = entry.record.timestamp;
            event.amount = kept;
            out.events.push_back(event);
            line.resize(cut);
            ++out.truncated;
        } else if (config.corruptProbability > 0.0 &&
                   rng.chance(config.corruptProbability) &&
                   !line.empty()) {
            // Overwrite a short span with garbage, as a flaky pipe
            // interleaving unrelated bytes would.
            std::size_t start = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<int>(line.size()) - 1));
            std::size_t span = std::min(
                line.size() - start,
                static_cast<std::size_t>(rng.uniformInt(1, 12)));
            for (std::size_t c = 0; c < span; ++c)
                line[start + c] = '#';
            PerturbationRecord event;
            event.kind = PerturbationKind::Corrupt;
            event.record = entry.record.id;
            event.node = entry.record.node;
            event.time = entry.record.timestamp;
            event.amount = static_cast<double>(span);
            out.events.push_back(event);
            ++out.corrupted;
        }
        out.records.push_back(std::move(entry.record));
        out.lines.push_back(std::move(line));
    }
    return out;
}

} // namespace cloudseer::collect
