/**
 * @file
 * The Elasticsearch stand-in: an in-memory indexed store of log lines.
 *
 * The paper's test bed stores every shipped message in Elasticsearch so
 * experiments can replay identical streams. LogStore offers the same
 * affordances at library scale: append, replay in arrival order, and
 * the simple queries (service, level, time window, substring) that the
 * examples and diagnosis workflows use.
 */

#ifndef CLOUDSEER_COLLECT_LOG_STORE_HPP
#define CLOUDSEER_COLLECT_LOG_STORE_HPP

#include <string>
#include <vector>

#include "logging/log_record.hpp"

namespace cloudseer::collect {

/** Query filter; unset fields do not constrain. */
struct LogQuery
{
    std::string service;            ///< exact match when non-empty
    std::string node;               ///< exact match when non-empty
    std::string bodyContains;       ///< substring match when non-empty
    bool errorOnly = false;         ///< only ERROR/CRITICAL
    common::SimTime fromTime = -1;  ///< inclusive when >= 0
    common::SimTime toTime = -1;    ///< inclusive when >= 0
};

/** Append-only log database with replay and filtered search. */
class LogStore
{
  public:
    /** Append one record (arrival order). */
    void append(const logging::LogRecord &record);

    /** Append a whole stream. */
    void appendStream(const std::vector<logging::LogRecord> &records);

    /** All records in arrival order. */
    const std::vector<logging::LogRecord> &all() const { return records; }

    /** Records matching the query, arrival order. */
    std::vector<logging::LogRecord> search(const LogQuery &query) const;

    /** Count without materialising. */
    std::size_t count(const LogQuery &query) const;

    /** Number of stored records. */
    std::size_t size() const { return records.size(); }

    /** Encode everything as text lines (one per record). */
    std::vector<std::string> toLines() const;

    /**
     * Rebuild a store from text lines. Malformed lines are skipped and
     * counted.
     *
     * @param lines     Input lines.
     * @param malformed Receives the number of skipped lines (optional).
     */
    static LogStore fromLines(const std::vector<std::string> &lines,
                              std::size_t *malformed = nullptr);

  private:
    std::vector<logging::LogRecord> records;

    static bool matches(const logging::LogRecord &record,
                        const LogQuery &query);
};

} // namespace cloudseer::collect

#endif // CLOUDSEER_COLLECT_LOG_STORE_HPP
