#include "collect/stream_merger.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace cloudseer::collect {

std::vector<ArrivedRecord>
shipToCollector(const std::vector<logging::LogRecord> &records,
                const ShippingConfig &config)
{
    common::Rng rng(config.seed);
    std::vector<ArrivedRecord> out;
    out.reserve(records.size());
    for (const logging::LogRecord &record : records) {
        double delay = rng.expDelay(std::max(config.meanDelay, 1e-6));
        if (config.tailProbability > 0.0 &&
            rng.chance(config.tailProbability)) {
            delay += rng.uniformReal(config.tailMin, config.tailMax);
        }
        out.push_back({record, record.timestamp + delay});
    }
    sortByArrival(out);
    return out;
}

void
sortByArrival(std::vector<ArrivedRecord> &arrived)
{
    // Stable sort on arrival alone: equal arrivals keep input order.
    std::stable_sort(arrived.begin(), arrived.end(),
                     [](const ArrivedRecord &a, const ArrivedRecord &b) {
                         return a.arrival < b.arrival;
                     });
}

std::vector<logging::LogRecord>
mergeStream(const std::vector<logging::LogRecord> &records,
            const ShippingConfig &config)
{
    std::vector<ArrivedRecord> arrived = shipToCollector(records, config);
    std::vector<logging::LogRecord> out;
    out.reserve(arrived.size());
    for (ArrivedRecord &a : arrived)
        out.push_back(std::move(a.record));
    return out;
}

std::size_t
countInversions(const std::vector<logging::LogRecord> &stream)
{
    std::size_t inversions = 0;
    for (std::size_t i = 1; i < stream.size(); ++i) {
        if (stream[i].timestamp < stream[i - 1].timestamp)
            ++inversions;
    }
    return inversions;
}

InversionStats
countInversionsDetailed(const std::vector<logging::LogRecord> &stream)
{
    InversionStats stats;
    for (std::size_t i = 1; i < stream.size(); ++i) {
        if (stream[i].timestamp < stream[i - 1].timestamp) {
            ++stats.total;
            ++stats.byNodePair[{stream[i - 1].node, stream[i].node}];
        }
    }
    return stats;
}

} // namespace cloudseer::collect
