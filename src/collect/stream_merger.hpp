/**
 * @file
 * The Logstash stand-in: ships per-node logs to one central stream.
 *
 * Each record's arrival at the central collector is its emission
 * timestamp plus a sampled shipping delay. Sorting by arrival therefore
 * yields a stream that is *mostly* timestamp-ordered, with occasional
 * cross-node inversions — exactly the message-delivery reordering the
 * paper's divergence-recovery cause (d) exists for.
 */

#ifndef CLOUDSEER_COLLECT_STREAM_MERGER_HPP
#define CLOUDSEER_COLLECT_STREAM_MERGER_HPP

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "logging/log_record.hpp"

namespace cloudseer::collect {

/** Shipping-delay model. */
struct ShippingConfig
{
    /** Mean shipping delay, seconds (exponential). Small relative to
     *  inter-step service latencies, as with a healthy log shipper. */
    double meanDelay = 0.004;

    /** Probability a record takes a slow path (loaded shipper). */
    double tailProbability = 0.0;

    /** Extra delay bounds for slow-path records, seconds. */
    double tailMin = 0.2;
    double tailMax = 1.0;

    std::uint64_t seed = 7;
};

/** A record paired with its arrival time at the collector. */
struct ArrivedRecord
{
    logging::LogRecord record;
    common::SimTime arrival = 0.0;
};

/**
 * Ship records to the central collector.
 *
 * @param records Records in emission order.
 * @param config  Shipping-delay model.
 * @return Records in arrival order (stable for arrival ties: records
 *         with exactly equal arrival times keep their emission order,
 *         see sortByArrival).
 */
std::vector<ArrivedRecord>
shipToCollector(const std::vector<logging::LogRecord> &records,
                const ShippingConfig &config);

/**
 * Sort a shipped batch into collector order. The order is total and
 * deterministic: ascending arrival time, with exact arrival ties kept
 * in the input (emission) order — a collector cannot distinguish
 * same-instant arrivals, so the tie-break must not depend on content.
 */
void sortByArrival(std::vector<ArrivedRecord> &arrived);

/** Convenience: arrival-ordered records without the arrival times. */
std::vector<logging::LogRecord>
mergeStream(const std::vector<logging::LogRecord> &records,
            const ShippingConfig &config);

/**
 * Count inversions relative to emission-timestamp order — a measure of
 * how much reordering a shipping configuration introduces.
 */
std::size_t
countInversions(const std::vector<logging::LogRecord> &stream);

/**
 * Inversion counts broken down by the node pair involved. The
 * resilience harness uses the per-pair counts to attribute reordering
 * to cross-node clock skew (one skewed node dominates every pair it
 * appears in) versus shipping jitter (spread evenly).
 */
struct InversionStats
{
    /** Adjacent-pair inversions, as countInversions. */
    std::size_t total = 0;

    /**
     * Inversions keyed by (earlier-arriving node, later-arriving
     * node) — the first element emitted *later* but arrived first.
     */
    std::map<std::pair<std::string, std::string>, std::size_t>
        byNodePair;
};

/** Count inversions with the per-node-pair breakdown. */
InversionStats
countInversionsDetailed(const std::vector<logging::LogRecord> &stream);

} // namespace cloudseer::collect

#endif // CLOUDSEER_COLLECT_STREAM_MERGER_HPP
