/**
 * @file
 * The Logstash stand-in: ships per-node logs to one central stream.
 *
 * Each record's arrival at the central collector is its emission
 * timestamp plus a sampled shipping delay. Sorting by arrival therefore
 * yields a stream that is *mostly* timestamp-ordered, with occasional
 * cross-node inversions — exactly the message-delivery reordering the
 * paper's divergence-recovery cause (d) exists for.
 */

#ifndef CLOUDSEER_COLLECT_STREAM_MERGER_HPP
#define CLOUDSEER_COLLECT_STREAM_MERGER_HPP

#include <cstdint>
#include <vector>

#include "logging/log_record.hpp"

namespace cloudseer::collect {

/** Shipping-delay model. */
struct ShippingConfig
{
    /** Mean shipping delay, seconds (exponential). Small relative to
     *  inter-step service latencies, as with a healthy log shipper. */
    double meanDelay = 0.004;

    /** Probability a record takes a slow path (loaded shipper). */
    double tailProbability = 0.0;

    /** Extra delay bounds for slow-path records, seconds. */
    double tailMin = 0.2;
    double tailMax = 1.0;

    std::uint64_t seed = 7;
};

/** A record paired with its arrival time at the collector. */
struct ArrivedRecord
{
    logging::LogRecord record;
    common::SimTime arrival = 0.0;
};

/**
 * Ship records to the central collector.
 *
 * @param records Records in emission order.
 * @param config  Shipping-delay model.
 * @return Records in arrival order (stable for arrival ties).
 */
std::vector<ArrivedRecord>
shipToCollector(const std::vector<logging::LogRecord> &records,
                const ShippingConfig &config);

/** Convenience: arrival-ordered records without the arrival times. */
std::vector<logging::LogRecord>
mergeStream(const std::vector<logging::LogRecord> &records,
            const ShippingConfig &config);

/**
 * Count inversions relative to emission-timestamp order — a measure of
 * how much reordering a shipping configuration introduces.
 */
std::size_t
countInversions(const std::vector<logging::LogRecord> &stream);

} // namespace cloudseer::collect

#endif // CLOUDSEER_COLLECT_STREAM_MERGER_HPP
