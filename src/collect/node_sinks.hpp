/**
 * @file
 * Per-node, per-service log files — the on-disk reality the shipper
 * tails.
 *
 * OpenStack writes one log file per service per node
 * (/var/log/nova/nova-compute.log on each compute node, ...). The
 * simulator emits a single emission-ordered record vector; NodeSinks
 * partitions it back into those per-file sequences, and the k-way
 * merger reassembles a collector stream from the files — the path a
 * real Logstash deployment takes. Round-tripping through sinks is
 * exercised by tests and the wire-replay example.
 */

#ifndef CLOUDSEER_COLLECT_NODE_SINKS_HPP
#define CLOUDSEER_COLLECT_NODE_SINKS_HPP

#include <map>
#include <string>
#include <vector>

#include "logging/log_record.hpp"

namespace cloudseer::collect {

/** Identity of one log file: (node, service). */
struct SinkKey
{
    std::string node;
    std::string service;

    bool
    operator<(const SinkKey &other) const
    {
        if (node != other.node)
            return node < other.node;
        return service < other.service;
    }

    bool operator==(const SinkKey &other) const = default;
};

/** Partitioned per-file view of a deployment's logs. */
class NodeSinks
{
  public:
    /** Route one record to its file. */
    void append(const logging::LogRecord &record);

    /** Route a whole stream. */
    void appendStream(const std::vector<logging::LogRecord> &records);

    /** All files (key -> records in append order). */
    const std::map<SinkKey, std::vector<logging::LogRecord>> &
    files() const
    {
        return sinks;
    }

    /** Records of one file (empty vector if absent). */
    const std::vector<logging::LogRecord> &
    file(const std::string &node, const std::string &service) const;

    /** Number of files. */
    std::size_t fileCount() const { return sinks.size(); }

    /** Total records across files. */
    std::size_t recordCount() const;

    /** Render one file as text lines. */
    std::vector<std::string> toLines(const SinkKey &key) const;

    /**
     * K-way merge of all files by timestamp (stable across files in
     * key order for equal timestamps) — the central collector's view
     * when shipping is instantaneous. Apply `shipToCollector` on top
     * for delivery skew.
     */
    std::vector<logging::LogRecord> mergeByTimestamp() const;

  private:
    std::map<SinkKey, std::vector<logging::LogRecord>> sinks;

    static const std::vector<logging::LogRecord> kEmpty;
};

} // namespace cloudseer::collect

#endif // CLOUDSEER_COLLECT_NODE_SINKS_HPP
