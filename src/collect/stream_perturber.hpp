/**
 * @file
 * Transport adversity: seeded, ground-truthed perturbation of an
 * arrival-ordered log stream.
 *
 * shipToCollector models a *healthy* shipper (benign exponential
 * delay). Real collectors also face dropped records, re-delivered
 * duplicates, truncated or corrupted wire lines, per-node clock skew
 * and drift, and burst loss across log rotations. StreamPerturber
 * injects exactly those faults between the merged stream and the
 * monitor, mirroring FaultInjector's design: an enum of fault kinds,
 * a per-run ground-truth PerturbationRecord trail, and a
 * deterministic RNG so every adversity run replays from its seed.
 */

#ifndef CLOUDSEER_COLLECT_STREAM_PERTURBER_HPP
#define CLOUDSEER_COLLECT_STREAM_PERTURBER_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "logging/log_record.hpp"

namespace cloudseer::collect {

/** Transport-fault kinds the perturber can inject. */
enum class PerturbationKind
{
    Drop,      ///< record lost in transport
    Duplicate, ///< record re-delivered later (at-least-once shipper)
    Truncate,  ///< wire line cut short mid-byte-stream
    Corrupt,   ///< wire line bytes mangled in flight
    ClockSkew, ///< a node's clock offset/drift applied (one per node)
    BurstLoss, ///< contiguous run of records lost (log rotation gap)
};

/** Canonical token ("DROP", ...). */
const char *perturbationKindName(PerturbationKind kind);

/** Intensity knobs; every probability is per record. */
struct PerturbationConfig
{
    /** Chance a record is silently dropped. */
    double dropProbability = 0.0;

    /** Chance a record is re-delivered later in the stream. */
    double duplicateProbability = 0.0;

    /** Records between the original and its re-delivery (uniform). */
    int duplicateLagMin = 1;
    int duplicateLagMax = 16;

    /** Chance a wire line is truncated (wire path only). */
    double truncateProbability = 0.0;

    /** Chance a wire line is corrupted (wire path only). */
    double corruptProbability = 0.0;

    /**
     * Per-node clock offset magnitude, seconds: each node draws a
     * fixed offset uniformly from [-max, +max] once.
     */
    double clockSkewMaxSeconds = 0.0;

    /**
     * Per-node drift rate magnitude, seconds of error per second of
     * stream time, drawn uniformly from [-max, +max] per node.
     */
    double clockDriftMaxPerSecond = 0.0;

    /** Chance a loss burst starts at a record. */
    double burstProbability = 0.0;

    /** Burst length bounds, records (uniform). */
    int burstLengthMin = 4;
    int burstLengthMax = 20;

    std::uint64_t seed = 1;

    /** All probabilities and skew magnitudes scaled by `factor`
     *  (lag/length bounds and the seed are left alone) — the knob the
     *  resilience harness sweeps. */
    PerturbationConfig scaled(double factor) const;

    /** True when every fault channel is disabled. */
    bool inert() const;
};

/** Ground truth for one injected fault. */
struct PerturbationRecord
{
    PerturbationKind kind = PerturbationKind::Drop;

    /** Affected record (0 for per-node ClockSkew entries). */
    logging::RecordId record = 0;

    /** Node involved (ClockSkew, and convenience elsewhere). */
    std::string node;

    /** Emission timestamp of the affected record (pre-skew). */
    common::SimTime time = 0.0;

    /**
     * Kind-specific magnitude: skew offset seconds (ClockSkew), kept
     * fraction of the line (Truncate), burst length in records
     * (BurstLoss), re-delivery lag in records (Duplicate).
     */
    double amount = 0.0;
};

/** Per-kind tallies plus the stream the faults produced. */
struct PerturbedStream
{
    /**
     * Record-path view: arrival order after drop / duplication /
     * burst loss / clock skew. Truncation and corruption are
     * wire-level faults and do not appear here.
     */
    std::vector<logging::LogRecord> records;

    /**
     * Wire-path view: one encoded line per element of `records`,
     * with truncation/corruption applied on top. Feed these through
     * WorkflowMonitor::feedLine to exercise the full ingest path.
     */
    std::vector<std::string> lines;

    /** Ground truth of every injected fault, in stream order. */
    std::vector<PerturbationRecord> events;

    std::size_t dropped = 0;    ///< Drop + BurstLoss records lost
    std::size_t duplicated = 0;
    std::size_t truncated = 0;
    std::size_t corrupted = 0;

    /** Per-node clock offset actually applied (constant part). */
    std::map<std::string, double> nodeSkew;
};

/** Applies one PerturbationConfig to arrival-ordered streams. */
class StreamPerturber
{
  public:
    explicit StreamPerturber(const PerturbationConfig &config);

    /**
     * Perturb one arrival-ordered stream. Deterministic: equal
     * (config, input) pairs produce equal outputs. With an inert
     * config the records pass through untouched and each line is
     * exactly encodeLogLine(record).
     */
    PerturbedStream apply(
        const std::vector<logging::LogRecord> &arrival_ordered);

  private:
    PerturbationConfig config;
};

} // namespace cloudseer::collect

#endif // CLOUDSEER_COLLECT_STREAM_PERTURBER_HPP
