#include "sim/fault_injector.hpp"

#include <algorithm>

namespace cloudseer::sim {

const std::array<InjectionPoint, 6> kAllInjectionPoints = {
    InjectionPoint::AmqpSender,  InjectionPoint::AmqpReceiver,
    InjectionPoint::ImageCreate, InjectionPoint::ImageDelete,
    InjectionPoint::WsgiClient,  InjectionPoint::WsgiServer,
};

const char *
injectionPointName(InjectionPoint point)
{
    switch (point) {
      case InjectionPoint::None: return "None";
      case InjectionPoint::AmqpSender: return "AMQP-Sender";
      case InjectionPoint::AmqpReceiver: return "AMQP-Receiver";
      case InjectionPoint::ImageCreate: return "Image-Create";
      case InjectionPoint::ImageDelete: return "Image-Delete";
      case InjectionPoint::WsgiClient: return "WSGI-Client";
      case InjectionPoint::WsgiServer: return "WSGI-Server";
    }
    return "None";
}

const char *
problemTypeName(ProblemType type)
{
    switch (type) {
      case ProblemType::None: return "None";
      case ProblemType::Delay: return "Delay";
      case ProblemType::Abort: return "Abort";
      case ProblemType::Silent: return "Silent";
    }
    return "None";
}

FaultInjector::FaultInjector(InjectionPoint enabled_point,
                             double trigger_probability,
                             double error_message_probability,
                             std::uint64_t seed,
                             std::size_t max_problems)
    : point(enabled_point),
      triggerProbability(trigger_probability),
      errorMessageProbability(error_message_probability),
      maxProblems(max_problems),
      rng(seed)
{
}

FaultInjector::FaultInjector()
    : rng(0)
{
}

bool
FaultInjector::alreadyAffected(logging::ExecutionId exec) const
{
    return std::find(affected.begin(), affected.end(), exec) !=
           affected.end();
}

ProblemType
FaultInjector::evaluate(InjectionPoint at, logging::ExecutionId exec,
                        common::SimTime now)
{
    if (point == InjectionPoint::None || at != point)
        return ProblemType::None;
    if (history.size() >= maxProblems)
        return ProblemType::None;
    if (alreadyAffected(exec))
        return ProblemType::None;
    if (!rng.chance(triggerProbability))
        return ProblemType::None;

    static const ProblemType kTypes[3] = {
        ProblemType::Delay, ProblemType::Abort, ProblemType::Silent};
    ProblemType type = kTypes[rng.uniformInt(0, 2)];
    affected.push_back(exec);
    history.push_back({exec, point, type, now, false});
    return type;
}

bool
FaultInjector::rollErrorMessage()
{
    return rng.chance(errorMessageProbability);
}

void
FaultInjector::markErrorEmitted(logging::ExecutionId exec)
{
    for (auto it = history.rbegin(); it != history.rend(); ++it) {
        if (it->execution == exec) {
            it->emittedError = true;
            return;
        }
    }
}

} // namespace cloudseer::sim
