/**
 * @file
 * Static topology of the simulated OpenStack deployment.
 *
 * Mirrors the paper's test bed (§5.1): one controller node (nova-api,
 * keystone, nova-scheduler, nova-conductor, glance), one network node,
 * and three compute nodes (nova-compute + hypervisor each).
 */

#ifndef CLOUDSEER_SIM_CLUSTER_HPP
#define CLOUDSEER_SIM_CLUSTER_HPP

#include <string>
#include <vector>

#include "common/rng.hpp"

namespace cloudseer::sim {

/** Where a workflow step runs. */
enum class NodeRole
{
    Controller,       ///< controller node
    Network,          ///< network node
    Compute,          ///< the compute node assigned to the VM
};

/** One server node of the deployment. */
struct Node
{
    std::string name;  ///< e.g. "compute-1"
    std::string ip;    ///< management IP
};

/** Five-node deployment: controller, network, compute-1..3. */
class Cluster
{
  public:
    /** Build the topology; node IPs are drawn deterministically. */
    explicit Cluster(common::Rng &rng);

    /** The controller node. */
    const Node &controller() const { return controllerNode; }

    /** The network node. */
    const Node &network() const { return networkNode; }

    /** All compute nodes. */
    const std::vector<Node> &computes() const { return computeNodes; }

    /** Pick a compute node for a new VM (uniform, like a fresh cloud). */
    const Node &pickCompute(common::Rng &rng) const;

    /** Human-readable topology summary (examples print this). */
    std::string describe() const;

  private:
    Node controllerNode;
    Node networkNode;
    std::vector<Node> computeNodes;
};

} // namespace cloudseer::sim

#endif // CLOUDSEER_SIM_CLUSTER_HPP
