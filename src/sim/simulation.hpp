/**
 * @file
 * The simulated OpenStack deployment: executes task workflows over a
 * discrete-event queue, emits log records, applies fault injection, and
 * keeps exact ground truth for evaluation.
 */

#ifndef CLOUDSEER_SIM_SIMULATION_HPP
#define CLOUDSEER_SIM_SIMULATION_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "logging/log_record.hpp"
#include "sim/cluster.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault_injector.hpp"
#include "sim/flows.hpp"
#include "sim/ground_truth.hpp"
#include "sim/task_type.hpp"

namespace cloudseer::sim {

/** A cloud user as seen in logs: user/tenant UUIDs plus a client IP. */
struct UserProfile
{
    std::string userId;
    std::string tenantId;
    std::string clientIp;
};

/** A VM's identity; the compute placement is fixed at first boot. */
struct VmHandle
{
    std::string instanceId;
    std::string imageId;
    std::string computeNode;
    std::string computeIp;
};

/** Tunables of the simulated deployment. */
struct SimConfig
{
    /**
     * Multiplies every step latency. The default is calibrated so a
     * boot spans ~8 s and action tasks ~2-3 s — matching the paper's
     * test bed, where tasks filled most of the 15 s inter-task wait
     * (its Table 5 reports 48-80% of sequences interleaved).
     */
    double latencyScale = 2.5;

    /** Emit periodic background messages (audits, host status). */
    bool enableNoise = true;

    /** Period of background noise per source, seconds. */
    double noisePeriod = 10.0;

    /** Injected delay bounds, seconds (beyond the 10 s timeout). */
    double delayMin = 15.0;
    double delayMax = 30.0;
};

/**
 * One simulated deployment run. Typical use: construct, create users
 * and VMs, submit tasks at chosen times, run(), then take the records
 * and ground truth.
 */
class Simulation
{
  public:
    /** Invoked synchronously on every emitted record (live tailing). */
    using EmissionCallback =
        std::function<void(const logging::LogRecord &)>;

    /** @param seed Master seed; everything derives from it. */
    Simulation(const SimConfig &config, std::uint64_t seed);

    /** Enable fault injection for this run (default: disabled). */
    void setInjector(FaultInjector injector);

    /**
     * Register a live tail: the callback fires at each emission, in
     * simulated-time order, while the run progresses — what a log
     * shipper tailing the files sees. Records still accumulate in
     * records() regardless.
     */
    void setEmissionCallback(EmissionCallback callback);

    /** Create a user with fresh identifiers. */
    UserProfile makeUser();

    /** The single shared profile for the paper's single-UID groups. */
    const UserProfile &sharedUser();

    /** Create a VM identity (placement decided at boot). */
    VmHandle makeVm();

    /**
     * Submit a task for execution at simulated time `when`.
     *
     * @return The ground-truth execution id.
     */
    logging::ExecutionId submit(TaskType type, common::SimTime when,
                                const UserProfile &user, VmHandle &vm);

    /** Run the event queue to completion. */
    void run();

    /** Records in emission (timestamp) order; the ledger keeps a copy. */
    const std::vector<logging::LogRecord> &records() const
    {
        return emitted;
    }

    /** Exact ground truth of this run. */
    const GroundTruth &truth() const { return groundTruth; }

    /** The injector (valid after setInjector; default disabled). */
    const FaultInjector &injector() const { return faultInjector; }

    /** Deployment topology. */
    const Cluster &cluster() const { return topology; }

    /** Underlying event queue (tests drive partial runs through it). */
    EventQueue &queue() { return events; }

  private:
    /** Mutable per-execution workflow state. */
    struct FlowRun
    {
        const FlowSpec *spec = nullptr;
        TaskContext ctx;
        logging::ExecutionId exec = 0;
        std::vector<int> remainingDeps;
        std::vector<std::vector<int>> dependents;
        std::vector<char> fired;
        bool cancelled = false;
        std::size_t keyEmitted = 0;
        std::size_t keyTotal = 0;
    };

    SimConfig config;
    common::Rng rng;
    Cluster topology;
    EventQueue events;
    GroundTruth groundTruth;
    FaultInjector faultInjector;
    EmissionCallback onEmission;
    std::vector<logging::LogRecord> emitted;
    std::vector<std::unique_ptr<FlowRun>> runs;
    std::unique_ptr<UserProfile> sharedProfile;
    logging::RecordId nextRecordId = 1;
    std::uint64_t pendingWork = 0;
    bool noiseScheduled = false;
    std::size_t noiseRotation = 0;

    void startFlow(FlowRun &run);
    void scheduleStep(FlowRun &run, int index);
    void fireStep(FlowRun &run, int index);
    void completeStep(FlowRun &run, int index);
    void emitRecord(const FlowRun &run, const FlowStep &step,
                    logging::LogLevel level, std::string body);
    void emitNoise();
    void scheduleNoise();
    const std::string &nodeNameFor(const FlowRun &run,
                                   NodeRole role) const;
};

} // namespace cloudseer::sim

#endif // CLOUDSEER_SIM_SIMULATION_HPP
