/**
 * @file
 * Discrete-event scheduler driving the simulated cluster.
 */

#ifndef CLOUDSEER_SIM_EVENT_QUEUE_HPP
#define CLOUDSEER_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/time_util.hpp"

namespace cloudseer::sim {

/**
 * Min-heap of timed callbacks. Ties on time break on insertion order so
 * runs are fully deterministic.
 */
class EventQueue
{
  public:
    using Action = std::function<void()>;

    /** Schedule an action at absolute simulated time t (>= now). */
    void schedule(common::SimTime t, Action action);

    /** Schedule an action after a relative delay (>= 0). */
    void scheduleAfter(common::SimTime delay, Action action);

    /** Current simulated time (time of the event being processed). */
    common::SimTime now() const { return currentTime; }

    /** Run until the queue drains. */
    void run();

    /** Run until the queue drains or time exceeds the horizon. */
    void runUntil(common::SimTime horizon);

    /** Number of events executed so far. */
    std::uint64_t executedEvents() const { return executed; }

    /** True when no events remain. */
    bool empty() const { return heap.empty(); }

  private:
    struct Entry
    {
        common::SimTime time;
        std::uint64_t sequence;
        Action action;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.sequence > b.sequence;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap;
    common::SimTime currentTime = 0.0;
    std::uint64_t nextSequence = 0;
    std::uint64_t executed = 0;
};

} // namespace cloudseer::sim

#endif // CLOUDSEER_SIM_EVENT_QUEUE_HPP
