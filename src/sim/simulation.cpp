#include "sim/simulation.hpp"

#include "common/error.hpp"
#include "common/uuid.hpp"

namespace cloudseer::sim {

Simulation::Simulation(const SimConfig &config_, std::uint64_t seed)
    : config(config_), rng(seed), topology(rng)
{
}

void
Simulation::setInjector(FaultInjector injector)
{
    faultInjector = std::move(injector);
}

void
Simulation::setEmissionCallback(EmissionCallback callback)
{
    onEmission = std::move(callback);
}

UserProfile
Simulation::makeUser()
{
    return {common::makeUuid(rng), common::makeUuid(rng),
            common::makeIp(rng)};
}

const UserProfile &
Simulation::sharedUser()
{
    if (!sharedProfile)
        sharedProfile = std::make_unique<UserProfile>(makeUser());
    return *sharedProfile;
}

VmHandle
Simulation::makeVm()
{
    VmHandle vm;
    vm.instanceId = common::makeUuid(rng);
    vm.imageId = common::makeUuid(rng);
    return vm;
}

logging::ExecutionId
Simulation::submit(TaskType type, common::SimTime when,
                   const UserProfile &user, VmHandle &vm)
{
    if (vm.computeNode.empty()) {
        const Node &host = topology.pickCompute(rng);
        vm.computeNode = host.name;
        vm.computeIp = host.ip;
    }

    auto run = std::make_unique<FlowRun>();
    run->spec = &flowFor(type);
    run->exec = groundTruth.beginExecution(type, user.userId,
                                           vm.instanceId, when);
    run->ctx.requestId = common::makeUuid(rng);
    run->ctx.userId = user.userId;
    run->ctx.tenantId = user.tenantId;
    run->ctx.clientIp = user.clientIp;
    run->ctx.instanceId = vm.instanceId;
    run->ctx.imageId = vm.imageId;
    run->ctx.computeNode = vm.computeNode;
    run->ctx.computeIp = vm.computeIp;

    const std::vector<FlowStep> &steps = run->spec->steps;
    run->remainingDeps.resize(steps.size());
    run->dependents.resize(steps.size());
    run->fired.assign(steps.size(), 0);
    for (std::size_t i = 0; i < steps.size(); ++i) {
        run->remainingDeps[i] = static_cast<int>(steps[i].deps.size());
        for (int dep : steps[i].deps)
            run->dependents[dep].push_back(static_cast<int>(i));
        if (!steps[i].variablePoll)
            ++run->keyTotal;
    }

    FlowRun *raw = run.get();
    runs.push_back(std::move(run));
    ++pendingWork;
    events.schedule(when, [this, raw] {
        --pendingWork;
        startFlow(*raw);
    });
    if (config.enableNoise && !noiseScheduled) {
        noiseScheduled = true;
        events.schedule(when + rng.uniformReal(0.0, config.noisePeriod),
                        [this] { emitNoise(); });
    }
    return raw->exec;
}

void
Simulation::startFlow(FlowRun &run)
{
    for (std::size_t i = 0; i < run.spec->steps.size(); ++i) {
        if (run.remainingDeps[i] == 0)
            scheduleStep(run, static_cast<int>(i));
    }
}

void
Simulation::scheduleStep(FlowRun &run, int index)
{
    const FlowStep &step =
        run.spec->steps[static_cast<std::size_t>(index)];
    double latency =
        (0.02 + rng.expDelay(step.meanLatency)) * config.latencyScale;
    ++pendingWork;
    events.scheduleAfter(latency, [this, &run, index] {
        --pendingWork;
        fireStep(run, index);
    });
}

void
Simulation::fireStep(FlowRun &run, int index)
{
    if (run.cancelled)
        return;
    const FlowStep &step =
        run.spec->steps[static_cast<std::size_t>(index)];

    for (InjectionPoint site : step.sites) {
        ProblemType problem =
            faultInjector.evaluate(site, run.exec, events.now());
        if (problem == ProblemType::None)
            continue;
        switch (problem) {
          case ProblemType::Delay: {
            // Performance problem: the step (and everything after it)
            // happens late, beyond the monitoring timeout.
            groundTruth.noteDelayed(run.exec);
            double delay = rng.uniformReal(config.delayMin,
                                           config.delayMax);
            ++pendingWork;
            events.scheduleAfter(delay, [this, &run, index] {
                --pendingWork;
                fireStep(run, index);
            });
            return;
          }
          case ProblemType::Abort: {
            // Unexpected exception: the execution dies here; an ERROR
            // message accompanies it only sometimes (paper §5.6 found
            // most injected problems had no error message).
            groundTruth.noteAborted(run.exec);
            run.cancelled = true;
            if (faultInjector.rollErrorMessage()) {
                emitRecord(run, step, logging::LogLevel::Error,
                           "[req-" + run.ctx.requestId +
                               "] Unexpected error while processing "
                               "instance " +
                               run.ctx.instanceId + ": RemoteError");
                faultInjector.markErrorEmitted(run.exec);
            }
            return;
          }
          case ProblemType::Silent: {
            // Ignored request / wrong I/O status: downstream messages
            // silently never appear.
            groundTruth.noteSilentDrop(run.exec);
            run.cancelled = true;
            return;
          }
          case ProblemType::None:
            break;
        }
    }

    if (step.variablePoll) {
        // 0..3 extra occurrences; never key messages, no dependents.
        int copies = rng.uniformInt(0, 3);
        for (int i = 0; i < copies; ++i) {
            double offset = i * 0.8 + rng.uniformReal(0.0, 0.3);
            ++pendingWork;
            events.scheduleAfter(offset, [this, &run, index] {
                --pendingWork;
                if (run.cancelled)
                    return;
                const FlowStep &poll =
                    run.spec->steps[static_cast<std::size_t>(index)];
                emitRecord(run, poll, logging::LogLevel::Info,
                           poll.body(run.ctx));
            });
        }
        completeStep(run, index);
        return;
    }

    emitRecord(run, step, logging::LogLevel::Info, step.body(run.ctx));
    ++run.keyEmitted;
    if (run.keyEmitted == run.keyTotal)
        groundTruth.noteCompleted(run.exec);
    completeStep(run, index);
}

void
Simulation::completeStep(FlowRun &run, int index)
{
    run.fired[static_cast<std::size_t>(index)] = 1;
    for (int next : run.dependents[static_cast<std::size_t>(index)]) {
        if (--run.remainingDeps[static_cast<std::size_t>(next)] == 0)
            scheduleStep(run, next);
    }
}

const std::string &
Simulation::nodeNameFor(const FlowRun &run, NodeRole role) const
{
    switch (role) {
      case NodeRole::Controller:
        return topology.controller().name;
      case NodeRole::Network:
        return topology.network().name;
      case NodeRole::Compute:
        return run.ctx.computeNode;
    }
    return topology.controller().name;
}

void
Simulation::emitRecord(const FlowRun &run, const FlowStep &step,
                       logging::LogLevel level, std::string body)
{
    logging::LogRecord record;
    record.id = nextRecordId++;
    record.timestamp = events.now();
    record.node = nodeNameFor(run, step.role);
    record.service = step.service;
    record.level = level;
    record.body = std::move(body);
    record.truthExecution = run.exec;
    record.truthTask = taskTypeName(run.spec->type);
    groundTruth.noteEmission(run.exec, record.timestamp);
    emitted.push_back(std::move(record));
    if (onEmission)
        onEmission(emitted.back());
}

void
Simulation::emitNoise()
{
    if (pendingWork == 0)
        return; // all task work done; stop the background chatter

    // Rotate among background sources across the deployment.
    const std::vector<Node> &computes = topology.computes();
    std::size_t slot = noiseRotation++ % (computes.size() + 1);

    logging::LogRecord record;
    record.id = nextRecordId++;
    record.timestamp = events.now();
    record.level = logging::LogLevel::Info;
    if (slot < computes.size()) {
        record.node = computes[slot].name;
        record.service = "nova-compute";
        record.body = "Auditing locally available compute resources";
    } else {
        record.node = topology.controller().name;
        record.service = "nova-conductor";
        record.body = "Periodic task update_available_resource completed";
    }
    emitted.push_back(std::move(record));
    if (onEmission)
        onEmission(emitted.back());

    events.scheduleAfter(
        config.noisePeriod / static_cast<double>(computes.size() + 1) +
            rng.uniformReal(0.0, 0.5),
        [this] { emitNoise(); });
}

void
Simulation::run()
{
    events.run();
}

} // namespace cloudseer::sim
