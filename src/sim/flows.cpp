#include "sim/flows.hpp"

#include <array>

#include "common/error.hpp"

namespace cloudseer::sim {

namespace {

// Service-name constants keep flow definitions typo-proof.
const std::string kApi = "nova-api";
const std::string kKeystone = "keystone";
const std::string kScheduler = "nova-scheduler";
const std::string kConductor = "nova-conductor";
const std::string kCompute = "nova-compute";
const std::string kGlance = "glance";
const std::string kNeutron = "neutron";
const std::string kHypervisor = "hypervisor";

std::string
req(const TaskContext &c)
{
    return "[req-" + c.requestId + "]";
}

/** Step helper: sequential dependency on the previous step. */
FlowStep
step(std::string service, NodeRole role, std::vector<int> deps,
     double mean_latency, BodyFn body,
     std::vector<InjectionPoint> sites = {})
{
    FlowStep s;
    s.service = std::move(service);
    s.role = role;
    s.deps = std::move(deps);
    s.meanLatency = mean_latency;
    s.body = std::move(body);
    s.sites = std::move(sites);
    return s;
}

/**
 * The task-generic opener (paper Fig. 2 message 1: "api accepted
 * IP1"). Every task starts with the same template, so the checker's
 * automaton group initially tracks all candidate tasks and narrows on
 * the second message — the reason Algorithm 1 exists.
 */
BodyFn
acceptedBody()
{
    return [](const TaskContext &c) {
        return "Accepted server API request from " + c.clientIp;
    };
}

/** nova-api action POST line. */
BodyFn
actionPostBody(const char *action)
{
    std::string a = action;
    return [a](const TaskContext &c) {
        return req(c) + " " + c.clientIp + " \"POST /v2/" + c.tenantId +
               "/servers/" + c.instanceId + "/action (" + a +
               ") HTTP/1.1\" status: 202";
    };
}

/** keystone authentication line, shared by every task. */
BodyFn
keystoneAuthBody()
{
    return [](const TaskContext &c) {
        return "Authenticated request req-" + c.requestId + " for user " +
               c.userId + " tenant " + c.tenantId;
    };
}

/** hypervisor lifecycle callback, shared across tasks (paper Fig. 5). */
BodyFn
lifecycleBody(const char *event)
{
    std::string e = event;
    return [e](const TaskContext &c) {
        return "Instance " + c.instanceId + " VM lifecycle event: " + e;
    };
}

/** nova-conductor VM-state update, shared across tasks. */
BodyFn
conductorStateBody(const char *state)
{
    std::string s = state;
    return [s](const TaskContext &c) {
        return req(c) + " Updating instance " + c.instanceId +
               " state to " + s;
    };
}

/** nova-api final status GET, shared where the result state matches. */
BodyFn
stateGetBody(const char *result)
{
    std::string r = result;
    return [r](const TaskContext &c) {
        return req(c) + " " + c.clientIp + " \"GET /v2/" + c.tenantId +
               "/servers/" + c.instanceId +
               "/state HTTP/1.1\" status: 200 result " + r;
    };
}

FlowSpec
makeBootFlow()
{
    FlowSpec flow;
    flow.type = TaskType::Boot;
    auto &s = flow.steps;

    // 0: request arrives at nova-api (only the client IP is logged).
    s.push_back(step(kApi, NodeRole::Controller, {}, 0.05,
        acceptedBody()));
    // 1: the POST line introduces the request id and tenant.
    s.push_back(step(kApi, NodeRole::Controller, {0}, 0.08,
        [](const TaskContext &c) {
            return req(c) + " " + c.clientIp + " \"POST /v2/" + c.tenantId +
                   "/servers HTTP/1.1\" status: 202 len: 1748";
        }));
    // 2: keystone authentication.
    s.push_back(step(kKeystone, NodeRole::Controller, {1}, 0.06,
        keystoneAuthBody()));
    // 3: api allocates the instance UUID.
    s.push_back(step(kApi, NodeRole::Controller, {2}, 0.08,
        [](const TaskContext &c) {
            return req(c) + " Creating server instance " + c.instanceId +
                   " for tenant " + c.tenantId;
        }));
    // 4: conductor forwards the build request to the scheduler.
    s.push_back(step(kConductor, NodeRole::Controller, {3}, 0.08,
        [](const TaskContext &c) {
            return req(c) + " Forwarding build request for instance " +
                   c.instanceId + " to scheduler";
        }));
    // 5: scheduler picks up the RPC (AMQP boundary).
    s.push_back(step(kScheduler, NodeRole::Controller, {4}, 0.12,
        [](const TaskContext &c) {
            return req(c) + " Scheduling instance " + c.instanceId;
        },
        {InjectionPoint::AmqpSender, InjectionPoint::AmqpReceiver}));
    // 6: host selected; an asynchronous cast goes to nova-compute while
    //    the CLI starts polling nova-api — the fork of Figure 3.
    s.push_back(step(kScheduler, NodeRole::Controller, {5}, 0.10,
        [](const TaskContext &c) {
            return req(c) + " Instance " + c.instanceId +
                   " scheduled to host " + c.computeIp;
        }));

    // --- branch A: nova-api polling path -------------------------------
    // 7: first detail GET.
    s.push_back(step(kApi, NodeRole::Controller, {6}, 0.30,
        [](const TaskContext &c) {
            return req(c) + " " + c.clientIp + " \"GET /v2/" + c.tenantId +
                   "/servers/" + c.instanceId + " HTTP/1.1\" status: 200";
        }));
    // 8: instance-actions GET.
    s.push_back(step(kApi, NodeRole::Controller, {7}, 0.40,
        [](const TaskContext &c) {
            return req(c) + " " + c.clientIp + " \"GET /v2/" + c.tenantId +
                   "/servers/" + c.instanceId +
                   "/os-instance-actions HTTP/1.1\" status: 200";
        }));

    // --- branch B: nova-compute build path ------------------------------
    // 9: compute receives the build cast (AMQP boundary).
    s.push_back(step(kCompute, NodeRole::Compute, {6}, 0.15,
        [](const TaskContext &c) {
            return req(c) + " Received build request for instance " +
                   c.instanceId;
        },
        {InjectionPoint::AmqpSender, InjectionPoint::AmqpReceiver}));
    // 10: shared with the start task.
    s.push_back(step(kCompute, NodeRole::Compute, {9}, 0.10,
        [](const TaskContext &c) {
            return req(c) + " Starting instance " + c.instanceId;
        }));
    // 11: resource claim.
    s.push_back(step(kCompute, NodeRole::Compute, {10}, 0.10,
        [](const TaskContext &c) {
            return "Attempting claim for instance " + c.instanceId +
                   ": memory 2048 MB, disk 20 GB";
        }));
    // 12: claim granted; image and network branches fork here.
    s.push_back(step(kCompute, NodeRole::Compute, {11}, 0.08,
        [](const TaskContext &c) {
            return "Claim successful for instance " + c.instanceId;
        }));

    // --- branch B1: image fetch (WSGI + I/O injection sites) -----------
    // 13: compute asks glance for the image.
    s.push_back(step(kCompute, NodeRole::Compute, {12}, 0.10,
        [](const TaskContext &c) {
            return req(c) + " Fetching image " + c.imageId +
                   " for instance " + c.instanceId;
        }));
    // 14: glance serves it (WSGI boundary).
    s.push_back(step(kGlance, NodeRole::Controller, {13}, 0.20,
        [](const TaskContext &c) {
            return c.computeIp + " \"GET /v2/images/" + c.imageId +
                   " HTTP/1.1\" status: 200";
        },
        {InjectionPoint::WsgiClient, InjectionPoint::WsgiServer}));
    // 15: backing file creation (I/O injection site).
    s.push_back(step(kCompute, NodeRole::Compute, {14}, 0.50,
        [](const TaskContext &c) {
            return req(c) + " Creating image backing file for instance " +
                   c.instanceId;
        },
        {InjectionPoint::ImageCreate}));

    // --- branch B2: network allocation ---------------------------------
    // 16: neutron allocates.
    s.push_back(step(kNeutron, NodeRole::Network, {12}, 0.25,
        [](const TaskContext &c) {
            return "Allocating network for instance " + c.instanceId;
        }));
    // 17: port active.
    s.push_back(step(kNeutron, NodeRole::Network, {16}, 0.35,
        [](const TaskContext &c) {
            return "Port for instance " + c.instanceId + " is ACTIVE";
        }));

    // 18: hypervisor boots the VM (joins image + network branches);
    //     template shared with start/resume.
    s.push_back(step(kHypervisor, NodeRole::Compute, {15, 17}, 0.45,
        lifecycleBody("Started")));
    // 19: spawn confirmation.
    s.push_back(step(kCompute, NodeRole::Compute, {18}, 0.15,
        [](const TaskContext &c) {
            return req(c) + " Instance " + c.instanceId +
                   " spawned successfully on host " + c.computeIp;
        }));
    // 20: conductor state update (shared template).
    s.push_back(step(kConductor, NodeRole::Controller, {19}, 0.08,
        conductorStateBody("ACTIVE")));
    // 21: compute's final state line (shared with start).
    s.push_back(step(kCompute, NodeRole::Compute, {20}, 0.08,
        [](const TaskContext &c) {
            return "Instance " + c.instanceId +
                   " VM state ACTIVE, power state RUNNING";
        }));
    // 22: final api GET joins both top-level branches.
    s.push_back(step(kApi, NodeRole::Controller, {8, 21}, 0.12,
        stateGetBody("ACTIVE")));

    // 23: variable-count polling noise (filtered by preprocessing).
    FlowStep poll = step(kApi, NodeRole::Controller, {6}, 0.50,
        [](const TaskContext &c) {
            return req(c) + " " + c.clientIp + " \"GET /v2/" + c.tenantId +
                   "/servers/detail HTTP/1.1\" status: 200";
        });
    poll.variablePoll = true;
    s.push_back(poll);

    return flow;
}

FlowSpec
makeDeleteFlow()
{
    FlowSpec flow;
    flow.type = TaskType::Delete;
    auto &s = flow.steps;

    s.push_back(step(kApi, NodeRole::Controller, {}, 0.05,
        acceptedBody()));
    s.push_back(step(kApi, NodeRole::Controller, {0}, 0.08,
        [](const TaskContext &c) {
            return req(c) + " " + c.clientIp + " \"DELETE /v2/" +
                   c.tenantId + "/servers/" + c.instanceId +
                   " HTTP/1.1\" status: 204";
        }));
    s.push_back(step(kKeystone, NodeRole::Controller, {1}, 0.06,
        keystoneAuthBody()));
    s.push_back(step(kCompute, NodeRole::Compute, {2}, 0.15,
        [](const TaskContext &c) {
            return req(c) + " Terminating instance " + c.instanceId;
        },
        {InjectionPoint::AmqpSender, InjectionPoint::AmqpReceiver}));
    // 4 and 5 are concurrent: hypervisor shutdown vs file deletion.
    s.push_back(step(kHypervisor, NodeRole::Compute, {3}, 0.35,
        lifecycleBody("Stopped")));
    s.push_back(step(kCompute, NodeRole::Compute, {3}, 0.30,
        [](const TaskContext &c) {
            return req(c) + " Deleting instance files for instance " +
                   c.instanceId;
        },
        {InjectionPoint::ImageDelete}));
    s.push_back(step(kCompute, NodeRole::Compute, {5}, 0.25,
        [](const TaskContext &c) {
            return req(c) +
                   " Deletion of instance files complete for instance " +
                   c.instanceId;
        }));
    // 7: join (paper Fig. 5's "Instance destroyed" message).
    s.push_back(step(kCompute, NodeRole::Compute, {4, 6}, 0.10,
        [](const TaskContext &c) {
            return req(c) + " Instance " + c.instanceId +
                   " destroyed successfully";
        }));
    s.push_back(step(kConductor, NodeRole::Controller, {7}, 0.08,
        conductorStateBody("DELETED")));

    return flow;
}

/**
 * The five lightweight action tasks share one skeleton:
 * accepted -> POST action -> compute verb -> {hypervisor lifecycle ||
 * compute confirmation} -> conductor state [-> api GET].
 */
FlowSpec
makeActionFlow(TaskType type, const char *action,
               const char *compute_verb, const char *lifecycle_event,
               const char *confirm_text, const char *state,
               const char *final_get_result, bool compute_state_line)
{
    FlowSpec flow;
    flow.type = type;
    auto &s = flow.steps;

    s.push_back(step(kApi, NodeRole::Controller, {}, 0.05,
        acceptedBody()));
    s.push_back(step(kApi, NodeRole::Controller, {0}, 0.08,
        actionPostBody(action)));
    std::string cv = compute_verb;
    s.push_back(step(kCompute, NodeRole::Compute, {1}, 0.15,
        [cv](const TaskContext &c) {
            return req(c) + " " + cv + " instance " + c.instanceId;
        },
        {InjectionPoint::AmqpSender, InjectionPoint::AmqpReceiver}));
    // Concurrent: hypervisor callback vs compute confirmation.
    s.push_back(step(kHypervisor, NodeRole::Compute, {2}, 0.35,
        lifecycleBody(lifecycle_event)));
    std::string confirm = confirm_text;
    s.push_back(step(kCompute, NodeRole::Compute, {2}, 0.30,
        [confirm](const TaskContext &c) {
            return req(c) + " Instance " + c.instanceId + " " + confirm;
        }));
    s.push_back(step(kConductor, NodeRole::Controller, {3, 4}, 0.08,
        conductorStateBody(state)));
    if (compute_state_line) {
        s.push_back(step(kCompute, NodeRole::Compute, {5}, 0.08,
            [](const TaskContext &c) {
                return "Instance " + c.instanceId +
                       " VM state ACTIVE, power state RUNNING";
            }));
    } else if (final_get_result != nullptr) {
        s.push_back(step(kApi, NodeRole::Controller, {5}, 0.12,
            stateGetBody(final_get_result)));
    }

    return flow;
}

std::array<FlowSpec, kTaskTypeCount>
makeAllFlows()
{
    return {
        makeBootFlow(),
        makeDeleteFlow(),
        // start: 7 messages, compute state line shared with boot.
        makeActionFlow(TaskType::Start, "os-start", "Starting",
                       "Started", "powered on successfully", "ACTIVE",
                       nullptr, true),
        // stop: 6 messages.
        makeActionFlow(TaskType::Stop, "os-stop", "Stopping",
                       "Stopped", "powered off successfully", "STOPPED",
                       nullptr, false),
        // pause: 7 messages, final GET shows PAUSED.
        makeActionFlow(TaskType::Pause, "os-pause", "Pausing",
                       "Paused", "paused successfully", "PAUSED",
                       "PAUSED", false),
        // unpause: 7 messages, compute state line.
        makeActionFlow(TaskType::Unpause, "os-unpause",
                       "Unpausing", "Resumed", "unpaused successfully",
                       "ACTIVE", nullptr, true),
        // suspend: 6 messages.
        makeActionFlow(TaskType::Suspend, "os-suspend",
                       "Suspending", "Suspended",
                       "suspended, memory written to disk", "SUSPENDED",
                       nullptr, false),
        // resume: 7 messages, final GET shows ACTIVE (shared with boot).
        makeActionFlow(TaskType::Resume, "os-resume",
                       "Resuming", "Started", "resumed successfully",
                       "ACTIVE", "ACTIVE", false),
    };
}

} // namespace

const FlowSpec &
flowFor(TaskType type)
{
    static const std::array<FlowSpec, kTaskTypeCount> flows =
        makeAllFlows();
    std::size_t idx = static_cast<std::size_t>(type);
    CS_ASSERT(idx < flows.size(), "task type out of range");
    CS_ASSERT(flows[idx].type == type, "flow table order mismatch");
    return flows[idx];
}

std::size_t
keyMessageCount(TaskType type)
{
    const FlowSpec &flow = flowFor(type);
    std::size_t count = 0;
    for (const FlowStep &s : flow.steps) {
        if (!s.variablePoll)
            ++count;
    }
    return count;
}

} // namespace cloudseer::sim
