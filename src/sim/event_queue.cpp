#include "sim/event_queue.hpp"

#include "common/error.hpp"

namespace cloudseer::sim {

void
EventQueue::schedule(common::SimTime t, Action action)
{
    CS_ASSERT(t >= currentTime, "scheduling into the past");
    heap.push({t, nextSequence++, std::move(action)});
}

void
EventQueue::scheduleAfter(common::SimTime delay, Action action)
{
    if (delay < 0)
        delay = 0;
    schedule(currentTime + delay, std::move(action));
}

void
EventQueue::run()
{
    while (!heap.empty()) {
        // Copy out before pop so the action may schedule more events.
        Entry entry = heap.top();
        heap.pop();
        currentTime = entry.time;
        ++executed;
        entry.action();
    }
}

void
EventQueue::runUntil(common::SimTime horizon)
{
    while (!heap.empty() && heap.top().time <= horizon) {
        Entry entry = heap.top();
        heap.pop();
        currentTime = entry.time;
        ++executed;
        entry.action();
    }
}

} // namespace cloudseer::sim
