#include "sim/cluster.hpp"

#include "common/uuid.hpp"

namespace cloudseer::sim {

Cluster::Cluster(common::Rng &rng)
{
    controllerNode = {"controller", common::makeIp(rng)};
    networkNode = {"network", common::makeIp(rng)};
    for (int i = 1; i <= 3; ++i)
        computeNodes.push_back({"compute-" + std::to_string(i),
                                common::makeIp(rng)});
}

const Node &
Cluster::pickCompute(common::Rng &rng) const
{
    return rng.pick(computeNodes);
}

std::string
Cluster::describe() const
{
    std::string out;
    out += "controller (" + controllerNode.ip +
           "): nova-api keystone nova-scheduler nova-conductor glance\n";
    out += "network    (" + networkNode.ip + "): neutron\n";
    for (const Node &node : computeNodes) {
        out += node.name + "  (" + node.ip +
               "): nova-compute hypervisor\n";
    }
    return out;
}

} // namespace cloudseer::sim
