#include "sim/task_type.hpp"

namespace cloudseer::sim {

const std::array<TaskType, kTaskTypeCount> kAllTaskTypes = {
    TaskType::Boot,   TaskType::Delete,  TaskType::Start,
    TaskType::Stop,   TaskType::Pause,   TaskType::Unpause,
    TaskType::Suspend, TaskType::Resume,
};

const char *
taskTypeName(TaskType type)
{
    switch (type) {
      case TaskType::Boot: return "boot";
      case TaskType::Delete: return "delete";
      case TaskType::Start: return "start";
      case TaskType::Stop: return "stop";
      case TaskType::Pause: return "pause";
      case TaskType::Unpause: return "unpause";
      case TaskType::Suspend: return "suspend";
      case TaskType::Resume: return "resume";
    }
    return "unknown";
}

bool
parseTaskType(const std::string &name, TaskType &out)
{
    for (TaskType type : kAllTaskTypes) {
        if (name == taskTypeName(type)) {
            out = type;
            return true;
        }
    }
    return false;
}

} // namespace cloudseer::sim
