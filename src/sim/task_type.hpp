/**
 * @file
 * The eight primitive VM management tasks of the paper's Table 2.
 */

#ifndef CLOUDSEER_SIM_TASK_TYPE_HPP
#define CLOUDSEER_SIM_TASK_TYPE_HPP

#include <array>
#include <string>

namespace cloudseer::sim {

/** VM management tasks modelled and monitored (paper Table 2). */
enum class TaskType
{
    Boot,
    Delete,
    Start,
    Stop,
    Pause,
    Unpause,
    Suspend,
    Resume,
};

/** Number of task types. */
constexpr std::size_t kTaskTypeCount = 8;

/** All task types in Table 2 order. */
extern const std::array<TaskType, kTaskTypeCount> kAllTaskTypes;

/** Canonical task name ("boot", "delete", ...). */
const char *taskTypeName(TaskType type);

/**
 * Parse a task name.
 *
 * @param name Canonical name.
 * @param out  Receives the task type on success.
 * @retval true if the name was recognised.
 */
bool parseTaskType(const std::string &name, TaskType &out);

} // namespace cloudseer::sim

#endif // CLOUDSEER_SIM_TASK_TYPE_HPP
