/**
 * @file
 * Declarative workflow specifications for the eight VM tasks.
 *
 * Each task is a DAG of steps. A step waits for its dependencies, then
 * after a sampled service latency emits one log message from a specific
 * service on a specific node. Steps with a common dependency and no
 * mutual ordering run concurrently — this is what produces the paper's
 * in-sequence interleaving (asynchronous AMQP branches).
 */

#ifndef CLOUDSEER_SIM_FLOWS_HPP
#define CLOUDSEER_SIM_FLOWS_HPP

#include <functional>
#include <string>
#include <vector>

#include "sim/cluster.hpp"
#include "sim/fault_injector.hpp"
#include "sim/task_type.hpp"

namespace cloudseer::sim {

/**
 * Identifiers carried by one task execution. Deliberately non-unique
 * across messages: no single id appears in every message (paper §2.2).
 */
struct TaskContext
{
    std::string requestId;   ///< per-request UUID (nova req id)
    std::string userId;      ///< user UUID
    std::string tenantId;    ///< tenant/project UUID
    std::string instanceId;  ///< VM UUID (stable across the VM's life)
    std::string imageId;     ///< glance image UUID
    std::string clientIp;    ///< CLI client address
    std::string computeNode; ///< assigned compute node name
    std::string computeIp;   ///< assigned compute node IP
};

/** Builds a message body from the execution's identifiers. */
using BodyFn = std::function<std::string(const TaskContext &)>;

/** One step of a task workflow. */
struct FlowStep
{
    std::string service;          ///< emitting service ("nova-api", ...)
    NodeRole role;                ///< node the service runs on
    std::vector<int> deps;        ///< indices of prerequisite steps
    double meanLatency;           ///< seconds from ready to emission
    BodyFn body;                  ///< message body builder
    /**
     * Fault-injection sites crossed on the way into this step, in
     * crossing order (e.g. an RPC boundary contributes both the sender
     * and the receiver site to the receiving step).
     */
    std::vector<InjectionPoint> sites;
    /**
     * Poll steps re-emit a random number of extra copies (0..3). Their
     * occurrence count varies across executions, so preprocessing must
     * filter them — they model nova-api status polling.
     */
    bool variablePoll = false;
};

/** A full task workflow. */
struct FlowSpec
{
    TaskType type;
    std::vector<FlowStep> steps;
};

/** Get the (process-wide, immutable) workflow for a task. */
const FlowSpec &flowFor(TaskType type);

/** Number of key (non-poll) messages in a task's flow. */
std::size_t keyMessageCount(TaskType type);

} // namespace cloudseer::sim

#endif // CLOUDSEER_SIM_FLOWS_HPP
