#include "sim/ground_truth.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cloudseer::sim {

logging::ExecutionId
GroundTruth::beginExecution(TaskType type, const std::string &user_id,
                            const std::string &instance_id,
                            common::SimTime submitted)
{
    ExecutionInfo info;
    info.id = static_cast<logging::ExecutionId>(execs.size() + 1);
    info.type = type;
    info.userId = user_id;
    info.instanceId = instance_id;
    info.submitted = submitted;
    execs.push_back(std::move(info));
    return execs.back().id;
}

ExecutionInfo &
GroundTruth::mutableExecution(logging::ExecutionId exec)
{
    CS_ASSERT(exec >= 1 && exec <= execs.size(), "bad execution id");
    return execs[exec - 1];
}

const ExecutionInfo &
GroundTruth::execution(logging::ExecutionId exec) const
{
    CS_ASSERT(exec >= 1 && exec <= execs.size(), "bad execution id");
    return execs[exec - 1];
}

void
GroundTruth::noteEmission(logging::ExecutionId exec, common::SimTime t)
{
    ExecutionInfo &info = mutableExecution(exec);
    if (!info.anyEmission) {
        info.firstEmit = t;
        info.lastEmit = t;
        info.anyEmission = true;
    } else {
        info.firstEmit = std::min(info.firstEmit, t);
        info.lastEmit = std::max(info.lastEmit, t);
    }
    ++info.emittedMessages;
}

void
GroundTruth::noteAborted(logging::ExecutionId exec)
{
    mutableExecution(exec).aborted = true;
}

void
GroundTruth::noteSilentDrop(logging::ExecutionId exec)
{
    mutableExecution(exec).silentDrop = true;
}

void
GroundTruth::noteDelayed(logging::ExecutionId exec)
{
    mutableExecution(exec).delayed = true;
}

void
GroundTruth::noteCompleted(logging::ExecutionId exec)
{
    mutableExecution(exec).completed = true;
}

std::vector<int>
GroundTruth::maxConcurrency() const
{
    // Sweep line over window boundaries: starts before ends at equal
    // times so touching windows count as concurrent.
    struct Boundary
    {
        double time;
        int delta; // +1 window opens, -1 window closes
    };
    std::vector<Boundary> boundaries;
    boundaries.reserve(execs.size() * 2);
    for (const ExecutionInfo &info : execs) {
        if (!info.anyEmission)
            continue;
        boundaries.push_back({info.firstEmit, +1});
        boundaries.push_back({info.lastEmit, -1});
    }
    std::sort(boundaries.begin(), boundaries.end(),
              [](const Boundary &a, const Boundary &b) {
                  if (a.time != b.time)
                      return a.time < b.time;
                  return a.delta > b.delta;
              });

    // Concurrency level per segment between consecutive boundaries.
    std::vector<double> times;
    std::vector<int> levels;
    int level = 0;
    for (const Boundary &b : boundaries) {
        level += b.delta;
        times.push_back(b.time);
        levels.push_back(level);
    }

    std::vector<int> result(execs.size(), 0);
    for (std::size_t i = 0; i < execs.size(); ++i) {
        if (!execs[i].anyEmission)
            continue;
        // Max level over boundaries inside this window; the window's own
        // +1 boundary is included, so the result is at least 1.
        auto lo = std::lower_bound(times.begin(), times.end(),
                                   execs[i].firstEmit);
        auto hi = std::upper_bound(times.begin(), times.end(),
                                   execs[i].lastEmit);
        int peak = 1;
        for (auto it = lo; it != hi; ++it) {
            std::size_t idx =
                static_cast<std::size_t>(it - times.begin());
            peak = std::max(peak, levels[idx]);
        }
        result[i] = peak;
    }
    return result;
}

double
GroundTruth::interleavedFraction(int k) const
{
    std::vector<int> peaks = maxConcurrency();
    std::size_t emitting = 0;
    std::size_t hit = 0;
    for (std::size_t i = 0; i < execs.size(); ++i) {
        if (!execs[i].anyEmission)
            continue;
        ++emitting;
        if (peaks[i] >= k)
            ++hit;
    }
    return emitting == 0
        ? 0.0
        : static_cast<double>(hit) / static_cast<double>(emitting);
}

} // namespace cloudseer::sim
