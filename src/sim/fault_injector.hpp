/**
 * @file
 * Fault injection at the paper's six execution points (Table 4).
 *
 * An enabled point triggers with a configurable probability (the paper
 * uses 25%) the first time an execution crosses it; the triggered
 * problem is drawn uniformly from the paper's three types.
 */

#ifndef CLOUDSEER_SIM_FAULT_INJECTOR_HPP
#define CLOUDSEER_SIM_FAULT_INJECTOR_HPP

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time_util.hpp"
#include "logging/log_record.hpp"

namespace cloudseer::sim {

/** Injection points from the paper's Table 4. */
enum class InjectionPoint
{
    None,
    AmqpSender,
    AmqpReceiver,
    ImageCreate,
    ImageDelete,
    WsgiClient,
    WsgiServer,
};

/** Injection points excluding None, Table 4 order. */
extern const std::array<InjectionPoint, 6> kAllInjectionPoints;

/** Canonical name ("AMQP-Sender", ...). */
const char *injectionPointName(InjectionPoint point);

/** Problem types triggered at an injection point (paper §5.3). */
enum class ProblemType
{
    None,
    Delay,   ///< significant execution delay (performance problem)
    Abort,   ///< unexpected exception aborts the execution
    Silent,  ///< ignored request / wrong I/O status; no error message
};

/** Canonical name ("Delay", ...). */
const char *problemTypeName(ProblemType type);

/** Ground-truth record of one triggered problem. */
struct InjectionRecord
{
    logging::ExecutionId execution = 0;
    InjectionPoint point = InjectionPoint::None;
    ProblemType type = ProblemType::None;
    common::SimTime time = 0.0;
    bool emittedError = false;  ///< an ERROR log message accompanied it
};

/** Configuration and state of the injector for one simulation run. */
class FaultInjector
{
  public:
    /**
     * @param enabled_point Point to enable (None disables injection).
     * @param trigger_probability Chance per crossing (paper: 0.25).
     * @param error_message_probability Chance an Abort logs an ERROR.
     * @param seed Deterministic seed for the injector's own stream.
     * @param max_problems Stop triggering after this many problems
     *        (the paper runs tasks "until each injection point
     *        triggers 10 execution problems").
     */
    FaultInjector(InjectionPoint enabled_point, double trigger_probability,
                  double error_message_probability, std::uint64_t seed,
                  std::size_t max_problems = SIZE_MAX);

    /** Disabled injector (correct-execution experiments). */
    FaultInjector();

    /**
     * Called by the flow engine when execution `exec` crosses `point`.
     * At most one problem triggers per execution.
     *
     * @return The problem to apply (None = proceed normally).
     */
    ProblemType evaluate(InjectionPoint point, logging::ExecutionId exec,
                         common::SimTime now);

    /** Whether an Abort at this trigger should emit an ERROR message. */
    bool rollErrorMessage();

    /** Record that the error message was actually emitted. */
    void markErrorEmitted(logging::ExecutionId exec);

    /** Ground truth of everything triggered so far. */
    const std::vector<InjectionRecord> &records() const { return history; }

    /** Number of problems triggered so far. */
    std::size_t triggeredCount() const { return history.size(); }

    /** Point this injector is enabled for. */
    InjectionPoint enabledPoint() const { return point; }

  private:
    InjectionPoint point = InjectionPoint::None;
    double triggerProbability = 0.0;
    double errorMessageProbability = 0.0;
    std::size_t maxProblems = SIZE_MAX;
    common::Rng rng;
    std::vector<InjectionRecord> history;
    std::vector<logging::ExecutionId> affected;

    bool alreadyAffected(logging::ExecutionId exec) const;
};

} // namespace cloudseer::sim

#endif // CLOUDSEER_SIM_FAULT_INJECTOR_HPP
