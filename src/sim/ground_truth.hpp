/**
 * @file
 * Evaluation-only ledger of what the simulator actually did.
 *
 * The paper had to approximate ground truth by hand (§5.4); the
 * simulator records it exactly: per-execution lifetimes, emitted
 * message counts, outcomes, and interval-overlap concurrency used for
 * the "% interleaved" columns of Table 5.
 */

#ifndef CLOUDSEER_SIM_GROUND_TRUTH_HPP
#define CLOUDSEER_SIM_GROUND_TRUTH_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "common/time_util.hpp"
#include "logging/log_record.hpp"
#include "sim/task_type.hpp"

namespace cloudseer::sim {

/** Per-execution ground truth. */
struct ExecutionInfo
{
    logging::ExecutionId id = 0;
    TaskType type = TaskType::Boot;
    std::string userId;
    std::string instanceId;
    common::SimTime submitted = 0.0;
    common::SimTime firstEmit = 0.0;
    common::SimTime lastEmit = 0.0;
    std::size_t emittedMessages = 0;
    bool anyEmission = false;
    bool aborted = false;       ///< downstream steps cancelled with error
    bool silentDrop = false;    ///< downstream steps cancelled silently
    bool delayed = false;       ///< a step was delay-injected
    bool completed = false;     ///< all key steps emitted
};

/** Ledger of executions; indexed by ExecutionId (1-based). */
class GroundTruth
{
  public:
    /** Register a new execution; returns its id. */
    logging::ExecutionId beginExecution(TaskType type,
                                        const std::string &user_id,
                                        const std::string &instance_id,
                                        common::SimTime submitted);

    /** Note one emitted message. */
    void noteEmission(logging::ExecutionId exec, common::SimTime t);

    /** Note an abort (error path) outcome. */
    void noteAborted(logging::ExecutionId exec);

    /** Note a silent-drop outcome. */
    void noteSilentDrop(logging::ExecutionId exec);

    /** Note a delay injection. */
    void noteDelayed(logging::ExecutionId exec);

    /** Note that every key step of the flow emitted. */
    void noteCompleted(logging::ExecutionId exec);

    /** All executions, id order. */
    const std::vector<ExecutionInfo> &executions() const { return execs; }

    /** Lookup by id (must exist). */
    const ExecutionInfo &execution(logging::ExecutionId exec) const;

    /**
     * For each execution, the peak number of executions simultaneously
     * in flight during its own [firstEmit, lastEmit] window (itself
     * included). An execution with maxConcurrency(e) >= 2 is
     * "interleaved" in the paper's Table 5 sense.
     */
    std::vector<int> maxConcurrency() const;

    /** Fraction of emitting executions with peak concurrency >= k. */
    double interleavedFraction(int k) const;

  private:
    std::vector<ExecutionInfo> execs;

    ExecutionInfo &mutableExecution(logging::ExecutionId exec);
};

} // namespace cloudseer::sim

#endif // CLOUDSEER_SIM_GROUND_TRUTH_HPP
