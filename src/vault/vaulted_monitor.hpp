/**
 * @file
 * VaultedMonitor: a WorkflowMonitor with crash-safe durability.
 *
 * Wraps the monitor behind the vault's write-ahead discipline: every
 * input is appended to the ledger *before* it reaches the monitor, and
 * a checkpoint of the full monitor + interner state is taken every
 * `checkpointEveryRecords` inputs (rotating the ledger each time). On
 * construction over an existing vault directory, the wrapper restores
 * the newest checkpoint and replays the ledger tail, after which the
 * monitor emits verdicts bit-identical to an uninterrupted run — the
 * restore-fidelity contract pinned by tests/vault_test.cpp and gated
 * in bench_soak.
 *
 * With a disabled VaultConfig (empty directory) nothing durability-
 * related is constructed or touched: feed/feedLine/finish are pure
 * delegation and the monitor is bit-identical to a bare one — the
 * same null-sink contract seer-scope and seer-flight follow.
 */

#ifndef CLOUDSEER_VAULT_VAULTED_MONITOR_HPP
#define CLOUDSEER_VAULT_VAULTED_MONITOR_HPP

#include <memory>
#include <string>
#include <vector>

#include "core/monitor/workflow_monitor.hpp"
#include "vault/vault.hpp"

namespace cloudseer::vault {

/** What construction-time recovery found and did. */
struct RecoverResult
{
    /** A checkpoint or non-empty ledger existed to recover from. */
    bool attempted = false;

    /** State was restored (checkpoint loaded and/or tail replayed). */
    bool recovered = false;

    /** Why recovery failed or was partial ("" when clean). */
    std::string error;

    /** Ledger seq the loaded checkpoint covered (0 = none). */
    std::uint64_t checkpointSeq = 0;

    /** Highest ledger seq replayed (== checkpointSeq when no tail). */
    std::uint64_t lastReplayedSeq = 0;

    /** Tail inputs replayed through the monitor. */
    std::uint64_t replayedInputs = 0;

    /** The ledger tail's torn-crash signature was seen and dropped. */
    bool ledgerTorn = false;

    /**
     * Reports the replayed tail produced, in order. These duplicate
     * reports the pre-crash process already emitted for those inputs
     * — the fidelity tests compare them against the uninterrupted
     * run's reports for the same seq range.
     */
    std::vector<core::MonitorReport> replayReports;
};

/** A WorkflowMonitor persisted through the vault. */
class VaultedMonitor
{
  public:
    /**
     * Construct the monitor and, when the vault is enabled, run
     * recovery (restore newest checkpoint, replay ledger tail) and
     * take an immediate post-recovery checkpoint — so the on-disk
     * state is clean (empty ledger, current image) from the first
     * input onward. Construction inputs must match the checkpointed
     * process's (the model fingerprint is verified; config and
     * catalog are trusted, as with any restoreState). A refused
     * restore starts the monitor fresh — the incompatible files are
     * renamed to `*.refused` for autopsy, never replayed and never
     * silently overwritten.
     */
    VaultedMonitor(VaultConfig vault_config,
                   const core::MonitorConfig &monitor_config,
                   std::shared_ptr<logging::TemplateCatalog> catalog,
                   std::vector<core::TaskAutomaton> automata);

    /** Ledger the input, feed it, maybe checkpoint. */
    std::vector<core::MonitorReport>
    feed(const logging::LogRecord &record);

    /** Ledger the raw line, feed it, maybe checkpoint. */
    std::vector<core::MonitorReport> feedLine(const std::string &line);

    /**
     * Delegate finish(), then (when enabled) checkpoint the final
     * state so a restart after a clean end restores to it.
     */
    std::vector<core::MonitorReport> finish();

    /**
     * Take a checkpoint now: snapshot interner + monitor, write the
     * image atomically, rotate the ledger. Returns false when the
     * vault is disabled or the write failed (the monitor keeps
     * running either way; durability degrades to the previous
     * checkpoint plus the un-rotated ledger).
     */
    bool checkpoint();

    /** True when a vault directory is configured. */
    bool enabled() const { return config.enabled(); }

    /** What construction-time recovery found (zeroed when disabled). */
    const RecoverResult &recovery() const { return recoverInfo; }

    /** Durability counters (walBytes refreshed on call). */
    VaultStats stats() const;

    /** The wrapped monitor. */
    core::WorkflowMonitor &monitor() { return *monitorPtr; }
    const core::WorkflowMonitor &monitor() const { return *monitorPtr; }

  private:
    VaultConfig config;
    core::MonitorConfig monitorConfig;
    std::shared_ptr<logging::TemplateCatalog> catalogPtr;
    std::vector<core::TaskAutomaton> specs;

    // unique_ptr so a refused restore can discard the half-written
    // monitor and start over from the construction inputs.
    std::unique_ptr<core::WorkflowMonitor> monitorPtr;

    std::unique_ptr<WriteAheadLedger> ledger; ///< null when disabled
    RecoverResult recoverInfo;
    VaultStats tallies;
    std::uint64_t nextSeq = 0; ///< seq of the last ledgered input
    std::uint64_t inputsSinceCheckpoint = 0;

    // seer-pulse (DESIGN.md §16): sampled ledger append latency, fed
    // into the monitor's seer_wal_append_us histogram. Null unless the
    // wrapped monitor has metrics on.
    obs::Histogram *walLatency = nullptr;
    std::uint64_t walTick = 0; ///< 1-in-8 sampling counter

    /** Restore checkpoint + replay tail; fills recoverInfo. */
    void recover();

    /** Rebuild a fresh monitor from the construction inputs. */
    void resetMonitor();

    /** Checkpoint when the cadence knob says so. */
    void maybeCheckpoint();
};

} // namespace cloudseer::vault

#endif // CLOUDSEER_VAULT_VAULTED_MONITOR_HPP
