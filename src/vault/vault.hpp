/**
 * @file
 * seer-vault: crash-safe durability primitives (DESIGN.md §13).
 *
 * The vault persists a running monitor with the classic
 * append-ledger-plus-checkpoint idiom:
 *
 *  - `ledger.wal` — a write-ahead ledger of every input (raw line or
 *    record), appended *before* the input reaches the monitor. Frames
 *    are length-prefixed and CRC-checksummed; a torn tail from a
 *    crash mid-append is detected and discarded, never misread.
 *  - `checkpoint.ckpt` — a periodic full snapshot of monitor +
 *    interner state, written to a temp file and atomically renamed,
 *    so a crash mid-checkpoint leaves the previous checkpoint intact.
 *
 * Restore = load the newest checkpoint, then replay the ledger tail.
 * Every ledger frame carries the absolute input sequence number and
 * the checkpoint records the sequence it covers, so replay skips
 * already-absorbed inputs — which makes the crash window between
 * checkpoint-rename and ledger-rotate safe (stale frames replay as
 * no-ops because their seq is covered).
 *
 * Ledger appends are group-committed: frames accumulate in a memory
 * buffer and reach the OS when the batch hits kGroupCommitBytes, on
 * rotation, and at ledger destruction (so an orderly shutdown loses
 * nothing). Nothing is fsync'd: the target failure model is process
 * death (kill -9, OOM, deploy restarts), not power loss. A hard kill
 * can lose the unflushed batch plus whatever the kernel had not yet
 * written — the frame CRCs turn that tail into a clean truncation,
 * and a collector that acks on checkpoint (or retransmits past the
 * restored monitor's last replayed seq, as bench_soak does) closes
 * the gap.
 */

#ifndef CLOUDSEER_VAULT_VAULT_HPP
#define CLOUDSEER_VAULT_VAULT_HPP

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/binio.hpp"
#include "logging/log_record.hpp"

namespace cloudseer::vault {

/** Durability knobs. The default (empty directory) is the null sink. */
struct VaultConfig
{
    /**
     * Directory holding `checkpoint.ckpt` and `ledger.wal` (created
     * if missing). Empty — the default — disables the vault entirely:
     * no object is constructed, no file is touched, and the monitor
     * behaves bit-identically to an unvaulted one.
     */
    std::string directory;

    /**
     * Take a checkpoint automatically every this many inputs fed
     * through the vaulted monitor. 0 = only explicit checkpoint()
     * calls. Each checkpoint rotates the ledger, so this knob trades
     * checkpoint write cost against replay length after a crash.
     */
    std::uint64_t checkpointEveryRecords = 0;

    /** True when a directory is configured. */
    bool enabled() const { return !directory.empty(); }
};

/** Durability counters (surfaced by bench_soak and seer_vault). */
struct VaultStats
{
    std::uint64_t walAppends = 0;      ///< frames appended to the ledger
    std::uint64_t checkpointsTaken = 0;
    std::uint64_t lastCheckpointBytes = 0; ///< size of the newest image
    std::uint64_t walBytes = 0;        ///< current ledger size, bytes
};

// --- file-format constants (shared with seer_vault and tests) ---------

/** Checkpoint file magic (8 bytes, no terminator on disk). */
inline constexpr char kCheckpointMagic[9] = "CSEERVLT";

/** Ledger file magic. */
inline constexpr char kLedgerMagic[9] = "CSEERWAL";

/** On-disk format version for both files. */
inline constexpr std::uint32_t kVaultVersion = 1;

/** Ledger group-commit threshold: pending frame bytes that trigger a
 *  write to the OS. Sized so the hot path is a memcpy per input and
 *  the write syscall amortises over hundreds of frames, keeping the
 *  vault under the ingest-overhead bar bench_throughput enforces. */
inline constexpr std::size_t kGroupCommitBytes = 32 * 1024;

/** Checkpoint section kinds (first u32 of each checkpoint frame). */
enum class CheckpointSection : std::uint32_t
{
    Meta = 1,     ///< fingerprint, covered ledger seq, monitor clock
    Interner = 2, ///< process-wide identifier interner image
    Monitor = 3,  ///< full WorkflowMonitor state
    End = 4,      ///< terminator (an image without it is incomplete)
};

/** Ledger entry kinds (first u8 of each ledger frame payload). */
enum class LedgerEntry : std::uint8_t
{
    RawLine = 1, ///< feedLine input, verbatim wire line
    Record = 2,  ///< feed input, full binary LogRecord
};

/** Decoded checkpoint Meta section. */
struct CheckpointMeta
{
    std::uint64_t modelFingerprint = 0;
    std::uint64_t coveredSeq = 0; ///< ledger inputs <= this are absorbed
    double monitorTime = 0.0;     ///< message clock at checkpoint
};

// --- frame codec -------------------------------------------------------

/** Append one `[u32 len][u32 crc][payload]` frame and flush. */
void appendFrame(std::ofstream &out, const std::string &payload);

/** Result of scanning a framed file. */
struct FrameScan
{
    bool headerOk = false;  ///< magic + version matched
    bool torn = false;      ///< trailing bytes failed length/CRC checks
    std::size_t tornBytes = 0; ///< bytes discarded at the tail
    std::vector<std::string> frames; ///< intact payloads, in order
};

/**
 * Read every intact frame of a vault file. A bad header yields
 * headerOk=false and no frames; a torn tail (truncated frame or CRC
 * mismatch — the crash signature) stops the scan cleanly with
 * torn=true. Bytes after a torn frame are never interpreted.
 */
FrameScan scanFrames(const std::string &path, const char *magic);

/** Write a fresh framed file: magic + version header only. */
bool writeFileHeader(std::ofstream &out, const char *magic);

// --- the write-ahead ledger -------------------------------------------

/** Append-only input ledger with sequence-tagged frames. */
class WriteAheadLedger
{
  public:
    explicit WriteAheadLedger(std::string path_) : path(std::move(path_))
    {
    }

    /** Flushes the pending group-commit batch. */
    ~WriteAheadLedger() { flush(); }

    /**
     * Open for appending, writing a fresh header when the file is
     * missing or empty. An existing file is appended to as-is; call
     * rotate() first when its tail may be torn (post-recovery).
     */
    bool open();

    /** Append one raw wire line under the given sequence. */
    void appendLine(std::uint64_t seq, const std::string &line);

    /** Append one record under the given sequence. */
    void appendRecord(std::uint64_t seq,
                      const logging::LogRecord &record);

    /** Write the pending batch to the OS now. */
    void flush();

    /**
     * Atomically replace the ledger with an empty one (fresh header),
     * discarding the pending batch — rotation follows a checkpoint,
     * and every pending frame's seq is covered by it. Replay length
     * thus stays proportional to the checkpoint interval.
     */
    bool rotate();

    /** Ledger bytes: on disk plus the pending batch. */
    std::uint64_t bytes() const;

    const std::string &filePath() const { return path; }

  private:
    std::string path;
    std::ofstream out;
    std::string pending;      ///< framed appends awaiting group commit
    common::BinWriter scratch; ///< record payload encoder, reused

    /** Frame scratch's bytes into pending; group-commit if due. */
    void enqueue();

    /** Patch the 8-byte [len][crc] placeholder at `start` now that
     *  the frame's payload occupies pending[start+8..); group-commit
     *  if due. */
    void sealFrame(std::size_t start);
};

/** One decoded ledger entry. */
struct LedgerInput
{
    LedgerEntry kind = LedgerEntry::Record;
    std::uint64_t seq = 0;
    std::string line;          ///< RawLine payload
    logging::LogRecord record; ///< Record payload
};

/** Result of decoding a ledger file. */
struct LedgerScan
{
    bool headerOk = false;
    bool torn = false;
    std::vector<LedgerInput> inputs; ///< intact entries, in seq order
};

/** Decode every intact entry of a ledger file. */
LedgerScan readLedger(const std::string &path);

// --- checkpoint files --------------------------------------------------

/**
 * Write a checkpoint image atomically: sections are framed into
 * `path.tmp`, terminated by an End section, then renamed over `path`.
 * Returns the image size in bytes (0 on failure). `sections` pairs
 * each CheckpointSection with its serialised payload (Meta first by
 * convention; readers locate sections by kind, not position).
 */
std::uint64_t writeCheckpoint(
    const std::string &path,
    const std::vector<std::pair<CheckpointSection, std::string>>
        &sections);

/** Decoded checkpoint image. */
struct CheckpointScan
{
    bool headerOk = false;
    bool complete = false; ///< End section present (image is whole)
    bool hasMeta = false;
    CheckpointMeta meta;
    std::vector<std::pair<CheckpointSection, std::string>> sections;
};

/** Decode a checkpoint file (CRC-checked, torn-tail tolerant). */
CheckpointScan readCheckpoint(const std::string &path);

/** Serialise a Meta section payload. */
std::string encodeMeta(const CheckpointMeta &meta);

/** Decode a Meta section payload. */
bool decodeMeta(const std::string &payload, CheckpointMeta &meta);

/** `directory`/checkpoint.ckpt */
std::string checkpointPath(const std::string &directory);

/** `directory`/ledger.wal */
std::string ledgerPath(const std::string &directory);

} // namespace cloudseer::vault

#endif // CLOUDSEER_VAULT_VAULT_HPP
