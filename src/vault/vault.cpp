#include "vault/vault.hpp"

#include <cstdio>
#include <filesystem>

#include "logging/record_binio.hpp"
#include "obs/profiler.hpp"

namespace cloudseer::vault {

namespace {

/** Little-endian u32, matching BinWriter's integer encoding. */
std::string
encodeU32(std::uint32_t value)
{
    std::string out(4, '\0');
    for (int i = 0; i < 4; ++i) {
        out[static_cast<std::size_t>(i)] =
            static_cast<char>((value >> (8 * i)) & 0xffu);
    }
    return out;
}

std::uint32_t
decodeU32(const char *bytes)
{
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
        value |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(bytes[i]))
                 << (8 * i);
    }
    return value;
}

/** Magic (8 bytes) + version (u32). */
constexpr std::size_t kHeaderBytes = 12;

} // namespace

/** One frame's on-disk bytes: [u32 len][u32 crc][payload]. */
std::string
frameBytes(const std::string &payload)
{
    std::string out =
        encodeU32(static_cast<std::uint32_t>(payload.size()));
    out += encodeU32(common::crc32(payload));
    out += payload;
    return out;
}

void
appendFrame(std::ofstream &out, const std::string &payload)
{
    std::string frame = frameBytes(payload);
    out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
    out.flush();
}

bool
writeFileHeader(std::ofstream &out, const char *magic)
{
    out.write(magic, 8);
    out << encodeU32(kVaultVersion);
    out.flush();
    return out.good();
}

FrameScan
scanFrames(const std::string &path, const char *magic)
{
    FrameScan scan;
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
        return scan;
    }
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    if (contents.size() < kHeaderBytes ||
        contents.compare(0, 8, magic, 8) != 0 ||
        decodeU32(contents.data() + 8) != kVaultVersion) {
        return scan;
    }
    scan.headerOk = true;
    std::size_t pos = kHeaderBytes;
    while (pos < contents.size()) {
        // A frame shorter than its own header, a length pointing past
        // EOF, or a checksum mismatch all mark the torn tail left by
        // a crash mid-append; everything before it is intact.
        if (contents.size() - pos < 8) {
            break;
        }
        std::size_t len = decodeU32(contents.data() + pos);
        std::uint32_t crc = decodeU32(contents.data() + pos + 4);
        if (contents.size() - pos - 8 < len) {
            break;
        }
        std::string payload = contents.substr(pos + 8, len);
        if (common::crc32(payload) != crc) {
            break;
        }
        scan.frames.push_back(std::move(payload));
        pos += 8 + len;
    }
    if (pos < contents.size()) {
        scan.torn = true;
        scan.tornBytes = contents.size() - pos;
    }
    return scan;
}

// --- WriteAheadLedger --------------------------------------------------

bool
WriteAheadLedger::open()
{
    std::error_code ec;
    bool fresh = !std::filesystem::exists(path, ec) ||
                 std::filesystem::file_size(path, ec) == 0;
    out.open(path, std::ios::binary | std::ios::app);
    if (!out.is_open()) {
        return false;
    }
    if (fresh) {
        return writeFileHeader(out, kLedgerMagic);
    }
    return true;
}

void
WriteAheadLedger::enqueue()
{
    // Frame directly into the pending batch — no temporaries, so the
    // per-input cost is two small memcpys and a CRC pass. scratch and
    // pending both keep their capacity across appends.
    const std::string &payload = scratch.bytes();
    char header[8];
    std::uint32_t len = static_cast<std::uint32_t>(payload.size());
    std::uint32_t crc = common::crc32(payload);
    for (int i = 0; i < 4; ++i) {
        header[i] = static_cast<char>((len >> (8 * i)) & 0xffu);
        header[4 + i] = static_cast<char>((crc >> (8 * i)) & 0xffu);
    }
    pending.append(header, 8);
    pending += payload;
    if (pending.size() >= kGroupCommitBytes)
        flush();
}

void
WriteAheadLedger::flush()
{
    if (pending.empty() || !out.is_open())
        return;
    out.write(pending.data(),
              static_cast<std::streamsize>(pending.size()));
    out.flush();
    pending.clear();
}

void
WriteAheadLedger::sealFrame(std::size_t start)
{
    std::string_view payload(pending.data() + start + 8,
                             pending.size() - start - 8);
    auto len = static_cast<std::uint32_t>(payload.size());
    std::uint32_t crc = common::crc32(payload);
    for (int i = 0; i < 4; ++i) {
        pending[start + static_cast<std::size_t>(i)] =
            static_cast<char>((len >> (8 * i)) & 0xffu);
        pending[start + static_cast<std::size_t>(4 + i)] =
            static_cast<char>((crc >> (8 * i)) & 0xffu);
    }
    if (pending.size() >= kGroupCommitBytes)
        flush();
}

void
WriteAheadLedger::appendLine(std::uint64_t seq, const std::string &line)
{
    obs::StageScope profScope(obs::ProfStage::WalAppend);
    // Raw lines are the ingest hot path: frame straight into the
    // pending batch — header placeholder first, patched by sealFrame
    // once the payload is in place — so each append is one CRC pass
    // and a single payload copy, no intermediate encode buffer.
    std::size_t start = pending.size();
    pending.append(8, '\0'); // [len][crc], patched below
    char enc[17];
    enc[0] = static_cast<char>(LedgerEntry::RawLine);
    std::uint64_t size = line.size();
    for (int i = 0; i < 8; ++i) {
        enc[1 + i] = static_cast<char>((seq >> (8 * i)) & 0xffu);
        enc[9 + i] = static_cast<char>((size >> (8 * i)) & 0xffu);
    }
    pending.append(enc, 17);
    pending += line;
    sealFrame(start);
}

void
WriteAheadLedger::appendRecord(std::uint64_t seq,
                               const logging::LogRecord &record)
{
    obs::StageScope profScope(obs::ProfStage::WalAppend);
    scratch.clear();
    scratch.writeU8(static_cast<std::uint8_t>(LedgerEntry::Record));
    scratch.writeU64(seq);
    logging::writeLogRecord(scratch, record);
    enqueue();
}

bool
WriteAheadLedger::rotate()
{
    // Pending frames predate the checkpoint that triggered this
    // rotation; their inputs are absorbed in the image.
    pending.clear();
    const std::string tmp = path + ".tmp";
    {
        std::ofstream fresh(tmp,
                            std::ios::binary | std::ios::trunc);
        if (!fresh.is_open() ||
            !writeFileHeader(fresh, kLedgerMagic)) {
            return false;
        }
    }
    if (out.is_open()) {
        out.close();
    }
    // rename() is atomic on POSIX: a crash here leaves either the
    // old ledger (stale frames are seq-gated at replay) or the new
    // empty one, never a hybrid.
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        return false;
    }
    out.open(path, std::ios::binary | std::ios::app);
    return out.is_open();
}

std::uint64_t
WriteAheadLedger::bytes() const
{
    std::error_code ec;
    auto size = std::filesystem::file_size(path, ec);
    return (ec ? 0 : static_cast<std::uint64_t>(size)) +
           pending.size();
}

LedgerScan
readLedger(const std::string &path)
{
    LedgerScan scan;
    FrameScan frames = scanFrames(path, kLedgerMagic);
    scan.headerOk = frames.headerOk;
    scan.torn = frames.torn;
    for (const std::string &payload : frames.frames) {
        common::BinReader in(payload);
        LedgerInput input;
        std::uint8_t kind = in.readU8();
        input.seq = in.readU64();
        if (kind == static_cast<std::uint8_t>(LedgerEntry::RawLine)) {
            input.kind = LedgerEntry::RawLine;
            input.line = in.readString();
        } else if (kind ==
                   static_cast<std::uint8_t>(LedgerEntry::Record)) {
            input.kind = LedgerEntry::Record;
            logging::readLogRecord(in, input.record);
        } else {
            in.fail();
        }
        // A frame that passed its CRC but fails to decode means a
        // writer bug or version skew, not a crash; treat it like a
        // torn tail so replay never feeds garbage to the monitor.
        if (!in.ok()) {
            scan.torn = true;
            break;
        }
        scan.inputs.push_back(std::move(input));
    }
    return scan;
}

// --- checkpoint files --------------------------------------------------

std::uint64_t
writeCheckpoint(
    const std::string &path,
    const std::vector<std::pair<CheckpointSection, std::string>>
        &sections)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out.is_open() ||
            !writeFileHeader(out, kCheckpointMagic)) {
            return 0;
        }
        for (const auto &[kind, body] : sections) {
            std::string payload =
                encodeU32(static_cast<std::uint32_t>(kind));
            payload += body;
            appendFrame(out, payload);
        }
        appendFrame(
            out,
            encodeU32(static_cast<std::uint32_t>(
                CheckpointSection::End)));
        if (!out.good()) {
            return 0;
        }
    }
    std::error_code ec;
    auto size = std::filesystem::file_size(tmp, ec);
    if (ec || std::rename(tmp.c_str(), path.c_str()) != 0) {
        return 0;
    }
    return static_cast<std::uint64_t>(size);
}

CheckpointScan
readCheckpoint(const std::string &path)
{
    CheckpointScan scan;
    FrameScan frames = scanFrames(path, kCheckpointMagic);
    scan.headerOk = frames.headerOk;
    for (const std::string &payload : frames.frames) {
        if (payload.size() < 4) {
            break;
        }
        auto kind = static_cast<CheckpointSection>(
            decodeU32(payload.data()));
        if (kind == CheckpointSection::End) {
            scan.complete = true;
            break;
        }
        std::string body = payload.substr(4);
        if (kind == CheckpointSection::Meta) {
            scan.hasMeta = decodeMeta(body, scan.meta);
        }
        scan.sections.emplace_back(kind, std::move(body));
    }
    return scan;
}

std::string
encodeMeta(const CheckpointMeta &meta)
{
    common::BinWriter out;
    out.writeU64(meta.modelFingerprint);
    out.writeU64(meta.coveredSeq);
    out.writeF64(meta.monitorTime);
    return out.takeBytes();
}

bool
decodeMeta(const std::string &payload, CheckpointMeta &meta)
{
    common::BinReader in(payload);
    meta.modelFingerprint = in.readU64();
    meta.coveredSeq = in.readU64();
    meta.monitorTime = in.readF64();
    return in.ok();
}

std::string
checkpointPath(const std::string &directory)
{
    return (std::filesystem::path(directory) / "checkpoint.ckpt")
        .string();
}

std::string
ledgerPath(const std::string &directory)
{
    return (std::filesystem::path(directory) / "ledger.wal").string();
}

} // namespace cloudseer::vault
