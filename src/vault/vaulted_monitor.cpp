#include "vault/vaulted_monitor.hpp"

#include <chrono>
#include <filesystem>

#include "logging/identifier_interner.hpp"

namespace cloudseer::vault {

namespace {

/** Microseconds elapsed since `from` (WAL append timing). */
double
microsSince(std::chrono::steady_clock::time_point from)
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - from)
        .count();
}

} // namespace

VaultedMonitor::VaultedMonitor(
    VaultConfig vault_config,
    const core::MonitorConfig &monitor_config,
    std::shared_ptr<logging::TemplateCatalog> catalog,
    std::vector<core::TaskAutomaton> automata)
    : config(std::move(vault_config)), monitorConfig(monitor_config),
      catalogPtr(std::move(catalog)), specs(std::move(automata))
{
    resetMonitor();
    if (!config.enabled()) {
        return;
    }
    std::error_code ec;
    std::filesystem::create_directories(config.directory, ec);
    ledger = std::make_unique<WriteAheadLedger>(
        ledgerPath(config.directory));
    recover();
    // The post-recovery checkpoint absorbs whatever was replayed and
    // rotates away the (possibly torn) old ledger, so the directory
    // is always in the clean two-file state afterwards. The crash
    // window between the two renames inside checkpoint() is safe:
    // stale ledger frames carry seqs the new image already covers.
    if (!checkpoint()) {
        // Checkpointing failed (e.g. unwritable directory): keep the
        // monitor running with whatever ledger can still be appended
        // to rather than refusing to start.
        ledger->open();
    }
}

void
VaultedMonitor::recover()
{
    const std::string ckpt_path = checkpointPath(config.directory);
    std::error_code ec;
    bool have_checkpoint = std::filesystem::exists(ckpt_path, ec);

    if (have_checkpoint) {
        recoverInfo.attempted = true;
        CheckpointScan scan = readCheckpoint(ckpt_path);
        if (!scan.headerOk || !scan.complete || !scan.hasMeta) {
            recoverInfo.error = "checkpoint unreadable or incomplete";
        } else if (scan.meta.modelFingerprint !=
                   monitorPtr->modelFingerprint()) {
            recoverInfo.error =
                "checkpoint model fingerprint mismatch";
        } else {
            const std::string *interner_body = nullptr;
            const std::string *monitor_body = nullptr;
            for (const auto &[kind, body] : scan.sections) {
                if (kind == CheckpointSection::Interner) {
                    interner_body = &body;
                } else if (kind == CheckpointSection::Monitor) {
                    monitor_body = &body;
                }
            }
            if (interner_body == nullptr || monitor_body == nullptr) {
                recoverInfo.error = "checkpoint missing a section";
            } else {
                common::BinReader interner_in(*interner_body);
                common::BinReader monitor_in(*monitor_body);
                if (!logging::IdentifierInterner::process()
                         .restoreState(interner_in)) {
                    recoverInfo.error =
                        "interner restore refused (table diverged)";
                } else if (!monitorPtr->restoreState(monitor_in)) {
                    recoverInfo.error = "monitor restore refused";
                    // The monitor may be half-overwritten; rebuild
                    // it from the construction inputs.
                    resetMonitor();
                } else {
                    recoverInfo.recovered = true;
                    recoverInfo.checkpointSeq = scan.meta.coveredSeq;
                    nextSeq = scan.meta.coveredSeq;
                }
            }
        }
        if (!recoverInfo.recovered) {
            // The on-disk state belongs to an incompatible history
            // (wrong model, diverged interner, refused image). Its
            // ledger must not be replayed into this monitor — the
            // frames were recorded against the state that was just
            // refused. Set both files aside instead of overwriting
            // them, so an operator can still autopsy the refused
            // vault with seer_vault.
            std::error_code rename_ec;
            std::filesystem::rename(ckpt_path,
                                    ckpt_path + ".refused",
                                    rename_ec);
            std::filesystem::rename(ledger->filePath(),
                                    ledger->filePath() + ".refused",
                                    rename_ec);
            return;
        }
    }
    recoverInfo.lastReplayedSeq = recoverInfo.checkpointSeq;

    // Replay the ledger tail. Frames at or below the checkpoint's
    // covered seq are already absorbed by the image (they linger
    // only after a crash between checkpoint-rename and ledger-
    // rotate) and are skipped.
    LedgerScan tail = readLedger(ledger->filePath());
    recoverInfo.ledgerTorn = tail.torn;
    for (const LedgerInput &input : tail.inputs) {
        if (input.seq <= recoverInfo.checkpointSeq) {
            continue;
        }
        recoverInfo.attempted = true;
        std::vector<core::MonitorReport> reports =
            input.kind == LedgerEntry::RawLine
                ? monitorPtr->feedLine(input.line)
                : monitorPtr->feed(input.record);
        recoverInfo.replayReports.insert(
            recoverInfo.replayReports.end(),
            std::make_move_iterator(reports.begin()),
            std::make_move_iterator(reports.end()));
        ++recoverInfo.replayedInputs;
        recoverInfo.lastReplayedSeq = input.seq;
        nextSeq = input.seq;
        recoverInfo.recovered = true;
    }
}

void
VaultedMonitor::resetMonitor()
{
    monitorPtr = std::make_unique<core::WorkflowMonitor>(
        monitorConfig, catalogPtr, specs);
    // seer-pulse: request the WAL append-latency histogram up front so
    // every vaulted instrumented monitor exposes seer_wal_append_us
    // and checkpoint save/restore shapes agree across processes. The
    // registry hands back a stable pointer; restores refill it in
    // place. Null (and appends untimed) when metrics are off.
    walLatency = monitorPtr->observability() == nullptr
                     ? nullptr
                     : monitorPtr->observability()->walAppendLatency();
    walTick = 0;
}

std::vector<core::MonitorReport>
VaultedMonitor::feed(const logging::LogRecord &record)
{
    if (!config.enabled()) {
        return monitorPtr->feed(record);
    }
    const bool timed = walLatency != nullptr && walTick++ % 8 == 0;
    std::chrono::steady_clock::time_point before;
    if (timed)
        before = std::chrono::steady_clock::now();
    ledger->appendRecord(++nextSeq, record);
    if (timed)
        walLatency->record(microsSince(before));
    ++tallies.walAppends;
    ++inputsSinceCheckpoint;
    std::vector<core::MonitorReport> reports =
        monitorPtr->feed(record);
    maybeCheckpoint();
    return reports;
}

std::vector<core::MonitorReport>
VaultedMonitor::feedLine(const std::string &line)
{
    if (!config.enabled()) {
        return monitorPtr->feedLine(line);
    }
    const bool timed = walLatency != nullptr && walTick++ % 8 == 0;
    std::chrono::steady_clock::time_point before;
    if (timed)
        before = std::chrono::steady_clock::now();
    ledger->appendLine(++nextSeq, line);
    if (timed)
        walLatency->record(microsSince(before));
    ++tallies.walAppends;
    ++inputsSinceCheckpoint;
    std::vector<core::MonitorReport> reports =
        monitorPtr->feedLine(line);
    maybeCheckpoint();
    return reports;
}

std::vector<core::MonitorReport>
VaultedMonitor::finish()
{
    std::vector<core::MonitorReport> reports = monitorPtr->finish();
    if (config.enabled()) {
        checkpoint();
    }
    return reports;
}

bool
VaultedMonitor::checkpoint()
{
    if (!config.enabled()) {
        return false;
    }
    CheckpointMeta meta;
    meta.modelFingerprint = monitorPtr->modelFingerprint();
    meta.coveredSeq = nextSeq;
    meta.monitorTime = monitorPtr->lastTime();

    common::BinWriter interner_out;
    logging::IdentifierInterner::process().snapshotState(interner_out);
    common::BinWriter monitor_out;
    monitorPtr->saveState(monitor_out);

    std::vector<std::pair<CheckpointSection, std::string>> sections;
    sections.emplace_back(CheckpointSection::Meta, encodeMeta(meta));
    sections.emplace_back(CheckpointSection::Interner,
                          interner_out.takeBytes());
    sections.emplace_back(CheckpointSection::Monitor,
                          monitor_out.takeBytes());

    std::uint64_t bytes =
        writeCheckpoint(checkpointPath(config.directory), sections);
    if (bytes == 0) {
        return false;
    }
    ++tallies.checkpointsTaken;
    tallies.lastCheckpointBytes = bytes;
    inputsSinceCheckpoint = 0;
    return ledger->rotate();
}

void
VaultedMonitor::maybeCheckpoint()
{
    if (config.checkpointEveryRecords > 0 &&
        inputsSinceCheckpoint >= config.checkpointEveryRecords) {
        checkpoint();
    }
}

VaultStats
VaultedMonitor::stats() const
{
    VaultStats out = tallies;
    out.walBytes = ledger == nullptr ? 0 : ledger->bytes();
    return out;
}

} // namespace cloudseer::vault
