#include "eval/experiment_config.hpp"

namespace cloudseer::eval {

std::vector<ExperimentGroup>
table3Groups()
{
    return {
        {1, 2, false, 10, 80},
        {2, 3, false, 10, 80},
        {3, 4, false, 10, 80},
        {4, 2, true, 10, 80},
        {5, 3, true, 10, 80},
        {6, 4, true, 10, 80},
    };
}

std::vector<ExperimentGroup>
table3GroupsSmall()
{
    return {
        {1, 2, false, 2, 20},
        {2, 3, false, 2, 20},
        {3, 4, false, 2, 20},
        {4, 2, true, 2, 20},
        {5, 3, true, 2, 20},
        {6, 4, true, 2, 20},
    };
}

std::uint64_t
datasetSeed(int group, int dataset)
{
    return 0xc10d5eedULL + static_cast<std::uint64_t>(group) * 1000 +
           static_cast<std::uint64_t>(dataset);
}

} // namespace cloudseer::eval
