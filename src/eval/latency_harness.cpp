#include "eval/latency_harness.hpp"

#include <cstdio>
#include <map>
#include <set>

#include "common/string_util.hpp"
#include "core/mining/model_builder.hpp"
#include "eval/detection_harness.hpp"
#include "workload/workload_generator.hpp"

namespace cloudseer::eval {

namespace {

/** TaskType whose canonical name matches `name`, or nullopt. */
std::optional<sim::TaskType>
taskTypeByName(const std::string &name)
{
    for (sim::TaskType type : sim::kAllTaskTypes) {
        if (name == sim::taskTypeName(type))
            return type;
    }
    return std::nullopt;
}

} // namespace

std::vector<core::LatencyProfile>
mineSystemProfiles(const ModeledSystem &models,
                   const LatencyMiningConfig &config)
{
    std::vector<core::LatencyProfile> out;
    core::TaskModeler modeler(*models.catalog);

    std::uint64_t seed = config.seed;
    for (const core::TaskAutomaton &automaton : models.automata) {
        std::optional<sim::TaskType> type =
            taskTypeByName(automaton.name());
        ++seed;
        if (!type) {
            // A hand-built automaton the simulator cannot exercise:
            // ship an empty profile so the output stays parallel to
            // the automata (the checker leaves such tasks exempt).
            core::LatencyProfile empty;
            empty.task = automaton.name();
            out.push_back(std::move(empty));
            continue;
        }

        // The modeling harness's sequential-runner procedure: one
        // dedicated simulation, runs spaced far apart, each window
        // shipped with fresh skew.
        sim::Simulation simulation(config.sim, seed);
        sim::UserProfile user = simulation.makeUser();
        std::vector<core::TimedSequence> runs;
        std::size_t cursor = 0;
        common::SimTime nextStart = 1.0;
        std::uint64_t shipSeed = seed ^ 0x5eedf00dULL;
        for (std::size_t run = 0; run < config.runsPerTask; ++run) {
            sim::VmHandle vm = simulation.makeVm();
            simulation.submit(*type, nextStart, user, vm);
            nextStart += 30.0;
            simulation.run();

            const auto &all = simulation.records();
            std::vector<logging::LogRecord> window(
                all.begin() + static_cast<long>(cursor), all.end());
            cursor = all.size();

            collect::ShippingConfig ship = config.shipping;
            ship.seed = shipSeed++;
            runs.push_back(modeler.toTimedSequence(
                collect::mergeStream(window, ship)));
        }
        out.push_back(core::mineLatencyProfile(automaton, runs));
    }
    return out;
}

double
LatencyEvalResult::precision() const
{
    int reported = truePositives + falsePositives;
    return reported == 0 ? 1.0
                         : static_cast<double>(truePositives) /
                               static_cast<double>(reported);
}

double
LatencyEvalResult::recall() const
{
    int positives = truePositives + falseNegatives;
    return positives == 0 ? 1.0
                          : static_cast<double>(truePositives) /
                                static_cast<double>(positives);
}

LatencyEvalResult
runLatencyExperiment(const ModeledSystem &models,
                     const std::vector<core::LatencyProfile> &profiles,
                     const LatencyEvalConfig &config)
{
    LatencyEvalResult result;
    result.point = config.point;

    core::MonitorConfig monitor_config;
    monitor_config.timeoutSeconds = config.timeoutSeconds;
    monitor_config.latencyProfiles = profiles;
    monitor_config.latencyCheck = config.check;

    int triggered = 0;
    for (int run = 0; run < config.maxRuns &&
                      triggered < config.targetProblems;
         ++run) {
        std::uint64_t run_seed =
            config.seed + static_cast<std::uint64_t>(run) * 7919;

        sim::Simulation simulation(config.sim, run_seed);
        simulation.setInjector(sim::FaultInjector(
            config.point, config.triggerProbability,
            /*error_message_probability=*/0.7, run_seed ^ 0xfa17ULL,
            static_cast<std::size_t>(config.targetProblems -
                                     triggered)));

        workload::WorkloadConfig wl;
        wl.users = config.usersPerRun;
        wl.tasksPerUser = config.tasksPerUserPerRun;
        wl.singleUid = false;
        wl.seed = run_seed ^ 0x3141ULL;
        workload::WorkloadGenerator generator(wl);
        result.tasksRun += generator.submitAll(simulation);
        simulation.run();

        collect::ShippingConfig ship = config.shipping;
        ship.seed = run_seed ^ 0x5a1cULL;
        std::vector<logging::LogRecord> stream =
            collect::mergeStream(simulation.records(), ship);

        std::map<logging::RecordId, logging::ExecutionId> truth_of;
        for (const logging::LogRecord &record : stream)
            truth_of[record.id] = record.truthExecution;

        core::WorkflowMonitor monitor(monitor_config, models.catalog,
                                      models.automataCopy());
        std::vector<core::MonitorReport> reports;
        for (const logging::LogRecord &record : stream) {
            for (core::MonitorReport &report : monitor.feed(record))
                reports.push_back(std::move(report));
        }
        for (core::MonitorReport &report : monitor.finish())
            reports.push_back(std::move(report));

        // Injection ground truth: Delay executions are the positives.
        std::map<logging::ExecutionId, const sim::InjectionRecord *>
            delayed;
        for (const sim::InjectionRecord &record :
             simulation.injector().records()) {
            if (record.type == sim::ProblemType::Delay) {
                ++result.delayProblems;
                delayed[record.execution] = &record;
            } else {
                ++result.otherProblems;
            }
        }
        triggered += static_cast<int>(
            simulation.injector().records().size());

        std::set<logging::ExecutionId> credited;
        std::set<logging::ExecutionId> blamed;
        for (const core::MonitorReport &report : reports) {
            if (report.event.kind !=
                core::CheckEventKind::LatencyAnomaly)
                continue;
            ++result.anomaliesReported;
            logging::ExecutionId exec =
                dominantExecution(report.event, truth_of);
            if (exec != 0 && delayed.count(exec)) {
                if (!credited.count(exec)) {
                    credited.insert(exec);
                    ++result.truePositives;
                    result.detectionDelay.add(
                        report.event.time - delayed.at(exec)->time);
                }
            } else {
                // Anomalies pinned on Abort/Silent injections are not
                // false alarms — that execution *was* broken — but
                // they are not the criterion's target either, so they
                // score as neither TP nor FP.
                bool injected_other = false;
                for (const sim::InjectionRecord &record :
                     simulation.injector().records()) {
                    if (record.execution == exec) {
                        injected_other = true;
                        break;
                    }
                }
                if (injected_other)
                    continue;
                if (exec == 0 || !blamed.count(exec)) {
                    if (exec != 0)
                        blamed.insert(exec);
                    ++result.falsePositives;
                }
            }
        }
        for (const auto &[exec, record] : delayed) {
            if (!credited.count(exec))
                ++result.falseNegatives;
        }
    }
    return result;
}

std::string
latencyEvalTable(const std::vector<LatencyEvalResult> &rows)
{
    char buf[192];
    std::string out;
    std::snprintf(buf, sizeof(buf),
                  "%-14s %6s %5s %6s %9s %4s %4s %4s %9s %7s\n",
                  "point", "tasks", "delay", "other", "anomalies",
                  "TP", "FP", "FN", "precision", "recall");
    out += buf;
    for (const LatencyEvalResult &row : rows) {
        std::snprintf(buf, sizeof(buf),
                      "%-14s %6zu %5d %6d %9d %4d %4d %4d %9.3f %7.3f\n",
                      sim::injectionPointName(row.point), row.tasksRun,
                      row.delayProblems, row.otherProblems,
                      row.anomaliesReported, row.truePositives,
                      row.falsePositives, row.falseNegatives,
                      row.precision(), row.recall());
        out += buf;
    }
    return out;
}

std::string
latencyEvalJson(const LatencyEvalResult &result)
{
    std::string out = "{\"kind\":\"LATENCY_EVAL\",";
    out += "\"point\":\"";
    out += sim::injectionPointName(result.point);
    out += "\",";
    out += "\"tasks\":" + std::to_string(result.tasksRun) + ",";
    out += "\"delayProblems\":" +
           std::to_string(result.delayProblems) + ",";
    out += "\"otherProblems\":" +
           std::to_string(result.otherProblems) + ",";
    out += "\"anomalies\":" +
           std::to_string(result.anomaliesReported) + ",";
    out += "\"tp\":" + std::to_string(result.truePositives) + ",";
    out += "\"fp\":" + std::to_string(result.falsePositives) + ",";
    out += "\"fn\":" + std::to_string(result.falseNegatives) + ",";
    out += "\"precision\":" +
           common::formatDouble(result.precision(), 4) + ",";
    out += "\"recall\":" + common::formatDouble(result.recall(), 4) +
           ",";
    out += "\"meanDetectionDelay\":" +
           common::formatDouble(result.detectionDelay.mean(), 3) + "}";
    return out;
}

} // namespace cloudseer::eval
