#include "eval/modeling_harness.hpp"

#include "common/error.hpp"
#include "core/mining/model_builder.hpp"
#include "workload/workload_generator.hpp"

namespace cloudseer::eval {

namespace {

/**
 * Produces one correct-execution log sequence per call by running the
 * task on a dedicated simulation, with background noise interleaved —
 * the raw material the preprocessing step must clean.
 */
class SequentialRunner
{
  public:
    SequentialRunner(sim::TaskType type, const ModelingConfig &config,
                     logging::TemplateCatalog &catalog,
                     std::uint64_t seed)
        : taskType(type),
          shipping(config.shipping),
          simulation(config.sim, seed),
          user(simulation.makeUser()),
          modeler(catalog),
          shipSeed(seed ^ 0x5eedf00dULL)
    {
    }

    core::TemplateSequence
    operator()()
    {
        // Space runs far apart so windows never overlap; boot opens a
        // fresh VM per run, other tasks reuse one VM identity (their
        // flows do not depend on prior state).
        sim::VmHandle vm = simulation.makeVm();
        common::SimTime when = nextStart;
        nextStart += 30.0;
        simulation.submit(taskType, when, user, vm);
        simulation.run();

        // The new records since the previous run are this execution's
        // log sequence (task messages plus any background noise that
        // fell into the window).
        const auto &all = simulation.records();
        std::vector<logging::LogRecord> window(all.begin() +
                                                   static_cast<long>(cursor),
                                               all.end());
        cursor = all.size();

        collect::ShippingConfig ship = shipping;
        ship.seed = shipSeed++;
        std::vector<logging::LogRecord> stream =
            collect::mergeStream(window, ship);
        return modeler.toTemplateSequence(stream);
    }

  private:
    sim::TaskType taskType;
    collect::ShippingConfig shipping;
    sim::Simulation simulation;
    sim::UserProfile user;
    core::TaskModeler modeler;
    std::size_t cursor = 0;
    common::SimTime nextStart = 1.0;
    std::uint64_t shipSeed;
};

} // namespace

ModeledSystem
buildModels(const ModelingConfig &config)
{
    ModeledSystem out;
    out.catalog = std::make_shared<logging::TemplateCatalog>();
    core::TaskModeler modeler(*out.catalog);

    std::uint64_t seed = config.seed;
    for (sim::TaskType type : sim::kAllTaskTypes) {
        SequentialRunner runner(type, config, *out.catalog, seed++);
        core::TaskModeler::ConvergenceResult result =
            modeler.modelUntilStable(
                sim::taskTypeName(type), [&runner] { return runner(); },
                config.minRuns, config.checkEvery, config.stableChecks,
                config.maxRuns);

        TaskModelInfo info;
        info.type = type;
        info.messages = result.automaton.eventCount();
        info.transitions = result.automaton.edgeCount();
        info.runsUsed = result.runsUsed;
        info.converged = result.converged;
        out.perTask.push_back(info);
        out.automata.push_back(std::move(result.automaton));
    }
    return out;
}

} // namespace cloudseer::eval
