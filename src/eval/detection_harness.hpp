/**
 * @file
 * Problem-detection harness (paper §5.3, §5.6 / Tables 4 and 7): run
 * fault-injected workloads until an injection point triggers the
 * target number of problems, monitor the streams, and score reports
 * against the injection ground truth.
 */

#ifndef CLOUDSEER_EVAL_DETECTION_HARNESS_HPP
#define CLOUDSEER_EVAL_DETECTION_HARNESS_HPP

#include "common/stats.hpp"
#include "eval/modeling_harness.hpp"
#include "sim/fault_injector.hpp"

namespace cloudseer::eval {

/** Detection-experiment parameters (paper defaults). */
struct DetectionConfig
{
    sim::InjectionPoint point = sim::InjectionPoint::AmqpSender;
    int targetProblems = 10;      ///< triggered problems to accumulate
    int usersPerRun = 4;          ///< concurrent users (paper §5.3)
    int tasksPerUserPerRun = 4;   ///< tasks per user per batch
    int maxRuns = 80;             ///< hard cap on batches
    double triggerProbability = 0.25;
    double errorMessageProbability = 0.7; ///< P(abort logs an ERROR)
    std::uint64_t seed = 99;
    sim::SimConfig sim;
    collect::ShippingConfig shipping;
};

/** Table 7 row for one injection point. */
struct DetectionResult
{
    sim::InjectionPoint point = sim::InjectionPoint::AmqpSender;
    std::size_t tasksRun = 0;  ///< "Tasks"
    int delayProblems = 0;     ///< "D"
    int abortProblems = 0;     ///< "A"
    int silentProblems = 0;    ///< "S"
    int detected = 0;          ///< "Detected" (true positives)
    int falsePositives = 0;    ///< "F/P"
    int falseNegatives = 0;    ///< "F/N"
    int detectedByError = 0;   ///< via the error-message criterion
    int detectedByTimeout = 0; ///< via the timeout criterion
    int problemsWithErrorMessage = 0;

    /** Seconds from injection to the first crediting report. */
    common::SampleStats detectionLatency;

    common::DetectionStats
    asStats() const
    {
        common::DetectionStats out;
        out.truePositives = static_cast<std::size_t>(detected);
        out.falsePositives = static_cast<std::size_t>(falsePositives);
        out.falseNegatives = static_cast<std::size_t>(falseNegatives);
        return out;
    }
};

/** Run the detection experiment for one injection point. */
DetectionResult runDetectionExperiment(const ModeledSystem &models,
                                       const DetectionConfig &config,
                                       const core::MonitorConfig &monitor);

/**
 * Majority ground-truth execution among a report's records — the
 * attribution rule both the detection and resilience harnesses score
 * with (0 = no injected execution dominates).
 */
logging::ExecutionId
dominantExecution(const core::CheckEvent &event,
                  const std::map<logging::RecordId,
                                 logging::ExecutionId> &truth_of);

/**
 * Offline-baseline comparison row: the same fault-injected streams
 * scored by a window-statistics detector that needs the complete log
 * (DESIGN.md — related-work family the paper argues against).
 */
struct BaselineResult
{
    common::DetectionStats stats;
    common::SampleStats detectionLatency; ///< injection -> stream end
    std::size_t anomalousWindows = 0;
};

/**
 * Run the offline baseline over the same batches the detection
 * experiment uses (same seeds, same injector), training it on a
 * correct workload first.
 */
BaselineResult runOfflineBaseline(const DetectionConfig &config);

} // namespace cloudseer::eval

#endif // CLOUDSEER_EVAL_DETECTION_HARNESS_HPP
