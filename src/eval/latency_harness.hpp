/**
 * @file
 * Latency-anomaly evaluation harness (seer-flight, DESIGN.md §12).
 *
 * The sim's Delay problem type is labeled ground truth for performance
 * anomalies: the execution completes logically — every message, a
 * legal order — just 15–30 s late at the injection point. This harness
 * (1) mines per-task latency profiles from correct sequential training
 * runs, exactly as a deployment would before enabling the criterion,
 * and (2) replays fault-injected interleaved workloads through a
 * monitor with the latency criterion armed, scoring LatencyAnomaly
 * reports against the Delay injections for a precision/recall row.
 */

#ifndef CLOUDSEER_EVAL_LATENCY_HARNESS_HPP
#define CLOUDSEER_EVAL_LATENCY_HARNESS_HPP

#include "common/stats.hpp"
#include "core/mining/latency_profile.hpp"
#include "eval/modeling_harness.hpp"
#include "sim/fault_injector.hpp"

namespace cloudseer::eval {

/** Correct-execution training knobs for profile mining. */
struct LatencyMiningConfig
{
    std::uint64_t seed = 4242;

    /** Training executions per task (accepting runs contribute). */
    std::size_t runsPerTask = 40;

    /** Ship training logs with the same mild skew as checking. */
    collect::ShippingConfig shipping;

    sim::SimConfig sim;
};

/**
 * Mine one latency profile per modeled task, by running each task
 * sequentially (background noise on) and replaying the shipped stream
 * through its automaton — the offline procedure behind the model
 * file's tasklat/edgelat directives.
 */
std::vector<core::LatencyProfile>
mineSystemProfiles(const ModeledSystem &models,
                   const LatencyMiningConfig &config);

/** Latency-detection experiment parameters. */
struct LatencyEvalConfig
{
    sim::InjectionPoint point = sim::InjectionPoint::AmqpSender;
    int targetProblems = 10; ///< triggered problems to accumulate
    int usersPerRun = 4;
    int tasksPerUserPerRun = 4;
    int maxRuns = 80;
    double triggerProbability = 0.25;
    std::uint64_t seed = 99;

    /**
     * Whole-task timeout while the criterion runs. Deliberately
     * generous (not the paper's 10 s): an injected delay of 15–30 s
     * must not trip the timeout criterion first, or the execution
     * never reaches acceptance and the latency criterion never sees
     * it. Finer-grained detection needs the coarse criterion out of
     * the way.
     */
    double timeoutSeconds = 60.0;

    /** Budget rule under test (default: p99 * 1.5 + 0.5 s). */
    core::LatencyCheckConfig check;

    sim::SimConfig sim;
    collect::ShippingConfig shipping;
};

/** Precision/recall row for latency-anomaly detection. */
struct LatencyEvalResult
{
    sim::InjectionPoint point = sim::InjectionPoint::AmqpSender;
    std::size_t tasksRun = 0;
    int delayProblems = 0; ///< ground-truth positives
    int otherProblems = 0; ///< Abort/Silent injections (not positives)
    int anomaliesReported = 0; ///< LatencyAnomaly reports emitted
    int truePositives = 0;
    int falsePositives = 0;
    int falseNegatives = 0;

    /** Seconds from injection to the crediting LatencyAnomaly. */
    common::SampleStats detectionDelay;

    double precision() const;
    double recall() const;
};

/**
 * Run the latency-detection experiment: same batch loop and seeds as
 * runDetectionExperiment, monitored with `profiles` armed. Scoring:
 * a LatencyAnomaly whose dominant execution is a Delay injection is a
 * true positive (credited once); one blaming a healthy or unknown
 * execution is a false positive; a Delay injection no LatencyAnomaly
 * credits is a false negative. Anomalies attributed to Abort/Silent
 * injections are neither — those executions are genuinely broken,
 * just not the criterion's target (and they normally never accept).
 */
LatencyEvalResult
runLatencyExperiment(const ModeledSystem &models,
                     const std::vector<core::LatencyProfile> &profiles,
                     const LatencyEvalConfig &config);

/** Fixed-width table of one or more result rows. */
std::string
latencyEvalTable(const std::vector<LatencyEvalResult> &rows);

/** One row as single-line JSON ({"kind":"LATENCY_EVAL",...}). */
std::string latencyEvalJson(const LatencyEvalResult &result);

} // namespace cloudseer::eval

#endif // CLOUDSEER_EVAL_LATENCY_HARNESS_HPP
