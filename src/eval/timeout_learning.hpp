/**
 * @file
 * Learns a per-task timeout policy from correct executions on the
 * simulated deployment — the evaluation-side driver for the
 * TimeoutEstimator extension (the paper leaves timeout selection as
 * future work).
 */

#ifndef CLOUDSEER_EVAL_TIMEOUT_LEARNING_HPP
#define CLOUDSEER_EVAL_TIMEOUT_LEARNING_HPP

#include <cstdint>

#include "core/monitor/timeout_estimator.hpp"
#include "sim/simulation.hpp"

namespace cloudseer::eval {

/**
 * Run each of the eight tasks `runs_per_task` times sequentially and
 * estimate per-task timeouts from the observed inter-message gaps.
 *
 * @param runs_per_task  Correct executions observed per task.
 * @param seed           Simulation seed.
 * @param safety_factor  Multiplier over the largest observed gap.
 * @param floor          Minimum timeout, seconds.
 * @param default_timeout Fallback for unobserved tasks.
 */
core::TimeoutPolicy
learnTimeoutPolicy(std::size_t runs_per_task, std::uint64_t seed,
                   double safety_factor = 3.0, double floor = 2.0,
                   double default_timeout = 10.0);

} // namespace cloudseer::eval

#endif // CLOUDSEER_EVAL_TIMEOUT_LEARNING_HPP
