#include "eval/detection_harness.hpp"

#include <map>
#include <set>

#include "baseline/offline_detector.hpp"
#include "workload/workload_generator.hpp"

namespace cloudseer::eval {

logging::ExecutionId
dominantExecution(const core::CheckEvent &event,
                  const std::map<logging::RecordId,
                                 logging::ExecutionId> &truth_of)
{
    std::map<logging::ExecutionId, int> votes;
    for (logging::RecordId rid : event.records) {
        auto it = truth_of.find(rid);
        if (it != truth_of.end() && it->second != 0)
            ++votes[it->second];
    }
    logging::ExecutionId best = 0;
    int best_votes = 0;
    for (auto [exec, count] : votes) {
        if (count > best_votes) {
            best = exec;
            best_votes = count;
        }
    }
    return best;
}

DetectionResult
runDetectionExperiment(const ModeledSystem &models,
                       const DetectionConfig &config,
                       const core::MonitorConfig &monitor_config)
{
    DetectionResult result;
    result.point = config.point;

    int triggered = 0;
    for (int run = 0; run < config.maxRuns &&
                      triggered < config.targetProblems;
         ++run) {
        std::uint64_t run_seed =
            config.seed + static_cast<std::uint64_t>(run) * 7919;

        sim::Simulation simulation(config.sim, run_seed);
        simulation.setInjector(sim::FaultInjector(
            config.point, config.triggerProbability,
            config.errorMessageProbability, run_seed ^ 0xfa17ULL,
            static_cast<std::size_t>(config.targetProblems -
                                     triggered)));

        workload::WorkloadConfig wl;
        wl.users = config.usersPerRun;
        wl.tasksPerUser = config.tasksPerUserPerRun;
        wl.singleUid = false;
        wl.seed = run_seed ^ 0x3141ULL;
        workload::WorkloadGenerator generator(wl);
        result.tasksRun += generator.submitAll(simulation);
        simulation.run();

        collect::ShippingConfig ship = config.shipping;
        ship.seed = run_seed ^ 0x5a1cULL;
        std::vector<logging::LogRecord> stream =
            collect::mergeStream(simulation.records(), ship);

        std::map<logging::RecordId, logging::ExecutionId> truth_of;
        for (const logging::LogRecord &record : stream)
            truth_of[record.id] = record.truthExecution;

        core::WorkflowMonitor monitor(monitor_config, models.catalog,
                                      models.automataCopy());
        std::vector<core::MonitorReport> reports;
        for (const logging::LogRecord &record : stream) {
            for (core::MonitorReport &report : monitor.feed(record))
                reports.push_back(std::move(report));
        }
        for (core::MonitorReport &report : monitor.finish())
            reports.push_back(std::move(report));

        // Injection ground truth for this batch.
        std::map<logging::ExecutionId, const sim::InjectionRecord *>
            injected;
        for (const sim::InjectionRecord &record :
             simulation.injector().records()) {
            injected[record.execution] = &record;
            switch (record.type) {
              case sim::ProblemType::Delay:
                ++result.delayProblems;
                break;
              case sim::ProblemType::Abort:
                ++result.abortProblems;
                break;
              case sim::ProblemType::Silent:
                ++result.silentProblems;
                break;
              case sim::ProblemType::None:
                break;
            }
            if (record.emittedError)
                ++result.problemsWithErrorMessage;
        }
        triggered += static_cast<int>(
            simulation.injector().records().size());

        // Score: each problem report maps to its dominant execution.
        std::set<logging::ExecutionId> credited;
        std::set<logging::ExecutionId> blamed;
        for (const core::MonitorReport &report : reports) {
            // End-of-stream reports count too: the shipped stream is
            // complete, so a healthy execution can never be cut off —
            // anything still open at the end is genuinely stuck.
            // Degraded reports are shed-state accounting, not problem
            // verdicts, so they are never scored.
            if (report.event.kind == core::CheckEventKind::Accepted ||
                report.event.kind == core::CheckEventKind::Degraded)
                continue;
            logging::ExecutionId exec =
                dominantExecution(report.event, truth_of);
            bool is_error =
                report.event.kind == core::CheckEventKind::ErrorDetected;
            if (exec != 0 && injected.count(exec)) {
                if (!credited.count(exec)) {
                    credited.insert(exec);
                    ++result.detected;
                    result.detectionLatency.add(
                        report.event.time - injected.at(exec)->time);
                    if (is_error)
                        ++result.detectedByError;
                    else
                        ++result.detectedByTimeout;
                }
                // Repeat reports for an already-credited problem are
                // neither TPs nor FPs.
            } else {
                // A report blaming a healthy (or unknown) execution.
                if (exec == 0 || !blamed.count(exec)) {
                    if (exec != 0)
                        blamed.insert(exec);
                    ++result.falsePositives;
                }
            }
        }
        for (const auto &[exec, record] : injected) {
            if (!credited.count(exec))
                ++result.falseNegatives;
        }
    }
    return result;
}

BaselineResult
runOfflineBaseline(const DetectionConfig &config)
{
    BaselineResult result;

    baseline::OfflineDetectorConfig detector_config;
    detector_config.windowSeconds = 10.0;
    baseline::OfflineAnomalyDetector detector(detector_config);

    // Train on correct workloads of the same shape (several, so the
    // count statistics stabilise).
    for (int t = 0; t < 4; ++t) {
        sim::Simulation simulation(config.sim,
                                   config.seed + 50000 +
                                       static_cast<std::uint64_t>(t));
        workload::WorkloadConfig wl;
        wl.users = config.usersPerRun;
        wl.tasksPerUser = config.tasksPerUserPerRun;
        wl.seed = config.seed + 60000 + static_cast<std::uint64_t>(t);
        workload::WorkloadGenerator(wl).submitAll(simulation);
        simulation.run();
        collect::ShippingConfig ship = config.shipping;
        ship.seed = config.seed + 70000 + static_cast<std::uint64_t>(t);
        detector.train(collect::mergeStream(simulation.records(), ship));
    }

    // Identical batches to runDetectionExperiment (same seeds).
    int triggered = 0;
    for (int run = 0; run < config.maxRuns &&
                      triggered < config.targetProblems;
         ++run) {
        std::uint64_t run_seed =
            config.seed + static_cast<std::uint64_t>(run) * 7919;
        sim::Simulation simulation(config.sim, run_seed);
        simulation.setInjector(sim::FaultInjector(
            config.point, config.triggerProbability,
            config.errorMessageProbability, run_seed ^ 0xfa17ULL,
            static_cast<std::size_t>(config.targetProblems -
                                     triggered)));
        workload::WorkloadConfig wl;
        wl.users = config.usersPerRun;
        wl.tasksPerUser = config.tasksPerUserPerRun;
        wl.seed = run_seed ^ 0x3141ULL;
        workload::WorkloadGenerator(wl).submitAll(simulation);
        simulation.run();
        triggered += static_cast<int>(
            simulation.injector().records().size());

        collect::ShippingConfig ship = config.shipping;
        ship.seed = run_seed ^ 0x5a1cULL;
        std::vector<logging::LogRecord> stream =
            collect::mergeStream(simulation.records(), ship);
        if (stream.empty())
            continue;
        double stream_end = stream.back().timestamp;

        std::map<logging::RecordId, logging::ExecutionId> truth_of;
        for (const logging::LogRecord &record : stream)
            truth_of[record.id] = record.truthExecution;
        std::map<logging::ExecutionId, const sim::InjectionRecord *>
            injected;
        for (const sim::InjectionRecord &record :
             simulation.injector().records()) {
            injected[record.execution] = &record;
        }

        // The offline detector only answers once the log is complete.
        std::vector<baseline::AnomalousWindow> windows =
            detector.analyze(stream);
        result.anomalousWindows += windows.size();

        std::set<logging::ExecutionId> credited;
        for (const baseline::AnomalousWindow &window : windows) {
            bool matched = false;
            for (logging::RecordId rid : window.records) {
                auto it = truth_of.find(rid);
                if (it == truth_of.end() || it->second == 0)
                    continue;
                auto inj = injected.find(it->second);
                if (inj != injected.end() &&
                    !credited.count(it->second)) {
                    credited.insert(it->second);
                    ++result.stats.truePositives;
                    // Detection waits for the full log.
                    result.detectionLatency.add(stream_end -
                                                inj->second->time);
                    matched = true;
                }
            }
            if (!matched)
                ++result.stats.falsePositives;
        }
        for (const auto &[exec, record] : injected) {
            if (!credited.count(exec))
                ++result.stats.falseNegatives;
        }
    }
    return result;
}

} // namespace cloudseer::eval
