/**
 * @file
 * Offline-modeling harness: runs each task sequentially on the
 * simulated deployment and mines its automaton to convergence, exactly
 * the procedure behind the paper's Table 2.
 */

#ifndef CLOUDSEER_EVAL_MODELING_HARNESS_HPP
#define CLOUDSEER_EVAL_MODELING_HARNESS_HPP

#include <memory>
#include <vector>

#include "collect/stream_merger.hpp"
#include "core/automaton/task_automaton.hpp"
#include "core/monitor/workflow_monitor.hpp"
#include "sim/simulation.hpp"

namespace cloudseer::eval {

/** Per-task modeling outcome (one Table 2 row). */
struct TaskModelInfo
{
    sim::TaskType type = sim::TaskType::Boot;
    std::size_t messages = 0;    ///< key messages (Table 2 "Msgs")
    std::size_t transitions = 0; ///< automaton edges (Table 2 "Trans")
    std::size_t runsUsed = 0;    ///< executions until convergence
    bool converged = false;
};

/** The modeling stage's full output: catalog + automata + stats. */
struct ModeledSystem
{
    std::shared_ptr<logging::TemplateCatalog> catalog;
    std::vector<core::TaskAutomaton> automata;
    std::vector<TaskModelInfo> perTask;

    /** Automata copied for a monitor (monitors own their automata). */
    std::vector<core::TaskAutomaton> automataCopy() const
    {
        return automata;
    }
};

/** Modeling-harness knobs. */
struct ModelingConfig
{
    std::uint64_t seed = 2016;

    /** Convergence-loop parameters (see TaskModeler::modelUntilStable). */
    std::size_t minRuns = 60;
    std::size_t checkEvery = 20;
    std::size_t stableChecks = 4;
    std::size_t maxRuns = 800;

    /** Ship modeling logs with the same mild skew as checking. */
    collect::ShippingConfig shipping;

    /** Simulator settings for the modeling runs. */
    sim::SimConfig sim;
};

/**
 * Run the full offline modeling stage: for each of the eight tasks,
 * execute it repeatedly (sequentially, with background noise on) and
 * mine the automaton until convergence.
 */
ModeledSystem buildModels(const ModelingConfig &config);

} // namespace cloudseer::eval

#endif // CLOUDSEER_EVAL_MODELING_HARNESS_HPP
