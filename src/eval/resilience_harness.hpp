/**
 * @file
 * Resilience harness: how does detection degrade as the transport
 * misbehaves?
 *
 * Sweeps StreamPerturber intensity over the same fault-injected
 * workloads the Table 7 experiment uses, feeding the monitor through
 * the *wire* path (encoded lines, so truncation/corruption and the
 * malformed-line quarantine are exercised), and reports precision /
 * recall / detection-latency degradation curves against the
 * intensity-zero clean baseline.
 */

#ifndef CLOUDSEER_EVAL_RESILIENCE_HARNESS_HPP
#define CLOUDSEER_EVAL_RESILIENCE_HARNESS_HPP

#include <string>
#include <vector>

#include "collect/stream_perturber.hpp"
#include "eval/detection_harness.hpp"

namespace cloudseer::eval {

/** Resilience-sweep parameters. */
struct ResilienceConfig
{
    /** Injection points aggregated into each sweep point. */
    std::vector<sim::InjectionPoint> points = {
        sim::InjectionPoint::AmqpSender,
        sim::InjectionPoint::WsgiClient,
    };

    /** Triggered problems to accumulate per injection point. */
    int targetProblems = 8;

    int usersPerRun = 4;
    int tasksPerUserPerRun = 8;
    int maxRuns = 40;
    double triggerProbability = 0.25;
    double errorMessageProbability = 0.7;
    std::uint64_t seed = 7777;
    sim::SimConfig sim;
    collect::ShippingConfig shipping;

    /** Adversity model at intensity 1.0 (scaled per sweep point). */
    collect::PerturbationConfig adversity;

    /** Intensity multipliers; 0.0 is the clean baseline. */
    std::vector<double> intensities = {0.0, 0.5, 1.0, 2.0};

    /** Monitor under test (set `ingest` for the hardened profile). */
    core::MonitorConfig monitor;
};

/** One sweep point's scored outcome. */
struct ResiliencePoint
{
    double intensity = 0.0;

    common::DetectionStats stats;     ///< all problem types
    common::SampleStats detectionLatency;

    /** Abort+Delay-only recall (Silent problems are the paper's known
     *  blind spot; the resilience criterion tracks the detectable
     *  classes). */
    int abortDelayProblems = 0;
    int abortDelayDetected = 0;

    // Perturbation ground truth actually injected.
    std::size_t dropped = 0;
    std::size_t duplicated = 0;
    std::size_t truncated = 0;
    std::size_t corrupted = 0;

    // Ingest-pipeline behaviour, summed over runs.
    std::uint64_t quarantinedLines = 0;
    std::uint64_t duplicatesSuppressed = 0;
    std::uint64_t nonMonotonicClamped = 0;
    std::uint64_t groupsShed = 0;
    std::size_t degradedReports = 0;
    std::size_t peakActiveGroups = 0;

    /** Forensic bundles (JSON lines, seer-flight) harvested from the
     *  per-run monitors; empty unless config.monitor enables the
     *  flight recorder. */
    std::string forensicBundles;

    double precision() const { return stats.precision(); }
    double recall() const { return stats.recall(); }

    double abortDelayRecall() const
    {
        return abortDelayProblems == 0
                   ? 0.0
                   : static_cast<double>(abortDelayDetected) /
                         static_cast<double>(abortDelayProblems);
    }
};

/** The full sweep: one point per configured intensity. */
struct ResilienceCurve
{
    std::vector<ResiliencePoint> points; ///< intensity order

    /** The intensity-0.0 baseline (first point, by construction). */
    const ResiliencePoint &clean() const { return points.front(); }

    /**
     * Recall retention of a sweep point vs. the clean baseline, on
     * Abort+Delay problems (1.0 = no degradation).
     */
    double recallRetention(const ResiliencePoint &point) const;
};

/** Run the sweep (deterministic in config.seed). */
ResilienceCurve runResilienceSweep(const ModeledSystem &models,
                                   const ResilienceConfig &config);

/** Render a curve as a single JSON object (bench output). */
std::string resilienceCurveToJson(const ResilienceCurve &curve);

} // namespace cloudseer::eval

#endif // CLOUDSEER_EVAL_RESILIENCE_HARNESS_HPP
