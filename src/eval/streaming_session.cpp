#include "eval/streaming_session.hpp"

#include <limits>

namespace cloudseer::eval {

StreamingSession::StreamingSession(
    sim::Simulation &simulation_, core::WorkflowMonitor &monitor_,
    const collect::ShippingConfig &shipping_, ReportCallback on_report)
    : simulation(simulation_),
      monitor(monitor_),
      shipRng(shipping_.seed),
      shipping(shipping_),
      onReport(std::move(on_report))
{
    simulation.setEmissionCallback(
        [this](const logging::LogRecord &record) {
            onEmission(record);
        });
}

void
StreamingSession::onEmission(const logging::LogRecord &record)
{
    // Anything whose shipping delay has elapsed by the current
    // simulated instant has arrived at the collector; feed it before
    // buffering the new emission.
    drainUpTo(record.timestamp);

    double delay = shipRng.expDelay(std::max(shipping.meanDelay, 1e-6));
    if (shipping.tailProbability > 0.0 &&
        shipRng.chance(shipping.tailProbability)) {
        delay += shipRng.uniformReal(shipping.tailMin, shipping.tailMax);
    }
    buffer.push({record.timestamp + delay, record});
}

void
StreamingSession::drainUpTo(common::SimTime now)
{
    while (!buffer.empty() && buffer.top().arrival <= now) {
        InFlight next = buffer.top();
        buffer.pop();
        ++deliveredCount;
        for (const core::MonitorReport &report :
             monitor.feed(next.record)) {
            if (onReport)
                onReport(report);
        }
    }
}

void
StreamingSession::run()
{
    simulation.run();
    // Deliver the tail of the buffer, then flush the monitor.
    drainUpTo(std::numeric_limits<double>::infinity());
    for (const core::MonitorReport &report : monitor.finish()) {
        if (onReport)
            onReport(report);
    }
}

} // namespace cloudseer::eval
