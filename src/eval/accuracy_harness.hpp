/**
 * @file
 * Accuracy/efficiency harness: generates one interleaved-log dataset
 * (workload → simulation → shipped stream), feeds it to a monitor, and
 * scores the result against exact ground truth — the machinery behind
 * the paper's Tables 5 and 6.
 */

#ifndef CLOUDSEER_EVAL_ACCURACY_HARNESS_HPP
#define CLOUDSEER_EVAL_ACCURACY_HARNESS_HPP

#include "collect/stream_merger.hpp"
#include "eval/modeling_harness.hpp"
#include "sim/simulation.hpp"
#include "workload/workload_generator.hpp"

namespace cloudseer::eval {

/** One dataset's generation parameters. */
struct DatasetConfig
{
    int users = 2;
    bool singleUid = false;
    int tasksPerUser = 80;
    std::uint64_t seed = 1;
    sim::SimConfig sim;
    collect::ShippingConfig shipping;
};

/** Scored outcome of checking one dataset. */
struct DatasetResult
{
    std::size_t totalTasks = 0;
    std::size_t totalMessages = 0;

    // Ground-truth interleaving (paper Table 5 "% Interleaved").
    std::size_t sequences = 0;           ///< emitting executions
    double interleavedFraction2 = 0.0;
    double interleavedFraction3 = 0.0;
    double interleavedFraction4 = 0.0;

    // Checking outcomes.
    std::size_t acceptedCorrect = 0;  ///< accepted, single-truth, right task
    std::size_t acceptedWrong = 0;    ///< accepted but mixed/mis-tasked
    std::size_t notAccepted = 0;      ///< sequences - acceptedCorrect

    /** The paper's §5.4 formula: 1 - notAccepted / interleaved. */
    double accuracy = 0.0;

    /** Wall-clock seconds spent inside the monitor (feed + finish). */
    double checkSeconds = 0.0;

    /** Seconds per 1000 messages (paper Table 6 "Ave. 1k"). */
    double secondsPer1k = 0.0;

    core::CheckerStats stats;
};

/** Generate a dataset's stream plus the ground truth behind it. */
struct GeneratedDataset
{
    std::vector<logging::LogRecord> stream;     ///< arrival order
    sim::GroundTruth truth;
    std::size_t totalTasks = 0;
};

/** Run workload + simulation + shipping for one dataset. */
GeneratedDataset generateDataset(const DatasetConfig &config);

/**
 * Check a generated dataset with a fresh monitor over the given models
 * and score it against ground truth.
 */
DatasetResult checkDataset(const ModeledSystem &models,
                           const GeneratedDataset &dataset,
                           const core::MonitorConfig &monitor_config);

/** Convenience: generate + check. */
DatasetResult runDataset(const ModeledSystem &models,
                         const DatasetConfig &config,
                         const core::MonitorConfig &monitor_config);

} // namespace cloudseer::eval

#endif // CLOUDSEER_EVAL_ACCURACY_HARNESS_HPP
