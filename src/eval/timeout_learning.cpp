#include "eval/timeout_learning.hpp"

#include "collect/stream_merger.hpp"

namespace cloudseer::eval {

core::TimeoutPolicy
learnTimeoutPolicy(std::size_t runs_per_task, std::uint64_t seed,
                   double safety_factor, double floor,
                   double default_timeout)
{
    core::TimeoutEstimator estimator;
    std::uint64_t task_seed = seed;
    for (sim::TaskType type : sim::kAllTaskTypes) {
        sim::SimConfig config;
        config.enableNoise = false;
        sim::Simulation simulation(config, task_seed++);
        sim::UserProfile user = simulation.makeUser();

        std::size_t cursor = 0;
        for (std::size_t run = 0; run < runs_per_task; ++run) {
            sim::VmHandle vm = simulation.makeVm();
            simulation.submit(type,
                              1.0 + static_cast<double>(run) * 60.0,
                              user, vm);
            simulation.run();

            std::vector<logging::LogRecord> window(
                simulation.records().begin() +
                    static_cast<long>(cursor),
                simulation.records().end());
            cursor = simulation.records().size();

            // Gaps are measured on the collector-side arrival order,
            // which is what the monitor's clock sees.
            collect::ShippingConfig shipping;
            shipping.seed = task_seed * 1000 + run;
            std::vector<logging::LogRecord> stream =
                collect::mergeStream(window, shipping);
            std::vector<common::SimTime> timestamps;
            timestamps.reserve(stream.size());
            for (const logging::LogRecord &record : stream)
                timestamps.push_back(record.timestamp);
            estimator.observeRun(sim::taskTypeName(type), timestamps);
        }
    }
    return estimator.estimate(safety_factor, floor, default_timeout);
}

} // namespace cloudseer::eval
