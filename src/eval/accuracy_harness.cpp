#include "eval/accuracy_harness.hpp"

#include <chrono>
#include <map>
#include <set>

namespace cloudseer::eval {

GeneratedDataset
generateDataset(const DatasetConfig &config)
{
    GeneratedDataset out;
    sim::Simulation simulation(config.sim, config.seed);

    workload::WorkloadConfig wl;
    wl.users = config.users;
    wl.tasksPerUser = config.tasksPerUser;
    wl.singleUid = config.singleUid;
    wl.seed = config.seed ^ 0x770a6bULL;
    workload::WorkloadGenerator generator(wl);
    out.totalTasks = generator.submitAll(simulation);
    simulation.run();

    collect::ShippingConfig ship = config.shipping;
    ship.seed = config.seed ^ 0x5a1cULL;
    out.stream = collect::mergeStream(simulation.records(), ship);
    out.truth = simulation.truth();
    return out;
}

DatasetResult
checkDataset(const ModeledSystem &models, const GeneratedDataset &dataset,
             const core::MonitorConfig &monitor_config)
{
    DatasetResult result;
    result.totalTasks = dataset.totalTasks;
    result.totalMessages = dataset.stream.size();

    // Ground-truth record-id -> execution map for scoring.
    std::map<logging::RecordId, logging::ExecutionId> truth_of;
    std::map<logging::RecordId, std::string> task_of;
    for (const logging::LogRecord &record : dataset.stream) {
        truth_of[record.id] = record.truthExecution;
        task_of[record.id] = record.truthTask;
    }

    core::WorkflowMonitor monitor(monitor_config, models.catalog,
                                  models.automataCopy());

    std::vector<core::MonitorReport> reports;
    auto start = std::chrono::steady_clock::now();
    for (const logging::LogRecord &record : dataset.stream) {
        for (core::MonitorReport &report : monitor.feed(record))
            reports.push_back(std::move(report));
    }
    for (core::MonitorReport &report : monitor.finish())
        reports.push_back(std::move(report));
    auto stop = std::chrono::steady_clock::now();
    result.checkSeconds =
        std::chrono::duration<double>(stop - start).count();
    result.secondsPer1k =
        result.totalMessages == 0
            ? 0.0
            : result.checkSeconds * 1000.0 /
                  static_cast<double>(result.totalMessages);
    result.stats = monitor.stats();

    // Score accepted instances with the paper's §5.4 semantics: an
    // accepted instance is wrong when it mixes executions of
    // *different* tasks or names the wrong task. Mixing records of two
    // executions of the same task is undetectable in principle when
    // their messages are byte-interchangeable (the paper: "we cannot
    // identify the case where an accepted instance may happen to take
    // messages from multiple sequences of the same kind of task") —
    // such an instance credits one still-uncredited execution among
    // its contributors.
    std::set<logging::ExecutionId> accepted_execs;
    for (const core::MonitorReport &report : reports) {
        if (report.event.kind != core::CheckEventKind::Accepted)
            continue;
        bool consistent = true;
        std::vector<logging::ExecutionId> contributors;
        for (logging::RecordId rid : report.event.records) {
            auto it = truth_of.find(rid);
            logging::ExecutionId e =
                it == truth_of.end() ? 0 : it->second;
            if (e == 0 || task_of[rid] != report.event.taskName) {
                consistent = false;
                break;
            }
            contributors.push_back(e);
        }
        logging::ExecutionId credit = 0;
        if (consistent) {
            for (logging::ExecutionId e : contributors) {
                if (!accepted_execs.count(e)) {
                    credit = e;
                    break;
                }
            }
        }
        if (credit != 0) {
            accepted_execs.insert(credit);
            ++result.acceptedCorrect;
        } else {
            ++result.acceptedWrong;
        }
    }

    // Ground-truth interleaving statistics.
    for (const sim::ExecutionInfo &info : dataset.truth.executions()) {
        if (info.anyEmission)
            ++result.sequences;
    }
    result.interleavedFraction2 = dataset.truth.interleavedFraction(2);
    result.interleavedFraction3 = dataset.truth.interleavedFraction(3);
    result.interleavedFraction4 = dataset.truth.interleavedFraction(4);

    result.notAccepted = result.sequences - result.acceptedCorrect;

    double interleaved =
        result.interleavedFraction2 *
        static_cast<double>(result.sequences);
    result.accuracy =
        interleaved <= 0.0
            ? 1.0
            : 1.0 - static_cast<double>(result.notAccepted) / interleaved;
    return result;
}

DatasetResult
runDataset(const ModeledSystem &models, const DatasetConfig &config,
           const core::MonitorConfig &monitor_config)
{
    return checkDataset(models, generateDataset(config), monitor_config);
}

} // namespace cloudseer::eval
