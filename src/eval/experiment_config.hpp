/**
 * @file
 * The paper's Table 3 experiment matrix, shared by the accuracy and
 * efficiency benches so both report over identical datasets.
 */

#ifndef CLOUDSEER_EVAL_EXPERIMENT_CONFIG_HPP
#define CLOUDSEER_EVAL_EXPERIMENT_CONFIG_HPP

#include <cstdint>
#include <vector>

namespace cloudseer::eval {

/** One Table 3 row: an experiment group. */
struct ExperimentGroup
{
    int group = 1;          ///< "Grp."
    int users = 2;          ///< "Users"
    bool singleUid = false; ///< "Single UID?"
    int datasets = 10;      ///< number of repeats ("Data Sets")
    int tasksPerUser = 80;  ///< fixed in the paper (§5.3)

    /** "Total Tasks" column. */
    int
    totalTasks() const
    {
        return users * tasksPerUser * datasets;
    }
};

/** The six groups of the paper's Table 3. */
std::vector<ExperimentGroup> table3Groups();

/**
 * Smaller variant (fewer datasets/tasks) used by integration tests so
 * they stay fast while exercising the identical pipeline.
 */
std::vector<ExperimentGroup> table3GroupsSmall();

/** Deterministic per-dataset seed. */
std::uint64_t datasetSeed(int group, int dataset);

} // namespace cloudseer::eval

#endif // CLOUDSEER_EVAL_EXPERIMENT_CONFIG_HPP
