/**
 * @file
 * A genuinely online monitoring session: the monitor runs *while* the
 * cluster executes, fed by a live tail through a shipping-delay
 * buffer — no replay. This is the deployment mode the paper's title
 * promises; the batch harnesses exist only because scoring needs the
 * whole run.
 */

#ifndef CLOUDSEER_EVAL_STREAMING_SESSION_HPP
#define CLOUDSEER_EVAL_STREAMING_SESSION_HPP

#include <memory>
#include <queue>

#include "collect/stream_merger.hpp"
#include "core/monitor/workflow_monitor.hpp"
#include "sim/simulation.hpp"

namespace cloudseer::eval {

/**
 * Couples a Simulation to a WorkflowMonitor through a simulated
 * shipping buffer. Construction registers the emission tail; run()
 * drives the simulation, delivering each record to the monitor once
 * its (emission + shipping delay) arrival time has passed on the
 * simulated clock. Reports surface through a user callback the moment
 * they are produced.
 */
class StreamingSession
{
  public:
    using ReportCallback =
        std::function<void(const core::MonitorReport &)>;

    /**
     * @param simulation Deployment to tail (outlives the session).
     * @param monitor    Monitor to feed (outlives the session).
     * @param shipping   Shipping-delay model for the tail.
     * @param on_report  Invoked for every monitor report, in order.
     */
    StreamingSession(sim::Simulation &simulation,
                     core::WorkflowMonitor &monitor,
                     const collect::ShippingConfig &shipping,
                     ReportCallback on_report);

    /** Run the simulation to completion, monitoring live. */
    void run();

    /**
     * Manual tail entry point. The constructor installs this as the
     * simulation's emission callback; callers that need to multiplex
     * the tail (e.g. also filling a log store) may install their own
     * callback and forward records here.
     */
    void
    tail(const logging::LogRecord &record)
    {
        onEmission(record);
    }

    /** Records delivered to the monitor so far. */
    std::size_t delivered() const { return deliveredCount; }

  private:
    struct InFlight
    {
        common::SimTime arrival;
        logging::LogRecord record;
    };
    struct Later
    {
        bool
        operator()(const InFlight &a, const InFlight &b) const
        {
            return a.arrival > b.arrival;
        }
    };

    sim::Simulation &simulation;
    core::WorkflowMonitor &monitor;
    common::Rng shipRng;
    collect::ShippingConfig shipping;
    ReportCallback onReport;
    std::priority_queue<InFlight, std::vector<InFlight>, Later> buffer;
    std::size_t deliveredCount = 0;

    void onEmission(const logging::LogRecord &record);
    void drainUpTo(common::SimTime now);
};

} // namespace cloudseer::eval

#endif // CLOUDSEER_EVAL_STREAMING_SESSION_HPP
