#include "eval/resilience_harness.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "common/string_util.hpp"
#include "workload/workload_generator.hpp"

namespace cloudseer::eval {

double
ResilienceCurve::recallRetention(const ResiliencePoint &point) const
{
    double base = clean().abortDelayRecall();
    return base == 0.0 ? 0.0 : point.abortDelayRecall() / base;
}

namespace {

/** Run every batch of one injection point at one intensity. */
void
runPoint(const ModeledSystem &models, const ResilienceConfig &config,
         sim::InjectionPoint point, std::uint64_t point_salt,
         const collect::PerturbationConfig &adversity,
         ResiliencePoint &out)
{
    int triggered = 0;
    for (int run = 0; run < config.maxRuns &&
                      triggered < config.targetProblems;
         ++run) {
        std::uint64_t run_seed = config.seed + point_salt * 104729 +
                                 static_cast<std::uint64_t>(run) * 7919;

        sim::Simulation simulation(config.sim, run_seed);
        simulation.setInjector(sim::FaultInjector(
            point, config.triggerProbability,
            config.errorMessageProbability, run_seed ^ 0xfa17ULL,
            static_cast<std::size_t>(config.targetProblems -
                                     triggered)));

        workload::WorkloadConfig wl;
        wl.users = config.usersPerRun;
        wl.tasksPerUser = config.tasksPerUserPerRun;
        wl.singleUid = false;
        wl.seed = run_seed ^ 0x3141ULL;
        workload::WorkloadGenerator generator(wl);
        generator.submitAll(simulation);
        simulation.run();

        collect::ShippingConfig ship = config.shipping;
        ship.seed = run_seed ^ 0x5a1cULL;
        std::vector<logging::LogRecord> stream =
            collect::mergeStream(simulation.records(), ship);

        // Ground truth from the *unperturbed* stream: dropped records
        // still attribute reports correctly, and duplicated records
        // share the original's id.
        std::map<logging::RecordId, logging::ExecutionId> truth_of;
        for (const logging::LogRecord &record : stream)
            truth_of[record.id] = record.truthExecution;

        collect::PerturbationConfig fault = adversity;
        fault.seed = run_seed ^ 0xadd5ULL;
        collect::PerturbedStream wire =
            collect::StreamPerturber(fault).apply(stream);
        out.dropped += wire.dropped;
        out.duplicated += wire.duplicated;
        out.truncated += wire.truncated;
        out.corrupted += wire.corrupted;

        core::WorkflowMonitor monitor(config.monitor, models.catalog,
                                      models.automataCopy());
        std::vector<core::MonitorReport> reports;
        for (std::size_t i = 0; i < wire.lines.size(); ++i) {
            // Decode the wire line ourselves so a survivor can carry
            // its record id (the scoring key): the wire strips ids,
            // but truncated/corrupted lines must still hit the
            // monitor's quarantine path.
            std::optional<logging::LogRecord> decoded =
                logging::decodeLogLine(wire.lines[i]);
            if (decoded) {
                decoded->id = wire.records[i].id;
                for (core::MonitorReport &report :
                     monitor.feed(*decoded))
                    reports.push_back(std::move(report));
            } else {
                for (core::MonitorReport &report :
                     monitor.feedLine(wire.lines[i]))
                    reports.push_back(std::move(report));
            }
            out.peakActiveGroups = std::max(out.peakActiveGroups,
                                            monitor.activeGroups());
        }
        for (core::MonitorReport &report : monitor.finish())
            reports.push_back(std::move(report));
        out.forensicBundles += monitor.forensicBundleJsonLines();

        const core::IngestStats &ingest = monitor.ingestStats();
        out.quarantinedLines += ingest.malformed();
        out.duplicatesSuppressed += ingest.duplicatesSuppressed;
        out.nonMonotonicClamped += ingest.nonMonotonicClamped;
        out.groupsShed += ingest.groupsShed;

        std::map<logging::ExecutionId, const sim::InjectionRecord *>
            injected;
        for (const sim::InjectionRecord &record :
             simulation.injector().records()) {
            injected[record.execution] = &record;
            if (record.type == sim::ProblemType::Abort ||
                record.type == sim::ProblemType::Delay) {
                ++out.abortDelayProblems;
            }
        }
        triggered += static_cast<int>(
            simulation.injector().records().size());

        // Same scoring rule as the detection harness.
        std::set<logging::ExecutionId> credited;
        std::set<logging::ExecutionId> blamed;
        for (const core::MonitorReport &report : reports) {
            if (report.event.kind == core::CheckEventKind::Degraded) {
                ++out.degradedReports;
                continue;
            }
            if (report.event.kind == core::CheckEventKind::Accepted)
                continue;
            logging::ExecutionId exec =
                dominantExecution(report.event, truth_of);
            if (exec != 0 && injected.count(exec)) {
                if (!credited.count(exec)) {
                    credited.insert(exec);
                    ++out.stats.truePositives;
                    const sim::InjectionRecord *record =
                        injected.at(exec);
                    out.detectionLatency.add(report.event.time -
                                             record->time);
                    if (record->type == sim::ProblemType::Abort ||
                        record->type == sim::ProblemType::Delay) {
                        ++out.abortDelayDetected;
                    }
                }
            } else {
                if (exec == 0 || !blamed.count(exec)) {
                    if (exec != 0)
                        blamed.insert(exec);
                    ++out.stats.falsePositives;
                }
            }
        }
        for (const auto &[exec, record] : injected) {
            if (!credited.count(exec))
                ++out.stats.falseNegatives;
        }
    }
}

std::string
jsonNumber(double value, int precision)
{
    return common::formatDouble(value, precision);
}

} // namespace

ResilienceCurve
runResilienceSweep(const ModeledSystem &models,
                   const ResilienceConfig &config)
{
    ResilienceCurve curve;
    for (double intensity : config.intensities) {
        ResiliencePoint point;
        point.intensity = intensity;
        collect::PerturbationConfig adversity =
            config.adversity.scaled(intensity);
        for (std::size_t p = 0; p < config.points.size(); ++p) {
            runPoint(models, config, config.points[p],
                     static_cast<std::uint64_t>(p), adversity, point);
        }
        curve.points.push_back(std::move(point));
    }
    return curve;
}

std::string
resilienceCurveToJson(const ResilienceCurve &curve)
{
    std::string out = "{\"points\":[";
    for (std::size_t i = 0; i < curve.points.size(); ++i) {
        const ResiliencePoint &point = curve.points[i];
        if (i > 0)
            out += ",";
        out += "{";
        out += "\"intensity\":" + jsonNumber(point.intensity, 3) + ",";
        out += "\"truePositives\":" +
               std::to_string(point.stats.truePositives) + ",";
        out += "\"falsePositives\":" +
               std::to_string(point.stats.falsePositives) + ",";
        out += "\"falseNegatives\":" +
               std::to_string(point.stats.falseNegatives) + ",";
        out += "\"precision\":" + jsonNumber(point.precision(), 4) + ",";
        out += "\"recall\":" + jsonNumber(point.recall(), 4) + ",";
        out += "\"abortDelayRecall\":" +
               jsonNumber(point.abortDelayRecall(), 4) + ",";
        out += "\"recallRetention\":" +
               jsonNumber(curve.recallRetention(point), 4) + ",";
        out += "\"meanDetectionLatency\":" +
               jsonNumber(point.detectionLatency.mean(), 3) + ",";
        out += "\"p95DetectionLatency\":" +
               jsonNumber(point.detectionLatency.percentile(95.0), 3) +
               ",";
        out += "\"dropped\":" + std::to_string(point.dropped) + ",";
        out += "\"duplicated\":" + std::to_string(point.duplicated) +
               ",";
        out += "\"truncated\":" + std::to_string(point.truncated) + ",";
        out += "\"corrupted\":" + std::to_string(point.corrupted) + ",";
        out += "\"quarantinedLines\":" +
               std::to_string(point.quarantinedLines) + ",";
        out += "\"duplicatesSuppressed\":" +
               std::to_string(point.duplicatesSuppressed) + ",";
        out += "\"nonMonotonicClamped\":" +
               std::to_string(point.nonMonotonicClamped) + ",";
        out += "\"groupsShed\":" + std::to_string(point.groupsShed) +
               ",";
        out += "\"degradedReports\":" +
               std::to_string(point.degradedReports) + ",";
        out += "\"peakActiveGroups\":" +
               std::to_string(point.peakActiveGroups);
        out += "}";
    }
    out += "]}";
    return out;
}

} // namespace cloudseer::eval
