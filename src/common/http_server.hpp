/**
 * @file
 * Dependency-free embedded HTTP/1.0 scrape server (seer-pulse,
 * DESIGN.md §16).
 *
 * The server exists so a running monitor can be a Prometheus scrape
 * target without pulling a web framework into the build: it binds a
 * loopback listener, runs a blocking accept loop on one dedicated
 * thread, and answers GET requests by exact path match against a
 * handler table frozen before start(). One request per connection
 * (Connection: close), requests larger than a small fixed bound are
 * rejected with 431, and anything that is not a well-formed GET gets
 * 400/405 — a scrape endpoint has no business accepting more.
 *
 * Handlers run on the server thread, never on the monitor's feed
 * path. The intended pattern (TelemetryServer in src/obs/pulse.hpp)
 * is push-model: the monitor renders response bodies at snapshot
 * cadence and publishes them under a mutex; the handler only copies
 * the latest published string. The checker is never locked by a
 * scrape.
 */

#ifndef CLOUDSEER_COMMON_HTTP_SERVER_HPP
#define CLOUDSEER_COMMON_HTTP_SERVER_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

namespace cloudseer::common {

/** One response from a path handler. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "text/plain; charset=utf-8";
    std::string body;
};

/**
 * Minimal blocking HTTP server. Register handlers, start(), stop().
 * start()/stop() are not thread-safe against each other; handlers
 * are invoked on the internal accept thread.
 */
class HttpServer
{
  public:
    using Handler = std::function<HttpResponse()>;
    using QueryHandler =
        std::function<HttpResponse(const std::string &query)>;

    /**
     * @param bind_address dotted-quad to bind (default loopback —
     *        a scrape endpoint should not be internet-facing by
     *        accident).
     * @param port TCP port; 0 asks the kernel for an ephemeral port
     *        (read it back with boundPort() after start()).
     */
    explicit HttpServer(std::string bind_address = "127.0.0.1",
                        std::uint16_t port = 0);
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /**
     * Register a handler for an exact path ("/metrics"). Query
     * strings are stripped before matching. Must be called before
     * start(); the table is immutable while the server runs.
     */
    void handle(const std::string &path, Handler handler);

    /**
     * Like handle(), but the handler receives the raw query string
     * (the part after '?', without it; empty when absent) — for
     * parameterised endpoints such as /profilez?seconds=N. A query
     * handler takes precedence over a plain handler on the same path.
     */
    void handleWithQuery(const std::string &path,
                         QueryHandler handler);

    /**
     * Bind, listen, and launch the accept thread. Returns false
     * (with error() set) when the socket cannot be bound.
     */
    bool start();

    /** Shut the listener down and join the accept thread. */
    void stop();

    bool running() const { return serving.load(); }

    /** The bound port (resolves port 0), valid after start(). */
    std::uint16_t boundPort() const { return port; }

    const std::string &error() const { return lastError; }

    /** Requests larger than this many bytes are rejected with 431. */
    static constexpr std::size_t kMaxRequestBytes = 8192;

  private:
    std::string address;
    std::uint16_t port;
    int listenFd = -1;
    std::thread acceptThread;
    std::atomic<bool> serving{false};
    std::map<std::string, Handler> handlers;
    std::map<std::string, QueryHandler> queryHandlers;
    std::string lastError;

    void acceptLoop();
    void serveConnection(int fd);
};

/**
 * Blocking GET helper for tools and tests: fetches
 * http://host:port/path with a short timeout. Returns false on
 * connect/read failure; on success fills status and body.
 */
bool httpGet(const std::string &host, std::uint16_t port,
             const std::string &path, int &status, std::string &body,
             double timeout_seconds = 5.0);

} // namespace cloudseer::common

#endif // CLOUDSEER_COMMON_HTTP_SERVER_HPP
