#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace cloudseer::common {

void
SampleStats::add(double value)
{
    samples.push_back(value);
    total += value;
    sorted = false;
}

void
SampleStats::ensureSorted() const
{
    if (!sorted) {
        std::sort(samples.begin(), samples.end());
        sorted = true;
    }
}

double
SampleStats::min() const
{
    if (samples.empty())
        return 0.0;
    ensureSorted();
    return samples.front();
}

double
SampleStats::max() const
{
    if (samples.empty())
        return 0.0;
    ensureSorted();
    return samples.back();
}

double
SampleStats::mean() const
{
    if (samples.empty())
        return 0.0;
    return total / static_cast<double>(samples.size());
}

double
SampleStats::median() const
{
    return percentile(50.0);
}

double
SampleStats::percentile(double p) const
{
    if (samples.empty())
        return 0.0;
    CS_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range");
    ensureSorted();
    if (samples.size() == 1)
        return samples[0];
    double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
    std::size_t lo = static_cast<std::size_t>(std::floor(rank));
    std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
    double frac = rank - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double
DetectionStats::precision() const
{
    std::size_t denom = truePositives + falsePositives;
    return denom == 0
        ? 0.0
        : static_cast<double>(truePositives) / static_cast<double>(denom);
}

double
DetectionStats::recall() const
{
    std::size_t denom = truePositives + falseNegatives;
    return denom == 0
        ? 0.0
        : static_cast<double>(truePositives) / static_cast<double>(denom);
}

double
DetectionStats::f1() const
{
    double p = precision();
    double r = recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

void
DetectionStats::merge(const DetectionStats &other)
{
    truePositives += other.truePositives;
    falsePositives += other.falsePositives;
    falseNegatives += other.falseNegatives;
}

void
SampleStats::saveState(BinWriter &out) const
{
    out.writeU64(samples.size());
    for (double sample : samples)
        out.writeF64(sample);
    out.writeF64(total);
}

bool
SampleStats::restoreState(BinReader &in)
{
    std::uint64_t count = in.readU64();
    if (!in.ok())
        return false;
    std::vector<double> restored;
    restored.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count && in.ok(); ++i)
        restored.push_back(in.readF64());
    double restored_total = in.readF64();
    if (!in.ok())
        return false;
    samples = std::move(restored);
    sorted = false;
    total = restored_total;
    return true;
}

std::string
formatRange(const SampleStats &stats, int precision)
{
    return formatDouble(stats.min(), precision) + " - " +
           formatDouble(stats.max(), precision);
}

} // namespace cloudseer::common
