#include "common/http_server.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sstream>
#include <sys/socket.h>
#include <unistd.h>

namespace cloudseer::common {

namespace {

const char *
statusText(int status)
{
    switch (status) {
    case 200:
        return "OK";
    case 400:
        return "Bad Request";
    case 404:
        return "Not Found";
    case 405:
        return "Method Not Allowed";
    case 431:
        return "Request Header Fields Too Large";
    case 503:
        return "Service Unavailable";
    default:
        return "Error";
    }
}

/** Write the whole buffer, riding out EINTR and short writes. */
bool
writeAll(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

void
sendResponse(int fd, const HttpResponse &response)
{
    std::ostringstream head;
    head << "HTTP/1.0 " << response.status << " "
         << statusText(response.status) << "\r\n"
         << "Content-Type: " << response.contentType << "\r\n"
         << "Content-Length: " << response.body.size() << "\r\n"
         << "Connection: close\r\n\r\n";
    std::string wire = head.str() + response.body;
    writeAll(fd, wire);
}

/**
 * Swallow whatever the client is still sending (bounded by the socket
 * timeout and a 1 MiB cap). Used after answering a request we stopped
 * reading early: closing with unread bytes in the receive buffer
 * makes the kernel send RST, and the client may then never see the
 * status line we just wrote.
 */
void
drainRequest(int fd)
{
    char buf[4096];
    std::size_t total = 0;
    while (total < (1u << 20)) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break; // peer closed or timed out
        total += static_cast<std::size_t>(n);
    }
}

} // namespace

HttpServer::HttpServer(std::string bind_address, std::uint16_t port)
    : address(std::move(bind_address)), port(port)
{
}

HttpServer::~HttpServer() { stop(); }

void
HttpServer::handle(const std::string &path, Handler handler)
{
    handlers[path] = std::move(handler);
}

void
HttpServer::handleWithQuery(const std::string &path,
                            QueryHandler handler)
{
    queryHandlers[path] = std::move(handler);
}

bool
HttpServer::start()
{
    if (serving.load())
        return true;

    listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd < 0) {
        lastError = std::strerror(errno);
        return false;
    }
    int one = 1;
    ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
        lastError = "invalid bind address: " + address;
        ::close(listenFd);
        listenFd = -1;
        return false;
    }
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd, 16) != 0) {
        lastError = std::strerror(errno);
        ::close(listenFd);
        listenFd = -1;
        return false;
    }

    // Resolve the ephemeral port the kernel picked for port 0.
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listenFd,
                      reinterpret_cast<sockaddr *>(&bound),
                      &bound_len) == 0)
        port = ntohs(bound.sin_port);

    serving.store(true);
    acceptThread = std::thread([this] { acceptLoop(); });
    return true;
}

void
HttpServer::stop()
{
    if (!serving.exchange(false)) {
        if (acceptThread.joinable())
            acceptThread.join();
        return;
    }
    // shutdown() wakes the blocking accept(); close() alone is not
    // guaranteed to on all kernels.
    if (listenFd >= 0)
        ::shutdown(listenFd, SHUT_RDWR);
    if (acceptThread.joinable())
        acceptThread.join();
    if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
    }
}

void
HttpServer::acceptLoop()
{
    while (serving.load()) {
        int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break; // listener shut down (or unrecoverable)
        }
        if (!serving.load()) {
            ::close(fd);
            break;
        }
        // A stalled scraper must not wedge the endpoint forever.
        timeval tv{};
        tv.tv_sec = 5;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
        serveConnection(fd);
        ::close(fd);
    }
}

void
HttpServer::serveConnection(int fd)
{
    std::string request;
    char buf[1024];
    bool complete = false;
    while (request.size() <= kMaxRequestBytes) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            break; // peer closed or timed out
        }
        request.append(buf, static_cast<std::size_t>(n));
        if (request.find("\r\n\r\n") != std::string::npos ||
            request.find("\n\n") != std::string::npos) {
            complete = true;
            break;
        }
    }
    if (request.size() > kMaxRequestBytes) {
        sendResponse(fd, {431, "text/plain; charset=utf-8",
                          "request too large\n"});
        drainRequest(fd);
        return;
    }
    if (!complete) {
        sendResponse(fd, {400, "text/plain; charset=utf-8",
                          "malformed request\n"});
        return;
    }

    // Request line: METHOD SP PATH SP VERSION.
    std::istringstream line(request.substr(0, request.find('\n')));
    std::string method, target, version;
    line >> method >> target >> version;
    if (method.empty() || target.empty() || target[0] != '/') {
        sendResponse(fd, {400, "text/plain; charset=utf-8",
                          "malformed request line\n"});
        return;
    }
    if (method != "GET") {
        sendResponse(fd, {405, "text/plain; charset=utf-8",
                          "only GET is supported\n"});
        return;
    }
    std::size_t query = target.find('?');
    std::string query_string;
    if (query != std::string::npos) {
        query_string = target.substr(query + 1);
        target.resize(query);
    }

    auto qit = queryHandlers.find(target);
    if (qit != queryHandlers.end()) {
        sendResponse(fd, qit->second(query_string));
        return;
    }
    auto it = handlers.find(target);
    if (it == handlers.end()) {
        sendResponse(fd, {404, "text/plain; charset=utf-8",
                          "unknown path: " + target + "\n"});
        return;
    }
    sendResponse(fd, it->second());
}

bool
httpGet(const std::string &host, std::uint16_t port,
        const std::string &path, int &status, std::string &body,
        double timeout_seconds)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout_seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (timeout_seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return false;
    }

    std::string request = "GET " + path + " HTTP/1.0\r\nHost: " +
                          host + "\r\nConnection: close\r\n\r\n";
    if (!writeAll(fd, request)) {
        ::close(fd);
        return false;
    }

    // A broken or hostile server must not balloon the client: cap the
    // response at 64 MiB (every document this client fetches is far
    // smaller) and fail instead of buffering without bound.
    constexpr std::size_t kMaxResponseBytes = 64u << 20;
    std::string wire;
    char buf[4096];
    for (;;) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        wire.append(buf, static_cast<std::size_t>(n));
        if (wire.size() > kMaxResponseBytes) {
            ::close(fd);
            return false;
        }
    }
    ::close(fd);

    // Status line: HTTP/x.y SP CODE SP REASON.
    std::size_t space = wire.find(' ');
    if (space == std::string::npos)
        return false;
    status = std::atoi(wire.c_str() + space + 1);
    std::size_t header_end = wire.find("\r\n\r\n");
    std::size_t body_start =
        header_end == std::string::npos ? std::string::npos
                                        : header_end + 4;
    if (body_start == std::string::npos) {
        header_end = wire.find("\n\n");
        body_start = header_end == std::string::npos
                         ? std::string::npos
                         : header_end + 2;
    }
    body = body_start == std::string::npos ? ""
                                           : wire.substr(body_start);
    return status > 0;
}

} // namespace cloudseer::common
