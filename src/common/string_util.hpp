/**
 * @file
 * Small string helpers shared by log parsing, table printing, and tests.
 */

#ifndef CLOUDSEER_COMMON_STRING_UTIL_HPP
#define CLOUDSEER_COMMON_STRING_UTIL_HPP

#include <string>
#include <vector>

namespace cloudseer::common {

/** Split on a single-character delimiter; empty fields are preserved. */
std::vector<std::string> split(const std::string &s, char delim);

/** Split on runs of whitespace; empty fields are dropped. */
std::vector<std::string> splitWhitespace(const std::string &s);

/** Join items with the given separator. */
std::string join(const std::vector<std::string> &items,
                 const std::string &sep);

/** Strip leading and trailing whitespace. */
std::string trim(const std::string &s);

/** True iff s starts with the given prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** True iff s ends with the given suffix. */
bool endsWith(const std::string &s, const std::string &suffix);

/** Fixed-precision decimal formatting (printf "%.*f"). */
std::string formatDouble(double value, int precision);

/** Format a ratio as a percentage string like "92.08%". */
std::string formatPercent(double ratio, int precision = 2);

} // namespace cloudseer::common

#endif // CLOUDSEER_COMMON_STRING_UTIL_HPP
