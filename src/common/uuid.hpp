/**
 * @file
 * Deterministic UUID and IPv4 literal generation.
 *
 * The simulator stamps log messages with OpenStack-style identifiers
 * (request ids, user/tenant/instance UUIDs, host IPs). These helpers
 * produce well-formed values from an Rng so whole experiments replay
 * byte-identically from a seed.
 */

#ifndef CLOUDSEER_COMMON_UUID_HPP
#define CLOUDSEER_COMMON_UUID_HPP

#include <string>

#include "common/rng.hpp"

namespace cloudseer::common {

/** Generate a random RFC-4122-shaped UUID string (8-4-4-4-12 lower hex). */
std::string makeUuid(Rng &rng);

/** Generate a dotted-quad IPv4 literal in the 10.0.0.0/8 range. */
std::string makeIp(Rng &rng);

/** True iff the string is a well-formed UUID (8-4-4-4-12 hex). */
bool isUuid(const std::string &s);

/** True iff the string is a well-formed dotted-quad IPv4 literal. */
bool isIp(const std::string &s);

} // namespace cloudseer::common

#endif // CLOUDSEER_COMMON_UUID_HPP
