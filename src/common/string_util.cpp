#include "common/string_util.hpp"

#include <cctype>
#include <cstdio>

namespace cloudseer::common {

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        std::size_t pos = s.find(delim, start);
        if (pos == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::vector<std::string>
splitWhitespace(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos < s.size()) {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos]))) {
            ++pos;
        }
        std::size_t start = pos;
        while (pos < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[pos]))) {
            ++pos;
        }
        if (pos > start)
            out.push_back(s.substr(start, pos - start));
    }
    return out;
}

std::string
join(const std::vector<std::string> &items, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0)
            out += sep;
        out += items[i];
    }
    return out;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string
formatDouble(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
formatPercent(double ratio, int precision)
{
    return formatDouble(ratio * 100.0, precision) + "%";
}

} // namespace cloudseer::common
