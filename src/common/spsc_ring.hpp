/**
 * @file
 * Bounded single-producer / single-consumer ring buffer (seer-swarm,
 * DESIGN.md §14).
 *
 * The sharded checker's only inter-thread channel: the router thread
 * pushes work items into one ring per shard and each shard pushes
 * result batches back through its own output ring, so every ring has
 * exactly one producer and one consumer by construction and needs no
 * locks — just two monotonically increasing counters with
 * acquire/release ordering.
 *
 * Design notes:
 *  - Counters are free-running 64-bit (no wrap handling needed within
 *    any realistic run); the slot index is `count % capacity`, which
 *    supports arbitrary capacities including 1.
 *  - Producer and consumer each keep a cached copy of the other
 *    side's counter so the hot path usually touches only its own
 *    cache line; the shared atomic is re-read only when the cached
 *    value says the ring looks full (producer) or empty (consumer).
 *  - Blocking push/pop yield to the scheduler instead of hot-spinning:
 *    the monitor must behave on machines with fewer cores than shards
 *    (CI runners, laptops), where a spinning producer would starve
 *    the very consumer it waits on.
 */

#ifndef CLOUDSEER_COMMON_SPSC_RING_HPP
#define CLOUDSEER_COMMON_SPSC_RING_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/thread_annotations.hpp"

namespace cloudseer::common {

template <typename T>
class SpscRing
{
  public:
    explicit SpscRing(std::size_t capacity)
        : slots(capacity), cap(capacity)
    {
        CS_ASSERT(capacity > 0, "spsc ring needs capacity >= 1");
    }

    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;

    std::size_t capacity() const { return cap; }

    /**
     * The ring's two thread roles (compile-time capabilities, see
     * thread_annotations.hpp). The owning thread claims its role with
     * a RoleGuard; Clang's thread-safety analysis then enforces that
     * producer methods run only under producerRole and consumer
     * methods only under consumerRole — the single-producer /
     * single-consumer discipline stated in the header comment.
     */
    const ThreadRole producerRole;
    const ThreadRole consumerRole;

    /** Producer side: push if a slot is free. */
    bool
    tryPush(T &&item) CS_REQUIRES(producerRole)
    {
        std::uint64_t t = tail.load(std::memory_order_relaxed);
        if (t - headCache == cap) {
            headCache = head.load(std::memory_order_acquire);
            if (t - headCache == cap)
                return false;
        }
        slots[static_cast<std::size_t>(t % cap)] = std::move(item);
        tail.store(t + 1, std::memory_order_release);
        return true;
    }

    /** Producer side: push, yielding until a slot frees (backpressure). */
    void
    push(T &&item) CS_REQUIRES(producerRole)
    {
        while (!tryPush(std::move(item)))
            std::this_thread::yield();
    }

    /** Consumer side: pop if an item is ready. */
    bool
    tryPop(T &out) CS_REQUIRES(consumerRole)
    {
        std::uint64_t h = head.load(std::memory_order_relaxed);
        if (h == tailCache) {
            tailCache = tail.load(std::memory_order_acquire);
            if (h == tailCache)
                return false;
        }
        out = std::move(slots[static_cast<std::size_t>(h % cap)]);
        head.store(h + 1, std::memory_order_release);
        return true;
    }

    /** Consumer side: pop, yielding until an item arrives. */
    void
    pop(T &out) CS_REQUIRES(consumerRole)
    {
        while (!tryPop(out))
            std::this_thread::yield();
    }

    /**
     * Instantaneous occupancy. Exact only from the producer or
     * consumer thread; from anywhere else it is a racy-but-bounded
     * sample, which is all the seer-scope ring-depth gauge needs.
     */
    std::size_t
    size() const
    {
        std::uint64_t t = tail.load(std::memory_order_acquire);
        std::uint64_t h = head.load(std::memory_order_acquire);
        return static_cast<std::size_t>(t >= h ? t - h : 0);
    }

    bool empty() const { return size() == 0; }

  private:
    std::vector<T> slots;
    std::size_t cap;

    // Producer cache line: the tail it owns plus its stale view of head.
    alignas(64) std::atomic<std::uint64_t> tail{0};
    std::uint64_t headCache CS_GUARDED_BY(producerRole) = 0;

    // Consumer cache line: the head it owns plus its stale view of tail.
    alignas(64) std::atomic<std::uint64_t> head{0};
    std::uint64_t tailCache CS_GUARDED_BY(consumerRole) = 0;
};

} // namespace cloudseer::common

#endif // CLOUDSEER_COMMON_SPSC_RING_HPP
