/**
 * @file
 * Statistics accumulators for the evaluation harness.
 */

#ifndef CLOUDSEER_COMMON_STATS_HPP
#define CLOUDSEER_COMMON_STATS_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "common/binio.hpp"

namespace cloudseer::common {

/**
 * Streaming accumulator over double samples with min/max/mean plus exact
 * median and percentiles (samples are retained; experiment scales are
 * small enough that exactness beats sketching).
 */
class SampleStats
{
  public:
    /** Record one sample. */
    void add(double value);

    /** Number of samples recorded so far. */
    std::size_t count() const { return samples.size(); }

    /** Smallest sample; 0 when empty. */
    double min() const;

    /** Largest sample; 0 when empty. */
    double max() const;

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Exact median; 0 when empty. */
    double median() const;

    /**
     * Exact percentile by nearest-rank.
     *
     * @param p Percentile in [0, 100].
     */
    double percentile(double p) const;

    /** Sum of all samples. */
    double sum() const { return total; }

    /** Serialise every retained sample (seer-vault, DESIGN.md §13). */
    void saveState(BinWriter &out) const;

    /** Replace this accumulator with a saved one. */
    bool restoreState(BinReader &in);

  private:
    mutable std::vector<double> samples;
    mutable bool sorted = false;
    double total = 0.0;

    void ensureSorted() const;
};

/**
 * Binary-outcome tallies with precision/recall/F1 derivation, used by the
 * problem-detection experiment (paper Table 7).
 */
struct DetectionStats
{
    std::size_t truePositives = 0;
    std::size_t falsePositives = 0;
    std::size_t falseNegatives = 0;

    /** TP / (TP + FP); 0 when undefined. */
    double precision() const;

    /** TP / (TP + FN); 0 when undefined. */
    double recall() const;

    /** Harmonic mean of precision and recall; 0 when undefined. */
    double f1() const;

    /** Merge another tally into this one. */
    void merge(const DetectionStats &other);
};

/** Render "min - max" with the given precision (Table 5 style). */
std::string formatRange(const SampleStats &stats, int precision);

} // namespace cloudseer::common

#endif // CLOUDSEER_COMMON_STATS_HPP
