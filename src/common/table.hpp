/**
 * @file
 * ASCII table renderer used by the benchmark harness to print the paper's
 * tables with aligned columns.
 */

#ifndef CLOUDSEER_COMMON_TABLE_HPP
#define CLOUDSEER_COMMON_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace cloudseer::common {

/**
 * Column-aligned ASCII table. Rows are added as string vectors; render()
 * pads every cell to its column width and draws a header rule.
 */
class TextTable
{
  public:
    /** Set the header row; defines the column count. */
    explicit TextTable(std::vector<std::string> header);

    /** Append a data row; must match the header's column count. */
    void addRow(std::vector<std::string> row);

    /** Render the table to a stream. */
    void render(std::ostream &os) const;

    /** Render the table to a string. */
    std::string toString() const;

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace cloudseer::common

#endif // CLOUDSEER_COMMON_TABLE_HPP
