/**
 * @file
 * Build identity for self-describing scrapes (seer-pulse /buildz and
 * the seer_build_info gauge, DESIGN.md §16). A plain constant — no
 * git or configure-time machinery — bumped when a PR lands.
 */

#ifndef CLOUDSEER_COMMON_VERSION_HPP
#define CLOUDSEER_COMMON_VERSION_HPP

namespace cloudseer::common {

inline constexpr const char *kVersion = "0.9.0-pulse";

} // namespace cloudseer::common

#endif // CLOUDSEER_COMMON_VERSION_HPP
