/**
 * @file
 * Binary serialisation primitives for seer-vault (DESIGN.md §13).
 *
 * BinWriter appends fixed-width little-endian scalars and
 * length-prefixed byte strings to a growing buffer; BinReader walks
 * the same encoding with sticky failure semantics — the first
 * out-of-bounds or malformed read marks the reader failed and every
 * subsequent read returns a zero value, so restore paths check ok()
 * once at the end instead of branching per field. A truncated or
 * corrupted snapshot therefore degrades to "restore refused", never
 * to a crash or a half-restored object.
 *
 * The encoding is deliberately dumb: no varints, no tags, no schema
 * evolution — the checkpoint header carries a format version and a
 * model fingerprint, and a mismatch on either refuses the restore
 * wholesale. crc32() (reflected polynomial 0xEDB88320, the zlib/PNG
 * convention) frames every on-disk record so torn tails are detected
 * by checksum, not by accident.
 */

#ifndef CLOUDSEER_COMMON_BINIO_HPP
#define CLOUDSEER_COMMON_BINIO_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cloudseer::common {

/** CRC-32 (reflected, poly 0xEDB88320) of a byte span. */
std::uint32_t crc32(std::string_view data);

/** Append-only little-endian encoder over an owned byte buffer. */
class BinWriter
{
  public:
    void writeU8(std::uint8_t value);
    void writeU32(std::uint32_t value);
    void writeU64(std::uint64_t value);
    void writeI64(std::int64_t value);
    void writeF64(double value);
    void writeBool(bool value) { writeU8(value ? 1 : 0); }

    /** u64 length prefix followed by the raw bytes. */
    void writeString(std::string_view value);

    /** u64 count followed by one u32 per element. */
    void writeU32Vector(const std::vector<std::uint32_t> &values);

    /** u64 count followed by one u64 per element. */
    void writeU64Vector(const std::vector<std::uint64_t> &values);

    /** The encoded bytes so far. */
    const std::string &bytes() const { return buffer; }

    /** Move the encoded bytes out (writer becomes empty). */
    std::string takeBytes() { return std::move(buffer); }

    /** Drop the encoded bytes, keeping capacity (hot-path reuse). */
    void clear() { buffer.clear(); }

  private:
    std::string buffer;
};

/**
 * Bounds-checked decoder over a borrowed byte span. All reads return
 * zero values after the first failure; callers check ok() once.
 */
class BinReader
{
  public:
    explicit BinReader(std::string_view data) : input(data) {}

    std::uint8_t readU8();
    std::uint32_t readU32();
    std::uint64_t readU64();
    std::int64_t readI64();
    double readF64();
    bool readBool() { return readU8() != 0; }
    std::string readString();
    std::vector<std::uint32_t> readU32Vector();
    std::vector<std::uint64_t> readU64Vector();

    /** True until a read ran past the input or a prefix was absurd. */
    bool ok() const { return !failed; }

    /** Mark the reader failed (restore paths on semantic errors). */
    void fail() { failed = true; }

    /** True when every byte has been consumed. */
    bool atEnd() const { return cursor == input.size(); }

    /** Bytes not yet consumed. */
    std::size_t remaining() const { return input.size() - cursor; }

  private:
    std::string_view input;
    std::size_t cursor = 0;
    bool failed = false;

    bool take(std::size_t n, const char **out);
};

} // namespace cloudseer::common

#endif // CLOUDSEER_COMMON_BINIO_HPP
