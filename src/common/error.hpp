/**
 * @file
 * Error-reporting helpers in the gem5 panic/fatal spirit.
 *
 * panic() flags internal invariant violations (library bugs) and aborts;
 * fatal() flags unrecoverable user/configuration errors and exits cleanly.
 * CS_ASSERT is a release-mode-safe invariant check that panics on failure.
 */

#ifndef CLOUDSEER_COMMON_ERROR_HPP
#define CLOUDSEER_COMMON_ERROR_HPP

#include <string>

namespace cloudseer::common {

/**
 * Abort the process after printing an internal-bug diagnostic.
 *
 * @param file Source file of the failed invariant.
 * @param line Source line of the failed invariant.
 * @param msg  Human-readable description of what went wrong.
 */
[[noreturn]] void panic(const char *file, int line, const std::string &msg);

/**
 * Exit the process with status 1 after printing a user-error diagnostic.
 *
 * @param msg Human-readable description of the configuration problem.
 */
[[noreturn]] void fatal(const std::string &msg);

/** Print a non-fatal warning to stderr. */
void warn(const std::string &msg);

} // namespace cloudseer::common

/** Invariant check that survives NDEBUG builds; panics with context. */
#define CS_ASSERT(cond, msg)                                                 \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::cloudseer::common::panic(__FILE__, __LINE__,                   \
                std::string("assertion failed: " #cond " — ") + (msg));      \
        }                                                                    \
    } while (false)

#endif // CLOUDSEER_COMMON_ERROR_HPP
