#include "common/binio.hpp"

#include <array>
#include <cstring>
#include <vector>

namespace cloudseer::common {

namespace {

/** Lazily built slicing-by-4 CRC-32 tables (reflected 0xEDB88320).
 *  Table 0 is the classic byte-at-a-time table; tables 1-3 fold four
 *  input bytes per iteration, which matters because the write-ahead
 *  ledger checksums every frame on the ingest hot path. */
const std::uint32_t (*crcTables())[256]
{
    static const auto tables = [] {
        std::vector<std::array<std::uint32_t, 256>> t(4);
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[0][i] = c;
        }
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = t[0][i];
            for (int k = 1; k < 4; ++k) {
                c = t[0][c & 0xFFu] ^ (c >> 8);
                t[static_cast<std::size_t>(k)][i] = c;
            }
        }
        return t;
    }();
    return reinterpret_cast<const std::uint32_t(*)[256]>(
        tables.data());
}

} // namespace

std::uint32_t
crc32(std::string_view data)
{
    const std::uint32_t(*t)[256] = crcTables();
    std::uint32_t crc = 0xFFFFFFFFu;
    const char *p = data.data();
    std::size_t n = data.size();
    while (n >= 4) {
        // Byte-assembled little-endian load: compiles to one mov on
        // LE hosts, stays correct elsewhere.
        const auto *u = reinterpret_cast<const unsigned char *>(p);
        crc ^= static_cast<std::uint32_t>(u[0]) |
               (static_cast<std::uint32_t>(u[1]) << 8) |
               (static_cast<std::uint32_t>(u[2]) << 16) |
               (static_cast<std::uint32_t>(u[3]) << 24);
        crc = t[3][crc & 0xFFu] ^ t[2][(crc >> 8) & 0xFFu] ^
              t[1][(crc >> 16) & 0xFFu] ^ t[0][crc >> 24];
        p += 4;
        n -= 4;
    }
    while (n-- > 0) {
        crc = t[0][(crc ^ static_cast<unsigned char>(*p++)) & 0xFFu] ^
              (crc >> 8);
    }
    return crc ^ 0xFFFFFFFFu;
}

void
BinWriter::writeU8(std::uint8_t value)
{
    buffer.push_back(static_cast<char>(value));
}

void
BinWriter::writeU32(std::uint32_t value)
{
    // Encode on the stack and append once: byte-wise push_back pays a
    // capacity check per byte, which shows up in the WAL hot path.
    char bytes[4];
    for (int i = 0; i < 4; ++i)
        bytes[i] = static_cast<char>((value >> (8 * i)) & 0xFFu);
    buffer.append(bytes, 4);
}

void
BinWriter::writeU64(std::uint64_t value)
{
    char bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<char>((value >> (8 * i)) & 0xFFu);
    buffer.append(bytes, 8);
}

void
BinWriter::writeI64(std::int64_t value)
{
    writeU64(static_cast<std::uint64_t>(value));
}

void
BinWriter::writeF64(double value)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    writeU64(bits);
}

void
BinWriter::writeString(std::string_view value)
{
    writeU64(value.size());
    buffer.append(value.data(), value.size());
}

void
BinWriter::writeU32Vector(const std::vector<std::uint32_t> &values)
{
    writeU64(values.size());
    for (std::uint32_t v : values)
        writeU32(v);
}

void
BinWriter::writeU64Vector(const std::vector<std::uint64_t> &values)
{
    writeU64(values.size());
    for (std::uint64_t v : values)
        writeU64(v);
}

bool
BinReader::take(std::size_t n, const char **out)
{
    if (failed || input.size() - cursor < n) {
        failed = true;
        return false;
    }
    *out = input.data() + cursor;
    cursor += n;
    return true;
}

std::uint8_t
BinReader::readU8()
{
    const char *p = nullptr;
    if (!take(1, &p))
        return 0;
    return static_cast<std::uint8_t>(*p);
}

std::uint32_t
BinReader::readU32()
{
    const char *p = nullptr;
    if (!take(4, &p))
        return 0;
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
        value |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(p[i]))
                 << (8 * i);
    return value;
}

std::uint64_t
BinReader::readU64()
{
    const char *p = nullptr;
    if (!take(8, &p))
        return 0;
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(p[i]))
                 << (8 * i);
    return value;
}

std::int64_t
BinReader::readI64()
{
    return static_cast<std::int64_t>(readU64());
}

double
BinReader::readF64()
{
    std::uint64_t bits = readU64();
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

std::string
BinReader::readString()
{
    std::uint64_t length = readU64();
    if (failed || length > input.size() - cursor) {
        failed = true;
        return {};
    }
    const char *p = nullptr;
    take(static_cast<std::size_t>(length), &p);
    return failed ? std::string()
                  : std::string(p, static_cast<std::size_t>(length));
}

std::vector<std::uint32_t>
BinReader::readU32Vector()
{
    std::uint64_t count = readU64();
    if (failed || count > (input.size() - cursor) / 4) {
        failed = true;
        return {};
    }
    std::vector<std::uint32_t> out;
    out.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count && !failed; ++i)
        out.push_back(readU32());
    return out;
}

std::vector<std::uint64_t>
BinReader::readU64Vector()
{
    std::uint64_t count = readU64();
    if (failed || count > (input.size() - cursor) / 8) {
        failed = true;
        return {};
    }
    std::vector<std::uint64_t> out;
    out.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count && !failed; ++i)
        out.push_back(readU64());
    return out;
}

} // namespace cloudseer::common
