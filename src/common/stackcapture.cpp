#include "common/stackcapture.hpp"

#include <algorithm>
#include <cstdint>

#include <pthread.h>
#include <signal.h>
#include <sys/time.h>

#if defined(__linux__) && defined(__GLIBC__)
#include <execinfo.h>
#define CLOUDSEER_HAVE_BACKTRACE 1
#endif

namespace cloudseer::common {

namespace {

/** Per-thread stack extent for the frame-pointer walk. Constant-
 *  initialised (no TLS guard), so the signal handler can read it on a
 *  thread that never called prepareThreadForStackCapture(): `ready`
 *  is simply false and the walk is skipped. */
struct ThreadStackBounds
{
    std::uintptr_t lo = 0;
    std::uintptr_t hi = 0;
    bool ready = false;
};

thread_local ThreadStackBounds tlsBounds;

/**
 * Walk the frame-pointer chain from the current frame, innermost
 * first. Every dereference is bounds-checked against the cached stack
 * extent and the chain must be strictly ascending and aligned, so a
 * build that omits frame pointers just terminates early instead of
 * faulting. Returns the number of return addresses written.
 */
int
walkFramePointers(void **out, int max)
{
    const ThreadStackBounds &bounds = tlsBounds;
    if (!bounds.ready || max <= 0)
        return 0;
    std::uintptr_t fp =
        reinterpret_cast<std::uintptr_t>(__builtin_frame_address(0));
    int count = 0;
    while (count < max) {
        if (fp < bounds.lo || fp + 2 * sizeof(void *) > bounds.hi ||
            (fp & (sizeof(void *) - 1)) != 0)
            break;
        std::uintptr_t next = *reinterpret_cast<std::uintptr_t *>(fp);
        void *ret = *reinterpret_cast<void **>(fp + sizeof(void *));
        if (ret == nullptr)
            break;
        out[count++] = ret;
        if (next <= fp)
            break;
        fp = next;
    }
    return count;
}

} // namespace

void
prepareThreadForStackCapture()
{
#if defined(__linux__) && defined(__GLIBC__)
    if (tlsBounds.ready)
        return;
    pthread_attr_t attr;
    if (pthread_getattr_np(pthread_self(), &attr) != 0)
        return;
    void *addr = nullptr;
    std::size_t size = 0;
    if (pthread_attr_getstack(&attr, &addr, &size) == 0 &&
        addr != nullptr && size > 0) {
        tlsBounds.lo = reinterpret_cast<std::uintptr_t>(addr);
        tlsBounds.hi = tlsBounds.lo + size;
        tlsBounds.ready = true;
    }
    pthread_attr_destroy(&attr);
#endif
}

void
warmStackCapture()
{
#if defined(CLOUDSEER_HAVE_BACKTRACE)
    void *scratch[4];
    (void)backtrace(scratch, 4);
#endif
}

int
captureStack(void **out, int max)
{
    int count = walkFramePointers(out, max);
    // A healthy frame-pointer build yields a deep chain; anything
    // shorter means the chain was cut by FP omission — fall back to
    // the unwinder, which reads .eh_frame instead.
    if (count >= 3)
        return count;
#if defined(CLOUDSEER_HAVE_BACKTRACE)
    count = backtrace(out, max);
    return std::max(count, 0);
#else
    return count;
#endif
}

bool
ProfTimer::start(int hz)
{
    if (active_ || hz <= 0 || hz > 10000)
        return false;
#if defined(__linux__)
    struct sigevent sev = {};
    sev.sigev_notify = SIGEV_SIGNAL;
    sev.sigev_signo = SIGPROF;
    if (timer_create(CLOCK_PROCESS_CPUTIME_ID, &sev, &timer_) == 0) {
        long interval_ns = 1000000000L / hz;
        struct itimerspec spec = {};
        spec.it_interval.tv_sec = interval_ns / 1000000000L;
        spec.it_interval.tv_nsec = interval_ns % 1000000000L;
        spec.it_value = spec.it_interval;
        if (timer_settime(timer_, 0, &spec, nullptr) == 0) {
            posixTimer_ = true;
            active_ = true;
            return true;
        }
        timer_delete(timer_);
    }
#endif
    struct itimerval val = {};
    long interval_us = std::max(1L, 1000000L / hz);
    val.it_interval.tv_sec = interval_us / 1000000L;
    val.it_interval.tv_usec = interval_us % 1000000L;
    val.it_value = val.it_interval;
    if (setitimer(ITIMER_PROF, &val, nullptr) == 0) {
        active_ = true;
        return true;
    }
    return false;
}

void
ProfTimer::stop()
{
    if (!active_)
        return;
#if defined(__linux__)
    if (posixTimer_)
        timer_delete(timer_);
#endif
    if (!posixTimer_) {
        struct itimerval zero = {};
        setitimer(ITIMER_PROF, &zero, nullptr);
    }
    posixTimer_ = false;
    active_ = false;
}

} // namespace cloudseer::common
