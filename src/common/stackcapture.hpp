#pragma once

/**
 * Async-signal-safe stack capture + profiling-timer helpers for the
 * seer-probe sampling profiler (DESIGN.md §17).
 *
 * The capture path is built to be callable from inside a SIGPROF
 * handler: a frame-pointer walk bounded by the current thread's stack
 * extent (cached per thread in normal context, never computed in the
 * handler), falling back to glibc `backtrace()` when the chain is cut
 * short by frame-pointer omission. `backtrace()` lazily dlopens
 * libgcc on first use — `warmStackCapture()` pays that allocation in
 * normal context so the handler never does.
 */

#include <cstddef>

#if defined(__linux__)
#include <time.h>
#endif

namespace cloudseer::common {

/**
 * Cache the calling thread's stack bounds for the frame-pointer
 * walker. Cheap after the first call on a thread; must be called in
 * normal (non-signal) context because it may allocate. Threads that
 * never call it still profile correctly via the backtrace fallback.
 */
void prepareThreadForStackCapture();

/**
 * Force the lazy pieces of `backtrace()` (libgcc dlopen) to load now,
 * in normal context, so the first in-handler capture is signal-safe.
 */
void warmStackCapture();

/**
 * Capture up to `max` return addresses for the calling thread,
 * innermost first. Async-signal-safe once `warmStackCapture()` has
 * run in the process. Returns the number of frames written (0 when
 * nothing could be captured).
 */
int captureStack(void **out, int max);

/**
 * A process-CPU-time profiling timer delivering SIGPROF at a fixed
 * rate: `timer_create(CLOCK_PROCESS_CPUTIME_ID)` when available,
 * `setitimer(ITIMER_PROF)` as the fallback. The caller owns the
 * SIGPROF disposition; this only arms and disarms the clock.
 */
class ProfTimer
{
public:
    ProfTimer() = default;
    ~ProfTimer() { stop(); }
    ProfTimer(const ProfTimer &) = delete;
    ProfTimer &operator=(const ProfTimer &) = delete;

    /** Arm at `hz` samples per CPU-second. False if already armed,
     *  `hz` is out of range, or both timer back ends fail. */
    bool start(int hz);

    /** Disarm. Safe to call when not armed. */
    void stop();

    bool active() const { return active_; }

private:
#if defined(__linux__)
    timer_t timer_{};
#endif
    bool posixTimer_ = false;
    bool active_ = false;
};

} // namespace cloudseer::common
