#include "common/time_util.hpp"

#include <cmath>
#include <cstdio>

namespace cloudseer::common {

namespace {

// Synthetic epoch: 2016-01-12 00:00:00 (the paper's era). Only the
// rendering is calendar-shaped; arithmetic stays in plain seconds.
constexpr int kEpochYear = 2016;
constexpr int kEpochMonth = 1;
constexpr int kEpochDay = 12;

constexpr double kSecondsPerDay = 86400.0;

} // namespace

void
appendTimestamp(SimTime t, std::string &out)
{
    if (t < 0)
        t = 0;
    long long whole = static_cast<long long>(std::floor(t));
    int millis = static_cast<int>(std::llround((t - whole) * 1000.0));
    if (millis >= 1000) {
        millis -= 1000;
        ++whole;
    }
    long long days = whole / static_cast<long long>(kSecondsPerDay);
    long long rem = whole % static_cast<long long>(kSecondsPerDay);
    int hh = static_cast<int>(rem / 3600);
    int mm = static_cast<int>((rem % 3600) / 60);
    int ss = static_cast<int>(rem % 60);
    // Days roll the date forward within January for simplicity; runs are
    // far shorter than the remaining days of the month.
    int day = kEpochDay + static_cast<int>(days);
    char buf[48];
    int len = std::snprintf(buf, sizeof(buf),
                            "%04d-%02d-%02d %02d:%02d:%02d.%03d",
                            kEpochYear, kEpochMonth, day, hh, mm, ss,
                            millis);
    out.append(buf, static_cast<std::size_t>(len));
}

std::string
formatTimestamp(SimTime t)
{
    std::string out;
    appendTimestamp(t, out);
    return out;
}

bool
parseTimestamp(const std::string &text, SimTime &out)
{
    int year = 0, month = 0, day = 0, hh = 0, mm = 0, ss = 0, millis = 0;
    int n = std::sscanf(text.c_str(), "%d-%d-%d %d:%d:%d.%d",
                        &year, &month, &day, &hh, &mm, &ss, &millis);
    if (n != 7 || year != kEpochYear || month != kEpochMonth ||
        day < kEpochDay) {
        return false;
    }
    out = (day - kEpochDay) * kSecondsPerDay + hh * 3600.0 + mm * 60.0 +
          ss + millis / 1000.0;
    return true;
}

} // namespace cloudseer::common
