#include "common/table.hpp"

#include <sstream>

#include "common/error.hpp"

namespace cloudseer::common {

TextTable::TextTable(std::vector<std::string> header_)
    : header(std::move(header_))
{
    CS_ASSERT(!header.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    CS_ASSERT(row.size() == header.size(), "row width mismatch");
    rows.push_back(std::move(row));
}

void
TextTable::render(std::ostream &os) const
{
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto renderRow = [&](const std::vector<std::string> &row) {
        os << "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << " " << row[c]
               << std::string(widths[c] - row[c].size(), ' ') << " |";
        }
        os << "\n";
    };

    renderRow(header);
    os << "|";
    for (std::size_t c = 0; c < header.size(); ++c)
        os << std::string(widths[c] + 2, '-') << "|";
    os << "\n";
    for (const auto &row : rows)
        renderRow(row);
}

std::string
TextTable::toString() const
{
    std::ostringstream oss;
    render(oss);
    return oss.str();
}

} // namespace cloudseer::common
