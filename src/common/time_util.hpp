/**
 * @file
 * Simulated-time formatting and parsing.
 *
 * Simulation time is a double counting seconds from an arbitrary epoch.
 * Log lines render it OpenStack-style ("2016-01-12 08:30:01.123"); the
 * collector parses it back. A fixed synthetic epoch keeps output stable.
 */

#ifndef CLOUDSEER_COMMON_TIME_UTIL_HPP
#define CLOUDSEER_COMMON_TIME_UTIL_HPP

#include <string>

namespace cloudseer::common {

/** Seconds-from-epoch type used throughout the simulator and checker. */
using SimTime = double;

/** Render seconds-from-epoch as "YYYY-MM-DD HH:MM:SS.mmm". */
std::string formatTimestamp(SimTime t);

/** Append formatTimestamp(t) to `out` without a temporary string. */
void appendTimestamp(SimTime t, std::string &out);

/**
 * Parse a "YYYY-MM-DD HH:MM:SS.mmm" timestamp back to seconds-from-epoch.
 *
 * @param text      The timestamp text.
 * @param out       Receives the parsed value on success.
 * @retval true     if the text was a well-formed timestamp.
 */
bool parseTimestamp(const std::string &text, SimTime &out);

} // namespace cloudseer::common

#endif // CLOUDSEER_COMMON_TIME_UTIL_HPP
