#include "common/uuid.hpp"

#include <array>
#include <cctype>

namespace cloudseer::common {

namespace {

const char *kHexDigits = "0123456789abcdef";

} // namespace

std::string
makeUuid(Rng &rng)
{
    // Layout: 8-4-4-4-12 hex digits separated by dashes.
    static const std::array<int, 5> groups = {8, 4, 4, 4, 12};
    std::string out;
    out.reserve(36);
    for (std::size_t g = 0; g < groups.size(); ++g) {
        if (g > 0)
            out.push_back('-');
        for (int i = 0; i < groups[g]; ++i)
            out.push_back(kHexDigits[rng.uniformInt(0, 15)]);
    }
    return out;
}

std::string
makeIp(Rng &rng)
{
    return "10." + std::to_string(rng.uniformInt(0, 255)) + "." +
           std::to_string(rng.uniformInt(0, 255)) + "." +
           std::to_string(rng.uniformInt(1, 254));
}

bool
isUuid(const std::string &s)
{
    static const std::array<int, 5> groups = {8, 4, 4, 4, 12};
    std::size_t pos = 0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        if (g > 0) {
            if (pos >= s.size() || s[pos] != '-')
                return false;
            ++pos;
        }
        for (int i = 0; i < groups[g]; ++i, ++pos) {
            if (pos >= s.size() ||
                !std::isxdigit(static_cast<unsigned char>(s[pos]))) {
                return false;
            }
        }
    }
    return pos == s.size();
}

bool
isIp(const std::string &s)
{
    int octets = 0;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        std::size_t start = pos;
        int value = 0;
        while (pos < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[pos]))) {
            value = value * 10 + (s[pos] - '0');
            if (value > 255)
                return false;
            ++pos;
        }
        if (pos == start)
            return false;
        ++octets;
        if (pos == s.size())
            break;
        if (s[pos] != '.')
            return false;
        ++pos;
    }
    return octets == 4;
}

} // namespace cloudseer::common
