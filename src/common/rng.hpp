/**
 * @file
 * Deterministic random-number generation for simulation and experiments.
 *
 * All stochastic behaviour in the repository flows through Rng so that
 * every experiment is reproducible from a single seed.
 */

#ifndef CLOUDSEER_COMMON_RNG_HPP
#define CLOUDSEER_COMMON_RNG_HPP

#include <cstdint>
#include <random>
#include <sstream>
#include <vector>

#include "common/binio.hpp"
#include "common/error.hpp"

namespace cloudseer::common {

/**
 * Seeded pseudo-random generator with the draw primitives the simulator,
 * workload generator, and checker heuristics need.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds yield equal streams. */
    explicit Rng(std::uint64_t seed) : engine(seed) {}

    /** Uniform integer in [lo, hi] inclusive. */
    int
    uniformInt(int lo, int hi)
    {
        CS_ASSERT(lo <= hi, "uniformInt bounds inverted");
        return std::uniform_int_distribution<int>(lo, hi)(engine);
    }

    /** Uniform 64-bit value over the full range. */
    std::uint64_t
    uniformU64()
    {
        return std::uniform_int_distribution<std::uint64_t>()(engine);
    }

    /** Uniform real in [lo, hi). */
    double
    uniformReal(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine);
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return std::bernoulli_distribution(p)(engine);
    }

    /** Exponentially distributed delay with the given mean (> 0). */
    double
    expDelay(double mean)
    {
        CS_ASSERT(mean > 0.0, "expDelay mean must be positive");
        return std::exponential_distribution<double>(1.0 / mean)(engine);
    }

    /**
     * Truncated normal draw: resamples into [lo, hi].
     * Used for per-step service latencies that must stay positive.
     */
    double
    normalClamped(double mean, double stddev, double lo, double hi)
    {
        std::normal_distribution<double> dist(mean, stddev);
        for (int i = 0; i < 64; ++i) {
            double v = dist(engine);
            if (v >= lo && v <= hi)
                return v;
        }
        return mean < lo ? lo : (mean > hi ? hi : mean);
    }

    /** Pick a uniformly random element of a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &items)
    {
        CS_ASSERT(!items.empty(), "pick from empty vector");
        return items[static_cast<std::size_t>(
            uniformInt(0, static_cast<int>(items.size()) - 1))];
    }

    /** Derive an independent child generator (for per-user streams). */
    Rng
    fork()
    {
        return Rng(uniformU64() ^ 0x9e3779b97f4a7c15ULL);
    }

    /** Access the underlying engine (for std::shuffle). */
    std::mt19937_64 &raw() { return engine; }

    /**
     * Serialise the full engine state (seer-vault). mt19937_64 defines
     * textual stream operators over its 312-word state; the text form
     * is portable across processes, which is exactly the checkpoint
     * use case.
     */
    void
    saveState(BinWriter &out) const
    {
        std::ostringstream text;
        text << engine;
        out.writeString(text.str());
    }

    /** Restore an engine state written by saveState. */
    bool
    restoreState(BinReader &in)
    {
        std::istringstream text(in.readString());
        if (!in.ok())
            return false;
        text >> engine;
        if (text.fail()) {
            in.fail();
            return false;
        }
        return true;
    }

  private:
    std::mt19937_64 engine;
};

} // namespace cloudseer::common

#endif // CLOUDSEER_COMMON_RNG_HPP
