/**
 * @file
 * Clang thread-safety-analysis annotations (seer-swarm, DESIGN.md §14).
 *
 * Thin macro wrappers over Clang's `-Wthread-safety` attributes so the
 * sharded checker's threading contracts — which side of an SPSC ring a
 * method belongs to, which thread owns a shard's checker — are checked
 * at compile time under Clang and compile away to nothing elsewhere.
 * The CI clang job builds with `-Wthread-safety
 * -Werror=thread-safety`; GCC builds see empty macros.
 *
 * The SPSC ring has no mutex, so the annotated capabilities are
 * *roles*, not locks: a `ThreadRole` is a zero-size capability object
 * that a thread claims by constructing a `RoleGuard` at the top of its
 * loop. The analysis then proves statically that producer-side methods
 * are only called while holding the producer role and consumer-side
 * methods the consumer role — the exact single-producer /
 * single-consumer discipline the ring's correctness depends on. This
 * is the standard role-capability idiom from the Clang thread-safety
 * docs ("negative" mutex-free capabilities).
 */

#ifndef CLOUDSEER_COMMON_THREAD_ANNOTATIONS_HPP
#define CLOUDSEER_COMMON_THREAD_ANNOTATIONS_HPP

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif

#ifndef CS_THREAD_ANNOTATION
#define CS_THREAD_ANNOTATION(x) // no-op outside Clang
#endif

#define CS_CAPABILITY(name) CS_THREAD_ANNOTATION(capability(name))
#define CS_SCOPED_CAPABILITY CS_THREAD_ANNOTATION(scoped_lockable)
#define CS_GUARDED_BY(x) CS_THREAD_ANNOTATION(guarded_by(x))
#define CS_REQUIRES(...) \
    CS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define CS_ACQUIRE(...) \
    CS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define CS_RELEASE(...) \
    CS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define CS_EXCLUDES(...) CS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define CS_NO_THREAD_SAFETY_ANALYSIS \
    CS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace cloudseer::common {

/**
 * A compile-time-only capability standing for "this code runs on the
 * thread that owns this role". Zero size, no runtime behaviour — it
 * exists so Clang's analysis has a capability to track.
 */
class CS_CAPABILITY("role") ThreadRole
{
  public:
    // User-provided (not defaulted): a const ThreadRole member would
    // otherwise be ill-formed under GCC's uninitialized-const rule.
    ThreadRole() {}
};

/**
 * RAII claim of a ThreadRole for the current scope. Constructing one
 * asserts (statically, to the analysis; nothing at runtime) that this
 * scope runs on the role's owning thread, unlocking calls to
 * CS_REQUIRES(role) methods.
 */
class CS_SCOPED_CAPABILITY RoleGuard
{
  public:
    explicit RoleGuard(const ThreadRole &role) CS_ACQUIRE(role)
    {
        (void)role;
    }
    ~RoleGuard() CS_RELEASE() {}

    RoleGuard(const RoleGuard &) = delete;
    RoleGuard &operator=(const RoleGuard &) = delete;
};

} // namespace cloudseer::common

#endif // CLOUDSEER_COMMON_THREAD_ANNOTATIONS_HPP
