/**
 * @file
 * Binary (de)serialisation of LogRecord (seer-vault, DESIGN.md §13).
 *
 * The vault's write-ahead ledger and the monitor's reorder-buffer
 * snapshot both persist full LogRecords. The text wire format
 * (encodeLogLine) is NOT reusable here: decodeLogLine assigns no
 * record id, and reports reference records by id — a replay through
 * the text codec would change every report's `records` array. The
 * binary codec round-trips every field, ground truth included, so a
 * restored monitor replays exactly the records the crashed one saw.
 */

#ifndef CLOUDSEER_LOGGING_RECORD_BINIO_HPP
#define CLOUDSEER_LOGGING_RECORD_BINIO_HPP

#include "common/binio.hpp"
#include "logging/log_record.hpp"

namespace cloudseer::logging {

/** Append one record to a binary stream. */
void writeLogRecord(common::BinWriter &out, const LogRecord &record);

/**
 * Decode one record written by writeLogRecord. Returns false (stream
 * marked bad) on truncation or a corrupt level byte.
 */
bool readLogRecord(common::BinReader &in, LogRecord &record);

} // namespace cloudseer::logging

#endif // CLOUDSEER_LOGGING_RECORD_BINIO_HPP
