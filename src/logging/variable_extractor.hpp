/**
 * @file
 * Splits a raw log message into its constant template and variable parts.
 *
 * Following the paper (§3.1), three variable classes are recognised:
 * UUIDs (8-4-4-4-12 hex), IPv4 addresses, and bare numbers. The template
 * is the message with each variable replaced by a kind placeholder; the
 * value set holds the extracted strings.
 */

#ifndef CLOUDSEER_LOGGING_VARIABLE_EXTRACTOR_HPP
#define CLOUDSEER_LOGGING_VARIABLE_EXTRACTOR_HPP

#include <string>
#include <vector>

namespace cloudseer::logging {

/** Kind of a variable part found in a log message. */
enum class VariableKind
{
    Uuid,
    Ip,
    Number,
};

/** One extracted variable occurrence. */
struct Variable
{
    VariableKind kind;
    std::string text;

    bool operator==(const Variable &other) const = default;
};

/** Result of template/variable separation for one message. */
struct ParsedBody
{
    std::string templateText;        ///< body with placeholders substituted
    std::vector<Variable> variables; ///< in order of appearance
};

/**
 * Hand-rolled single-pass scanner (no std::regex — it dominates runtime
 * at stream rates). Deterministic longest-match at each position with
 * precedence UUID > IP > number.
 */
class VariableExtractor
{
  public:
    /** Placeholder inserted for each kind. */
    static const char *placeholder(VariableKind kind);

    /** Parse one message body into template + variables. */
    ParsedBody parse(const std::string &body) const;

    /**
     * Extract only the identifier values used by the checker's
     * identifier-set heuristic. Numbers are excluded by default — they
     * collide across unrelated sequences (ports, sizes, HTTP codes).
     *
     * @param body           Raw message body.
     * @param include_numbers Whether bare numbers also count.
     */
    std::vector<std::string>
    extractIdentifiers(const std::string &body,
                       bool include_numbers = false) const;
};

} // namespace cloudseer::logging

#endif // CLOUDSEER_LOGGING_VARIABLE_EXTRACTOR_HPP
