/**
 * @file
 * OpenStack-style log severity levels.
 */

#ifndef CLOUDSEER_LOGGING_LOG_LEVEL_HPP
#define CLOUDSEER_LOGGING_LOG_LEVEL_HPP

#include <string>

namespace cloudseer::logging {

/** Severity of a log record, mirroring OpenStack's oslo.log levels. */
enum class LogLevel
{
    Debug,
    Info,
    Warning,
    Error,
    Critical,
};

/** Render a level as its canonical upper-case token ("INFO", ...). */
const char *logLevelName(LogLevel level);

/**
 * Parse a level token.
 *
 * @param text  Token such as "INFO" or "ERROR".
 * @param out   Receives the parsed level on success.
 * @retval true if the token named a level.
 */
bool parseLogLevel(const std::string &text, LogLevel &out);

/** True for Error and Critical — the paper's error-message criterion. */
bool isErrorLevel(LogLevel level);

} // namespace cloudseer::logging

#endif // CLOUDSEER_LOGGING_LOG_LEVEL_HPP
