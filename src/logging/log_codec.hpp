/**
 * @file
 * Serialises log records to text lines and parses them back.
 *
 * Line format (what the Logstash stand-in ships across "nodes"):
 *
 *     2016-01-12 08:30:01.123 compute-1 nova-compute INFO <body...>
 *
 * Ground-truth fields do not survive serialisation — parsing a line
 * yields a record with truthExecution == 0, which is exactly the
 * information barrier the monitor relies on.
 */

#ifndef CLOUDSEER_LOGGING_LOG_CODEC_HPP
#define CLOUDSEER_LOGGING_LOG_CODEC_HPP

#include <optional>
#include <string>

#include "logging/log_record.hpp"

namespace cloudseer::logging {

/** Render a record as one log line (no trailing newline). */
std::string encodeLogLine(const LogRecord &record);

/**
 * Render into a caller-owned buffer (replacing its contents). The
 * monitor's flight-recorder path encodes every delivered record, so
 * reusing one scratch string keeps that path allocation-free once the
 * buffer has warmed up to the longest line seen.
 */
void encodeLogLineTo(const LogRecord &record, std::string &out);

/** Why a line failed to parse (for quarantine accounting). */
enum class DecodeFailure
{
    None,            ///< parsed fine
    BadTimestamp,    ///< leading timestamp missing or unparseable
    BadHeader,       ///< node/service/level fields missing or invalid
    TruncatedPayload ///< header parsed but the body is empty/cut off
};

/** Canonical token ("BAD-TIMESTAMP", ...). */
const char *decodeFailureName(DecodeFailure cause);

/**
 * Parse one log line.
 *
 * @param line The text line.
 * @param why  When non-null, receives the failure cause (None on
 *             success).
 * @return The parsed record, or nullopt if the line is malformed.
 */
std::optional<LogRecord> decodeLogLine(const std::string &line,
                                       DecodeFailure *why = nullptr);

} // namespace cloudseer::logging

#endif // CLOUDSEER_LOGGING_LOG_CODEC_HPP
