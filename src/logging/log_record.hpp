/**
 * @file
 * The log record flowing from the simulated cluster into CloudSeer.
 */

#ifndef CLOUDSEER_LOGGING_LOG_RECORD_HPP
#define CLOUDSEER_LOGGING_LOG_RECORD_HPP

#include <cstdint>
#include <string>

#include "common/time_util.hpp"
#include "logging/log_level.hpp"

namespace cloudseer::logging {

/** Stable id attached to every record as it enters the pipeline. */
using RecordId = std::uint64_t;

/** Ground-truth execution id (simulator-internal; 0 = background noise). */
using ExecutionId = std::uint64_t;

/**
 * One log message.
 *
 * The `truth*` fields are written by the simulator for evaluation only;
 * the checker must never read them (enforced by the monitor facade, which
 * strips them before checking).
 */
struct LogRecord
{
    RecordId id = 0;
    common::SimTime timestamp = 0.0;
    std::string node;     ///< e.g. "controller", "compute-2"
    std::string service;  ///< e.g. "nova-api"
    LogLevel level = LogLevel::Info;
    std::string body;     ///< message text with concrete identifiers

    // --- ground truth (simulator only; not visible through log lines) ---
    ExecutionId truthExecution = 0;  ///< 0 for background noise
    std::string truthTask;           ///< task name, empty for noise
};

} // namespace cloudseer::logging

#endif // CLOUDSEER_LOGGING_LOG_RECORD_HPP
