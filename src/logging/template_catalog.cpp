#include "logging/template_catalog.hpp"

#include "common/error.hpp"

namespace cloudseer::logging {

std::string
TemplateCatalog::key(const std::string &service, const std::string &text)
{
    return service + "\x1f" + text;
}

TemplateId
TemplateCatalog::intern(const std::string &service,
                        const std::string &template_text)
{
    auto [it, inserted] = index.try_emplace(
        key(service, template_text),
        static_cast<TemplateId>(entries.size()));
    if (inserted)
        entries.push_back({service, template_text});
    return it->second;
}

TemplateId
TemplateCatalog::find(const std::string &service,
                      const std::string &template_text) const
{
    auto it = index.find(key(service, template_text));
    return it == index.end() ? kInvalidTemplate : it->second;
}

const std::string &
TemplateCatalog::service(TemplateId id) const
{
    CS_ASSERT(id < entries.size(), "template id out of range");
    return entries[id].service;
}

const std::string &
TemplateCatalog::text(TemplateId id) const
{
    CS_ASSERT(id < entries.size(), "template id out of range");
    return entries[id].text;
}

std::string
TemplateCatalog::label(TemplateId id) const
{
    return service(id) + ": " + text(id);
}

} // namespace cloudseer::logging
