#include "logging/template_catalog.hpp"

#include "common/error.hpp"

namespace cloudseer::logging {

namespace {

constexpr char kSeparator = '\x1f';

/** FNV-1a over one segment, continuing from `h`. */
std::uint64_t
fnvStep(std::uint64_t h, std::string_view bytes)
{
    for (char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

} // namespace

std::size_t
TemplateCatalog::KeyHash::operator()(const std::string &joined) const
{
    return static_cast<std::size_t>(fnvStep(kFnvOffset, joined));
}

std::size_t
TemplateCatalog::KeyHash::operator()(const KeyRef &ref) const
{
    std::uint64_t h = fnvStep(kFnvOffset, ref.service);
    h = fnvStep(h, std::string_view(&kSeparator, 1));
    return static_cast<std::size_t>(fnvStep(h, ref.text));
}

bool
TemplateCatalog::KeyEqual::operator()(const KeyRef &ref,
                                      const std::string &joined) const
{
    std::size_t slen = ref.service.size();
    if (joined.size() != slen + 1 + ref.text.size())
        return false;
    return joined.compare(0, slen, ref.service) == 0 &&
           joined[slen] == kSeparator &&
           joined.compare(slen + 1, std::string::npos, ref.text) == 0;
}

std::string
TemplateCatalog::key(const std::string &service, const std::string &text)
{
    std::string joined;
    joined.reserve(service.size() + 1 + text.size());
    joined += service;
    joined += kSeparator;
    joined += text;
    return joined;
}

TemplateId
TemplateCatalog::intern(const std::string &service,
                        const std::string &template_text)
{
    auto it = index.find(KeyRef{service, template_text});
    if (it != index.end())
        return it->second;
    TemplateId id = static_cast<TemplateId>(entries.size());
    index.emplace(key(service, template_text), id);
    entries.push_back({service, template_text});
    return id;
}

TemplateId
TemplateCatalog::find(const std::string &service,
                      const std::string &template_text) const
{
    auto it = index.find(KeyRef{service, template_text});
    return it == index.end() ? kInvalidTemplate : it->second;
}

const std::string &
TemplateCatalog::service(TemplateId id) const
{
    CS_ASSERT(id < entries.size(), "template id out of range");
    return entries[id].service;
}

const std::string &
TemplateCatalog::text(TemplateId id) const
{
    CS_ASSERT(id < entries.size(), "template id out of range");
    return entries[id].text;
}

std::string
TemplateCatalog::label(TemplateId id) const
{
    return service(id) + ": " + text(id);
}

} // namespace cloudseer::logging
