#include "logging/log_record.hpp"

// LogRecord is a plain aggregate; this translation unit anchors the
// library target.
