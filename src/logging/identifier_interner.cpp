#include "logging/identifier_interner.hpp"

#include "common/error.hpp"

namespace cloudseer::logging {

IdToken
IdentifierInterner::intern(std::string_view value)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto it = index.find(value);
    if (it != index.end()) {
        ++hitCount;
        return it->second;
    }
    ++missCount;
    IdToken token = static_cast<IdToken>(tokens.size());
    CS_ASSERT(token != kInvalidIdToken, "identifier interner full");
    tokens.emplace_back(value);
    index.emplace(tokens.back(), token);
    return token;
}

IdToken
IdentifierInterner::find(std::string_view value) const
{
    std::lock_guard<std::mutex> lock(mutex);
    auto it = index.find(value);
    return it == index.end() ? kInvalidIdToken : it->second;
}

const std::string &
IdentifierInterner::text(IdToken token) const
{
    std::lock_guard<std::mutex> lock(mutex);
    CS_ASSERT(token < tokens.size(), "identifier token out of range");
    return tokens[token];
}

std::size_t
IdentifierInterner::size() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return tokens.size();
}

InternerStats
IdentifierInterner::stats() const
{
    std::lock_guard<std::mutex> lock(mutex);
    InternerStats out;
    out.size = tokens.size();
    out.hits = hitCount;
    out.misses = missCount;
    return out;
}

IdentifierInterner &
IdentifierInterner::process()
{
    static IdentifierInterner instance;
    return instance;
}

} // namespace cloudseer::logging
