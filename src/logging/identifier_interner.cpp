#include "logging/identifier_interner.hpp"

#include "common/error.hpp"

namespace cloudseer::logging {

IdToken
IdentifierInterner::intern(std::string_view value)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto it = index.find(value);
    if (it != index.end()) {
        ++hitCount;
        return it->second;
    }
    if (maxEntries != 0 && tokens.size() >= maxEntries) {
        ++capRejectedCount;
        return kInvalidIdToken;
    }
    ++missCount;
    IdToken token = static_cast<IdToken>(tokens.size());
    CS_ASSERT(token != kInvalidIdToken, "identifier interner full");
    tokens.emplace_back(value);
    index.emplace(tokens.back(), token);
    return token;
}

IdToken
IdentifierInterner::find(std::string_view value) const
{
    std::lock_guard<std::mutex> lock(mutex);
    auto it = index.find(value);
    return it == index.end() ? kInvalidIdToken : it->second;
}

const std::string &
IdentifierInterner::text(IdToken token) const
{
    std::lock_guard<std::mutex> lock(mutex);
    CS_ASSERT(token < tokens.size(), "identifier token out of range");
    return tokens[token];
}

std::size_t
IdentifierInterner::size() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return tokens.size();
}

InternerStats
IdentifierInterner::stats() const
{
    std::lock_guard<std::mutex> lock(mutex);
    InternerStats out;
    out.size = tokens.size();
    out.hits = hitCount;
    out.misses = missCount;
    out.capacity = maxEntries;
    out.capRejected = capRejectedCount;
    return out;
}

void
IdentifierInterner::setCapacity(std::size_t max_entries)
{
    std::lock_guard<std::mutex> lock(mutex);
    maxEntries = max_entries;
}

std::size_t
IdentifierInterner::capacityLimit() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return maxEntries;
}

void
IdentifierInterner::snapshotState(common::BinWriter &out) const
{
    std::lock_guard<std::mutex> lock(mutex);
    out.writeU64(tokens.size());
    for (const std::string &entry : tokens)
        out.writeString(entry);
    out.writeU64(hitCount);
    out.writeU64(missCount);
    out.writeU64(maxEntries);
    out.writeU64(capRejectedCount);
}

bool
IdentifierInterner::restoreState(common::BinReader &in)
{
    std::lock_guard<std::mutex> lock(mutex);
    std::uint64_t count = in.readU64();
    if (!in.ok())
        return false;
    for (std::uint64_t expected = 0; expected < count; ++expected) {
        std::string entry = in.readString();
        if (!in.ok())
            return false;
        auto it = index.find(std::string_view(entry));
        IdToken token;
        if (it != index.end()) {
            token = it->second;
        } else {
            token = static_cast<IdToken>(tokens.size());
            tokens.push_back(std::move(entry));
            index.emplace(tokens.back(), token);
        }
        if (token != static_cast<IdToken>(expected)) {
            in.fail();
            return false;
        }
    }
    std::uint64_t hits = in.readU64();
    std::uint64_t misses = in.readU64();
    std::uint64_t cap = in.readU64();
    std::uint64_t rejected = in.readU64();
    if (!in.ok())
        return false;
    hitCount = hits;
    missCount = misses;
    maxEntries = static_cast<std::size_t>(cap);
    capRejectedCount = rejected;
    return true;
}

IdentifierInterner &
IdentifierInterner::process()
{
    static IdentifierInterner instance;
    return instance;
}

} // namespace cloudseer::logging
