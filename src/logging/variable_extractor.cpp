#include "logging/variable_extractor.hpp"

#include <cctype>

namespace cloudseer::logging {

namespace {

bool
isHex(char c)
{
    return std::isxdigit(static_cast<unsigned char>(c)) != 0;
}

bool
isDigit(char c)
{
    return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

bool
isAlnum(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

/**
 * Try to match a UUID (8-4-4-4-12 lower/upper hex) at position pos.
 *
 * @return Length of the match (36) or 0.
 */
std::size_t
matchUuid(const std::string &s, std::size_t pos)
{
    static const int groups[5] = {8, 4, 4, 4, 12};
    std::size_t p = pos;
    for (int g = 0; g < 5; ++g) {
        if (g > 0) {
            if (p >= s.size() || s[p] != '-')
                return 0;
            ++p;
        }
        for (int i = 0; i < groups[g]; ++i, ++p) {
            if (p >= s.size() || !isHex(s[p]))
                return 0;
        }
    }
    // Trailing boundary: not followed by another identifier character.
    if (p < s.size() && (isAlnum(s[p]) || s[p] == '-'))
        return 0;
    return p - pos;
}

/**
 * Try to match an IPv4 dotted quad at position pos (octets <= 255).
 *
 * @return Length of the match or 0.
 */
std::size_t
matchIp(const std::string &s, std::size_t pos)
{
    std::size_t p = pos;
    for (int octet = 0; octet < 4; ++octet) {
        if (octet > 0) {
            if (p >= s.size() || s[p] != '.')
                return 0;
            ++p;
        }
        int value = 0;
        std::size_t digits = 0;
        while (p < s.size() && isDigit(s[p]) && digits < 3) {
            value = value * 10 + (s[p] - '0');
            ++p;
            ++digits;
        }
        if (digits == 0 || value > 255)
            return 0;
    }
    // Must not continue into more digits/dots ("1.2.3.4.5" is not an IP).
    if (p < s.size() && (isDigit(s[p]) || s[p] == '.'))
        return 0;
    return p - pos;
}

/**
 * Try to match a bare number at position pos.
 *
 * @return Length of the match or 0.
 */
std::size_t
matchNumber(const std::string &s, std::size_t pos)
{
    std::size_t p = pos;
    while (p < s.size() && isDigit(s[p]))
        ++p;
    if (p == pos)
        return 0;
    // Numbers glued to letters ("v2", "eth0") are part of a word, not a
    // variable; keep them in the template text.
    if (p < s.size() && std::isalpha(static_cast<unsigned char>(s[p])))
        return 0;
    return p - pos;
}

} // namespace

const char *
VariableExtractor::placeholder(VariableKind kind)
{
    switch (kind) {
      case VariableKind::Uuid: return "<uuid>";
      case VariableKind::Ip: return "<ip>";
      case VariableKind::Number: return "<num>";
    }
    return "<var>";
}

ParsedBody
VariableExtractor::parse(const std::string &body) const
{
    ParsedBody out;
    out.templateText.reserve(body.size());
    char prev = '\0';
    std::size_t pos = 0;
    while (pos < body.size()) {
        char c = body[pos];
        std::size_t len = 0;
        VariableKind kind = VariableKind::Number;
        if (!isAlnum(prev) && isHex(c)) {
            if ((len = matchUuid(body, pos)) > 0) {
                kind = VariableKind::Uuid;
            } else if (isDigit(c)) {
                // A dotted quad preceded by '.' is the tail of a longer
                // dotted sequence ("1.2.3.4.5"), not an address.
                if (prev != '.' && (len = matchIp(body, pos)) > 0) {
                    kind = VariableKind::Ip;
                } else if ((len = matchNumber(body, pos)) > 0) {
                    kind = VariableKind::Number;
                }
            }
        }
        if (len > 0) {
            out.templateText += placeholder(kind);
            out.variables.push_back({kind, body.substr(pos, len)});
            pos += len;
            prev = '\0';
        } else {
            out.templateText.push_back(c);
            prev = c;
            ++pos;
        }
    }
    return out;
}

std::vector<std::string>
VariableExtractor::extractIdentifiers(const std::string &body,
                                      bool include_numbers) const
{
    std::vector<std::string> out;
    ParsedBody parsed = parse(body);
    for (auto &var : parsed.variables) {
        if (var.kind == VariableKind::Number && !include_numbers)
            continue;
        out.push_back(std::move(var.text));
    }
    return out;
}

} // namespace cloudseer::logging
