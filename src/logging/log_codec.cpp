#include "logging/log_codec.hpp"

#include <cctype>

#include "common/time_util.hpp"

namespace cloudseer::logging {

namespace {

/** Advance past one whitespace-delimited token; returns the token. */
std::string
takeToken(const std::string &line, std::size_t &pos)
{
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos]))) {
        ++pos;
    }
    std::size_t start = pos;
    while (pos < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[pos]))) {
        ++pos;
    }
    return line.substr(start, pos - start);
}

} // namespace

void
encodeLogLineTo(const LogRecord &record, std::string &out)
{
    out.clear();
    common::appendTimestamp(record.timestamp, out);
    out += ' ';
    out += record.node;
    out += ' ';
    out += record.service;
    out += ' ';
    out += logLevelName(record.level);
    out += ' ';
    out += record.body;
}

std::string
encodeLogLine(const LogRecord &record)
{
    std::string out;
    encodeLogLineTo(record, out);
    return out;
}

const char *
decodeFailureName(DecodeFailure cause)
{
    switch (cause) {
      case DecodeFailure::None: return "NONE";
      case DecodeFailure::BadTimestamp: return "BAD-TIMESTAMP";
      case DecodeFailure::BadHeader: return "BAD-HEADER";
      case DecodeFailure::TruncatedPayload: return "TRUNCATED-PAYLOAD";
    }
    return "UNKNOWN";
}

std::optional<LogRecord>
decodeLogLine(const std::string &line, DecodeFailure *why)
{
    auto fail = [why](DecodeFailure cause) -> std::optional<LogRecord> {
        if (why != nullptr)
            *why = cause;
        return std::nullopt;
    };
    if (why != nullptr)
        *why = DecodeFailure::None;

    std::size_t pos = 0;
    std::string date = takeToken(line, pos);
    std::string time = takeToken(line, pos);
    if (date.empty() || time.empty())
        return fail(DecodeFailure::BadTimestamp);

    LogRecord record;
    if (!common::parseTimestamp(date + " " + time, record.timestamp))
        return fail(DecodeFailure::BadTimestamp);

    record.node = takeToken(line, pos);
    record.service = takeToken(line, pos);
    std::string level_text = takeToken(line, pos);
    if (record.node.empty())
        return fail(DecodeFailure::BadHeader);
    if (record.service.empty() || level_text.empty()) {
        // A well-formed timestamp with the tail cut off mid-header is
        // a truncation artefact, not a malformed header.
        return fail(DecodeFailure::TruncatedPayload);
    }
    if (!parseLogLevel(level_text, record.level))
        return fail(DecodeFailure::BadHeader);

    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos]))) {
        ++pos;
    }
    record.body = line.substr(pos);
    if (record.body.empty())
        return fail(DecodeFailure::TruncatedPayload);
    return record;
}

} // namespace cloudseer::logging
