#include "logging/log_codec.hpp"

#include <cctype>

#include "common/time_util.hpp"

namespace cloudseer::logging {

namespace {

/** Advance past one whitespace-delimited token; returns the token. */
std::string
takeToken(const std::string &line, std::size_t &pos)
{
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos]))) {
        ++pos;
    }
    std::size_t start = pos;
    while (pos < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[pos]))) {
        ++pos;
    }
    return line.substr(start, pos - start);
}

} // namespace

std::string
encodeLogLine(const LogRecord &record)
{
    std::string out = common::formatTimestamp(record.timestamp);
    out += ' ';
    out += record.node;
    out += ' ';
    out += record.service;
    out += ' ';
    out += logLevelName(record.level);
    out += ' ';
    out += record.body;
    return out;
}

std::optional<LogRecord>
decodeLogLine(const std::string &line)
{
    std::size_t pos = 0;
    std::string date = takeToken(line, pos);
    std::string time = takeToken(line, pos);
    if (date.empty() || time.empty())
        return std::nullopt;

    LogRecord record;
    if (!common::parseTimestamp(date + " " + time, record.timestamp))
        return std::nullopt;

    record.node = takeToken(line, pos);
    record.service = takeToken(line, pos);
    std::string level_text = takeToken(line, pos);
    if (record.node.empty() || record.service.empty() ||
        !parseLogLevel(level_text, record.level)) {
        return std::nullopt;
    }

    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos]))) {
        ++pos;
    }
    record.body = line.substr(pos);
    if (record.body.empty())
        return std::nullopt;
    return record;
}

} // namespace cloudseer::logging
