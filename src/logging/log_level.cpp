#include "logging/log_level.hpp"

namespace cloudseer::logging {

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warning: return "WARNING";
      case LogLevel::Error: return "ERROR";
      case LogLevel::Critical: return "CRITICAL";
    }
    return "INFO";
}

bool
parseLogLevel(const std::string &text, LogLevel &out)
{
    if (text == "DEBUG") {
        out = LogLevel::Debug;
    } else if (text == "INFO") {
        out = LogLevel::Info;
    } else if (text == "WARNING") {
        out = LogLevel::Warning;
    } else if (text == "ERROR") {
        out = LogLevel::Error;
    } else if (text == "CRITICAL") {
        out = LogLevel::Critical;
    } else {
        return false;
    }
    return true;
}

bool
isErrorLevel(LogLevel level)
{
    return level == LogLevel::Error || level == LogLevel::Critical;
}

} // namespace cloudseer::logging
