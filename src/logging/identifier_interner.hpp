/**
 * @file
 * Interns identifier values (UUIDs, IPs) to dense integer tokens.
 *
 * The checker's routing structures (identifier sets, the inverted
 * routing index) operate on IdToken, not strings: overlap queries
 * become integer merges and posting-list lookups instead of string
 * comparisons. Tokens are assigned in first-seen order; the numbering
 * is an implementation detail — no checker behaviour depends on token
 * order, only on token identity.
 *
 * The process-wide instance (IdentifierInterner::process()) is what
 * the monitor's extraction path uses, mirroring how TemplateCatalog
 * owns template text. Unlike templates, the identifier universe is
 * unbounded (every VM boot mints fresh UUIDs); the interner therefore
 * grows for the life of the process. Epoch-based compaction once all
 * id-sets referencing a token have retired is future work (DESIGN.md
 * §9).
 */

#ifndef CLOUDSEER_LOGGING_IDENTIFIER_INTERNER_HPP
#define CLOUDSEER_LOGGING_IDENTIFIER_INTERNER_HPP

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cloudseer::logging {

/** Dense identifier token; valid tokens index the interner's table. */
using IdToken = std::uint32_t;

/** Sentinel for "not interned". */
constexpr IdToken kInvalidIdToken = 0xffffffffu;

/** Table health counters (seer-scope, DESIGN.md §11). */
struct InternerStats
{
    std::size_t size = 0;       ///< distinct identifiers interned
    std::uint64_t hits = 0;     ///< intern() served from the table
    std::uint64_t misses = 0;   ///< intern() minted a new token

    /** Fraction of intern() calls served from the table. */
    double
    hitRate() const
    {
        std::uint64_t total = hits + misses;
        return total == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(total);
    }
};

/** Registry of identifier values seen during checking. */
class IdentifierInterner
{
  public:
    /** Intern a value; returns a stable dense token. */
    IdToken intern(std::string_view value);

    /** Look up without interning; kInvalidIdToken when unknown. */
    IdToken find(std::string_view value) const;

    /** Original text of a token. */
    const std::string &text(IdToken token) const;

    /** Number of interned identifiers. */
    std::size_t size() const;

    /** Table size and hit/miss tallies since process start. */
    InternerStats stats() const;

    /** The process-wide instance the extraction path interns into. */
    static IdentifierInterner &process();

  private:
    struct StringHash
    {
        using is_transparent = void;
        std::size_t
        operator()(std::string_view s) const
        {
            return std::hash<std::string_view>{}(s);
        }
    };

    std::vector<std::string> tokens; // token -> text
    std::unordered_map<std::string, IdToken, StringHash,
                       std::equal_to<>>
        index;
    std::uint64_t hitCount = 0;
    std::uint64_t missCount = 0;
    mutable std::mutex mutex;
};

} // namespace cloudseer::logging

#endif // CLOUDSEER_LOGGING_IDENTIFIER_INTERNER_HPP
