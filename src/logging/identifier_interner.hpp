/**
 * @file
 * Interns identifier values (UUIDs, IPs) to dense integer tokens.
 *
 * The checker's routing structures (identifier sets, the inverted
 * routing index) operate on IdToken, not strings: overlap queries
 * become integer merges and posting-list lookups instead of string
 * comparisons. Tokens are assigned in first-seen order; the numbering
 * is an implementation detail — no checker behaviour depends on token
 * order, only on token identity.
 *
 * The process-wide instance (IdentifierInterner::process()) is what
 * the monitor's extraction path uses, mirroring how TemplateCatalog
 * owns template text. Unlike templates, the identifier universe is
 * unbounded (every VM boot mints fresh UUIDs); the interner therefore
 * grows for the life of the process unless a capacity is configured
 * (seer-vault, DESIGN.md §13): at capacity, intern() refuses new
 * identifiers with kInvalidIdToken and tallies the rejection, so a
 * hostile identifier flood degrades routing precision instead of
 * memory. Epoch-based compaction once all id-sets referencing a token
 * have retired is still future work (DESIGN.md §9).
 *
 * Snapshot/restore (seer-vault): snapshotState writes the full
 * token→text table; restoreState re-interns each text in token order
 * and demands the resulting token match the saved one. That holds in
 * the process that wrote the snapshot (tokens are stable and the
 * table only grows) and in a fresh process whose interner has not
 * diverged — restoring over an incompatible table refuses rather
 * than silently renumbering, because checker state stores raw tokens.
 */

#ifndef CLOUDSEER_LOGGING_IDENTIFIER_INTERNER_HPP
#define CLOUDSEER_LOGGING_IDENTIFIER_INTERNER_HPP

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/binio.hpp"

namespace cloudseer::logging {

/** Dense identifier token; valid tokens index the interner's table. */
using IdToken = std::uint32_t;

/** Sentinel for "not interned". */
constexpr IdToken kInvalidIdToken = 0xffffffffu;

/** Table health counters (seer-scope, DESIGN.md §11). */
struct InternerStats
{
    std::size_t size = 0;       ///< distinct identifiers interned
    std::uint64_t hits = 0;     ///< intern() served from the table
    std::uint64_t misses = 0;   ///< intern() minted a new token
    std::size_t capacity = 0;   ///< configured growth cap (0 = none)
    std::uint64_t capRejected = 0; ///< intern() refusals at capacity

    /** Fraction of intern() calls served from the table. */
    double
    hitRate() const
    {
        std::uint64_t total = hits + misses;
        return total == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(total);
    }
};

/** Registry of identifier values seen during checking. */
class IdentifierInterner
{
  public:
    /**
     * Intern a value; returns a stable dense token — or
     * kInvalidIdToken when a capacity is configured, the table is
     * full, and the value is new (the rejection is tallied).
     */
    IdToken intern(std::string_view value);

    /** Look up without interning; kInvalidIdToken when unknown. */
    IdToken find(std::string_view value) const;

    /** Original text of a token. */
    const std::string &text(IdToken token) const;

    /** Number of interned identifiers. */
    std::size_t size() const;

    /** Table size and hit/miss tallies since process start. */
    InternerStats stats() const;

    /**
     * Hard growth cap (seer-vault, DESIGN.md §13). 0 disables the cap
     * (the default — bit-identical to the uncapped interner). A cap
     * below the current size only blocks further growth; existing
     * tokens stay valid.
     */
    void setCapacity(std::size_t max_entries);

    /** Configured growth cap (0 = unlimited). */
    std::size_t capacityLimit() const;

    /**
     * Serialise the table and tallies (seer-vault). The token→text
     * table is written in token order, so restore can reproduce the
     * exact numbering.
     */
    void snapshotState(common::BinWriter &out) const;

    /**
     * Restore a snapshotState image by re-interning every text in
     * token order. Fails (returns false, table untouched beyond the
     * re-interns already applied) when any text resolves to a token
     * other than the saved one — i.e. when this process's table has
     * diverged from the snapshot's. Tallies and the capacity are
     * overwritten on success.
     */
    bool restoreState(common::BinReader &in);

    /** The process-wide instance the extraction path interns into. */
    static IdentifierInterner &process();

  private:
    struct StringHash
    {
        using is_transparent = void;
        std::size_t
        operator()(std::string_view s) const
        {
            return std::hash<std::string_view>{}(s);
        }
    };

    std::vector<std::string> tokens; // token -> text
    std::unordered_map<std::string, IdToken, StringHash,
                       std::equal_to<>>
        index;
    std::uint64_t hitCount = 0;
    std::uint64_t missCount = 0;
    std::size_t maxEntries = 0; ///< 0 = unlimited
    std::uint64_t capRejectedCount = 0;
    mutable std::mutex mutex;
};

} // namespace cloudseer::logging

#endif // CLOUDSEER_LOGGING_IDENTIFIER_INTERNER_HPP
