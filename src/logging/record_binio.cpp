#include "logging/record_binio.hpp"

namespace cloudseer::logging {

void
writeLogRecord(common::BinWriter &out, const LogRecord &record)
{
    out.writeU64(record.id);
    out.writeF64(record.timestamp);
    out.writeString(record.node);
    out.writeString(record.service);
    out.writeU8(static_cast<std::uint8_t>(record.level));
    out.writeString(record.body);
    out.writeU64(record.truthExecution);
    out.writeString(record.truthTask);
}

bool
readLogRecord(common::BinReader &in, LogRecord &record)
{
    record.id = in.readU64();
    record.timestamp = in.readF64();
    record.node = in.readString();
    record.service = in.readString();
    std::uint8_t level = in.readU8();
    record.body = in.readString();
    record.truthExecution = in.readU64();
    record.truthTask = in.readString();
    if (!in.ok() ||
        level > static_cast<std::uint8_t>(LogLevel::Critical)) {
        in.fail();
        return false;
    }
    record.level = static_cast<LogLevel>(level);
    return true;
}

} // namespace cloudseer::logging
