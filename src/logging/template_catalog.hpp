/**
 * @file
 * Interns message templates to dense integer ids.
 *
 * Mining and checking operate on TemplateId, not strings; the catalog is
 * the single owner of template text. Templates are keyed by the pair
 * (service, templateText) — identical text from different services is a
 * different workflow step.
 */

#ifndef CLOUDSEER_LOGGING_TEMPLATE_CATALOG_HPP
#define CLOUDSEER_LOGGING_TEMPLATE_CATALOG_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cloudseer::logging {

/** Dense template identifier; valid ids index the catalog's tables. */
using TemplateId = std::uint32_t;

/** Sentinel for "not interned". */
constexpr TemplateId kInvalidTemplate = 0xffffffffu;

/** Registry of message templates seen during modeling and checking. */
class TemplateCatalog
{
  public:
    /** Intern (service, template text); returns a stable id. */
    TemplateId intern(const std::string &service,
                      const std::string &template_text);

    /** Look up without interning; kInvalidTemplate when unknown. */
    TemplateId find(const std::string &service,
                    const std::string &template_text) const;

    /** Service that owns the template. */
    const std::string &service(TemplateId id) const;

    /** Constant text of the template. */
    const std::string &text(TemplateId id) const;

    /** Short human label "service: text" used in reports. */
    std::string label(TemplateId id) const;

    /** Number of interned templates. */
    std::size_t size() const { return entries.size(); }

  private:
    struct Entry
    {
        std::string service;
        std::string text;
    };

    /** Unjoined lookup key: hashes/compares as service + '\x1f' + text
     *  against the stored joined string, so hot-path find() never
     *  materialises the concatenation. */
    struct KeyRef
    {
        std::string_view service;
        std::string_view text;
    };

    struct KeyHash
    {
        using is_transparent = void;
        std::size_t operator()(const std::string &joined) const;
        std::size_t operator()(const KeyRef &ref) const;
    };

    struct KeyEqual
    {
        using is_transparent = void;
        bool
        operator()(const std::string &a, const std::string &b) const
        {
            return a == b;
        }
        bool operator()(const KeyRef &ref, const std::string &joined) const;
        bool
        operator()(const std::string &joined, const KeyRef &ref) const
        {
            return (*this)(ref, joined);
        }
    };

    std::vector<Entry> entries;
    std::unordered_map<std::string, TemplateId, KeyHash, KeyEqual> index;

    static std::string key(const std::string &service,
                           const std::string &text);
};

} // namespace cloudseer::logging

#endif // CLOUDSEER_LOGGING_TEMPLATE_CATALOG_HPP
