#include "core/automaton/task_automaton.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cloudseer::core {

TaskAutomaton::TaskAutomaton(std::string task_name,
                             std::vector<EventNode> events,
                             std::vector<DependencyEdge> edges)
    : taskName(std::move(task_name)),
      eventNodes(std::move(events)),
      edgeList(std::move(edges))
{
    predList.resize(eventNodes.size());
    succList.resize(eventNodes.size());
    for (const DependencyEdge &edge : edgeList) {
        CS_ASSERT(edge.from >= 0 &&
                      edge.from < static_cast<int>(eventNodes.size()) &&
                      edge.to >= 0 &&
                      edge.to < static_cast<int>(eventNodes.size()),
                  "edge endpoint out of range");
        succList[static_cast<std::size_t>(edge.from)].push_back(edge.to);
        predList[static_cast<std::size_t>(edge.to)].push_back(edge.from);
    }
    for (std::size_t i = 0; i < eventNodes.size(); ++i) {
        if (predList[i].empty())
            initials.push_back(static_cast<int>(i));
        if (succList[i].empty())
            finals.push_back(static_cast<int>(i));
    }
}

const EventNode &
TaskAutomaton::event(int id) const
{
    CS_ASSERT(id >= 0 && id < static_cast<int>(eventNodes.size()),
              "event id out of range");
    return eventNodes[static_cast<std::size_t>(id)];
}

const std::vector<int> &
TaskAutomaton::preds(int id) const
{
    CS_ASSERT(id >= 0 && id < static_cast<int>(predList.size()),
              "event id out of range");
    return predList[static_cast<std::size_t>(id)];
}

const std::vector<int> &
TaskAutomaton::succs(int id) const
{
    CS_ASSERT(id >= 0 && id < static_cast<int>(succList.size()),
              "event id out of range");
    return succList[static_cast<std::size_t>(id)];
}

std::vector<int>
TaskAutomaton::forkStates() const
{
    std::vector<int> out;
    for (std::size_t i = 0; i < succList.size(); ++i) {
        if (succList[i].size() > 1)
            out.push_back(static_cast<int>(i));
    }
    return out;
}

std::vector<int>
TaskAutomaton::joinStates() const
{
    std::vector<int> out;
    for (std::size_t i = 0; i < predList.size(); ++i) {
        if (predList[i].size() > 1)
            out.push_back(static_cast<int>(i));
    }
    return out;
}

bool
TaskAutomaton::containsTemplate(logging::TemplateId tpl) const
{
    for (const EventNode &node : eventNodes) {
        if (node.tpl == tpl)
            return true;
    }
    return false;
}

std::vector<int>
TaskAutomaton::eventsForTemplate(logging::TemplateId tpl) const
{
    std::vector<int> out;
    for (std::size_t i = 0; i < eventNodes.size(); ++i) {
        if (eventNodes[i].tpl == tpl)
            out.push_back(static_cast<int>(i));
    }
    std::sort(out.begin(), out.end(), [this](int a, int b) {
        return eventNodes[static_cast<std::size_t>(a)].occurrence <
               eventNodes[static_cast<std::size_t>(b)].occurrence;
    });
    return out;
}

std::string
TaskAutomaton::toDot(const logging::TemplateCatalog &catalog) const
{
    std::string out = "digraph \"" + taskName + "\" {\n";
    out += "  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
    for (std::size_t i = 0; i < eventNodes.size(); ++i) {
        std::string label = catalog.label(eventNodes[i].tpl);
        // Escape double quotes for graphviz.
        std::string escaped;
        for (char c : label) {
            if (c == '"')
                escaped += "\\\"";
            else
                escaped.push_back(c);
        }
        if (eventNodes[i].occurrence > 0) {
            escaped += " (#" +
                       std::to_string(eventNodes[i].occurrence + 1) + ")";
        }
        out += "  e" + std::to_string(i) + " [label=\"" + escaped +
               "\"];\n";
    }
    for (const DependencyEdge &edge : edgeList) {
        out += "  e" + std::to_string(edge.from) + " -> e" +
               std::to_string(edge.to);
        if (edge.strong)
            out += " [style=bold]";
        out += ";\n";
    }
    out += "}\n";
    return out;
}

bool
TaskAutomaton::sameStructure(const TaskAutomaton &other) const
{
    if (eventNodes.size() != other.eventNodes.size() ||
        edgeList.size() != other.edgeList.size()) {
        return false;
    }
    for (std::size_t i = 0; i < eventNodes.size(); ++i) {
        if (eventNodes[i].tpl != other.eventNodes[i].tpl ||
            eventNodes[i].occurrence != other.eventNodes[i].occurrence) {
            return false;
        }
    }
    // Edge order is canonical (sorted by the builder), so compare flat.
    for (std::size_t i = 0; i < edgeList.size(); ++i) {
        if (!(edgeList[i] == other.edgeList[i]))
            return false;
    }
    return true;
}

} // namespace cloudseer::core
