/**
 * @file
 * Model-level refinement of task automata.
 *
 * The paper's §5.6 identifies reorder-induced false dependencies as
 * the main accuracy threat and suggests "manual efforts in refining
 * the task automata once false dependencies are identified". This
 * module automates that loop: the checker records every dependency it
 * had to remove on the fly (recovery cause (d)); edges removed often
 * enough are then weakened in the shared specification itself, so
 * future instances accept both orders without triggering recovery.
 */

#ifndef CLOUDSEER_CORE_AUTOMATON_REFINEMENT_HPP
#define CLOUDSEER_CORE_AUTOMATON_REFINEMENT_HPP

#include <map>
#include <string>
#include <vector>

#include "core/automaton/task_automaton.hpp"

namespace cloudseer::core {

/** Removal tallies per automaton: edge (from, to) -> removal count. */
using RemovalCounts =
    std::map<std::string, std::map<std::pair<int, int>, int>>;

/**
 * Build a refined automaton with the given edges removed, applying
 * the paper's Figure 4 weakening (predecessors of the removed source
 * gain an edge to the target; the source gains edges to the target's
 * successors) and re-reducing transitively.
 *
 * Edges not present in the automaton are ignored.
 */
TaskAutomaton
refineAutomaton(const TaskAutomaton &original,
                const std::vector<std::pair<int, int>> &false_edges);

/**
 * Refine a whole automaton set from checker removal tallies: every
 * edge removed at least `min_removals` times is weakened.
 *
 * @return Refined copies (automata without qualifying removals are
 *         returned unchanged).
 */
std::vector<TaskAutomaton>
refineFromRemovals(const std::vector<TaskAutomaton> &automata,
                   const RemovalCounts &removals, int min_removals);

} // namespace cloudseer::core

#endif // CLOUDSEER_CORE_AUTOMATON_REFINEMENT_HPP
