#include "core/automaton/refinement.hpp"

#include <algorithm>
#include <set>

#include "core/mining/dependency_miner.hpp"

namespace cloudseer::core {

TaskAutomaton
refineAutomaton(const TaskAutomaton &original,
                const std::vector<std::pair<int, int>> &false_edges)
{
    int n = static_cast<int>(original.eventCount());

    // Working adjacency as an edge set.
    std::set<std::pair<int, int>> edges;
    std::set<std::pair<int, int>> strong;
    for (const DependencyEdge &edge : original.edges()) {
        edges.insert({edge.from, edge.to});
        if (edge.strong)
            strong.insert({edge.from, edge.to});
    }

    for (std::pair<int, int> victim : false_edges) {
        if (!edges.erase(victim))
            continue; // not present (already weakened or bogus input)
        strong.erase(victim);
        auto [from, to] = victim;
        // Figure 4 weakening at the model level.
        for (int p = 0; p < n; ++p) {
            if (edges.count({p, from}))
                edges.insert({p, to});
        }
        for (int s = 0; s < n; ++s) {
            if (edges.count({to, s}))
                edges.insert({from, s});
        }
    }

    // Re-reduce: the weakening may have introduced transitive edges.
    std::vector<std::pair<int, int>> order(edges.begin(), edges.end());
    std::vector<std::pair<int, int>> reduced =
        transitiveReduction(n, order);
    std::sort(reduced.begin(), reduced.end());

    std::vector<EventNode> events;
    events.reserve(original.eventCount());
    for (std::size_t e = 0; e < original.eventCount(); ++e)
        events.push_back(original.event(static_cast<int>(e)));

    std::vector<DependencyEdge> built;
    built.reserve(reduced.size());
    for (auto [from, to] : reduced)
        built.push_back({from, to, strong.count({from, to}) > 0});
    return TaskAutomaton(original.name(), std::move(events),
                         std::move(built));
}

std::vector<TaskAutomaton>
refineFromRemovals(const std::vector<TaskAutomaton> &automata,
                   const RemovalCounts &removals, int min_removals)
{
    std::vector<TaskAutomaton> out;
    out.reserve(automata.size());
    for (const TaskAutomaton &automaton : automata) {
        std::vector<std::pair<int, int>> victims;
        auto it = removals.find(automaton.name());
        if (it != removals.end()) {
            for (const auto &[edge, count] : it->second) {
                if (count >= min_removals)
                    victims.push_back(edge);
            }
        }
        if (victims.empty()) {
            out.push_back(automaton);
        } else {
            out.push_back(refineAutomaton(automaton, victims));
        }
    }
    return out;
}

} // namespace cloudseer::core
