/**
 * @file
 * The task automaton (paper §3.3) — CloudSeer's workflow specification.
 *
 * Implementation model: the septuple (Q, Σ, Δ, q0, F, Qf, Qj) is
 * realised as a transitively-reduced DAG over *event nodes*, where an
 * event node is the k-th occurrence of a message template within one
 * task execution. A state of the paper's automaton corresponds to "this
 * event has been consumed"; fork states are nodes with out-degree > 1,
 * join states nodes with in-degree > 1. The bounded self-loop trick the
 * paper uses to let a fork state absorb its concurrent successors is
 * subsumed by token semantics in AutomatonInstance: an instance's
 * current state set is the frontier of consumed events, matching the
 * {q3, q5}-style presentation of the paper's Table 1.
 */

#ifndef CLOUDSEER_CORE_AUTOMATON_TASK_AUTOMATON_HPP
#define CLOUDSEER_CORE_AUTOMATON_TASK_AUTOMATON_HPP

#include <string>
#include <vector>

#include "logging/template_catalog.hpp"

namespace cloudseer::core {

/** One node of the workflow DAG: an occurrence of a template. */
struct EventNode
{
    logging::TemplateId tpl = logging::kInvalidTemplate;
    int occurrence = 0; ///< 0-based occurrence index within an execution
};

/** An edge of the workflow DAG, by event index. */
struct DependencyEdge
{
    int from = 0;
    int to = 0;
    bool strong = false; ///< always-immediately-adjacent in training

    bool operator==(const DependencyEdge &other) const = default;
};

/**
 * Immutable workflow specification for one task. Built by the offline
 * modeling stage; shared (by pointer) among all checking instances.
 */
class TaskAutomaton
{
  public:
    /**
     * @param task_name Task this automaton models ("boot", ...).
     * @param events    Event nodes; index = event id.
     * @param edges     Transitively-reduced dependency edges.
     */
    TaskAutomaton(std::string task_name, std::vector<EventNode> events,
                  std::vector<DependencyEdge> edges);

    /** Task name. */
    const std::string &name() const { return taskName; }

    /** Number of event nodes (the paper's "Msgs" column, Table 2). */
    std::size_t eventCount() const { return eventNodes.size(); }

    /** Number of edges (the paper's "Trans" column, Table 2). */
    std::size_t edgeCount() const { return edgeList.size(); }

    /** Event node by id. */
    const EventNode &event(int id) const;

    /** Direct predecessors of an event. */
    const std::vector<int> &preds(int id) const;

    /** Direct successors of an event. */
    const std::vector<int> &succs(int id) const;

    /** All edges. */
    const std::vector<DependencyEdge> &edges() const { return edgeList; }

    /** Events with no predecessors (enabled in a fresh instance). */
    const std::vector<int> &initialEvents() const { return initials; }

    /** Events with no successors (all must fire before acceptance). */
    const std::vector<int> &finalEvents() const { return finals; }

    /** Fork states: events with out-degree > 1 (the paper's Qf). */
    std::vector<int> forkStates() const;

    /** Join states: events with in-degree > 1 (the paper's Qj). */
    std::vector<int> joinStates() const;

    /** True iff the template is in this automaton's input set Σ. */
    bool containsTemplate(logging::TemplateId tpl) const;

    /** Event ids for a template, in occurrence order (maybe empty). */
    std::vector<int> eventsForTemplate(logging::TemplateId tpl) const;

    /** Graphviz rendering for docs and the mining-explorer example. */
    std::string toDot(const logging::TemplateCatalog &catalog) const;

    /** Structural equality (used by modeling-convergence loops). */
    bool sameStructure(const TaskAutomaton &other) const;

  private:
    std::string taskName;
    std::vector<EventNode> eventNodes;
    std::vector<DependencyEdge> edgeList;
    std::vector<std::vector<int>> predList;
    std::vector<std::vector<int>> succList;
    std::vector<int> initials;
    std::vector<int> finals;
};

} // namespace cloudseer::core

#endif // CLOUDSEER_CORE_AUTOMATON_TASK_AUTOMATON_HPP
