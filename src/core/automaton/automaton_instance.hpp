/**
 * @file
 * A live instance of a task automaton during online checking.
 *
 * Implements the paper's TryInputMessage (Algorithm 1's per-instance
 * primitive) plus the on-the-fly false-dependency removal of §4 /
 * Figure 4. Instances are value types: the brute-force branch of
 * Algorithm 2 copies whole groups of them to track alternative
 * hypotheses.
 */

#ifndef CLOUDSEER_CORE_AUTOMATON_AUTOMATON_INSTANCE_HPP
#define CLOUDSEER_CORE_AUTOMATON_AUTOMATON_INSTANCE_HPP

#include <optional>
#include <vector>

#include "common/binio.hpp"
#include "common/time_util.hpp"
#include "core/automaton/task_automaton.hpp"

namespace cloudseer::core {

/** Mutable checking state over a shared TaskAutomaton. */
class AutomatonInstance
{
  public:
    /** Fresh instance: nothing consumed; initial events enabled. */
    explicit AutomatonInstance(const TaskAutomaton *model);

    /** The specification this instance tracks. */
    const TaskAutomaton &automaton() const { return *spec; }

    /** True iff the next occurrence of tpl is enabled right now. */
    bool canConsume(logging::TemplateId tpl) const;

    /**
     * Consume the next occurrence of tpl (the paper's TryInputMessage).
     *
     * @param now Message-clock stamp recorded against the consumed
     *        event (seer-flight's per-transition timing; 0.0 when the
     *        caller has no clock, e.g. structural replays).
     * @retval true  if a state transition happened.
     * @retval false if tpl is unknown here or its event is not enabled.
     */
    bool consume(logging::TemplateId tpl, common::SimTime now = 0.0);

    /** True iff every event has been consumed (accepting state). */
    bool accepting() const { return consumedCount() == totalEvents(); }

    /** True iff at least one event has been consumed. */
    bool started() const { return consumed_ > 0; }

    /** Number of consumed events. */
    std::size_t consumedCount() const { return consumed_; }

    /** Number of events in the specification. */
    std::size_t totalEvents() const { return done.size(); }

    /**
     * Current state set, paper-style: consumed events that still have
     * unconsumed successors — plus, when nothing is consumed yet, the
     * empty set (the paper's {q0}).
     */
    std::vector<int> frontier() const;

    /**
     * Templates that are enabled next (used in reports: "expected
     * messages"). Each enabled event contributes its template once.
     */
    std::vector<logging::TemplateId> expectedTemplates() const;

    /**
     * False-dependency removal (paper Figure 4). If the next occurrence
     * of tpl exists but is blocked by unconsumed predecessors, remove
     * the violated edges with the paper's weakening (preds of the
     * removed source gain an edge to the event; the event's successors
     * gain an edge from the removed source) and cascade until the event
     * is enabled.
     *
     * @retval true  if the event became enabled (dependencies removed).
     * @retval false if tpl has no pending occurrence here.
     */
    bool removeFalseDependencies(logging::TemplateId tpl);

    /** Count of edges this instance has removed as false. */
    std::size_t
    removedDependencyCount() const
    {
        return removedList.size();
    }

    /** The removed edges, in removal order (event-id pairs). */
    const std::vector<std::pair<int, int>> &
    removedDependencies() const
    {
        return removedList;
    }

    /**
     * State equality for the paper's "equivalent groups" heuristic:
     * same specification and same consumed set.
     */
    bool sameState(const AutomatonInstance &other) const;

    /** Consumed flag per event (the state sameState compares). */
    const std::vector<char> &consumedFlags() const { return done; }

    /**
     * Message-clock stamp per event, set at consumption (0.0 for
     * unconsumed events). The raw material of seer-flight's per-edge
     * timing: elapsed on edge (u, v) is consumeTimes()[v] -
     * consumeTimes()[u] once both fired.
     */
    const std::vector<common::SimTime> &consumeTimes() const
    {
        return when;
    }

    /** Event id taken by the most recent consume(), or -1. */
    int lastConsumedEvent() const { return lastEvent; }

    /**
     * Serialise the mutable checking state (seer-vault, DESIGN.md §13).
     * The specification itself is NOT written — the caller identifies
     * it externally (the checker writes an index into its automaton
     * vector) and reconstructs the instance over the same shared model
     * before calling restoreState.
     */
    void saveState(common::BinWriter &out) const;

    /**
     * Overwrite this instance's state from a saveState image. Fails
     * (stream marked bad, instance unspecified) when the image's event
     * count disagrees with the specification — i.e. when the snapshot
     * was taken against a different model.
     */
    bool restoreState(common::BinReader &in);

    /**
     * Deterministic size estimate for the memory ceiling (seer-vault).
     * Counts only state that survives saveState/restoreState, so a
     * restored checker makes the same eviction decisions as the
     * uninterrupted one.
     */
    std::size_t approxRetainedBytes() const;

  private:
    const TaskAutomaton *spec;
    std::vector<char> done;            ///< consumed flag per event
    std::vector<common::SimTime> when; ///< consume stamp per event
    std::vector<int> remainingPreds;   ///< unconsumed direct preds
    std::size_t consumed_ = 0;
    int lastEvent = -1;
    std::vector<std::pair<int, int>> removedList;

    /**
     * Per-instance adjacency overrides, materialised lazily on the
     * first false-dependency removal (copy-on-write over the shared
     * specification).
     */
    std::optional<std::vector<std::vector<int>>> ownPreds;
    std::optional<std::vector<std::vector<int>>> ownSuccs;

    const std::vector<int> &predsOf(int event) const;
    const std::vector<int> &succsOf(int event) const;
    void materialiseAdjacency();
    int nextPendingEvent(logging::TemplateId tpl) const;
};

} // namespace cloudseer::core

#endif // CLOUDSEER_CORE_AUTOMATON_AUTOMATON_INSTANCE_HPP
