#include "core/automaton/automaton_instance.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cloudseer::core {

AutomatonInstance::AutomatonInstance(const TaskAutomaton *model)
    : spec(model)
{
    CS_ASSERT(model != nullptr, "instance needs a specification");
    done.assign(spec->eventCount(), 0);
    when.assign(spec->eventCount(), 0.0);
    remainingPreds.resize(spec->eventCount());
    for (std::size_t i = 0; i < spec->eventCount(); ++i) {
        remainingPreds[i] =
            static_cast<int>(spec->preds(static_cast<int>(i)).size());
    }
}

const std::vector<int> &
AutomatonInstance::predsOf(int event) const
{
    if (ownPreds)
        return (*ownPreds)[static_cast<std::size_t>(event)];
    return spec->preds(event);
}

const std::vector<int> &
AutomatonInstance::succsOf(int event) const
{
    if (ownSuccs)
        return (*ownSuccs)[static_cast<std::size_t>(event)];
    return spec->succs(event);
}

void
AutomatonInstance::materialiseAdjacency()
{
    if (ownPreds)
        return;
    std::vector<std::vector<int>> preds(spec->eventCount());
    std::vector<std::vector<int>> succs(spec->eventCount());
    for (std::size_t i = 0; i < spec->eventCount(); ++i) {
        preds[i] = spec->preds(static_cast<int>(i));
        succs[i] = spec->succs(static_cast<int>(i));
    }
    ownPreds = std::move(preds);
    ownSuccs = std::move(succs);
}

int
AutomatonInstance::nextPendingEvent(logging::TemplateId tpl) const
{
    int best = -1;
    int best_occurrence = 0;
    for (std::size_t i = 0; i < spec->eventCount(); ++i) {
        if (done[i])
            continue;
        const EventNode &node = spec->event(static_cast<int>(i));
        if (node.tpl != tpl)
            continue;
        if (best == -1 || node.occurrence < best_occurrence) {
            best = static_cast<int>(i);
            best_occurrence = node.occurrence;
        }
    }
    return best;
}

bool
AutomatonInstance::canConsume(logging::TemplateId tpl) const
{
    int event = nextPendingEvent(tpl);
    return event != -1 &&
           remainingPreds[static_cast<std::size_t>(event)] == 0;
}

bool
AutomatonInstance::consume(logging::TemplateId tpl, common::SimTime now)
{
    int event = nextPendingEvent(tpl);
    if (event == -1 ||
        remainingPreds[static_cast<std::size_t>(event)] != 0) {
        return false;
    }
    done[static_cast<std::size_t>(event)] = 1;
    when[static_cast<std::size_t>(event)] = now;
    lastEvent = event;
    ++consumed_;
    for (int succ : succsOf(event))
        --remainingPreds[static_cast<std::size_t>(succ)];
    return true;
}

std::vector<int>
AutomatonInstance::frontier() const
{
    std::vector<int> out;
    for (std::size_t i = 0; i < done.size(); ++i) {
        if (!done[i])
            continue;
        for (int succ : succsOf(static_cast<int>(i))) {
            if (!done[static_cast<std::size_t>(succ)]) {
                out.push_back(static_cast<int>(i));
                break;
            }
        }
    }
    return out;
}

std::vector<logging::TemplateId>
AutomatonInstance::expectedTemplates() const
{
    std::vector<logging::TemplateId> out;
    for (std::size_t i = 0; i < done.size(); ++i) {
        if (done[i] || remainingPreds[i] != 0)
            continue;
        logging::TemplateId tpl = spec->event(static_cast<int>(i)).tpl;
        if (std::find(out.begin(), out.end(), tpl) == out.end())
            out.push_back(tpl);
    }
    return out;
}

bool
AutomatonInstance::removeFalseDependencies(logging::TemplateId tpl)
{
    int event = nextPendingEvent(tpl);
    if (event == -1)
        return false;
    if (remainingPreds[static_cast<std::size_t>(event)] == 0)
        return true; // nothing to remove; already enabled

    materialiseAdjacency();
    auto &preds = *ownPreds;
    auto &succs = *ownSuccs;

    auto eraseFrom = [](std::vector<int> &vec, int value) {
        vec.erase(std::remove(vec.begin(), vec.end(), value), vec.end());
    };
    auto contains = [](const std::vector<int> &vec, int value) {
        return std::find(vec.begin(), vec.end(), value) != vec.end();
    };

    // Cascade: each pass removes one violated edge with the paper's
    // weakening; the weakening may pull in a blocked grand-predecessor,
    // which the next pass removes. Bounded by the edge count squared.
    std::size_t guard =
        spec->eventCount() * spec->eventCount() + spec->eventCount() + 8;
    while (remainingPreds[static_cast<std::size_t>(event)] != 0) {
        CS_ASSERT(guard-- > 0, "false-dependency removal diverged");

        // Find one unconsumed direct predecessor p of the event.
        int blocking = -1;
        for (int p : preds[static_cast<std::size_t>(event)]) {
            if (!done[static_cast<std::size_t>(p)]) {
                blocking = p;
                break;
            }
        }
        CS_ASSERT(blocking != -1,
                  "remainingPreds inconsistent with adjacency");

        // Remove the violated edge (blocking -> event).
        eraseFrom(preds[static_cast<std::size_t>(event)], blocking);
        eraseFrom(succs[static_cast<std::size_t>(blocking)], event);
        --remainingPreds[static_cast<std::size_t>(event)];
        removedList.emplace_back(blocking, event);

        // Weakening 1: predecessors of `blocking` now precede `event`
        // directly (Figure 4's A -> C).
        for (int pp : preds[static_cast<std::size_t>(blocking)]) {
            if (pp == event ||
                contains(preds[static_cast<std::size_t>(event)], pp)) {
                continue;
            }
            preds[static_cast<std::size_t>(event)].push_back(pp);
            succs[static_cast<std::size_t>(pp)].push_back(event);
            if (!done[static_cast<std::size_t>(pp)])
                ++remainingPreds[static_cast<std::size_t>(event)];
        }

        // Weakening 2: `blocking` now precedes the event's successors
        // directly (Figure 4's B -> D).
        for (int s : succs[static_cast<std::size_t>(event)]) {
            if (s == blocking ||
                contains(preds[static_cast<std::size_t>(s)], blocking)) {
                continue;
            }
            preds[static_cast<std::size_t>(s)].push_back(blocking);
            succs[static_cast<std::size_t>(blocking)].push_back(s);
            // `blocking` is unconsumed by construction.
            ++remainingPreds[static_cast<std::size_t>(s)];
        }
    }
    return true;
}

bool
AutomatonInstance::sameState(const AutomatonInstance &other) const
{
    if (spec != other.spec || consumed_ != other.consumed_)
        return false;
    return done == other.done;
}

namespace {

void
writeIntVector(common::BinWriter &out, const std::vector<int> &values)
{
    out.writeU64(values.size());
    for (int v : values)
        out.writeI64(v);
}

bool
readIntVector(common::BinReader &in, std::vector<int> &values)
{
    std::uint64_t count = in.readU64();
    if (!in.ok())
        return false;
    values.clear();
    values.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i)
        values.push_back(static_cast<int>(in.readI64()));
    return in.ok();
}

} // namespace

void
AutomatonInstance::saveState(common::BinWriter &out) const
{
    out.writeU64(done.size());
    for (char flag : done)
        out.writeU8(static_cast<std::uint8_t>(flag));
    for (common::SimTime stamp : when)
        out.writeF64(stamp);
    for (int preds : remainingPreds)
        out.writeI64(preds);
    out.writeU64(consumed_);
    out.writeI64(lastEvent);
    out.writeU64(removedList.size());
    for (const auto &[from, to] : removedList) {
        out.writeI64(from);
        out.writeI64(to);
    }
    out.writeBool(ownPreds.has_value());
    if (ownPreds) {
        for (const std::vector<int> &adj : *ownPreds)
            writeIntVector(out, adj);
        for (const std::vector<int> &adj : *ownSuccs)
            writeIntVector(out, adj);
    }
}

bool
AutomatonInstance::restoreState(common::BinReader &in)
{
    std::uint64_t events = in.readU64();
    if (!in.ok() || events != spec->eventCount()) {
        in.fail();
        return false;
    }
    for (std::size_t i = 0; i < done.size(); ++i)
        done[i] = static_cast<char>(in.readU8());
    for (std::size_t i = 0; i < when.size(); ++i)
        when[i] = in.readF64();
    for (std::size_t i = 0; i < remainingPreds.size(); ++i)
        remainingPreds[i] = static_cast<int>(in.readI64());
    consumed_ = static_cast<std::size_t>(in.readU64());
    lastEvent = static_cast<int>(in.readI64());
    std::uint64_t removed = in.readU64();
    if (!in.ok())
        return false;
    removedList.clear();
    removedList.reserve(static_cast<std::size_t>(removed));
    for (std::uint64_t i = 0; i < removed; ++i) {
        int from = static_cast<int>(in.readI64());
        int to = static_cast<int>(in.readI64());
        removedList.emplace_back(from, to);
    }
    bool has_own = in.readBool();
    if (!in.ok())
        return false;
    if (has_own) {
        std::vector<std::vector<int>> preds(spec->eventCount());
        std::vector<std::vector<int>> succs(spec->eventCount());
        for (std::size_t i = 0; i < spec->eventCount(); ++i) {
            if (!readIntVector(in, preds[i]))
                return false;
        }
        for (std::size_t i = 0; i < spec->eventCount(); ++i) {
            if (!readIntVector(in, succs[i]))
                return false;
        }
        ownPreds = std::move(preds);
        ownSuccs = std::move(succs);
    } else {
        ownPreds.reset();
        ownSuccs.reset();
    }
    return in.ok();
}

std::size_t
AutomatonInstance::approxRetainedBytes() const
{
    std::size_t bytes = sizeof(AutomatonInstance);
    bytes += done.size() *
             (sizeof(char) + sizeof(common::SimTime) + sizeof(int));
    bytes += removedList.size() * sizeof(std::pair<int, int>);
    if (ownPreds) {
        bytes += 2 * spec->eventCount() * sizeof(std::vector<int>);
        for (const std::vector<int> &adj : *ownPreds)
            bytes += adj.size() * sizeof(int);
        for (const std::vector<int> &adj : *ownSuccs)
            bytes += adj.size() * sizeof(int);
    }
    return bytes;
}

} // namespace cloudseer::core
