/**
 * @file
 * The identifier set (paper §2.3, §4): the signature of a growing log
 * sequence, holding every identifier seen in its messages.
 */

#ifndef CLOUDSEER_CORE_CHECKER_IDENTIFIER_SET_HPP
#define CLOUDSEER_CORE_CHECKER_IDENTIFIER_SET_HPP

#include <string>
#include <vector>

namespace cloudseer::core {

/**
 * Sorted-unique string set tuned for the checker's access pattern:
 * small sets (tens of entries), frequent overlap queries against tiny
 * message identifier lists, occasional inserts and unions.
 */
class IdentifierSet
{
  public:
    IdentifierSet() = default;

    /** Construct from a message's identifier values. */
    explicit IdentifierSet(const std::vector<std::string> &values);

    /** Number of identifiers the set shares with the given values. */
    int overlap(const std::vector<std::string> &values) const;

    /**
     * Size of the symmetric difference with the given values — the
     * paper's tie-breaking heuristic ("least difference").
     */
    int symmetricDifference(const std::vector<std::string> &values) const;

    /** Insert message identifiers (the paper's ID ∪ m.Sv). */
    void insert(const std::vector<std::string> &values);

    /** Union with another set. */
    void unionWith(const IdentifierSet &other);

    /** Membership test. */
    bool contains(const std::string &value) const;

    /** Number of identifiers. */
    std::size_t size() const { return items.size(); }

    /** True when empty. */
    bool empty() const { return items.empty(); }

    /** Sorted contents (for tests and reports). */
    const std::vector<std::string> &values() const { return items; }

  private:
    std::vector<std::string> items; // sorted, unique
};

} // namespace cloudseer::core

#endif // CLOUDSEER_CORE_CHECKER_IDENTIFIER_SET_HPP
