/**
 * @file
 * The identifier set (paper §2.3, §4): the signature of a growing log
 * sequence, holding every identifier seen in its messages.
 *
 * Identifiers are interned tokens (logging::IdToken), not strings:
 * overlap and symmetric-difference queries are linear merges of sorted
 * integer vectors. All query methods take a *sorted-unique* token view
 * — the checker dedupes each message's identifier list once up front
 * (dedupSorted) instead of re-scanning for duplicates per set.
 */

#ifndef CLOUDSEER_CORE_CHECKER_IDENTIFIER_SET_HPP
#define CLOUDSEER_CORE_CHECKER_IDENTIFIER_SET_HPP

#include <vector>

#include "logging/identifier_interner.hpp"

namespace cloudseer::core {

/**
 * Sorted-unique token set tuned for the checker's access pattern:
 * small sets (tens of entries), frequent overlap queries against tiny
 * message identifier views, occasional inserts and unions.
 */
class IdentifierSet
{
  public:
    IdentifierSet() = default;

    /** Construct from message tokens (any order, duplicates ok). */
    explicit IdentifierSet(const std::vector<logging::IdToken> &values);

    /** Sorted-unique copy of a message's token list (the view the
     *  query methods expect). */
    static std::vector<logging::IdToken>
    dedupSorted(const std::vector<logging::IdToken> &values);

    /** Number of tokens shared with a sorted-unique view. */
    int overlap(const std::vector<logging::IdToken> &sorted_unique) const;

    /**
     * Size of the symmetric difference with a sorted-unique view — the
     * paper's tie-breaking heuristic ("least difference").
     */
    int symmetricDifference(
        const std::vector<logging::IdToken> &sorted_unique) const;

    /**
     * Insert message tokens (the paper's ID ∪ m.Sv); the view must be
     * sorted-unique.
     *
     * @param added Receives the tokens that were actually new to the
     *        set when non-null (routing-index maintenance).
     */
    void insert(const std::vector<logging::IdToken> &sorted_unique,
                std::vector<logging::IdToken> *added = nullptr);

    /** Union with another set. */
    void unionWith(const IdentifierSet &other);

    /** Membership test. */
    bool contains(logging::IdToken value) const;

    /** Number of tokens. */
    std::size_t size() const { return items.size(); }

    /** True when empty. */
    bool empty() const { return items.empty(); }

    /** Sorted contents (for the routing index, tests, reports). */
    const std::vector<logging::IdToken> &values() const { return items; }

  private:
    std::vector<logging::IdToken> items; // sorted, unique
};

} // namespace cloudseer::core

#endif // CLOUDSEER_CORE_CHECKER_IDENTIFIER_SET_HPP
