/**
 * @file
 * Input/output value types of the interleaved checker.
 */

#ifndef CLOUDSEER_CORE_CHECKER_CHECK_TYPES_HPP
#define CLOUDSEER_CORE_CHECKER_CHECK_TYPES_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/time_util.hpp"
#include "core/checker/automaton_group.hpp"
#include "logging/log_level.hpp"
#include "logging/log_record.hpp"
#include "logging/template_catalog.hpp"

namespace cloudseer::core {

/**
 * Default hypothesis cap for ambiguous forking (Algorithm 2 case 2).
 * Exported as a named constant so tools outside the checker — the
 * seer-lint fan-out bound check in particular — gate against the same
 * number CheckerConfig deploys with.
 */
inline constexpr std::size_t kDefaultMaxForkFanout = 6;

/** One log message, pre-parsed for checking. */
struct CheckMessage
{
    /** Interned template; kInvalidTemplate if never seen in modeling. */
    logging::TemplateId tpl = logging::kInvalidTemplate;

    /** Identifier tokens (IPs, UUIDs) extracted from the body and
     *  interned at extraction time, in order of appearance. */
    std::vector<logging::IdToken> identifiers;

    logging::LogLevel level = logging::LogLevel::Info;
    logging::RecordId record = 0;
    common::SimTime time = 0.0;
};

/** What a checking step may report. */
enum class CheckEventKind
{
    Accepted,      ///< an automaton instance accepted a full sequence
    ErrorDetected, ///< error-message criterion fired
    Timeout,       ///< timeout criterion fired
    LatencyAnomaly, ///< accepted logically but ran over its mined
                    ///< latency budget (seer-flight); finer-grained
                    ///< than the timeout criterion, which only sees
                    ///< executions that stall outright
    Degraded,      ///< monitor shed state under pressure; the group's
                   ///< verdict is unknown, not bad — an operator
                   ///< health signal, never a workflow problem report
};

/**
 * Elapsed time across one automaton transition of a finished
 * execution, compared against the mined budget (seer-flight).
 */
struct EdgeTiming
{
    int from = -1;
    int to = -1;

    /** Templates of the two events, for rendering. */
    logging::TemplateId fromTpl = logging::kInvalidTemplate;
    logging::TemplateId toTpl = logging::kInvalidTemplate;

    /** Seconds between consuming `from` and consuming `to`. */
    double elapsed = 0.0;

    /** Mined per-edge budget; negative when the edge is unprofiled. */
    double budget = -1.0;

    /** True when elapsed strictly exceeded a known budget. */
    bool exceeded = false;
};

/**
 * One checker output: an accepting or erroneous automaton instance
 * with the workflow context the paper promises administrators — the
 * task, consumed messages, the current state frontier, and what was
 * expected next.
 */
struct CheckEvent
{
    CheckEventKind kind = CheckEventKind::Accepted;

    /** Accepted task, or the most likely task for a problem report. */
    std::string taskName;

    /** All candidate tasks the group still tracked. */
    std::vector<std::string> candidateTasks;

    /** Records consumed by the group, oldest first. */
    std::vector<logging::RecordId> records;

    /** Frontier templates — "where the execution is" (paper §2.3). */
    std::vector<logging::TemplateId> frontierTemplates;

    /** Enabled-next templates — "what never arrived" for timeouts. */
    std::vector<logging::TemplateId> expectedTemplates;

    /** Identifier tokens the group's identifier set accumulated, in
     *  insertion order — resolve text via IdentifierInterner. */
    std::vector<logging::IdToken> identifiers;

    /** Message-clock stamp of the group's first consumed message. */
    common::SimTime startTime = 0.0;

    common::SimTime time = 0.0;
    GroupId group = 0;

    /**
     * Per-transition elapsed times vs. mined budgets, populated when a
     * latency policy is installed and the execution finished (Accepted
     * or LatencyAnomaly). Order follows the automaton's edge list.
     */
    std::vector<EdgeTiming> edgeTimings;

    /**
     * Critical branch through forks/joins: event ids from an initial
     * event to the last-consumed one, each step picking the
     * latest-finishing predecessor. Empty unless edgeTimings is set.
     */
    std::vector<int> criticalPath;

    /** Total message-clock duration vs. the task-level budget; budget
     *  is negative when no policy or profile applied. */
    double totalElapsed = 0.0;
    double totalBudget = -1.0;
};

/** Counters describing how the checker earned its result. */
struct CheckerStats
{
    std::uint64_t messages = 0;
    std::uint64_t decisive = 0;          ///< Algorithm 2 case (1)
    std::uint64_t ambiguous = 0;         ///< Algorithm 2 case (2)
    std::uint64_t recoveredPassUnknown = 0;   ///< recovery (a)
    std::uint64_t recoveredNewSequence = 0;   ///< recovery (b)
    std::uint64_t recoveredOtherSet = 0;      ///< recovery (c)
    std::uint64_t recoveredFalseDependency = 0; ///< recovery (d)
    std::uint64_t unmatched = 0;         ///< all recoveries failed
    std::uint64_t errorsReported = 0;
    std::uint64_t timeoutsReported = 0;
    std::uint64_t timeoutsSuppressed = 0;
    std::uint64_t latencyAnomalies = 0;  ///< over-budget acceptances
    std::uint64_t groupsShed = 0;        ///< cap-pressure evictions
    std::uint64_t accepted = 0;
    std::uint64_t consumeAttempts = 0;   ///< group probes (efficiency)

    /** Fraction of routed messages resolved decisively (paper §5.5).
     *  The denominator covers every routed message, including recovery
     *  (a) — an unknown-template message still went through routing
     *  and was resolved (by passing it through), so leaving it out
     *  overstated decisiveness on noisy streams. */
    double
    decisiveFraction() const
    {
        std::uint64_t denom = decisive + ambiguous +
                              recoveredPassUnknown +
                              recoveredNewSequence + recoveredOtherSet +
                              recoveredFalseDependency + unmatched;
        return denom == 0 ? 0.0
                          : static_cast<double>(decisive) /
                                static_cast<double>(denom);
    }
};

} // namespace cloudseer::core

#endif // CLOUDSEER_CORE_CHECKER_CHECK_TYPES_HPP
