#include "core/checker/identifier_set.hpp"

#include <algorithm>

namespace cloudseer::core {

IdentifierSet::IdentifierSet(const std::vector<std::string> &values)
{
    insert(values);
}

bool
IdentifierSet::contains(const std::string &value) const
{
    return std::binary_search(items.begin(), items.end(), value);
}

int
IdentifierSet::overlap(const std::vector<std::string> &values) const
{
    // Count distinct shared identifiers; duplicate values in the
    // message (a UUID mentioned twice) count once.
    int shared = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        bool duplicate = false;
        for (std::size_t j = 0; j < i && !duplicate; ++j)
            duplicate = values[j] == values[i];
        if (!duplicate && contains(values[i]))
            ++shared;
    }
    return shared;
}

int
IdentifierSet::symmetricDifference(
    const std::vector<std::string> &values) const
{
    int distinct_values = 0;
    int shared = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        bool duplicate = false;
        for (std::size_t j = 0; j < i && !duplicate; ++j)
            duplicate = values[j] == values[i];
        if (duplicate)
            continue;
        ++distinct_values;
        if (contains(values[i]))
            ++shared;
    }
    return (static_cast<int>(items.size()) - shared) +
           (distinct_values - shared);
}

void
IdentifierSet::insert(const std::vector<std::string> &values)
{
    for (const std::string &value : values) {
        auto it = std::lower_bound(items.begin(), items.end(), value);
        if (it == items.end() || *it != value)
            items.insert(it, value);
    }
}

void
IdentifierSet::unionWith(const IdentifierSet &other)
{
    insert(other.items);
}

} // namespace cloudseer::core
