#include "core/checker/identifier_set.hpp"

#include <algorithm>

namespace cloudseer::core {

using logging::IdToken;

IdentifierSet::IdentifierSet(const std::vector<IdToken> &values)
    : items(dedupSorted(values))
{
}

std::vector<IdToken>
IdentifierSet::dedupSorted(const std::vector<IdToken> &values)
{
    std::vector<IdToken> out = values;
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

bool
IdentifierSet::contains(IdToken value) const
{
    return std::binary_search(items.begin(), items.end(), value);
}

int
IdentifierSet::overlap(const std::vector<IdToken> &sorted_unique) const
{
    int shared = 0;
    auto a = items.begin();
    auto b = sorted_unique.begin();
    while (a != items.end() && b != sorted_unique.end()) {
        if (*a < *b) {
            ++a;
        } else if (*b < *a) {
            ++b;
        } else {
            ++shared;
            ++a;
            ++b;
        }
    }
    return shared;
}

int
IdentifierSet::symmetricDifference(
    const std::vector<IdToken> &sorted_unique) const
{
    int shared = overlap(sorted_unique);
    return (static_cast<int>(items.size()) - shared) +
           (static_cast<int>(sorted_unique.size()) - shared);
}

void
IdentifierSet::insert(const std::vector<IdToken> &sorted_unique,
                      std::vector<IdToken> *added)
{
    // Single merge pass: collect the genuinely new tokens, then splice
    // them in (both inputs sorted-unique, so the result is too).
    std::vector<IdToken> fresh;
    std::set_difference(sorted_unique.begin(), sorted_unique.end(),
                        items.begin(), items.end(),
                        std::back_inserter(fresh));
    if (!fresh.empty()) {
        std::vector<IdToken> merged;
        merged.reserve(items.size() + fresh.size());
        std::merge(items.begin(), items.end(), fresh.begin(),
                   fresh.end(), std::back_inserter(merged));
        items = std::move(merged);
    }
    if (added != nullptr)
        *added = std::move(fresh);
}

void
IdentifierSet::unionWith(const IdentifierSet &other)
{
    insert(other.items);
}

} // namespace cloudseer::core
