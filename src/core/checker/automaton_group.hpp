/**
 * @file
 * Automaton groups and Algorithm 1 (paper §4, "Checking Individual
 * Sequences").
 *
 * A group tracks one in-flight log sequence. It starts with an
 * instance of every task automaton that can consume the sequence's
 * first message and narrows, message by message, to the instances that
 * consumed everything so far. Consumption is transactional: if no
 * instance can take the message, the group is left untouched and the
 * caller handles the divergence (Algorithm 2's case 3).
 */

#ifndef CLOUDSEER_CORE_CHECKER_AUTOMATON_GROUP_HPP
#define CLOUDSEER_CORE_CHECKER_AUTOMATON_GROUP_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/binio.hpp"
#include "common/time_util.hpp"
#include "core/automaton/automaton_instance.hpp"
#include "core/checker/identifier_set.hpp"
#include "logging/log_record.hpp"

namespace cloudseer::core {

/** Stable group identifier. */
using GroupId = std::uint64_t;

/** Message labels kept for reports. */
struct ConsumedMessage
{
    logging::RecordId record = 0;
    logging::TemplateId tpl = logging::kInvalidTemplate;
    common::SimTime time = 0.0;
};

/**
 * One in-flight sequence hypothesis: a set of candidate automaton
 * instances plus bookkeeping for routing, lineage, and reporting.
 */
class AutomatonGroup
{
  public:
    /**
     * Fresh group over the global automaton set M (Algorithm 1 lines
     * 2-3). Instances are created for every automaton; the first
     * consume() narrows them.
     */
    AutomatonGroup(GroupId id,
                   const std::vector<const TaskAutomaton *> &automata);

    /** Group id. */
    GroupId id() const { return groupId; }

    /** True iff some instance can take the message (no mutation). */
    bool canConsume(logging::TemplateId tpl) const;

    /**
     * Algorithm 1: keep exactly the instances that consume the
     * message; drop the rest. Transactional: when no instance can
     * consume, the group is unchanged and false is returned.
     */
    bool consume(logging::TemplateId tpl, logging::RecordId record,
                 common::SimTime now);

    /** One dependency edge an instance dropped as false. */
    struct RepairedEdge
    {
        const TaskAutomaton *automaton = nullptr;
        int from = 0;
        int to = 0;
    };

    /**
     * Recovery (d): ask started instances to drop the false
     * dependencies blocking tpl, then consume it. Returns true on
     * success; untouched group on failure.
     *
     * @param repaired Receives the dropped edges when non-null (for
     *        the model-refinement feedback loop).
     */
    bool consumeWithRepair(logging::TemplateId tpl,
                           logging::RecordId record, common::SimTime now,
                           std::vector<RepairedEdge> *repaired = nullptr);

    /** Candidate instances still alive. */
    const std::vector<AutomatonInstance> &instances() const
    {
        return candidates;
    }

    /** First accepting instance, or nullptr. */
    const AutomatonInstance *acceptingInstance() const;

    /** Messages consumed so far, oldest first. */
    const std::vector<ConsumedMessage> &history() const
    {
        return consumedMessages;
    }

    /** Time of the last consumed message. */
    common::SimTime lastActivity() const { return lastActivityTime; }

    /** Creation time (first message's time). */
    common::SimTime createdAt() const { return creationTime; }

    /** Candidate task names (for reports on non-accepted groups). */
    std::vector<std::string> candidateTaskNames() const;

    /**
     * Equivalence for the paper's random-selection heuristic: same
     * instance kinds in the same states.
     */
    bool equivalentTo(const AutomatonGroup &other) const;

    /**
     * Canonical state fingerprint: two groups compare equal under
     * equivalentTo() iff their signatures are byte-equal. Cached and
     * recomputed lazily after consumption, so the checker's
     * equivalence-class dedup hashes one string per group instead of
     * running pairwise instance-state comparisons. The encoding is
     * prefix-unambiguous (each instance's specification pointer fixes
     * its state-vector length), so string equality is exact, not a
     * hash.
     */
    const std::string &stateSignature() const;

    // --- lineage (Algorithm 2 case 2 bookkeeping) ---------------------

    /** The group this one was copied from (0 = root hypothesis). */
    GroupId parent() const { return parentId; }

    /** Groups copied from this one. */
    const std::vector<GroupId> &children() const { return childIds; }

    /** Ambiguity set this group belongs to (0 = none). */
    std::uint64_t rivalSet() const { return rivalSetId; }

    /** Set lineage links (checker-internal). */
    void setParent(GroupId parent) { parentId = parent; }
    void addChild(GroupId child) { childIds.push_back(child); }
    void setRivalSet(std::uint64_t set) { rivalSetId = set; }

    /** Zombie groups were already reported; they absorb, not report. */
    bool zombie() const { return isZombie; }
    void markZombie() { isZombie = true; }

    /** Deep copy with a new id (case-2 hypothesis forking). */
    AutomatonGroup cloneAs(GroupId new_id) const;

    /**
     * Rewrite every id this group carries (seer-swarm consolidation
     * and split, DESIGN.md §14). `gid_map` is applied to the group's
     * own id and to all lineage links — including links to groups
     * that were already erased, which is why the sharded merge keeps
     * tombstoned id mappings: a stale parent link must renumber
     * exactly like a live one. `rival_map` covers the ambiguity-set
     * id. Zero (the "none" sentinel) is never mapped.
     */
    template <typename GidFn, typename RivalFn>
    void
    renumberIds(const GidFn &gid_map, const RivalFn &rival_map)
    {
        groupId = gid_map(groupId);
        if (parentId != 0)
            parentId = gid_map(parentId);
        for (GroupId &child : childIds)
            child = gid_map(child);
        if (rivalSetId != 0)
            rivalSetId = rival_map(rivalSetId);
    }

    /**
     * Serialise the group (seer-vault, DESIGN.md §13). Each candidate
     * is written as an index into `automata` plus the instance's
     * mutable state; the signature cache is recomputed lazily after
     * restore, never persisted (it embeds raw specification pointers).
     */
    void
    saveState(common::BinWriter &out,
              const std::vector<const TaskAutomaton *> &automata) const;

    /**
     * Overwrite this group from a saveState image taken against the
     * same automaton vector (same order — the model fingerprint in the
     * checkpoint header guards this). False on any decode failure.
     */
    bool restoreState(common::BinReader &in,
                      const std::vector<const TaskAutomaton *> &automata);

    /**
     * Deterministic size estimate for the memory ceiling. Only counts
     * state that saveState persists, so live and restored checkers
     * agree on eviction decisions.
     */
    std::size_t approxRetainedBytes() const;

  private:
    GroupId groupId;
    std::vector<AutomatonInstance> candidates;
    std::vector<ConsumedMessage> consumedMessages;
    mutable std::string signatureCache;
    mutable bool signatureValid = false;
    common::SimTime lastActivityTime = 0.0;
    common::SimTime creationTime = 0.0;
    bool anyConsumed = false;
    GroupId parentId = 0;
    std::vector<GroupId> childIds;
    std::uint64_t rivalSetId = 0;
    bool isZombie = false;
};

} // namespace cloudseer::core

#endif // CLOUDSEER_CORE_CHECKER_AUTOMATON_GROUP_HPP
