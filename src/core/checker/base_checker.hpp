/**
 * @file
 * Abstract checking-engine interface (seer-swarm, DESIGN.md §14).
 *
 * The monitor drives Algorithm 2 through this interface so the engine
 * behind it is a deployment decision, not a code path: the serial
 * `InterleavedChecker` (the reference implementation) and the
 * multi-core `ShardedChecker` are interchangeable backends selected by
 * `IngestConfig::numShards`, the same one-abstract-checker /
 * several-engines shape simple_CAR uses for its model-checking
 * backends. Every engine must emit bit-identical report streams for
 * the same input stream — the sharded engine's whole design budget is
 * spent preserving that equivalence (see DESIGN.md §14).
 */

#ifndef CLOUDSEER_CORE_CHECKER_BASE_CHECKER_HPP
#define CLOUDSEER_CORE_CHECKER_BASE_CHECKER_HPP

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/binio.hpp"
#include "common/time_util.hpp"
#include "core/automaton/refinement.hpp"
#include "core/checker/check_types.hpp"
#include "core/mining/latency_profile.hpp"
#include "obs/trace.hpp"

namespace cloudseer::core {

class ShardedChecker;

/** The engine contract behind WorkflowMonitor (DESIGN.md §14). */
class BaseChecker
{
  public:
    virtual ~BaseChecker() = default;

    /**
     * Resolves the timeout for a group from the task names it still
     * tracks (per-task timeouts from the estimator, or a constant).
     */
    using TimeoutResolver =
        std::function<double(const std::vector<std::string> &)>;

    /** Process one message (Algorithm 2); see InterleavedChecker. */
    virtual std::vector<CheckEvent> feed(const CheckMessage &message) = 0;

    /** Timeout criterion with a per-group timeout resolver. */
    virtual std::vector<CheckEvent>
    sweepTimeouts(common::SimTime now, const TimeoutResolver &resolver) = 0;

    /** Load shedding to a group-count cap (Degraded reports). */
    virtual std::vector<CheckEvent> shedToCap(std::size_t cap,
                                              common::SimTime now) = 0;

    /** Load shedding to a byte ceiling (Degraded reports). */
    virtual std::vector<CheckEvent> shedToMemory(std::size_t max_bytes,
                                                 common::SimTime now) = 0;

    /** Deterministic size estimate of retained state. */
    virtual std::size_t approxRetainedBytes() const = 0;

    /**
     * End of stream: every remaining unaccepted group is reported as
     * a timeout and the state is cleared.
     */
    virtual std::vector<CheckEvent> finish(common::SimTime now) = 0;

    /** Counters (a pipelined engine's view is exact after a flush). */
    virtual const CheckerStats &stats() const = 0;

    /** Groups currently tracked. */
    virtual std::size_t activeGroups() const = 0;

    /** Identifier sets currently tracked. */
    virtual std::size_t activeIdentifierSets() const = 0;

    /** Recovery (d) removal tallies (model-refinement feedback). */
    virtual const RemovalCounts &dependencyRemovals() const = 0;

    /**
     * Serialise the full checking state (seer-vault, DESIGN.md §13).
     * Every engine writes the *same* serial-state image — a sharded
     * engine quiesces and consolidates first — so checkpoints restore
     * into either engine interchangeably.
     */
    virtual void saveState(common::BinWriter &out) = 0;

    /** Restore a saveState image (see InterleavedChecker). */
    virtual bool restoreState(common::BinReader &in) = 0;

    /** Attach an execution tracer (null = null sink). */
    virtual void setTracer(obs::ExecutionTracer *tracer) = 0;

    /** Install the latency-anomaly criterion (seer-flight). */
    virtual void
    setLatencyPolicy(const std::vector<LatencyProfile> &profiles,
                     const LatencyCheckConfig &policy = {}) = 0;

    /**
     * Install the seer-prove certified-unambiguous template bitmap
     * (DESIGN.md §15), indexed by TemplateId. Messages of certified
     * templates take provably equivalent shortcut paths through
     * Algorithm 2's selection, rekeying, and lineage pruning; reports
     * stay bit-identical either way. An empty bitmap (the default)
     * disables the fast path entirely.
     */
    virtual void setCertifiedTemplates(std::vector<char> certified) = 0;

    /** Stable engine name for logs and exposition. */
    virtual const char *engineName() const = 0;

    /**
     * Engine-kind probe: non-null when this engine is the sharded
     * one, giving the monitor access to the pipelined submit/drain
     * surface without a dynamic_cast per record.
     */
    virtual ShardedChecker *sharded() { return nullptr; }
};

} // namespace cloudseer::core

#endif // CLOUDSEER_CORE_CHECKER_BASE_CHECKER_HPP
