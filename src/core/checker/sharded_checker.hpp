/**
 * @file
 * seer-swarm: the sharded multi-core checking engine (DESIGN.md §14).
 *
 * CloudSeer's Algorithm 2 is partitionable by identifier affinity:
 * two automaton groups that never share an identifier token can never
 * compete for the same message, so they can be checked on different
 * cores without any coordination. This engine exploits that:
 *
 *  - A router (the caller's thread) maintains a union-find over
 *    interned identifier tokens. Each connected component of tokens —
 *    an *identifier component* — is homed on one of N worker shards,
 *    assigned round-robin at component birth. Every message routes to
 *    the home of its tokens' component.
 *  - Each shard owns a full serial InterleavedChecker holding exactly
 *    the groups of its components, fed through a bounded SPSC ring
 *    (backpressure = the router helps drain results while it waits).
 *  - A merge stage (also the caller's thread) reassembles results in
 *    stream order and renumbers shard-local group/set ids into the
 *    exact id sequence the serial engine would have allocated, so
 *    report streams are **bit-identical** to the serial engine —
 *    including the group ids inside every report.
 *  - Messages that cannot be partitioned — an empty identifier view
 *    (serial scans every live group) or a view bridging components
 *    homed on different shards — take the slow-path reconciler: the
 *    pipeline quiesces, all shard state is consolidated into one
 *    serial-state checker (this is literally the serial checker — the
 *    message is fed on it for exact semantics), and the state is then
 *    re-split across shards. Rare by construction in identifier-rich
 *    streams; counted in ShardMetrics.
 *
 * Why renumbering works: within one shard, groups are created in the
 * same relative order as the serial engine creates them (a message's
 * creations happen atomically at its stream position, and every
 * message of a component routes to the component's single home), so
 * the map "k-th id allocated by shard s" → "id serial allocated at
 * the same stream position" is order-preserving. Every gid comparison
 * Algorithm 2 makes (candidate ordering, fork-fanout tie-breaks,
 * equivalence-class pools) only ever compares groups of one
 * component, so shard-local order agrees with serial order wherever
 * it is observable.
 */

#ifndef CLOUDSEER_CORE_CHECKER_SHARDED_CHECKER_HPP
#define CLOUDSEER_CORE_CHECKER_SHARDED_CHECKER_HPP

#include <cstdint>
#include <deque>
#include <memory>
#include <semaphore>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/spsc_ring.hpp"
#include "core/checker/interleaved_checker.hpp"
#include "core/monitor/timeout_estimator.hpp"
#include "obs/metrics.hpp"

namespace cloudseer::core {

/** What to do when a message cannot be partitioned. */
enum class ReconcilePolicy : std::uint8_t
{
    /** Quiesce, run the message serially on consolidated state, and
     *  re-split (the default; exact and always available). */
    Consolidate,

    /** Assert instead. For workloads that promise identifier-disjoint
     *  executions (benches, property tests), a reconcile is a routing
     *  bug — fail loudly rather than silently serialize. */
    Forbid,
};

/** seer-swarm deployment knobs. */
struct ShardedCheckerConfig
{
    /** Worker shards (each owns one serial checker + one thread). */
    std::size_t numShards = 2;

    /** Capacity of each SPSC ring (input and output alike). */
    std::size_t ringCapacity = 512;

    ReconcilePolicy reconcilePolicy = ReconcilePolicy::Consolidate;
};

/** Per-shard and reconciler counters (seer-scope, DESIGN.md §14). */
struct ShardMetrics
{
    struct PerShard
    {
        std::uint64_t messagesRouted = 0; ///< feeds homed here
        std::uint64_t inputRingPeak = 0;  ///< deepest input ring seen
        std::uint64_t outputRingPeak = 0; ///< deepest output ring seen
        std::uint64_t activeGroups = 0;   ///< groups after last result
    };
    std::vector<PerShard> shards;

    std::uint64_t reconcilerHits = 0;   ///< consolidate+resplit cycles
    std::uint64_t crossShardUnions = 0; ///< views bridging two homes
    std::uint64_t globalFallbacks = 0;  ///< empty-view serialized feeds
    std::uint64_t quiesces = 0;         ///< pipeline barrier count

    /**
     * Largest shard's routed share over the ideal share (1.0 =
     * perfectly balanced, numShards = everything on one shard).
     */
    double imbalance() const;
};

/**
 * The sharded engine. Bit-identical to InterleavedChecker on every
 * stream (the report sequences match byte for byte); faster on
 * identifier-disjoint streams by roughly the shard count. Not
 * thread-safe for concurrent callers — one thread drives submit /
 * drain / the BaseChecker surface (the monitor and benches are
 * single-threaded drivers; the parallelism lives behind the rings).
 */
class ShardedChecker final : public BaseChecker
{
  public:
    ShardedChecker(const CheckerConfig &config,
                   std::vector<const TaskAutomaton *> automata,
                   const ShardedCheckerConfig &swarm);
    ~ShardedChecker() override;

    ShardedChecker(const ShardedChecker &) = delete;
    ShardedChecker &operator=(const ShardedChecker &) = delete;

    // --- pipelined surface (the fast path) ----------------------------

    /**
     * Route one message for checking (Algorithm 2, no timeout sweep —
     * the checker-level contract benches drive). Results surface via
     * drainReady()/flush() in stream order.
     */
    void submitFeed(const CheckMessage &message);

    /**
     * Route one monitor step: a timeout sweep at `now` on *every*
     * shard (the serial monitor sweeps all groups before each feed)
     * followed by the feed on the owning shard. Results surface via
     * drainReady()/flush() in stream order.
     */
    void submitStep(const CheckMessage &message, common::SimTime now);

    /**
     * Route a sweep-only step: every shard runs the timeout criterion
     * at `now`, no message is fed (the monitor path for records the
     * dedup guard suppresses — serial sweeps before it suppresses).
     */
    void submitSweep(common::SimTime now);

    /** Move every result that is ready, in stream order (non-blocking). */
    void drainReady(std::vector<CheckEvent> &out);

    /** Complete all submitted work, then drain everything (blocking). */
    void flush(std::vector<CheckEvent> &out);

    /**
     * Install the timeout policy submitStep sweeps resolve against.
     * Each shard gets its own copy (resolution tallies are summed in
     * timeoutResolutionCounts()). Call before the first submit.
     */
    void setTimeoutPolicy(const TimeoutPolicy &policy);

    /** Summed (resolutions, defaultFallbacks) across shards. */
    std::pair<std::uint64_t, std::uint64_t>
    timeoutResolutionCounts() const;

    /** Router / ring / reconciler counters (exact after a flush). */
    const ShardMetrics &metrics() const { return shardMetrics; }

    std::size_t shardCount() const { return shards.size(); }

    /**
     * seer-pulse (DESIGN.md §16): give every shard a check-stage
     * latency histogram sampling one in `sample_every` work items
     * (0 = off, the default). Call before the first submit: the
     * worker reads the pointer and cadence without further
     * synchronisation (ring push/pop provides the happens-before),
     * and the caller must only read the histograms after a flush.
     */
    void enableStageTimers(std::size_t sample_every);

    /** Shard `idx`'s check-stage histogram; null when timers are off. */
    const obs::Histogram *shardCheckLatency(std::size_t idx) const;

    /**
     * Quiesce and cross-check every shard's routing structures
     * (test-only; resumes the pipeline before returning).
     */
    bool indexesConsistent();

    // --- BaseChecker surface ------------------------------------------
    // The synchronous calls are exact but heavyweight: each one
    // flushes the pipeline and (except feed) consolidates to serial
    // state, delegates, and re-splits. They exist so the sharded
    // engine is a drop-in BaseChecker; hot paths use submit/drain.

    std::vector<CheckEvent> feed(const CheckMessage &message) override;

    std::vector<CheckEvent>
    sweepTimeouts(common::SimTime now,
                  const TimeoutResolver &resolver) override;

    std::vector<CheckEvent> shedToCap(std::size_t cap,
                                      common::SimTime now) override;

    std::vector<CheckEvent> shedToMemory(std::size_t max_bytes,
                                         common::SimTime now) override;

    std::size_t approxRetainedBytes() const override;

    std::vector<CheckEvent> finish(common::SimTime now) override;

    const CheckerStats &stats() const override;

    std::size_t activeGroups() const override;

    std::size_t activeIdentifierSets() const override;

    const RemovalCounts &dependencyRemovals() const override;

    void saveState(common::BinWriter &out) override;

    bool restoreState(common::BinReader &in) override;

    /** Tracing is a serial-engine feature; only the null sink is
     *  accepted (the monitor selects the serial engine when tracing
     *  is enabled). */
    void setTracer(obs::ExecutionTracer *tracer) override;

    void setLatencyPolicy(const std::vector<LatencyProfile> &profiles,
                          const LatencyCheckConfig &policy = {}) override;

    void setCertifiedTemplates(std::vector<char> certified) override;

    const char *engineName() const override { return "sharded"; }

    ShardedChecker *sharded() override { return this; }

  private:
    /** Work-item kinds flowing router → shard. */
    enum class ShardOp : std::uint8_t
    {
        Feed, ///< feed the message (no sweep) — bench fast path
        Step, ///< sweep at `now`, then feed — monitor path (owner)
        Tick, ///< sweep at `now` only — monitor path (non-owners)
        Park, ///< ack, then block until resumed (quiesce protocol)
        Stop, ///< exit the worker thread
    };

    struct ShardIn
    {
        std::uint64_t seq = 0;
        ShardOp op = ShardOp::Feed;
        common::SimTime now = 0.0;
        double timeoutFloor = 0.0; ///< broadcast global max timeout
        CheckMessage msg;
    };

    struct ShardOut
    {
        std::uint64_t seq = 0;
        bool parkAck = false;
        std::uint32_t groupBirths = 0; ///< ids allocated by this op
        std::uint32_t setBirths = 0;
        std::uint32_t rivalBirths = 0;
        double localMaxTimeout = 0.0;
        std::uint64_t groupsNow = 0;
        std::uint64_t setsNow = 0;
        std::uint64_t resolutions = 0;
        std::uint64_t fallbacks = 0;
        CheckerStats stats;
        std::vector<CheckEvent> sweepEvents; ///< ascending local gid
        std::vector<CheckEvent> feedEvents;
    };

    /** One worker shard. */
    struct ShardState
    {
        explicit ShardState(std::size_t ring_capacity)
            : in(ring_capacity), out(ring_capacity)
        {
        }

        std::unique_ptr<InterleavedChecker> checker;
        common::SpscRing<ShardIn> in;
        common::SpscRing<ShardOut> out;
        std::thread worker;
        std::binary_semaphore resume{0};
        bool stopRequested = false; ///< written before resume.release
        TimeoutPolicy policy;       ///< this shard's private copy

        // Birth scratch rebound to the checker at every op, so the
        // checker object can be swapped (restore) while parked.
        std::vector<GroupId> gidBirthLog;
        std::vector<std::uint64_t> setBirthLog;
        std::uint64_t rivalBirthCount = 0;

        // seer-pulse stage timer (set before the worker's first op;
        // the worker is the only writer of the histogram afterwards).
        std::unique_ptr<obs::Histogram> checkLatency;
        std::size_t stageEvery = 0;
        std::uint64_t opsSeen = 0; ///< worker-private sample counter
    };

    /**
     * Merge-side view of one shard's id space. Shard-local ids are
     * dense (1, 2, 3, …), so local→serial maps are plain vectors
     * indexed by local id (slot 0 unused). Entries are never erased —
     * a stale lineage link must renumber like a live one — so the
     * vectors grow with ids-ever-allocated until the next re-split
     * resets them to the live population (every reconcile, checkpoint,
     * and sync operation re-splits, bounding growth in practice).
     */
    struct MergeShard
    {
        std::vector<std::uint64_t> gidL2G{0};
        std::vector<std::uint64_t> setL2G{0};
        std::vector<std::uint64_t> rivalL2G{0};

        /** Local ids ≥ kStaleBase (stale lineage links assigned at
         *  split time) → their serial ids. */
        std::unordered_map<std::uint64_t, std::uint64_t> staleL2G;

        CheckerStats lastStats;
        std::uint64_t groupsNow = 0;
        std::uint64_t setsNow = 0;
        std::uint64_t resolutions = 0;
        std::uint64_t fallbacks = 0;
    };

    /** One submitted stream position awaiting its results. */
    struct Pending
    {
        bool step = false;      ///< true: needs one result per shard
        std::uint8_t owner = 0; ///< shard that feeds the message
        std::uint32_t seen = 0;
        ShardOut primary;            ///< the owner's result
        std::vector<ShardOut> ticks; ///< step mode only, by shard
    };

    /** Local ids at or above this value are stale-lineage sentinels:
     *  they never collide with live dense ids and never resolve in
     *  group lookups, mirroring serial's never-reused id semantics. */
    static constexpr std::uint64_t kStaleBase = 1ULL << 63;

    enum class PipelineState : std::uint8_t
    {
        Running,
        Parked,
    };

    CheckerConfig config;
    std::vector<const TaskAutomaton *> automatonSet;
    ShardedCheckerConfig swarm;

    /** Router's copy of the template alphabet (see templateKnown). */
    std::vector<char> knownTemplates;

    /** Timeout policy used by reconciler-path sweeps (shards hold
     *  their own zeroed copies; see setTimeoutPolicy). */
    TimeoutPolicy masterPolicy;

    std::vector<std::unique_ptr<ShardState>> shards;
    std::vector<MergeShard> mergeShards;
    PipelineState state = PipelineState::Running;

    // Serial id allocators mirrored by the merge stage.
    std::uint64_t serialNextGroupId = 1;
    std::uint64_t serialNextIdSetId = 1;
    std::uint64_t serialNextRivalSet = 1;
    double globalMaxTimeout = 0.0;

    // Router: union-find over identifier tokens, home per root.
    std::vector<std::uint32_t> dsuParent;
    std::vector<std::int32_t> dsuHome;
    std::size_t roundRobinNext = 0;

    // In-order reassembly.
    std::uint64_t nextSeq = 0;
    std::uint64_t windowBase = 0;
    std::deque<Pending> window;
    std::vector<CheckEvent> readyEvents;

    ShardMetrics shardMetrics;

    // Retained latency policy so restored/recreated shard checkers
    // can be re-armed.
    std::vector<LatencyProfile> latProfiles;
    LatencyCheckConfig latConfig;

    // Retained seer-prove certified-template bitmap (same lifecycle
    // as the latency policy: configuration, not checkpointed state).
    std::vector<char> certBits;

    // Aggregation caches for the const BaseChecker getters.
    mutable CheckerStats statsCache;
    mutable RemovalCounts removalsCache;

    void shardMain(std::size_t idx);

    bool templateKnown(logging::TemplateId tpl) const;

    // Router helpers.
    std::uint32_t dsuFind(std::uint32_t token);
    void dsuEnsure(std::uint32_t token);
    /** Shard for this view, unioning tokens; <0 = needs reconcile. */
    int routeShard(const std::vector<logging::IdToken> &view,
                   bool template_known);
    void pushToShard(std::size_t shard, ShardIn &&item);

    // Merge helpers.
    void pumpOutputs();
    void emitReady();
    void processSeq(Pending &pending);
    void rewriteEvents(std::size_t shard, std::vector<CheckEvent> &events);
    std::uint64_t mapLocalGid(std::size_t shard, std::uint64_t gid) const;

    // Quiesce / reconcile protocol (caller thread).
    void flushInternal();
    void quiesce();
    void resumeShards();
    /** Consolidate all shard state into shards[0] (serial state). */
    InterleavedChecker &consolidate();
    /** Distribute shards[0]'s serial state across all shards. */
    void resplit();
    /** Feed one unpartitionable message on consolidated state. */
    std::vector<CheckEvent> reconcileFeed(const CheckMessage &message,
                                          bool step,
                                          common::SimTime now);
    /** Run `op` on consolidated serial state, then re-split. */
    template <typename Op>
    std::vector<CheckEvent> consolidatedOp(Op &&op);
};

} // namespace cloudseer::core

#endif // CLOUDSEER_CORE_CHECKER_SHARDED_CHECKER_HPP
