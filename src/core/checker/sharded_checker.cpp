#include "core/checker/sharded_checker.hpp"

#include <algorithm>
#include <chrono>
#include <set>

#include "common/error.hpp"
#include "common/thread_annotations.hpp"
#include "obs/profiler.hpp"
#include "core/checker/identifier_set.hpp"

namespace cloudseer::core {

using logging::IdToken;

namespace {

/** Field-wise counter merge (consolidation and stats aggregation). */
void
accumulateStats(CheckerStats &into, const CheckerStats &add)
{
    into.messages += add.messages;
    into.decisive += add.decisive;
    into.ambiguous += add.ambiguous;
    into.recoveredPassUnknown += add.recoveredPassUnknown;
    into.recoveredNewSequence += add.recoveredNewSequence;
    into.recoveredOtherSet += add.recoveredOtherSet;
    into.recoveredFalseDependency += add.recoveredFalseDependency;
    into.unmatched += add.unmatched;
    into.errorsReported += add.errorsReported;
    into.timeoutsReported += add.timeoutsReported;
    into.timeoutsSuppressed += add.timeoutsSuppressed;
    into.latencyAnomalies += add.latencyAnomalies;
    into.groupsShed += add.groupsShed;
    into.accepted += add.accepted;
    into.consumeAttempts += add.consumeAttempts;
}

} // namespace

double
ShardMetrics::imbalance() const
{
    if (shards.empty())
        return 1.0;
    std::uint64_t total = 0;
    std::uint64_t largest = 0;
    for (const PerShard &shard : shards) {
        total += shard.messagesRouted;
        largest = std::max(largest, shard.messagesRouted);
    }
    if (total == 0)
        return 1.0;
    double mean =
        static_cast<double>(total) / static_cast<double>(shards.size());
    return static_cast<double>(largest) / mean;
}

ShardedChecker::ShardedChecker(
    const CheckerConfig &config_,
    std::vector<const TaskAutomaton *> automata,
    const ShardedCheckerConfig &swarm_)
    : config(config_), automatonSet(std::move(automata)), swarm(swarm_)
{
    CS_ASSERT(swarm.numShards >= 1, "sharded checker needs >= 1 shard");
    CS_ASSERT(swarm.ringCapacity >= 1, "shard rings need capacity >= 1");

    // Affinity routing IS identifier routing: with it off the serial
    // engine brute-forces every live group on every message, which no
    // partition can reproduce without serializing everything.
    CS_ASSERT(config.identifierRouting || swarm.numShards == 1,
              "sharded checking requires identifier routing");

    // The router needs its own copy of the template alphabet: messages
    // outside every automaton's Σ never touch partitioned state.
    for (const TaskAutomaton *automaton : automatonSet) {
        for (std::size_t e = 0; e < automaton->eventCount(); ++e) {
            logging::TemplateId tpl =
                automaton->event(static_cast<int>(e)).tpl;
            if (tpl >= knownTemplates.size())
                knownTemplates.resize(tpl + 1, 0);
            knownTemplates[tpl] = 1;
        }
    }

    mergeShards.resize(swarm.numShards);
    shardMetrics.shards.resize(swarm.numShards);
    shards.reserve(swarm.numShards);
    for (std::size_t i = 0; i < swarm.numShards; ++i) {
        shards.push_back(
            std::make_unique<ShardState>(swarm.ringCapacity));
        shards[i]->checker =
            std::make_unique<InterleavedChecker>(config, automatonSet);
    }
    // Spawn only after the shard vector is fully built: workers index
    // into it and a growing vector would move state under them.
    for (std::size_t i = 0; i < swarm.numShards; ++i)
        shards[i]->worker =
            std::thread(&ShardedChecker::shardMain, this, i);
}

ShardedChecker::~ShardedChecker()
{
    if (state == PipelineState::Running) {
        flushInternal();
        for (auto &shard : shards) {
            ShardIn stop;
            stop.op = ShardOp::Stop;
            common::RoleGuard produce(shard->in.producerRole);
            shard->in.push(std::move(stop));
        }
    } else {
        for (auto &shard : shards) {
            shard->stopRequested = true;
            shard->resume.release();
        }
    }
    for (auto &shard : shards) {
        if (shard->worker.joinable())
            shard->worker.join();
    }
}

bool
ShardedChecker::templateKnown(logging::TemplateId tpl) const
{
    return tpl != logging::kInvalidTemplate &&
           tpl < knownTemplates.size() && knownTemplates[tpl] != 0;
}

void
ShardedChecker::enableStageTimers(std::size_t sample_every)
{
    // Pre-first-submit contract (see header): the worker only reads
    // these fields after popping a work item pushed later, so the
    // ring's release/acquire pair orders this write before that read.
    for (auto &shard : shards) {
        shard->stageEvery = sample_every;
        shard->opsSeen = 0;
        if (sample_every > 0 && shard->checkLatency == nullptr)
            shard->checkLatency =
                std::make_unique<obs::Histogram>(-1, 6);
    }
}

const obs::Histogram *
ShardedChecker::shardCheckLatency(std::size_t idx) const
{
    return idx < shards.size() ? shards[idx]->checkLatency.get()
                               : nullptr;
}

// --- shard worker ------------------------------------------------------

void
ShardedChecker::shardMain(std::size_t idx)
{
    ShardState &s = *shards[idx];

    // This thread is the sole consumer of its input ring and the sole
    // producer of its output ring, for the worker's whole lifetime.
    common::RoleGuard consumeIn(s.in.consumerRole);
    common::RoleGuard produceOut(s.out.producerRole);

    // seer-probe: cache this thread's stack bounds once so in-handler
    // captures can walk frame pointers instead of unwinding.
    obs::prepareThreadForProfiling();

    BaseChecker::TimeoutResolver resolver =
        [&s](const std::vector<std::string> &tasks) {
            return s.policy.timeoutForCandidates(tasks);
        };

    ShardIn item;
    for (;;) {
        s.in.pop(item);
        if (item.op == ShardOp::Stop)
            return;
        if (item.op == ShardOp::Park) {
            ShardOut ack;
            ack.parkAck = true;
            s.out.push(std::move(ack));
            s.resume.acquire();
            if (s.stopRequested)
                return;
            continue;
        }

        // seer-probe: the whole op — sweep, feed, stats assembly —
        // samples into this shard's check lane.
        obs::StageScope profScope(obs::ProfStage::ShardCheck,
                                  static_cast<unsigned>(idx));
        ShardOut out;
        out.seq = item.seq;
        s.gidBirthLog.clear();
        s.setBirthLog.clear();
        s.rivalBirthCount = 0;

        // Rebound every op (not once at startup) so the caller may
        // clear or swap the checker while the shard is parked.
        InterleavedChecker &checker = *s.checker;
        checker.setBirthLogs(&s.gidBirthLog, &s.setBirthLog,
                             &s.rivalBirthCount);
        checker.noteTimeoutFloor(item.timeoutFloor);

        // seer-pulse: sampled check-stage timing around the actual
        // checking work (sweep + feed), one in stageEvery ops.
        const bool timed =
            s.stageEvery > 0 && s.opsSeen++ % s.stageEvery == 0;
        std::chrono::steady_clock::time_point before;
        if (timed)
            before = std::chrono::steady_clock::now();

        if (item.op != ShardOp::Feed)
            out.sweepEvents = checker.sweepTimeouts(item.now, resolver);
        if (item.op != ShardOp::Tick)
            out.feedEvents = checker.feed(item.msg);

        if (timed) {
            s.checkLatency->record(
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - before)
                    .count());
        }

        out.groupBirths = static_cast<std::uint32_t>(s.gidBirthLog.size());
        out.setBirths = static_cast<std::uint32_t>(s.setBirthLog.size());
        out.rivalBirths = static_cast<std::uint32_t>(s.rivalBirthCount);
        out.localMaxTimeout = checker.maxResolvedTimeout;
        out.groupsNow = checker.activeGroups();
        out.setsNow = checker.activeIdentifierSets();
        out.resolutions = s.policy.resolutions;
        out.fallbacks = s.policy.defaultFallbacks;
        out.stats = checker.stats();
        s.out.push(std::move(out));
    }
}

// --- router ------------------------------------------------------------

void
ShardedChecker::dsuEnsure(std::uint32_t token)
{
    if (token < dsuParent.size())
        return;
    std::size_t old = dsuParent.size();
    dsuParent.resize(token + 1);
    dsuHome.resize(token + 1, -1);
    for (std::size_t i = old; i < dsuParent.size(); ++i)
        dsuParent[i] = static_cast<std::uint32_t>(i);
}

std::uint32_t
ShardedChecker::dsuFind(std::uint32_t token)
{
    while (dsuParent[token] != token) {
        dsuParent[token] = dsuParent[dsuParent[token]]; // path halving
        token = dsuParent[token];
    }
    return token;
}

int
ShardedChecker::routeShard(const std::vector<IdToken> &view,
                           bool template_known)
{
    if (view.empty()) {
        // Known template + empty view: serial scans every live group —
        // unpartitionable, reconcile. Unknown template + empty view:
        // state-free (pass-through or an unassociated error report) —
        // any shard works; spread them by stream position.
        if (template_known)
            return -1;
        return static_cast<int>(nextSeq % shards.size());
    }

    int home = -1;
    for (IdToken token : view) {
        dsuEnsure(token);
        std::int32_t h = dsuHome[dsuFind(token)];
        if (h < 0)
            continue;
        if (home >= 0 && h != home)
            return -1; // bridges two shards: reconcile
        home = h;
    }

    // Union the view into one component (colocating more than strictly
    // necessary is always exact — the cost is balance, not identity).
    std::uint32_t root = dsuFind(view.front());
    for (std::size_t i = 1; i < view.size(); ++i) {
        std::uint32_t other = dsuFind(view[i]);
        if (other != root)
            dsuParent[other] = root;
    }
    root = dsuFind(root);

    if (home < 0) {
        home = static_cast<int>(roundRobinNext % shards.size());
        ++roundRobinNext;
    }
    dsuHome[root] = home;
    return home;
}

void
ShardedChecker::pushToShard(std::size_t shard, ShardIn &&item)
{
    auto &ring = shards[shard]->in;
    common::RoleGuard produce(ring.producerRole);
    while (!ring.tryPush(std::move(item))) {
        // Backpressure: help drain results instead of busy-waiting —
        // a blocked router would deadlock against a shard blocked on
        // its own full output ring.
        pumpOutputs();
        emitReady();
        std::this_thread::yield();
    }
    ShardMetrics::PerShard &m = shardMetrics.shards[shard];
    std::uint64_t depth = ring.size();
    if (depth > m.inputRingPeak)
        m.inputRingPeak = depth;
}

// --- submit / drain ----------------------------------------------------

void
ShardedChecker::submitFeed(const CheckMessage &message)
{
    CS_ASSERT(state == PipelineState::Running,
              "submit on a parked pipeline");
    const std::vector<IdToken> view =
        IdentifierSet::dedupSorted(message.identifiers);
    int home = routeShard(view, templateKnown(message.tpl));
    if (home < 0) {
        if (view.empty())
            ++shardMetrics.globalFallbacks;
        else
            ++shardMetrics.crossShardUnions;
        std::vector<CheckEvent> events =
            reconcileFeed(message, false, message.time);
        readyEvents.insert(readyEvents.end(),
                           std::make_move_iterator(events.begin()),
                           std::make_move_iterator(events.end()));
        return;
    }

    Pending pending;
    pending.step = false;
    pending.owner = static_cast<std::uint8_t>(home);
    window.push_back(std::move(pending));

    ShardIn in;
    in.seq = nextSeq++;
    in.op = ShardOp::Feed;
    in.now = message.time;
    in.timeoutFloor = globalMaxTimeout;
    in.msg = message;
    ++shardMetrics.shards[static_cast<std::size_t>(home)].messagesRouted;
    pushToShard(static_cast<std::size_t>(home), std::move(in));

    pumpOutputs();
    emitReady();
}

void
ShardedChecker::submitStep(const CheckMessage &message,
                           common::SimTime now)
{
    CS_ASSERT(state == PipelineState::Running,
              "submit on a parked pipeline");
    const std::vector<IdToken> view =
        IdentifierSet::dedupSorted(message.identifiers);
    int home = routeShard(view, templateKnown(message.tpl));
    if (home < 0) {
        if (view.empty())
            ++shardMetrics.globalFallbacks;
        else
            ++shardMetrics.crossShardUnions;
        std::vector<CheckEvent> events = reconcileFeed(message, true, now);
        readyEvents.insert(readyEvents.end(),
                           std::make_move_iterator(events.begin()),
                           std::make_move_iterator(events.end()));
        return;
    }

    Pending pending;
    pending.step = true;
    pending.owner = static_cast<std::uint8_t>(home);
    pending.ticks.resize(shards.size());
    window.push_back(std::move(pending));

    // Broadcast the tick: serial sweeps every live group before each
    // feed, so every shard sweeps its partition at this record's time.
    std::uint64_t seq = nextSeq++;
    for (std::size_t s = 0; s < shards.size(); ++s) {
        ShardIn in;
        in.seq = seq;
        in.op = (static_cast<int>(s) == home) ? ShardOp::Step
                                              : ShardOp::Tick;
        in.now = now;
        in.timeoutFloor = globalMaxTimeout;
        if (static_cast<int>(s) == home)
            in.msg = message;
        pushToShard(s, std::move(in));
    }
    ++shardMetrics.shards[static_cast<std::size_t>(home)].messagesRouted;

    pumpOutputs();
    emitReady();
}

void
ShardedChecker::submitSweep(common::SimTime now)
{
    CS_ASSERT(state == PipelineState::Running,
              "submit on a parked pipeline");
    Pending pending;
    pending.step = true;
    pending.owner = 0; // all lanes tick; shard 0's result is primary
    pending.ticks.resize(shards.size());
    window.push_back(std::move(pending));

    std::uint64_t seq = nextSeq++;
    for (std::size_t s = 0; s < shards.size(); ++s) {
        ShardIn in;
        in.seq = seq;
        in.op = ShardOp::Tick;
        in.now = now;
        in.timeoutFloor = globalMaxTimeout;
        pushToShard(s, std::move(in));
    }

    pumpOutputs();
    emitReady();
}

void
ShardedChecker::drainReady(std::vector<CheckEvent> &out)
{
    pumpOutputs();
    emitReady();
    if (!readyEvents.empty()) {
        out.insert(out.end(),
                   std::make_move_iterator(readyEvents.begin()),
                   std::make_move_iterator(readyEvents.end()));
        readyEvents.clear();
    }
}

void
ShardedChecker::flush(std::vector<CheckEvent> &out)
{
    flushInternal();
    drainReady(out);
}

void
ShardedChecker::flushInternal()
{
    while (windowBase < nextSeq) {
        pumpOutputs();
        emitReady();
        if (windowBase < nextSeq)
            std::this_thread::yield();
    }
}

// --- merge -------------------------------------------------------------

void
ShardedChecker::pumpOutputs()
{
    for (std::size_t s = 0; s < shards.size(); ++s) {
        auto &ring = shards[s]->out;
        ShardMetrics::PerShard &m = shardMetrics.shards[s];
        std::uint64_t depth = ring.size();
        if (depth > m.outputRingPeak)
            m.outputRingPeak = depth;
        ShardOut out;
        common::RoleGuard consume(ring.consumerRole);
        while (ring.tryPop(out)) {
            CS_ASSERT(!out.parkAck, "park ack outside quiesce");
            CS_ASSERT(out.seq >= windowBase &&
                          out.seq - windowBase < window.size(),
                      "shard result outside the merge window");
            Pending &pending =
                window[static_cast<std::size_t>(out.seq - windowBase)];
            if (s == pending.owner) {
                pending.primary = std::move(out);
            } else {
                CS_ASSERT(pending.step && s < pending.ticks.size(),
                          "tick result for a feed-only seq");
                pending.ticks[s] = std::move(out);
            }
            ++pending.seen;
        }
    }
}

void
ShardedChecker::emitReady()
{
    while (!window.empty()) {
        Pending &pending = window.front();
        std::uint32_t need =
            pending.step ? static_cast<std::uint32_t>(shards.size()) : 1u;
        if (pending.seen < need)
            break;
        processSeq(pending);
        window.pop_front();
        ++windowBase;
    }
}

std::uint64_t
ShardedChecker::mapLocalGid(std::size_t shard, std::uint64_t gid) const
{
    if (gid == 0)
        return 0;
    const MergeShard &m = mergeShards[shard];
    if (gid >= kStaleBase) {
        auto it = m.staleL2G.find(gid);
        CS_ASSERT(it != m.staleL2G.end(), "unmapped stale group id");
        return it->second;
    }
    CS_ASSERT(gid < m.gidL2G.size(), "unmapped shard-local group id");
    return m.gidL2G[static_cast<std::size_t>(gid)];
}

void
ShardedChecker::rewriteEvents(std::size_t shard,
                              std::vector<CheckEvent> &events)
{
    for (CheckEvent &event : events)
        event.group = mapLocalGid(shard, event.group);
}

void
ShardedChecker::processSeq(Pending &pending)
{
    ShardOut &own = pending.primary;
    MergeShard &owner = mergeShards[pending.owner];

    // Mirror serial's global allocators: the owner allocated ids
    // densely in this op, and serial would have allocated the same
    // count here, in the same order.
    for (std::uint32_t i = 0; i < own.groupBirths; ++i)
        owner.gidL2G.push_back(serialNextGroupId++);
    for (std::uint32_t i = 0; i < own.setBirths; ++i)
        owner.setL2G.push_back(serialNextIdSetId++);
    for (std::uint32_t i = 0; i < own.rivalBirths; ++i)
        owner.rivalL2G.push_back(serialNextRivalSet++);

    auto absorb = [this](std::size_t s, const ShardOut &out) {
        MergeShard &m = mergeShards[s];
        m.lastStats = out.stats;
        m.groupsNow = out.groupsNow;
        m.setsNow = out.setsNow;
        m.resolutions = out.resolutions;
        m.fallbacks = out.fallbacks;
        if (out.localMaxTimeout > globalMaxTimeout)
            globalMaxTimeout = out.localMaxTimeout;
        shardMetrics.shards[s].activeGroups = out.groupsNow;
    };
    absorb(pending.owner, own);

    if (pending.step) {
        for (std::size_t s = 0; s < shards.size(); ++s) {
            if (s != pending.owner)
                absorb(s, pending.ticks[s]);
        }
        // Serial sweeps emit in ascending group id over all shards'
        // groups; each shard's list is already ascending (the local →
        // serial map is monotone), so a k-way merge restores the
        // global order.
        std::vector<std::vector<CheckEvent> *> lanes;
        for (std::size_t s = 0; s < shards.size(); ++s) {
            std::vector<CheckEvent> &events =
                (s == pending.owner) ? own.sweepEvents
                                     : pending.ticks[s].sweepEvents;
            rewriteEvents(s, events);
            if (!events.empty())
                lanes.push_back(&events);
        }
        std::vector<std::size_t> cursor(lanes.size(), 0);
        for (;;) {
            std::size_t best = lanes.size();
            for (std::size_t l = 0; l < lanes.size(); ++l) {
                if (cursor[l] >= lanes[l]->size())
                    continue;
                if (best == lanes.size() ||
                    (*lanes[l])[cursor[l]].group <
                        (*lanes[best])[cursor[best]].group)
                    best = l;
            }
            if (best == lanes.size())
                break;
            readyEvents.push_back(
                std::move((*lanes[best])[cursor[best]]));
            ++cursor[best];
        }
    }

    rewriteEvents(pending.owner, own.feedEvents);
    readyEvents.insert(readyEvents.end(),
                       std::make_move_iterator(own.feedEvents.begin()),
                       std::make_move_iterator(own.feedEvents.end()));
}

// --- quiesce / consolidate / resplit -----------------------------------

void
ShardedChecker::quiesce()
{
    CS_ASSERT(state == PipelineState::Running, "double quiesce");
    flushInternal();
    for (auto &shard : shards) {
        ShardIn park;
        park.op = ShardOp::Park;
        common::RoleGuard produce(shard->in.producerRole);
        shard->in.push(std::move(park));
    }
    for (auto &shard : shards) {
        ShardOut ack;
        common::RoleGuard consume(shard->out.consumerRole);
        shard->out.pop(ack);
        CS_ASSERT(ack.parkAck, "expected park ack");
    }
    state = PipelineState::Parked;
    ++shardMetrics.quiesces;
}

void
ShardedChecker::resumeShards()
{
    CS_ASSERT(state == PipelineState::Parked, "resume without quiesce");
    for (auto &shard : shards)
        shard->resume.release();
    state = PipelineState::Running;
}

InterleavedChecker &
ShardedChecker::consolidate()
{
    CS_ASSERT(state == PipelineState::Parked,
              "consolidate needs a parked pipeline");
    InterleavedChecker &host = *shards[0]->checker;

    for (std::size_t s = 0; s < shards.size(); ++s) {
        InterleavedChecker &ck = *shards[s]->checker;
        ck.setBirthLogs(nullptr, nullptr, nullptr);
        MergeShard &m = mergeShards[s];

        // Local → serial, including tombstones: a stale lineage link
        // renumbers exactly like a live group.
        std::unordered_map<GroupId, GroupId> gid_map;
        for (std::size_t local = 1; local < m.gidL2G.size(); ++local)
            gid_map.emplace(local, m.gidL2G[local]);
        for (const auto &[local, global] : m.staleL2G)
            gid_map.emplace(local, global);
        std::unordered_map<std::uint64_t, std::uint64_t> set_map;
        for (std::size_t local = 1; local < m.setL2G.size(); ++local)
            set_map.emplace(local, m.setL2G[local]);
        std::unordered_map<std::uint64_t, std::uint64_t> rival_map;
        for (std::size_t local = 1; local < m.rivalL2G.size(); ++local)
            rival_map.emplace(local, m.rivalL2G[local]);
        ck.renumber(gid_map, set_map, rival_map);
    }

    for (std::size_t s = 1; s < shards.size(); ++s) {
        InterleavedChecker &ck = *shards[s]->checker;
        std::vector<GroupId> gids;
        gids.reserve(ck.groups.size());
        for (const auto &[gid, group] : ck.groups)
            gids.push_back(gid);
        ck.moveGroupsInto(host, gids);

        accumulateStats(host.counters, ck.counters);
        ck.counters = CheckerStats{};
        for (const auto &[name, edges] : ck.removalCounts) {
            auto &into = host.removalCounts[name];
            for (const auto &[edge, count] : edges)
                into[edge] += count;
        }
        ck.removalCounts.clear();
        host.maxResolvedTimeout =
            std::max(host.maxResolvedTimeout, ck.maxResolvedTimeout);
        ck.maxResolvedTimeout = 0.0;
        ck.nextGroupId = ck.nextIdSetId = ck.nextRivalSet = 1;
    }

    host.nextGroupId = serialNextGroupId;
    host.nextIdSetId = serialNextIdSetId;
    host.nextRivalSet = serialNextRivalSet;
    host.noteTimeoutFloor(globalMaxTimeout);
    globalMaxTimeout = host.maxResolvedTimeout;
    return host;
}

void
ShardedChecker::resplit()
{
    CS_ASSERT(state == PipelineState::Parked,
              "resplit needs a parked pipeline");
    InterleavedChecker &host = *shards[0]->checker;

    // 1. Identifier components over the live sets: sets sharing a
    // token are one component; the groups of one set always colocate.
    std::unordered_map<std::uint64_t, std::uint64_t> setParent;
    auto findSet = [&setParent](std::uint64_t sid) {
        while (setParent[sid] != sid) {
            setParent[sid] = setParent[setParent[sid]];
            sid = setParent[sid];
        }
        return sid;
    };
    std::unordered_map<IdToken, std::uint64_t> tokenOwner;
    for (const auto &[sid, entry] : host.idsets) {
        setParent.emplace(sid, sid);
        for (IdToken token : entry.ids.values()) {
            auto [it, fresh] = tokenOwner.try_emplace(token, sid);
            if (!fresh) {
                std::uint64_t a = findSet(sid);
                std::uint64_t b = findSet(it->second);
                if (a != b)
                    setParent[a] = b;
            }
        }
    }

    struct Component
    {
        GroupId minGid = ~0ULL;
        std::vector<GroupId> gids;
        bool emptySet = false;
    };
    std::unordered_map<std::uint64_t, Component> comps;
    for (const auto &[gid, group] : host.groups) {
        std::uint64_t sid = host.groupToSet.at(gid);
        Component &comp = comps[findSet(sid)];
        comp.minGid = std::min(comp.minGid, gid);
        comp.gids.push_back(gid);
        if (host.idsets.at(sid).ids.empty())
            comp.emptySet = true;
    }

    // 2. Deterministic assignment: components by first-created group,
    // round-robin across shards. Empty-set components (reachable only
    // via global scans, never via routing) pin to shard 0.
    std::vector<Component *> ordered;
    ordered.reserve(comps.size());
    for (auto &[root, comp] : comps)
        ordered.push_back(&comp);
    std::sort(ordered.begin(), ordered.end(),
              [](const Component *a, const Component *b) {
                  return a->minGid < b->minGid;
              });
    std::vector<std::vector<GroupId>> perShard(shards.size());
    std::size_t rr = 0;
    for (Component *comp : ordered) {
        std::size_t home =
            comp->emptySet ? 0 : (rr++ % shards.size());
        auto &bucket = perShard[home];
        bucket.insert(bucket.end(), comp->gids.begin(),
                      comp->gids.end());
    }
    roundRobinNext = rr % shards.size();

    for (std::size_t s = 1; s < shards.size(); ++s) {
        std::sort(perShard[s].begin(), perShard[s].end());
        host.moveGroupsInto(*shards[s]->checker, perShard[s]);
    }

    // 3. Per shard: serial → dense local ids, rebuild the merge-side
    // mirrors, reset allocators, re-arm the timeout horizon.
    for (std::size_t s = 0; s < shards.size(); ++s) {
        InterleavedChecker &ck = *shards[s]->checker;
        MergeShard &m = mergeShards[s];
        m = MergeShard{};

        std::unordered_map<GroupId, GroupId> gid_map;
        for (const auto &[gid, group] : ck.groups) {
            gid_map.emplace(gid, m.gidL2G.size());
            m.gidL2G.push_back(gid);
        }
        std::unordered_map<std::uint64_t, std::uint64_t> set_map;
        for (const auto &[sid, entry] : ck.idsets) {
            set_map.emplace(sid, m.setL2G.size());
            m.setL2G.push_back(sid);
        }
        std::set<std::uint64_t> rivals;
        for (const auto &[gid, group] : ck.groups) {
            if (group.rivalSet() != 0)
                rivals.insert(group.rivalSet());
        }
        std::unordered_map<std::uint64_t, std::uint64_t> rival_map;
        for (std::uint64_t rival : rivals) {
            rival_map.emplace(rival, m.rivalL2G.size());
            m.rivalL2G.push_back(rival);
        }

        // Lineage links to groups that no longer exist (or now live on
        // another shard — equally dead from here) become stale-range
        // locals, so they can never collide with future dense ids.
        std::uint64_t staleNext = kStaleBase + 1;
        auto mapStale = [&](GroupId ref) {
            if (ref == 0 || gid_map.count(ref))
                return;
            gid_map.emplace(ref, staleNext);
            m.staleL2G.emplace(staleNext, ref);
            ++staleNext;
        };
        for (const auto &[gid, group] : ck.groups) {
            mapStale(group.parent());
            for (GroupId child : group.children())
                mapStale(child);
        }

        ck.renumber(gid_map, set_map, rival_map);
        ck.nextGroupId = m.gidL2G.size();
        ck.nextIdSetId = m.setL2G.size();
        ck.nextRivalSet = m.rivalL2G.size();
        ck.maxResolvedTimeout = 0.0;
        ck.noteTimeoutFloor(globalMaxTimeout);

        m.lastStats = ck.counters;
        m.groupsNow = ck.groups.size();
        m.setsNow = ck.idsets.size();
        m.resolutions = shards[s]->policy.resolutions;
        m.fallbacks = shards[s]->policy.defaultFallbacks;
        shardMetrics.shards[s].activeGroups = m.groupsNow;
    }

    // 4. Rebuild the router from the live sets: token components are
    // shard-closed by construction, so each set's tokens carry its
    // shard as the component home.
    for (std::size_t i = 0; i < dsuParent.size(); ++i) {
        dsuParent[i] = static_cast<std::uint32_t>(i);
        dsuHome[i] = -1;
    }
    for (std::size_t s = 0; s < shards.size(); ++s) {
        for (const auto &[sid, entry] : shards[s]->checker->idsets) {
            const std::vector<IdToken> &tokens = entry.ids.values();
            if (tokens.empty())
                continue;
            dsuEnsure(tokens.front());
            std::uint32_t root = dsuFind(tokens.front());
            for (std::size_t i = 1; i < tokens.size(); ++i) {
                dsuEnsure(tokens[i]);
                std::uint32_t other = dsuFind(tokens[i]);
                if (other != root)
                    dsuParent[other] = root;
            }
        }
    }
    for (std::size_t s = 0; s < shards.size(); ++s) {
        for (const auto &[sid, entry] : shards[s]->checker->idsets) {
            const std::vector<IdToken> &tokens = entry.ids.values();
            if (!tokens.empty())
                dsuHome[dsuFind(tokens.front())] =
                    static_cast<std::int32_t>(s);
        }
    }
}

std::vector<CheckEvent>
ShardedChecker::reconcileFeed(const CheckMessage &message, bool step,
                              common::SimTime now)
{
    CS_ASSERT(swarm.reconcilePolicy != ReconcilePolicy::Forbid,
              "unpartitionable message under ReconcilePolicy::Forbid");
    ++shardMetrics.reconcilerHits;

    quiesce();
    InterleavedChecker &host = consolidate();

    std::vector<CheckEvent> events;
    if (step) {
        BaseChecker::TimeoutResolver resolver =
            [this](const std::vector<std::string> &tasks) {
                return masterPolicy.timeoutForCandidates(tasks);
            };
        events = host.sweepTimeouts(now, resolver);
    }
    std::vector<CheckEvent> fed = host.feed(message);
    events.insert(events.end(), std::make_move_iterator(fed.begin()),
                  std::make_move_iterator(fed.end()));

    serialNextGroupId = host.nextGroupId;
    serialNextIdSetId = host.nextIdSetId;
    serialNextRivalSet = host.nextRivalSet;
    globalMaxTimeout = host.maxResolvedTimeout;

    resplit();
    resumeShards();
    return events;
}

template <typename Op>
std::vector<CheckEvent>
ShardedChecker::consolidatedOp(Op &&op)
{
    quiesce();
    InterleavedChecker &host = consolidate();
    std::vector<CheckEvent> events = op(host);
    serialNextGroupId = host.nextGroupId;
    serialNextIdSetId = host.nextIdSetId;
    serialNextRivalSet = host.nextRivalSet;
    globalMaxTimeout = host.maxResolvedTimeout;
    resplit();
    resumeShards();
    return events;
}

// --- BaseChecker surface -----------------------------------------------

std::vector<CheckEvent>
ShardedChecker::feed(const CheckMessage &message)
{
    submitFeed(message);
    std::vector<CheckEvent> out;
    flush(out);
    return out;
}

std::vector<CheckEvent>
ShardedChecker::sweepTimeouts(common::SimTime now,
                              const TimeoutResolver &resolver)
{
    return consolidatedOp([&](InterleavedChecker &host) {
        return host.sweepTimeouts(now, resolver);
    });
}

std::vector<CheckEvent>
ShardedChecker::shedToCap(std::size_t cap, common::SimTime now)
{
    return consolidatedOp([&](InterleavedChecker &host) {
        return host.shedToCap(cap, now);
    });
}

std::vector<CheckEvent>
ShardedChecker::shedToMemory(std::size_t max_bytes, common::SimTime now)
{
    return consolidatedOp([&](InterleavedChecker &host) {
        return host.shedToMemory(max_bytes, now);
    });
}

std::size_t
ShardedChecker::approxRetainedBytes() const
{
    // Semantically const; mechanically a consolidate+resplit cycle.
    auto *self = const_cast<ShardedChecker *>(this);
    std::size_t bytes = 0;
    self->consolidatedOp([&](InterleavedChecker &host) {
        bytes = host.approxRetainedBytes();
        return std::vector<CheckEvent>{};
    });
    return bytes;
}

std::vector<CheckEvent>
ShardedChecker::finish(common::SimTime now)
{
    return consolidatedOp([&](InterleavedChecker &host) {
        return host.finish(now);
    });
}

const CheckerStats &
ShardedChecker::stats() const
{
    statsCache = CheckerStats{};
    for (const MergeShard &m : mergeShards)
        accumulateStats(statsCache, m.lastStats);
    return statsCache;
}

std::size_t
ShardedChecker::activeGroups() const
{
    std::size_t total = 0;
    for (const MergeShard &m : mergeShards)
        total += static_cast<std::size_t>(m.groupsNow);
    return total;
}

std::size_t
ShardedChecker::activeIdentifierSets() const
{
    std::size_t total = 0;
    for (const MergeShard &m : mergeShards)
        total += static_cast<std::size_t>(m.setsNow);
    return total;
}

const RemovalCounts &
ShardedChecker::dependencyRemovals() const
{
    // Tallies are additive across shards: no consolidation needed,
    // just a parked window to read each checker safely.
    auto *self = const_cast<ShardedChecker *>(this);
    self->flushInternal();
    self->quiesce();
    removalsCache.clear();
    for (const auto &shard : shards) {
        for (const auto &[name, edges] : shard->checker->removalCounts) {
            auto &into = removalsCache[name];
            for (const auto &[edge, count] : edges)
                into[edge] += count;
        }
    }
    self->resumeShards();
    return removalsCache;
}

void
ShardedChecker::saveState(common::BinWriter &out)
{
    consolidatedOp([&](InterleavedChecker &host) {
        const InterleavedChecker &serial = host;
        serial.saveState(out); // the serial image: engines interchange
        return std::vector<CheckEvent>{};
    });
}

bool
ShardedChecker::restoreState(common::BinReader &in)
{
    flushInternal();
    quiesce();
    // The caller's restored policy carries the checkpoint's resolution
    // tallies; live tallies reset so the sum does not double-count.
    masterPolicy.resolutions = 0;
    masterPolicy.defaultFallbacks = 0;
    for (const auto &shard : shards) {
        shard->policy.resolutions = 0;
        shard->policy.defaultFallbacks = 0;
        InterleavedChecker &ck = *shard->checker;
        ck.setBirthLogs(nullptr, nullptr, nullptr);
        ck.groups.clear();
        ck.idsets.clear();
        ck.groupToSet.clear();
        ck.postings.clear();
        ck.setsByContents.clear();
        ck.removalCounts.clear();
        ck.counters = CheckerStats{};
        ck.nextGroupId = ck.nextIdSetId = ck.nextRivalSet = 1;
        ck.maxResolvedTimeout = 0.0;
    }
    InterleavedChecker &host = *shards[0]->checker;
    bool ok = host.restoreState(in);
    if (ok) {
        serialNextGroupId = host.nextGroupId;
        serialNextIdSetId = host.nextIdSetId;
        serialNextRivalSet = host.nextRivalSet;
        globalMaxTimeout = host.maxResolvedTimeout;
    } else {
        serialNextGroupId = serialNextIdSetId = serialNextRivalSet = 1;
        globalMaxTimeout = 0.0;
    }
    resplit();
    resumeShards();
    return ok;
}

void
ShardedChecker::setTracer(obs::ExecutionTracer *tracer)
{
    // Span identity is shard-local; the monitor keeps the serial
    // engine when tracing is on.
    CS_ASSERT(tracer == nullptr,
              "execution tracing requires the serial engine");
}

void
ShardedChecker::setLatencyPolicy(
    const std::vector<LatencyProfile> &profiles,
    const LatencyCheckConfig &policy)
{
    latProfiles = profiles;
    latConfig = policy;
    quiesce();
    for (const auto &shard : shards)
        shard->checker->setLatencyPolicy(profiles, policy);
    resumeShards();
}

void
ShardedChecker::setCertifiedTemplates(std::vector<char> certified)
{
    certBits = std::move(certified);
    quiesce();
    for (const auto &shard : shards)
        shard->checker->setCertifiedTemplates(certBits);
    resumeShards();
}

void
ShardedChecker::setTimeoutPolicy(const TimeoutPolicy &policy)
{
    masterPolicy = policy;
    masterPolicy.resolutions = 0;
    masterPolicy.defaultFallbacks = 0;
    quiesce();
    for (const auto &shard : shards) {
        shard->policy = policy;
        shard->policy.resolutions = 0;
        shard->policy.defaultFallbacks = 0;
    }
    resumeShards();
}

std::pair<std::uint64_t, std::uint64_t>
ShardedChecker::timeoutResolutionCounts() const
{
    std::uint64_t resolutions = masterPolicy.resolutions;
    std::uint64_t fallbacks = masterPolicy.defaultFallbacks;
    for (const MergeShard &m : mergeShards) {
        resolutions += m.resolutions;
        fallbacks += m.fallbacks;
    }
    return {resolutions, fallbacks};
}

bool
ShardedChecker::indexesConsistent()
{
    flushInternal();
    quiesce();
    bool ok = true;
    for (const auto &shard : shards)
        ok = ok && shard->checker->indexConsistent();
    resumeShards();
    return ok;
}

} // namespace cloudseer::core
