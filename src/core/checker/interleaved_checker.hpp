/**
 * @file
 * Algorithm 2 (paper §4): checking interleaved log sequences.
 *
 * The checker maintains the paper's three global structures — the
 * identifier sets I, the automaton groups G, and the relation R
 * between them — and routes each incoming message to the group(s)
 * whose identifier set shares the most identifiers with it. Three
 * outcomes per message: decisive consumption (case 1), brute-force
 * hypothesis forking (case 2), or divergence recovery (case 3) with
 * the paper's four prioritized heuristics. The error-message and
 * timeout criteria turn divergences and silences into reports.
 *
 * Additions documented in DESIGN.md §4: explicit lineage links between
 * forked hypotheses make the paper's "remove the other possibilities"
 * pruning deterministic, and timed-out groups whose lineage is still
 * progressing are pruned silently instead of reported.
 */

#ifndef CLOUDSEER_CORE_CHECKER_INTERLEAVED_CHECKER_HPP
#define CLOUDSEER_CORE_CHECKER_INTERLEAVED_CHECKER_HPP

#include <functional>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "core/automaton/refinement.hpp"
#include "core/checker/check_types.hpp"

namespace cloudseer::core {

/** Feature toggles; each maps to an ablation in DESIGN.md §6. */
struct CheckerConfig
{
    /** Route by identifier sets (off = brute-force every group). */
    bool identifierRouting = true;

    /** Tie-break equal overlaps by least symmetric difference. */
    bool tieBreakLeastDifference = true;

    /** Collapse equivalent groups under one identifier set. */
    bool equivalentGroupDedup = true;

    /** Recovery (d): remove false dependencies on the fly. */
    bool falseDependencyRemoval = true;

    /** Prune (don't report) timed-out groups whose lineage advanced. */
    bool timeoutSuppression = true;

    /** Keep reported-timeout groups as silent absorbers of late
     *  messages (reduces follow-on false positives from delays). */
    bool zombieAbsorption = true;

    /**
     * Upper bound on the hypotheses forked by one ambiguous message
     * (Algorithm 2 case 2). Unbounded forking is exponential when
     * identifiers cannot separate sequences at all; the cap keeps the
     * checker online at the cost of occasionally dropping the correct
     * hypothesis (surfacing as a checking inaccuracy, like the
     * paper's).
     */
    std::size_t maxForkFanout = 6;

    /** Seed for the random-selection heuristic among equivalents. */
    std::uint64_t seed = 42;
};

/** The online checking engine. */
class InterleavedChecker
{
  public:
    /**
     * @param config   Feature toggles.
     * @param automata Global automaton set M; must outlive the checker.
     */
    InterleavedChecker(const CheckerConfig &config,
                       std::vector<const TaskAutomaton *> automata);

    /**
     * Process one message (Algorithm 2). Returns any accepted or
     * erroneous instances this message resolved.
     */
    std::vector<CheckEvent> feed(const CheckMessage &message);

    /**
     * Resolves the timeout for a group from the task names it still
     * tracks (per-task timeouts from the estimator, or a constant).
     */
    using TimeoutResolver =
        std::function<double(const std::vector<std::string> &)>;

    /**
     * Timeout criterion: report groups that consumed nothing within
     * `timeout` seconds before `now`.
     */
    std::vector<CheckEvent> sweepTimeouts(common::SimTime now,
                                          double timeout);

    /** Timeout criterion with a per-group timeout resolver. */
    std::vector<CheckEvent> sweepTimeouts(common::SimTime now,
                                          const TimeoutResolver &resolver);

    /**
     * Load shedding: evict groups until at most `cap` remain, each
     * eviction emitting a Degraded event so no state vanishes
     * silently. Zombies go first (they were already reported), then
     * the groups idle the longest; the most recently active state is
     * kept. Degraded events are operator health signals — a shed
     * group's verdict is *unknown*, so they must never be scored as
     * problem reports.
     */
    std::vector<CheckEvent> shedToCap(std::size_t cap,
                                      common::SimTime now);

    /**
     * Dependency-removal tallies accumulated by recovery (d) — the
     * input to refineFromRemovals (model-refinement feedback loop).
     */
    const RemovalCounts &dependencyRemovals() const
    {
        return removalCounts;
    }

    /**
     * End of stream: every remaining unaccepted group is reported as a
     * timeout (it never completed) and the state is cleared.
     */
    std::vector<CheckEvent> finish(common::SimTime now);

    /** Counters. */
    const CheckerStats &stats() const { return counters; }

    /** Groups currently tracked. */
    std::size_t activeGroups() const { return groups.size(); }

    /** Identifier sets currently tracked. */
    std::size_t activeIdentifierSets() const { return idsets.size(); }

  private:
    struct IdSetEntry
    {
        IdentifierSet ids;
        std::vector<GroupId> groupIds;
    };

    CheckerConfig config;
    std::vector<const TaskAutomaton *> automatonSet;
    std::vector<char> knownTemplates; // indexed by TemplateId
    common::Rng rng;
    CheckerStats counters;

    std::map<GroupId, AutomatonGroup> groups;
    RemovalCounts removalCounts;
    std::map<std::uint64_t, IdSetEntry> idsets;
    std::map<GroupId, std::uint64_t> groupToSet;
    std::uint64_t nextGroupId = 1;
    std::uint64_t nextIdSetId = 1;
    std::uint64_t nextRivalSet = 1;

    bool templateKnown(logging::TemplateId tpl) const;

    /**
     * Identifier-set ids with the best overlap below the exclusive
     * bound (-1 = unbounded). `tie_break` applies the least-difference
     * heuristic among equal overlaps; recovery (c) retries without it
     * so tie-break losers get their chance before lower ranks.
     */
    std::vector<std::uint64_t>
    selectIdSets(const std::vector<std::string> &identifiers,
                 int max_overlap_exclusive, int *overlap_out,
                 bool tie_break) const;

    /** Candidate groups of the selected sets, deduped per config. */
    std::vector<GroupId>
    candidateGroups(const std::vector<std::uint64_t> &set_ids);

    /** Case 1 bookkeeping: expand or re-home the group's set. */
    void applyDecisiveIdUpdate(GroupId group,
                               const std::vector<std::string> &ids);

    /**
     * Identifier-set entry with the given contents, reusing an
     * existing identical entry (the paper's I is a *set* of sets:
     * identical sets are one element, which is what lets the
     * equivalent-group heuristic collapse interchangeable groups).
     */
    std::uint64_t findOrCreateIdSet(IdentifierSet ids);

    /** Register a brand-new group with a fresh identifier set. */
    void registerGroup(AutomatonGroup &&group,
                       IdentifierSet initial_ids);

    /** Remove one group and its relation entries. */
    void eraseGroup(GroupId group);

    /** Collect the group and all its (live) descendants. */
    void collectDescendants(GroupId group,
                            std::vector<GroupId> &out) const;

    /** The paper's acceptance pruning, made deterministic by lineage. */
    void pruneLineageOnAccept(GroupId winner);

    /** True when a lineage-linked group consumed within the window. */
    bool lineageCovered(const AutomatonGroup &group, common::SimTime now,
                        double timeout) const;

    /** Largest timeout handed out so far (zombie-expiry horizon). */
    double maxResolvedTimeout = 0.0;

    /** Build a report for a group. */
    CheckEvent makeEvent(CheckEventKind kind, const AutomatonGroup &group,
                         common::SimTime time) const;

    /** Handle acceptance on a set of touched groups. */
    void harvestAcceptance(const std::vector<GroupId> &touched,
                           common::SimTime now,
                           std::vector<CheckEvent> &events);

    /** Error-message criterion (paper §4, Problem Detection). */
    void applyErrorCriterion(const CheckMessage &message,
                             std::vector<CheckEvent> &events);
};

} // namespace cloudseer::core

#endif // CLOUDSEER_CORE_CHECKER_INTERLEAVED_CHECKER_HPP
