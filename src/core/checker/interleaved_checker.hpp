/**
 * @file
 * Algorithm 2 (paper §4): checking interleaved log sequences.
 *
 * The checker maintains the paper's three global structures — the
 * identifier sets I, the automaton groups G, and the relation R
 * between them — and routes each incoming message to the group(s)
 * whose identifier set shares the most identifiers with it. Three
 * outcomes per message: decisive consumption (case 1), brute-force
 * hypothesis forking (case 2), or divergence recovery (case 3) with
 * the paper's four prioritized heuristics. The error-message and
 * timeout criteria turn divergences and silences into reports.
 *
 * Additions documented in DESIGN.md §4: explicit lineage links between
 * forked hypotheses make the paper's "remove the other possibilities"
 * pruning deterministic, and timed-out groups whose lineage is still
 * progressing are pruned silently instead of reported.
 *
 * Routing index (DESIGN.md §9): the paper's set selection scans every
 * live identifier set per message. With `routingIndex` on (default)
 * the checker instead maintains an inverted index from identifier
 * token to the id-sets containing it, so selection touches only the
 * sets actually sharing an identifier with the message — sublinear in
 * live groups, and bit-identical to the scan in every report.
 */

#ifndef CLOUDSEER_CORE_CHECKER_INTERLEAVED_CHECKER_HPP
#define CLOUDSEER_CORE_CHECKER_INTERLEAVED_CHECKER_HPP

#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "core/automaton/refinement.hpp"
#include "core/checker/base_checker.hpp"
#include "core/checker/check_types.hpp"
#include "core/mining/latency_profile.hpp"
#include "obs/trace.hpp"

namespace cloudseer::core {

/** Feature toggles; each maps to an ablation in DESIGN.md §6. */
struct CheckerConfig
{
    /** Route by identifier sets (off = brute-force every group). */
    bool identifierRouting = true;

    /**
     * Serve set selection from the inverted token→id-set index
     * instead of the paper's linear scan over all live sets. Off is
     * the reference scan path — behaviourally identical (the
     * differential test pins report sequences bit-equal), only
     * slower.
     */
    bool routingIndex = true;

    /** Tie-break equal overlaps by least symmetric difference. */
    bool tieBreakLeastDifference = true;

    /** Collapse equivalent groups under one identifier set. */
    bool equivalentGroupDedup = true;

    /** Recovery (d): remove false dependencies on the fly. */
    bool falseDependencyRemoval = true;

    /** Prune (don't report) timed-out groups whose lineage advanced. */
    bool timeoutSuppression = true;

    /** Keep reported-timeout groups as silent absorbers of late
     *  messages (reduces follow-on false positives from delays). */
    bool zombieAbsorption = true;

    /**
     * Upper bound on the hypotheses forked by one ambiguous message
     * (Algorithm 2 case 2). Unbounded forking is exponential when
     * identifiers cannot separate sequences at all; the cap keeps the
     * checker online at the cost of occasionally dropping the correct
     * hypothesis (surfacing as a checking inaccuracy, like the
     * paper's). seer-lint's SL005 pass checks mined models against
     * this cap before deployment.
     */
    std::size_t maxForkFanout = kDefaultMaxForkFanout;

    /**
     * Seed for the random-selection heuristic among equivalents. The
     * pick is a pure hash of (seed, record id, draw ordinal) — no
     * generator state survives between messages — so any engine that
     * sees the same message over the same candidate pool makes the
     * same choice. This is what lets the sharded engine (DESIGN.md
     * §14) reproduce serial decisions without sharing an RNG.
     */
    std::uint64_t seed = 42;
};

/**
 * Order-sensitive FNV-1a fingerprint of an automaton vector (names,
 * events, edges). A vault checkpoint stores the fingerprint of the
 * models it was taken against; restore refuses a mismatch, because
 * serialised instance state indexes into these exact automata.
 */
std::uint64_t
modelFingerprint(const std::vector<const TaskAutomaton *> &automata);

/** The online checking engine (the serial reference backend). */
class InterleavedChecker : public BaseChecker
{
  public:
    /**
     * @param config   Feature toggles.
     * @param automata Global automaton set M; must outlive the checker.
     */
    InterleavedChecker(const CheckerConfig &config,
                       std::vector<const TaskAutomaton *> automata);

    /**
     * Process one message (Algorithm 2). Returns any accepted or
     * erroneous instances this message resolved.
     */
    std::vector<CheckEvent> feed(const CheckMessage &message) override;

    using TimeoutResolver = BaseChecker::TimeoutResolver;

    /**
     * Timeout criterion: report groups that consumed nothing within
     * `timeout` seconds before `now`.
     */
    std::vector<CheckEvent> sweepTimeouts(common::SimTime now,
                                          double timeout);

    /** Timeout criterion with a per-group timeout resolver. */
    std::vector<CheckEvent>
    sweepTimeouts(common::SimTime now,
                  const TimeoutResolver &resolver) override;

    /**
     * Load shedding: evict groups until at most `cap` remain, each
     * eviction emitting a Degraded event so no state vanishes
     * silently. Zombies go first (they were already reported), then
     * the groups idle the longest; the most recently active state is
     * kept. Degraded events are operator health signals — a shed
     * group's verdict is *unknown*, so they must never be scored as
     * problem reports.
     */
    std::vector<CheckEvent> shedToCap(std::size_t cap,
                                      common::SimTime now) override;

    /**
     * Memory ceiling (seer-vault, DESIGN.md §13): evict
     * least-recently-active groups until approxRetainedBytes() fits
     * under `max_bytes`, with the same order, Degraded reporting, and
     * counters as shedToCap — the two shedding paths are one contract.
     * At least one group is always kept, so a ceiling below a single
     * group's footprint degrades to "keep only the newest state"
     * rather than thrashing. No-op when max_bytes is 0 (no ceiling).
     */
    std::vector<CheckEvent> shedToMemory(std::size_t max_bytes,
                                         common::SimTime now) override;

    /**
     * Deterministic estimate of checker state size in bytes, computed
     * only from state that saveState persists — mutable caches (group
     * signatures) are excluded so a restored checker and the
     * uninterrupted one make identical eviction decisions.
     */
    std::size_t approxRetainedBytes() const override;

    /**
     * Serialise the full checking state (seer-vault, DESIGN.md §13):
     * counters, groups, removal tallies, identifier sets, the
     * group↔set relation, id allocators, the timeout horizon, and the
     * RNG. The routing index (postings, contents map) is derived state
     * and rebuilt on restore; the automaton set and config are the
     * caller's to re-supply.
     */
    void saveState(common::BinWriter &out) const;

    /** BaseChecker adapter for the const overload above. */
    void saveState(common::BinWriter &out) override
    {
        const InterleavedChecker &self = *this;
        self.saveState(out);
    }

    /**
     * Overwrite this checker from a saveState image taken against an
     * identical automaton vector (guard with modelFingerprint before
     * calling). On failure the stream is marked bad and the checker is
     * left cleared — construct a fresh one rather than continuing.
     */
    bool restoreState(common::BinReader &in) override;

    /**
     * Dependency-removal tallies accumulated by recovery (d) — the
     * input to refineFromRemovals (model-refinement feedback loop).
     */
    const RemovalCounts &dependencyRemovals() const override
    {
        return removalCounts;
    }

    /**
     * End of stream: every remaining unaccepted group is reported as a
     * timeout (it never completed) and the state is cleared.
     */
    std::vector<CheckEvent> finish(common::SimTime now) override;

    /** Counters. */
    const CheckerStats &stats() const override { return counters; }

    /** Groups currently tracked. */
    std::size_t activeGroups() const override { return groups.size(); }

    /** Identifier sets currently tracked. */
    std::size_t activeIdentifierSets() const override
    {
        return idsets.size();
    }

    const char *engineName() const override { return "serial"; }

    /**
     * Posting list of a token (id-set ids containing it), or nullptr
     * when no live set holds the token. Test/introspection surface of
     * the routing index.
     */
    const std::vector<std::uint64_t> *
    postingsFor(logging::IdToken token) const;

    /** Tokens currently carrying a non-empty posting list. */
    std::size_t postingTokens() const { return postings.size(); }

    /**
     * Full cross-check of the routing structures: every id-set token
     * appears in exactly one posting entry, no posting points at a
     * dead set, the contents map mirrors the live sets, and every
     * group↔set relation is bidirectional. O(state); test-only.
     */
    bool indexConsistent() const;

    /**
     * Attach an execution-lifecycle tracer (seer-scope, DESIGN.md
     * §11): one span per group from creation to its fate, annotated
     * with the Algorithm 2 outcome of every consumed message. Null
     * (the default) is the null sink — every hook below is a single
     * pointer test and the checker behaves bit-identically.
     */
    void setTracer(obs::ExecutionTracer *tracer_) override
    {
        tracer = tracer_;
    }

    /**
     * Install the latency-anomaly criterion (seer-flight, DESIGN.md
     * §12): executions that accept logically but run over the mined
     * task-level budget are reported as LatencyAnomaly instead of
     * Accepted, with per-edge timings and the critical branch through
     * forks attached. Profiles are matched by task name; tasks without
     * a sampled profile stay exempt. An empty vector clears the
     * policy and restores bit-identical pre-flight behaviour.
     */
    void setLatencyPolicy(const std::vector<LatencyProfile> &profiles,
                          const LatencyCheckConfig &policy = {}) override;

    /** True when a latency policy with at least one profile is set. */
    bool latencyPolicyActive() const { return !latencyProfiles.empty(); }

    /**
     * Install the seer-prove fast-path bitmap (DESIGN.md §15).
     * Configuration, not checker state: saveState images never carry
     * it and restoreState leaves it in place, mirroring the latency
     * policy's lifecycle.
     */
    void setCertifiedTemplates(std::vector<char> certified) override;

    /** Number of certified templates currently installed. */
    std::size_t certifiedTemplateCount() const;

  private:
    /**
     * The sharded engine (DESIGN.md §14) owns one serial checker per
     * shard and needs surgical access for consolidation and split:
     * renumbering ids, moving whole identifier components between
     * instances, and reading/merging counters. Friendship keeps that
     * surgery out of the public surface — it is only sound under the
     * sharded engine's quiesce protocol.
     */
    friend class ShardedChecker;

    struct IdSetEntry
    {
        IdentifierSet ids;
        std::vector<GroupId> groupIds;
    };

    CheckerConfig config;
    std::vector<const TaskAutomaton *> automatonSet;
    std::vector<char> knownTemplates; // indexed by TemplateId
    CheckerStats counters;

    /** seer-prove certified-unambiguous bitmap (config-like; empty =
     *  fast path off). */
    std::vector<char> certifiedTemplates;

    /** True while the message in feed() has a certified template; the
     *  gate on every fast-path shortcut below. */
    bool certFastActive = false;

    /** Record id of the message currently in feed(); the hash basis
     *  of the equivalence-class pick. */
    logging::RecordId currentRecord = 0;

    /** Per-feed draw ordinal (several pools can draw per message). */
    std::uint32_t pickSalt = 0;

    /** Pure deterministic pick: index into a pool of `pool_size`. */
    std::size_t equivalencePickIndex(std::size_t pool_size);

    std::map<GroupId, AutomatonGroup> groups;
    RemovalCounts removalCounts;
    std::map<std::uint64_t, IdSetEntry> idsets;
    std::map<GroupId, std::uint64_t> groupToSet;

    /**
     * Inverted routing index: token -> sorted-insertion list of the
     * id-set ids whose set contains the token. Maintained on set
     * creation, in-place expansion, and retirement; entries whose
     * lists drain are erased so the index never outgrows live state.
     */
    std::unordered_map<logging::IdToken, std::vector<std::uint64_t>>
        postings;

    /**
     * Exact-contents lookup for findOrCreateIdSet: token vector ->
     * ascending id-set ids with those exact contents (in-place
     * expansion can transiently alias two sets; the scan semantics
     * pick the lowest id, so the front() is the answer).
     */
    std::map<std::vector<logging::IdToken>, std::vector<std::uint64_t>>
        setsByContents;

    std::uint64_t nextGroupId = 1;
    std::uint64_t nextIdSetId = 1;
    std::uint64_t nextRivalSet = 1;

    bool templateKnown(logging::TemplateId tpl) const;

    /**
     * Identifier-set ids with the best overlap below the exclusive
     * bound (-1 = unbounded). `view` must be sorted-unique (one
     * dedup per message, done in feed). `tie_break` applies the
     * least-difference heuristic among equal overlaps; recovery (c)
     * retries without it so tie-break losers get their chance before
     * lower ranks. Dispatches to the indexed or scan implementation
     * per config.routingIndex; both return identical selections.
     */
    std::vector<std::uint64_t>
    selectIdSets(const std::vector<logging::IdToken> &view,
                 int max_overlap_exclusive, int *overlap_out,
                 bool tie_break) const;

    /** Reference implementation: linear scan over all live sets. */
    std::vector<std::uint64_t>
    selectIdSetsScan(const std::vector<logging::IdToken> &view,
                     int max_overlap_exclusive, int *overlap_out,
                     bool tie_break) const;

    /** Indexed implementation: posting-list accumulation. */
    std::vector<std::uint64_t>
    selectIdSetsIndexed(const std::vector<logging::IdToken> &view,
                        int max_overlap_exclusive, int *overlap_out,
                        bool tie_break) const;

    /** Candidate groups of the selected sets, deduped per config. */
    std::vector<GroupId>
    candidateGroups(const std::vector<std::uint64_t> &set_ids);

    /** Case 1 bookkeeping: expand or re-home the group's set. */
    void applyDecisiveIdUpdate(GroupId group,
                               const std::vector<logging::IdToken> &view);

    /**
     * Identifier-set entry with the given contents, reusing an
     * existing identical entry (the paper's I is a *set* of sets:
     * identical sets are one element, which is what lets the
     * equivalent-group heuristic collapse interchangeable groups).
     */
    std::uint64_t findOrCreateIdSet(IdentifierSet ids);

    // --- routing-index maintenance ------------------------------------

    /** Add a freshly created set to postings and the contents map. */
    void indexAddSet(std::uint64_t set_id, const IdSetEntry &entry);

    /** Remove a retiring set from postings and the contents map. */
    void indexRemoveSet(std::uint64_t set_id, const IdSetEntry &entry);

    /** Record `set_id` under `contents` in the contents map. */
    void contentsAdd(std::uint64_t set_id,
                     const std::vector<logging::IdToken> &contents);

    /** Drop `set_id` from under `contents` in the contents map. */
    void contentsRemove(std::uint64_t set_id,
                        const std::vector<logging::IdToken> &contents);

    /** Register a brand-new group with a fresh identifier set. */
    void registerGroup(AutomatonGroup &&group,
                       IdentifierSet initial_ids);

    /** Remove one group and its relation entries. */
    void eraseGroup(GroupId group);

    /** Collect the group and all its (live) descendants. */
    void collectDescendants(GroupId group,
                            std::vector<GroupId> &out) const;

    /** The paper's acceptance pruning, made deterministic by lineage. */
    void pruneLineageOnAccept(GroupId winner);

    /** True when a lineage-linked group consumed within the window. */
    bool lineageCovered(const AutomatonGroup &group, common::SimTime now,
                        double timeout) const;

    /** Largest timeout handed out so far (zombie-expiry horizon). */
    double maxResolvedTimeout = 0.0;

    // --- seer-swarm shard support (DESIGN.md §14) ---------------------

    /**
     * Birth logs: when attached by the sharded engine, every freshly
     * allocated group id / identifier-set id is appended (in
     * allocation order) and every rival-set allocation counted, so
     * the merge thread can mirror serial's global id sequence without
     * inspecting checker internals per message. Null by default (the
     * serial engine pays one pointer test per allocation).
     */
    std::vector<GroupId> *groupBirths = nullptr;
    std::vector<std::uint64_t> *setBirths = nullptr;
    std::uint64_t *rivalBirths = nullptr;

    /** Attach or detach (nullptr) the birth logs. */
    void
    setBirthLogs(std::vector<GroupId> *group_log,
                 std::vector<std::uint64_t> *set_log,
                 std::uint64_t *rival_count)
    {
        groupBirths = group_log;
        setBirths = set_log;
        rivalBirths = rival_count;
    }

    /**
     * Fold an externally observed timeout resolution into the
     * zombie-expiry horizon (the sharded merge broadcasts the global
     * maximum so every shard expires zombies on the serial horizon).
     */
    void
    noteTimeoutFloor(double resolved)
    {
        maxResolvedTimeout = std::max(maxResolvedTimeout, resolved);
    }

    /**
     * Rewrite every group id, identifier-set id, and rival-set id
     * through the given maps (consolidation maps shard-local ids to
     * serial ids; split maps them back). Ids absent from a map keep
     * their value — the caller's maps retain tombstones for erased
     * ids, so this only happens for the zero sentinel. The routing
     * index is rebuilt from the renumbered sets. Allocator highwaters
     * (nextGroupId …) are the caller's to set afterwards.
     */
    void renumber(
        const std::unordered_map<GroupId, GroupId> &gid_map,
        const std::unordered_map<std::uint64_t, std::uint64_t> &set_map,
        const std::unordered_map<std::uint64_t, std::uint64_t> &rival_map);

    /**
     * Move the listed groups — which must form whole identifier
     * components, i.e. every group sharing an identifier set with a
     * listed group is itself listed — into `target`, carrying their
     * identifier sets and relation entries and maintaining both
     * routing indexes. Counters, removal tallies, and allocator
     * highwaters stay behind (the sharded engine owns that ledger).
     */
    void moveGroupsInto(InterleavedChecker &target,
                        const std::vector<GroupId> &gids);

    /** Optional execution tracer (null = no tracing). */
    obs::ExecutionTracer *tracer = nullptr;

    /** Latency profiles by task name (empty = criterion off). */
    std::map<std::string, LatencyProfile> latencyProfiles;

    /** Budget rule applied to the mined quantiles. */
    LatencyCheckConfig latencyPolicy;

    /**
     * Fill the seer-flight fields of an acceptance event (timings,
     * budgets, critical path) from the accepting instance. Returns
     * true when the execution ran over its task-level budget.
     */
    bool annotateLatency(CheckEvent &event, const AutomatonGroup &group,
                         const AutomatonInstance &instance) const;

    /**
     * Message-clock time of the current feed/sweep, so generic
     * teardown paths (eraseGroup) can stamp span ends without the
     * reason-specific call sites threading a time through.
     */
    common::SimTime traceNow = 0.0;

    /** Close a group's span (no-op when untraced or already closed). */
    void traceEnd(const AutomatonGroup &group, common::SimTime time,
                  obs::SpanEnd reason) const;

    /** Build a report for a group. */
    CheckEvent makeEvent(CheckEventKind kind, const AutomatonGroup &group,
                         common::SimTime time) const;

    /** Handle acceptance on a set of touched groups. */
    void harvestAcceptance(const std::vector<GroupId> &touched,
                           common::SimTime now,
                           std::vector<CheckEvent> &events);

    /** Error-message criterion (paper §4, Problem Detection). */
    void applyErrorCriterion(const CheckMessage &message,
                             const std::vector<logging::IdToken> &view,
                             std::vector<CheckEvent> &events);
};

} // namespace cloudseer::core

#endif // CLOUDSEER_CORE_CHECKER_INTERLEAVED_CHECKER_HPP
