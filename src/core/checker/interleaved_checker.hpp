/**
 * @file
 * Algorithm 2 (paper §4): checking interleaved log sequences.
 *
 * The checker maintains the paper's three global structures — the
 * identifier sets I, the automaton groups G, and the relation R
 * between them — and routes each incoming message to the group(s)
 * whose identifier set shares the most identifiers with it. Three
 * outcomes per message: decisive consumption (case 1), brute-force
 * hypothesis forking (case 2), or divergence recovery (case 3) with
 * the paper's four prioritized heuristics. The error-message and
 * timeout criteria turn divergences and silences into reports.
 *
 * Additions documented in DESIGN.md §4: explicit lineage links between
 * forked hypotheses make the paper's "remove the other possibilities"
 * pruning deterministic, and timed-out groups whose lineage is still
 * progressing are pruned silently instead of reported.
 *
 * Routing index (DESIGN.md §9): the paper's set selection scans every
 * live identifier set per message. With `routingIndex` on (default)
 * the checker instead maintains an inverted index from identifier
 * token to the id-sets containing it, so selection touches only the
 * sets actually sharing an identifier with the message — sublinear in
 * live groups, and bit-identical to the scan in every report.
 */

#ifndef CLOUDSEER_CORE_CHECKER_INTERLEAVED_CHECKER_HPP
#define CLOUDSEER_CORE_CHECKER_INTERLEAVED_CHECKER_HPP

#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "core/automaton/refinement.hpp"
#include "core/checker/check_types.hpp"
#include "core/mining/latency_profile.hpp"
#include "obs/trace.hpp"

namespace cloudseer::core {

/** Feature toggles; each maps to an ablation in DESIGN.md §6. */
struct CheckerConfig
{
    /** Route by identifier sets (off = brute-force every group). */
    bool identifierRouting = true;

    /**
     * Serve set selection from the inverted token→id-set index
     * instead of the paper's linear scan over all live sets. Off is
     * the reference scan path — behaviourally identical (the
     * differential test pins report sequences bit-equal), only
     * slower.
     */
    bool routingIndex = true;

    /** Tie-break equal overlaps by least symmetric difference. */
    bool tieBreakLeastDifference = true;

    /** Collapse equivalent groups under one identifier set. */
    bool equivalentGroupDedup = true;

    /** Recovery (d): remove false dependencies on the fly. */
    bool falseDependencyRemoval = true;

    /** Prune (don't report) timed-out groups whose lineage advanced. */
    bool timeoutSuppression = true;

    /** Keep reported-timeout groups as silent absorbers of late
     *  messages (reduces follow-on false positives from delays). */
    bool zombieAbsorption = true;

    /**
     * Upper bound on the hypotheses forked by one ambiguous message
     * (Algorithm 2 case 2). Unbounded forking is exponential when
     * identifiers cannot separate sequences at all; the cap keeps the
     * checker online at the cost of occasionally dropping the correct
     * hypothesis (surfacing as a checking inaccuracy, like the
     * paper's). seer-lint's SL005 pass checks mined models against
     * this cap before deployment.
     */
    std::size_t maxForkFanout = kDefaultMaxForkFanout;

    /** Seed for the random-selection heuristic among equivalents. */
    std::uint64_t seed = 42;
};

/**
 * Order-sensitive FNV-1a fingerprint of an automaton vector (names,
 * events, edges). A vault checkpoint stores the fingerprint of the
 * models it was taken against; restore refuses a mismatch, because
 * serialised instance state indexes into these exact automata.
 */
std::uint64_t
modelFingerprint(const std::vector<const TaskAutomaton *> &automata);

/** The online checking engine. */
class InterleavedChecker
{
  public:
    /**
     * @param config   Feature toggles.
     * @param automata Global automaton set M; must outlive the checker.
     */
    InterleavedChecker(const CheckerConfig &config,
                       std::vector<const TaskAutomaton *> automata);

    /**
     * Process one message (Algorithm 2). Returns any accepted or
     * erroneous instances this message resolved.
     */
    std::vector<CheckEvent> feed(const CheckMessage &message);

    /**
     * Resolves the timeout for a group from the task names it still
     * tracks (per-task timeouts from the estimator, or a constant).
     */
    using TimeoutResolver =
        std::function<double(const std::vector<std::string> &)>;

    /**
     * Timeout criterion: report groups that consumed nothing within
     * `timeout` seconds before `now`.
     */
    std::vector<CheckEvent> sweepTimeouts(common::SimTime now,
                                          double timeout);

    /** Timeout criterion with a per-group timeout resolver. */
    std::vector<CheckEvent> sweepTimeouts(common::SimTime now,
                                          const TimeoutResolver &resolver);

    /**
     * Load shedding: evict groups until at most `cap` remain, each
     * eviction emitting a Degraded event so no state vanishes
     * silently. Zombies go first (they were already reported), then
     * the groups idle the longest; the most recently active state is
     * kept. Degraded events are operator health signals — a shed
     * group's verdict is *unknown*, so they must never be scored as
     * problem reports.
     */
    std::vector<CheckEvent> shedToCap(std::size_t cap,
                                      common::SimTime now);

    /**
     * Memory ceiling (seer-vault, DESIGN.md §13): evict
     * least-recently-active groups until approxRetainedBytes() fits
     * under `max_bytes`, with the same order, Degraded reporting, and
     * counters as shedToCap — the two shedding paths are one contract.
     * At least one group is always kept, so a ceiling below a single
     * group's footprint degrades to "keep only the newest state"
     * rather than thrashing. No-op when max_bytes is 0 (no ceiling).
     */
    std::vector<CheckEvent> shedToMemory(std::size_t max_bytes,
                                         common::SimTime now);

    /**
     * Deterministic estimate of checker state size in bytes, computed
     * only from state that saveState persists — mutable caches (group
     * signatures) are excluded so a restored checker and the
     * uninterrupted one make identical eviction decisions.
     */
    std::size_t approxRetainedBytes() const;

    /**
     * Serialise the full checking state (seer-vault, DESIGN.md §13):
     * counters, groups, removal tallies, identifier sets, the
     * group↔set relation, id allocators, the timeout horizon, and the
     * RNG. The routing index (postings, contents map) is derived state
     * and rebuilt on restore; the automaton set and config are the
     * caller's to re-supply.
     */
    void saveState(common::BinWriter &out) const;

    /**
     * Overwrite this checker from a saveState image taken against an
     * identical automaton vector (guard with modelFingerprint before
     * calling). On failure the stream is marked bad and the checker is
     * left cleared — construct a fresh one rather than continuing.
     */
    bool restoreState(common::BinReader &in);

    /**
     * Dependency-removal tallies accumulated by recovery (d) — the
     * input to refineFromRemovals (model-refinement feedback loop).
     */
    const RemovalCounts &dependencyRemovals() const
    {
        return removalCounts;
    }

    /**
     * End of stream: every remaining unaccepted group is reported as a
     * timeout (it never completed) and the state is cleared.
     */
    std::vector<CheckEvent> finish(common::SimTime now);

    /** Counters. */
    const CheckerStats &stats() const { return counters; }

    /** Groups currently tracked. */
    std::size_t activeGroups() const { return groups.size(); }

    /** Identifier sets currently tracked. */
    std::size_t activeIdentifierSets() const { return idsets.size(); }

    /**
     * Posting list of a token (id-set ids containing it), or nullptr
     * when no live set holds the token. Test/introspection surface of
     * the routing index.
     */
    const std::vector<std::uint64_t> *
    postingsFor(logging::IdToken token) const;

    /** Tokens currently carrying a non-empty posting list. */
    std::size_t postingTokens() const { return postings.size(); }

    /**
     * Full cross-check of the routing structures: every id-set token
     * appears in exactly one posting entry, no posting points at a
     * dead set, the contents map mirrors the live sets, and every
     * group↔set relation is bidirectional. O(state); test-only.
     */
    bool indexConsistent() const;

    /**
     * Attach an execution-lifecycle tracer (seer-scope, DESIGN.md
     * §11): one span per group from creation to its fate, annotated
     * with the Algorithm 2 outcome of every consumed message. Null
     * (the default) is the null sink — every hook below is a single
     * pointer test and the checker behaves bit-identically.
     */
    void setTracer(obs::ExecutionTracer *tracer_) { tracer = tracer_; }

    /**
     * Install the latency-anomaly criterion (seer-flight, DESIGN.md
     * §12): executions that accept logically but run over the mined
     * task-level budget are reported as LatencyAnomaly instead of
     * Accepted, with per-edge timings and the critical branch through
     * forks attached. Profiles are matched by task name; tasks without
     * a sampled profile stay exempt. An empty vector clears the
     * policy and restores bit-identical pre-flight behaviour.
     */
    void setLatencyPolicy(const std::vector<LatencyProfile> &profiles,
                          const LatencyCheckConfig &policy = {});

    /** True when a latency policy with at least one profile is set. */
    bool latencyPolicyActive() const { return !latencyProfiles.empty(); }

  private:
    struct IdSetEntry
    {
        IdentifierSet ids;
        std::vector<GroupId> groupIds;
    };

    CheckerConfig config;
    std::vector<const TaskAutomaton *> automatonSet;
    std::vector<char> knownTemplates; // indexed by TemplateId
    common::Rng rng;
    CheckerStats counters;

    std::map<GroupId, AutomatonGroup> groups;
    RemovalCounts removalCounts;
    std::map<std::uint64_t, IdSetEntry> idsets;
    std::map<GroupId, std::uint64_t> groupToSet;

    /**
     * Inverted routing index: token -> sorted-insertion list of the
     * id-set ids whose set contains the token. Maintained on set
     * creation, in-place expansion, and retirement; entries whose
     * lists drain are erased so the index never outgrows live state.
     */
    std::unordered_map<logging::IdToken, std::vector<std::uint64_t>>
        postings;

    /**
     * Exact-contents lookup for findOrCreateIdSet: token vector ->
     * ascending id-set ids with those exact contents (in-place
     * expansion can transiently alias two sets; the scan semantics
     * pick the lowest id, so the front() is the answer).
     */
    std::map<std::vector<logging::IdToken>, std::vector<std::uint64_t>>
        setsByContents;

    std::uint64_t nextGroupId = 1;
    std::uint64_t nextIdSetId = 1;
    std::uint64_t nextRivalSet = 1;

    bool templateKnown(logging::TemplateId tpl) const;

    /**
     * Identifier-set ids with the best overlap below the exclusive
     * bound (-1 = unbounded). `view` must be sorted-unique (one
     * dedup per message, done in feed). `tie_break` applies the
     * least-difference heuristic among equal overlaps; recovery (c)
     * retries without it so tie-break losers get their chance before
     * lower ranks. Dispatches to the indexed or scan implementation
     * per config.routingIndex; both return identical selections.
     */
    std::vector<std::uint64_t>
    selectIdSets(const std::vector<logging::IdToken> &view,
                 int max_overlap_exclusive, int *overlap_out,
                 bool tie_break) const;

    /** Reference implementation: linear scan over all live sets. */
    std::vector<std::uint64_t>
    selectIdSetsScan(const std::vector<logging::IdToken> &view,
                     int max_overlap_exclusive, int *overlap_out,
                     bool tie_break) const;

    /** Indexed implementation: posting-list accumulation. */
    std::vector<std::uint64_t>
    selectIdSetsIndexed(const std::vector<logging::IdToken> &view,
                        int max_overlap_exclusive, int *overlap_out,
                        bool tie_break) const;

    /** Candidate groups of the selected sets, deduped per config. */
    std::vector<GroupId>
    candidateGroups(const std::vector<std::uint64_t> &set_ids);

    /** Case 1 bookkeeping: expand or re-home the group's set. */
    void applyDecisiveIdUpdate(GroupId group,
                               const std::vector<logging::IdToken> &view);

    /**
     * Identifier-set entry with the given contents, reusing an
     * existing identical entry (the paper's I is a *set* of sets:
     * identical sets are one element, which is what lets the
     * equivalent-group heuristic collapse interchangeable groups).
     */
    std::uint64_t findOrCreateIdSet(IdentifierSet ids);

    // --- routing-index maintenance ------------------------------------

    /** Add a freshly created set to postings and the contents map. */
    void indexAddSet(std::uint64_t set_id, const IdSetEntry &entry);

    /** Remove a retiring set from postings and the contents map. */
    void indexRemoveSet(std::uint64_t set_id, const IdSetEntry &entry);

    /** Record `set_id` under `contents` in the contents map. */
    void contentsAdd(std::uint64_t set_id,
                     const std::vector<logging::IdToken> &contents);

    /** Drop `set_id` from under `contents` in the contents map. */
    void contentsRemove(std::uint64_t set_id,
                        const std::vector<logging::IdToken> &contents);

    /** Register a brand-new group with a fresh identifier set. */
    void registerGroup(AutomatonGroup &&group,
                       IdentifierSet initial_ids);

    /** Remove one group and its relation entries. */
    void eraseGroup(GroupId group);

    /** Collect the group and all its (live) descendants. */
    void collectDescendants(GroupId group,
                            std::vector<GroupId> &out) const;

    /** The paper's acceptance pruning, made deterministic by lineage. */
    void pruneLineageOnAccept(GroupId winner);

    /** True when a lineage-linked group consumed within the window. */
    bool lineageCovered(const AutomatonGroup &group, common::SimTime now,
                        double timeout) const;

    /** Largest timeout handed out so far (zombie-expiry horizon). */
    double maxResolvedTimeout = 0.0;

    /** Optional execution tracer (null = no tracing). */
    obs::ExecutionTracer *tracer = nullptr;

    /** Latency profiles by task name (empty = criterion off). */
    std::map<std::string, LatencyProfile> latencyProfiles;

    /** Budget rule applied to the mined quantiles. */
    LatencyCheckConfig latencyPolicy;

    /**
     * Fill the seer-flight fields of an acceptance event (timings,
     * budgets, critical path) from the accepting instance. Returns
     * true when the execution ran over its task-level budget.
     */
    bool annotateLatency(CheckEvent &event, const AutomatonGroup &group,
                         const AutomatonInstance &instance) const;

    /**
     * Message-clock time of the current feed/sweep, so generic
     * teardown paths (eraseGroup) can stamp span ends without the
     * reason-specific call sites threading a time through.
     */
    common::SimTime traceNow = 0.0;

    /** Close a group's span (no-op when untraced or already closed). */
    void traceEnd(const AutomatonGroup &group, common::SimTime time,
                  obs::SpanEnd reason) const;

    /** Build a report for a group. */
    CheckEvent makeEvent(CheckEventKind kind, const AutomatonGroup &group,
                         common::SimTime time) const;

    /** Handle acceptance on a set of touched groups. */
    void harvestAcceptance(const std::vector<GroupId> &touched,
                           common::SimTime now,
                           std::vector<CheckEvent> &events);

    /** Error-message criterion (paper §4, Problem Detection). */
    void applyErrorCriterion(const CheckMessage &message,
                             const std::vector<logging::IdToken> &view,
                             std::vector<CheckEvent> &events);
};

} // namespace cloudseer::core

#endif // CLOUDSEER_CORE_CHECKER_INTERLEAVED_CHECKER_HPP
