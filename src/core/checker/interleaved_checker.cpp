#include "core/checker/interleaved_checker.hpp"

#include <algorithm>
#include <string_view>

#include "common/error.hpp"
#include "obs/profiler.hpp"

namespace cloudseer::core {

using logging::IdToken;

InterleavedChecker::InterleavedChecker(
    const CheckerConfig &config_,
    std::vector<const TaskAutomaton *> automata)
    : config(config_), automatonSet(std::move(automata))
{
    CS_ASSERT(!automatonSet.empty(), "checker needs at least one automaton");
    for (const TaskAutomaton *automaton : automatonSet) {
        for (std::size_t e = 0; e < automaton->eventCount(); ++e) {
            logging::TemplateId tpl =
                automaton->event(static_cast<int>(e)).tpl;
            if (tpl >= knownTemplates.size())
                knownTemplates.resize(tpl + 1, 0);
            knownTemplates[tpl] = 1;
        }
    }
}

bool
InterleavedChecker::templateKnown(logging::TemplateId tpl) const
{
    return tpl != logging::kInvalidTemplate &&
           tpl < knownTemplates.size() && knownTemplates[tpl] != 0;
}

void
InterleavedChecker::setCertifiedTemplates(std::vector<char> certified)
{
    certifiedTemplates = std::move(certified);
    certFastActive = false;
}

std::size_t
InterleavedChecker::certifiedTemplateCount() const
{
    std::size_t n = 0;
    for (char bit : certifiedTemplates)
        n += bit != 0;
    return n;
}

void
InterleavedChecker::setLatencyPolicy(
    const std::vector<LatencyProfile> &profiles,
    const LatencyCheckConfig &policy)
{
    latencyProfiles.clear();
    for (const LatencyProfile &profile : profiles) {
        if (profile.hasSamples())
            latencyProfiles.emplace(profile.task, profile);
    }
    latencyPolicy = policy;
}

bool
InterleavedChecker::annotateLatency(CheckEvent &event,
                                    const AutomatonGroup &group,
                                    const AutomatonInstance &instance) const
{
    auto it = latencyProfiles.find(instance.automaton().name());
    if (it == latencyProfiles.end())
        return false;
    const LatencyProfile &profile = it->second;
    const TaskAutomaton &automaton = instance.automaton();
    const std::vector<common::SimTime> &when = instance.consumeTimes();

    event.totalElapsed = group.lastActivity() - group.createdAt();
    event.totalBudget =
        profile.total.count > 0
            ? latencyBudget(profile.total, latencyPolicy)
            : -1.0;

    for (const DependencyEdge &edge : automaton.edges()) {
        EdgeTiming timing;
        timing.from = edge.from;
        timing.to = edge.to;
        timing.fromTpl = automaton.event(edge.from).tpl;
        timing.toTpl = automaton.event(edge.to).tpl;
        timing.elapsed = std::max(
            0.0, when[static_cast<std::size_t>(edge.to)] -
                     when[static_cast<std::size_t>(edge.from)]);
        auto stats = profile.edges.find({edge.from, edge.to});
        if (stats != profile.edges.end() && stats->second.count > 0) {
            timing.budget = latencyBudget(stats->second, latencyPolicy);
            timing.exceeded = timing.elapsed > timing.budget;
        }
        event.edgeTimings.push_back(timing);
    }

    // Critical branch through forks/joins: walk back from the last
    // consumed event, at each join taking the predecessor that
    // finished latest — the branch that actually gated progress.
    int cursor = instance.lastConsumedEvent();
    if (cursor >= 0) {
        std::vector<int> path{cursor};
        while (!automaton.preds(cursor).empty()) {
            int slowest = -1;
            for (int pred : automaton.preds(cursor)) {
                if (slowest < 0 ||
                    when[static_cast<std::size_t>(pred)] >
                        when[static_cast<std::size_t>(slowest)]) {
                    slowest = pred;
                }
            }
            cursor = slowest;
            path.push_back(cursor);
        }
        event.criticalPath.assign(path.rbegin(), path.rend());
    }

    return event.totalBudget >= 0.0 &&
           event.totalElapsed > event.totalBudget;
}

std::vector<std::uint64_t>
InterleavedChecker::selectIdSets(const std::vector<IdToken> &view,
                                 int max_overlap_exclusive,
                                 int *overlap_out, bool tie_break) const
{
    return config.routingIndex
               ? selectIdSetsIndexed(view, max_overlap_exclusive,
                                     overlap_out, tie_break)
               : selectIdSetsScan(view, max_overlap_exclusive,
                                  overlap_out, tie_break);
}

std::vector<std::uint64_t>
InterleavedChecker::selectIdSetsScan(const std::vector<IdToken> &view,
                                     int max_overlap_exclusive,
                                     int *overlap_out,
                                     bool tie_break) const
{
    // Best overlap below the (optional) exclusive bound; ties broken by
    // least symmetric difference when configured (paper heuristic 1).
    int best = 0;
    for (const auto &[id, entry] : idsets) {
        int ov = entry.ids.overlap(view);
        if (max_overlap_exclusive >= 0 && ov >= max_overlap_exclusive)
            continue;
        best = std::max(best, ov);
    }
    if (overlap_out != nullptr)
        *overlap_out = best;
    std::vector<std::uint64_t> selected;
    if (best == 0)
        return selected;

    int least_diff = -1;
    for (const auto &[id, entry] : idsets) {
        int ov = entry.ids.overlap(view);
        if (ov != best)
            continue;
        if (max_overlap_exclusive >= 0 && ov >= max_overlap_exclusive)
            continue;
        if (!tie_break) {
            selected.push_back(id);
            continue;
        }
        int diff = entry.ids.symmetricDifference(view);
        if (least_diff == -1 || diff < least_diff) {
            least_diff = diff;
            selected.clear();
            selected.push_back(id);
        } else if (diff == least_diff) {
            selected.push_back(id);
        }
    }
    return selected;
}

std::vector<std::uint64_t>
InterleavedChecker::selectIdSetsIndexed(const std::vector<IdToken> &view,
                                        int max_overlap_exclusive,
                                        int *overlap_out,
                                        bool tie_break) const
{
    // Posting-list accumulation: a set's count of hits across the
    // message's distinct tokens IS its overlap, and any set sharing no
    // token has overlap 0 — which the scan path can never select
    // either (best == 0 returns empty; positive bounds are >= 2). The
    // candidates are sorted by set id so the selection order matches
    // the scan's ascending-map iteration exactly.
    std::vector<std::pair<std::uint64_t, int>> candidates;
    {
        std::unordered_map<std::uint64_t, int> counts;
        for (IdToken token : view) {
            auto it = postings.find(token);
            if (it == postings.end())
                continue;
            for (std::uint64_t set_id : it->second)
                ++counts[set_id];
        }
        candidates.assign(counts.begin(), counts.end());
        std::sort(candidates.begin(), candidates.end());
    }

    int best = 0;
    for (const auto &[set_id, ov] : candidates) {
        if (max_overlap_exclusive >= 0 && ov >= max_overlap_exclusive)
            continue;
        best = std::max(best, ov);
    }
    if (overlap_out != nullptr)
        *overlap_out = best;
    std::vector<std::uint64_t> selected;
    if (best == 0)
        return selected;

    int least_diff = -1;
    for (const auto &[set_id, ov] : candidates) {
        if (ov != best)
            continue;
        if (!tie_break) {
            selected.push_back(set_id);
            continue;
        }
        // |A Δ B| = |A| + |B| - 2|A ∩ B|; the overlap is already
        // known, so no merge is needed.
        int diff = static_cast<int>(idsets.at(set_id).ids.size()) +
                   static_cast<int>(view.size()) - 2 * ov;
        if (least_diff == -1 || diff < least_diff) {
            least_diff = diff;
            selected.clear();
            selected.push_back(set_id);
        } else if (diff == least_diff) {
            selected.push_back(set_id);
        }
    }
    return selected;
}

std::size_t
InterleavedChecker::equivalencePickIndex(std::size_t pool_size)
{
    // splitmix64 finalizer over (seed, record, draw ordinal): stateless,
    // so the choice depends only on the message, never on how many
    // draws happened before it — the property the sharded engine
    // (DESIGN.md §14) relies on to reproduce serial picks.
    std::uint64_t x = config.seed;
    x ^= 0x9e3779b97f4a7c15ULL * (currentRecord + 1);
    x += 0xbf58476d1ce4e5b9ULL * (static_cast<std::uint64_t>(pickSalt++) + 1);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x % pool_size);
}

std::vector<GroupId>
InterleavedChecker::candidateGroups(
    const std::vector<std::uint64_t> &set_ids)
{
    std::vector<GroupId> out;
    for (std::uint64_t set_id : set_ids) {
        auto set_it = idsets.find(set_id);
        if (set_it == idsets.end())
            continue;
        const std::vector<GroupId> &members = set_it->second.groupIds;
        if (!config.equivalentGroupDedup) {
            for (GroupId gid : members) {
                if (groups.count(gid))
                    out.push_back(gid);
            }
            continue;
        }
        // seer-prove fast path: a sole-member set yields at most one
        // class with a one-element pool — the member itself, with no
        // equivalence draw (pickSalt only advances for pools > 1). Skip
        // building the signature classes; the result is identical.
        if (certFastActive && members.size() == 1) {
            if (groups.count(members.front()))
                out.push_back(members.front());
            continue;
        }
        // Paper heuristic 2: among equivalent groups under one set,
        // randomly select a single representative. Classes are keyed
        // by the cached state signature (equal signatures ⟺
        // equivalentTo), in first-member order — the same classes the
        // pairwise comparison used to build, without the O(members²)
        // instance-state walks.
        std::vector<std::vector<GroupId>> classes;
        std::unordered_map<std::string_view, std::size_t> class_of;
        for (GroupId gid : members) {
            auto git = groups.find(gid);
            if (git == groups.end())
                continue;
            std::string_view sig = git->second.stateSignature();
            auto [cls_it, fresh] =
                class_of.try_emplace(sig, classes.size());
            if (fresh)
                classes.emplace_back();
            classes[cls_it->second].push_back(gid);
        }
        for (auto &cls : classes) {
            // Prefer live members: a zombie that is state-equivalent
            // to a live group must not steal its messages (silent
            // absorption is a last resort, or starved live groups
            // zombify in a self-sustaining cascade).
            std::vector<GroupId> live;
            for (GroupId gid : cls) {
                if (!groups.at(gid).zombie())
                    live.push_back(gid);
            }
            std::vector<GroupId> &pool = live.empty() ? cls : live;
            GroupId chosen =
                pool.size() == 1
                    ? pool.front()
                    : pool[equivalencePickIndex(pool.size())];
            out.push_back(chosen);
        }
    }
    // A group can be reachable through several sets; keep it once.
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

void
InterleavedChecker::contentsAdd(std::uint64_t set_id,
                                const std::vector<IdToken> &contents)
{
    std::vector<std::uint64_t> &ids = setsByContents[contents];
    ids.insert(std::lower_bound(ids.begin(), ids.end(), set_id),
               set_id);
}

void
InterleavedChecker::contentsRemove(std::uint64_t set_id,
                                   const std::vector<IdToken> &contents)
{
    auto it = setsByContents.find(contents);
    CS_ASSERT(it != setsByContents.end(), "contents-map entry missing");
    auto &ids = it->second;
    ids.erase(std::remove(ids.begin(), ids.end(), set_id), ids.end());
    if (ids.empty())
        setsByContents.erase(it);
}

void
InterleavedChecker::indexAddSet(std::uint64_t set_id,
                                const IdSetEntry &entry)
{
    for (IdToken token : entry.ids.values())
        postings[token].push_back(set_id);
    contentsAdd(set_id, entry.ids.values());
}

void
InterleavedChecker::indexRemoveSet(std::uint64_t set_id,
                                   const IdSetEntry &entry)
{
    for (IdToken token : entry.ids.values()) {
        auto it = postings.find(token);
        CS_ASSERT(it != postings.end(), "posting list missing");
        auto &list = it->second;
        list.erase(std::remove(list.begin(), list.end(), set_id),
                   list.end());
        if (list.empty())
            postings.erase(it);
    }
    contentsRemove(set_id, entry.ids.values());
}

std::uint64_t
InterleavedChecker::findOrCreateIdSet(IdentifierSet ids)
{
    if (config.routingIndex) {
        auto it = setsByContents.find(ids.values());
        if (it != setsByContents.end())
            return it->second.front();
    } else {
        for (auto &[set_id, entry] : idsets) {
            if (entry.ids.values() == ids.values())
                return set_id;
        }
    }
    std::uint64_t set_id = nextIdSetId++;
    if (setBirths != nullptr)
        setBirths->push_back(set_id);
    IdSetEntry entry;
    entry.ids = std::move(ids);
    auto [pos, inserted] = idsets.emplace(set_id, std::move(entry));
    CS_ASSERT(inserted, "identifier-set id collision");
    indexAddSet(set_id, pos->second);
    return set_id;
}

void
InterleavedChecker::registerGroup(AutomatonGroup &&group,
                                  IdentifierSet initial_ids)
{
    GroupId gid = group.id();
    std::uint64_t set_id = findOrCreateIdSet(std::move(initial_ids));
    idsets.at(set_id).groupIds.push_back(gid);
    groupToSet[gid] = set_id;
    groups.emplace(gid, std::move(group));
    if (tracer != nullptr)
        tracer->beginSpan(gid, traceNow);
}

void
InterleavedChecker::traceEnd(const AutomatonGroup &group,
                             common::SimTime time,
                             obs::SpanEnd reason) const
{
    if (tracer == nullptr)
        return;
    const AutomatonInstance *instance = group.acceptingInstance();
    if (instance == nullptr && !group.instances().empty())
        instance = &group.instances().front();
    tracer->endSpan(group.id(), time, reason,
                    instance != nullptr ? instance->automaton().name()
                                        : std::string(),
                    group.history().size());
}

void
InterleavedChecker::applyDecisiveIdUpdate(
    GroupId group, const std::vector<IdToken> &view)
{
    auto map_it = groupToSet.find(group);
    CS_ASSERT(map_it != groupToSet.end(), "group without identifier set");
    auto set_it = idsets.find(map_it->second);
    CS_ASSERT(set_it != idsets.end(), "dangling identifier-set id");
    IdSetEntry &entry = set_it->second;

    if (entry.groupIds.size() == 1) {
        // seer-prove fast path: when every message token is already in
        // the set, the insert below adds nothing — the remove/add
        // re-key and the posting scan are identity operations. One
        // linear overlap check skips both map round-trips.
        if (certFastActive &&
            entry.ids.overlap(view) == static_cast<int>(view.size())) {
            return;
        }
        // Sole owner: expand in place (the paper's ID ∪ m.Sv). The
        // index follows: new tokens gain a posting, and the set is
        // re-keyed under its new contents.
        contentsRemove(set_it->first, entry.ids.values());
        std::vector<IdToken> added;
        entry.ids.insert(view, &added);
        for (IdToken token : added)
            postings[token].push_back(set_it->first);
        contentsAdd(set_it->first, entry.ids.values());
        return;
    }
    // Shared set: split off an expanded copy for this group.
    entry.groupIds.erase(std::remove(entry.groupIds.begin(),
                                     entry.groupIds.end(), group),
                         entry.groupIds.end());
    IdentifierSet expanded = entry.ids;
    expanded.insert(view);
    std::uint64_t set_id = findOrCreateIdSet(std::move(expanded));
    idsets.at(set_id).groupIds.push_back(group);
    map_it->second = set_id;
}

void
InterleavedChecker::eraseGroup(GroupId group)
{
    auto it = groups.find(group);
    if (it == groups.end())
        return;
    // Default span end for teardown without a report; sites with a
    // real fate (accept/error/timeout/shed) close the span first and
    // this becomes a no-op.
    traceEnd(it->second, traceNow, obs::SpanEnd::Pruned);
    auto map_it = groupToSet.find(group);
    if (map_it != groupToSet.end()) {
        auto set_it = idsets.find(map_it->second);
        if (set_it != idsets.end()) {
            auto &members = set_it->second.groupIds;
            members.erase(std::remove(members.begin(), members.end(),
                                      group),
                          members.end());
            if (members.empty()) {
                indexRemoveSet(set_it->first, set_it->second);
                idsets.erase(set_it);
            }
        }
        groupToSet.erase(map_it);
    }
    groups.erase(it);
}

void
InterleavedChecker::collectDescendants(GroupId group,
                                       std::vector<GroupId> &out) const
{
    auto it = groups.find(group);
    if (it == groups.end())
        return;
    for (GroupId child : it->second.children()) {
        if (!groups.count(child))
            continue;
        out.push_back(child);
        collectDescendants(child, out);
    }
}

void
InterleavedChecker::pruneLineageOnAccept(GroupId winner)
{
    // seer-prove fast path: a winner with no rival set, no parent, and
    // no children removes exactly itself — addRivalsOf is a no-op on
    // rivalSet() == 0, the ancestor walk never starts, and there are
    // no descendants. Skip the removal-set construction.
    if (certFastActive) {
        auto it = groups.find(winner);
        if (it != groups.end() && it->second.rivalSet() == 0 &&
            it->second.parent() == 0 && it->second.children().empty()) {
            eraseGroup(winner);
            return;
        }
    }

    std::vector<GroupId> removal;

    auto addRivalsOf = [this, &removal](GroupId gid) {
        auto it = groups.find(gid);
        if (it == groups.end() || it->second.rivalSet() == 0)
            return;
        std::uint64_t rival_set = it->second.rivalSet();
        for (const auto &[other_id, other] : groups) {
            if (other_id != gid && other.rivalSet() == rival_set) {
                removal.push_back(other_id);
                collectDescendants(other_id, removal);
            }
        }
    };

    // The winner, everything derived from it, its stale ancestors,
    // each level's rival hypotheses, and their derivations.
    removal.push_back(winner);
    collectDescendants(winner, removal);
    addRivalsOf(winner);

    GroupId ancestor = groups.at(winner).parent();
    while (ancestor != 0) {
        auto it = groups.find(ancestor);
        if (it == groups.end())
            break;
        GroupId next = it->second.parent();
        removal.push_back(ancestor);
        collectDescendants(ancestor, removal);
        addRivalsOf(ancestor);
        ancestor = next;
    }

    std::sort(removal.begin(), removal.end());
    removal.erase(std::unique(removal.begin(), removal.end()),
                  removal.end());
    for (GroupId gid : removal)
        eraseGroup(gid);
}

CheckEvent
InterleavedChecker::makeEvent(CheckEventKind kind,
                              const AutomatonGroup &group,
                              common::SimTime time) const
{
    CheckEvent event;
    event.kind = kind;
    event.candidateTasks = group.candidateTaskNames();
    const AutomatonInstance *instance = group.acceptingInstance();
    if (instance == nullptr && !group.instances().empty())
        instance = &group.instances().front();
    if (instance != nullptr) {
        event.taskName = instance->automaton().name();
        for (int e : instance->frontier())
            event.frontierTemplates.push_back(
                instance->automaton().event(e).tpl);
        event.expectedTemplates = instance->expectedTemplates();
    }
    for (const ConsumedMessage &msg : group.history())
        event.records.push_back(msg.record);
    auto rel = groupToSet.find(group.id());
    if (rel != groupToSet.end()) {
        auto set_it = idsets.find(rel->second);
        if (set_it != idsets.end())
            event.identifiers = set_it->second.ids.values();
    }
    event.startTime = group.createdAt();
    event.time = time;
    event.group = group.id();
    return event;
}

void
InterleavedChecker::harvestAcceptance(const std::vector<GroupId> &touched,
                                      common::SimTime now,
                                      std::vector<CheckEvent> &events)
{
    for (GroupId gid : touched) {
        auto it = groups.find(gid);
        if (it == groups.end())
            continue; // pruned by an earlier winner this round
        const AutomatonInstance *accepted =
            it->second.acceptingInstance();
        if (accepted == nullptr)
            continue;
        if (!it->second.zombie()) {
            ++counters.accepted;
            CheckEvent event =
                makeEvent(CheckEventKind::Accepted, it->second, now);
            if (latencyPolicyActive() &&
                annotateLatency(event, it->second, *accepted)) {
                event.kind = CheckEventKind::LatencyAnomaly;
                ++counters.latencyAnomalies;
            }
            if (tracer != nullptr && latencyPolicyActive() &&
                !event.edgeTimings.empty()) {
                std::vector<obs::SpanTransition> slices;
                slices.reserve(event.edgeTimings.size());
                const std::vector<common::SimTime> &when =
                    accepted->consumeTimes();
                for (const EdgeTiming &timing : event.edgeTimings) {
                    slices.push_back(
                        {"e" + std::to_string(timing.from) + "->e" +
                             std::to_string(timing.to),
                         when[static_cast<std::size_t>(timing.from)],
                         timing.elapsed, timing.exceeded});
                }
                tracer->addTransitions(gid, std::move(slices));
            }
            traceEnd(it->second, now, obs::SpanEnd::Accepted);
            events.push_back(std::move(event));
        }
        pruneLineageOnAccept(gid);
    }
}

void
InterleavedChecker::applyErrorCriterion(const CheckMessage &message,
                                        const std::vector<IdToken> &view,
                                        std::vector<CheckEvent> &events)
{
    ++counters.errorsReported;

    // Most likely group: best identifier overlap, preferring live
    // (non-zombie) hypotheses.
    int overlap = 0;
    std::vector<std::uint64_t> sel = selectIdSets(
        view, -1, &overlap, config.tieBreakLeastDifference);
    GroupId chosen = 0;
    for (std::uint64_t set_id : sel) {
        auto set_it = idsets.find(set_id);
        if (set_it == idsets.end())
            continue;
        for (GroupId gid : set_it->second.groupIds) {
            auto git = groups.find(gid);
            if (git == groups.end())
                continue;
            if (chosen == 0 || (groups.at(chosen).zombie() &&
                                !git->second.zombie())) {
                chosen = gid;
            }
        }
    }

    CheckEvent event;
    if (chosen != 0) {
        traceEnd(groups.at(chosen), message.time,
                 obs::SpanEnd::Diverged);
        event = makeEvent(CheckEventKind::ErrorDetected,
                          groups.at(chosen), message.time);
        // The paper stops choosing this instance for further messages.
        pruneLineageOnAccept(chosen);
    } else {
        event.kind = CheckEventKind::ErrorDetected;
        event.taskName = "(unassociated)";
        event.time = message.time;
    }
    event.records.push_back(message.record);
    events.push_back(event);
}

std::vector<CheckEvent>
InterleavedChecker::feed(const CheckMessage &message)
{
    // seer-probe: Algorithm 2 samples as "check" even when this
    // engine is driven directly (bench paths), not via the monitor.
    // Inside a shard worker the per-shard lane wins — re-assert it so
    // shard attribution survives this nested scope.
    const bool in_shard =
        obs::currentProfStage() == obs::ProfStage::ShardCheck;
    obs::StageScope profScope(in_shard ? obs::ProfStage::ShardCheck
                                       : obs::ProfStage::Check,
                              in_shard ? obs::currentProfShard() : 0);
    std::vector<CheckEvent> events;
    ++counters.messages;
    traceNow = message.time;
    currentRecord = message.record;
    pickSalt = 0;
    certFastActive = message.tpl < certifiedTemplates.size() &&
                     certifiedTemplates[message.tpl] != 0;

    // One dedup per message: every overlap / difference / insert below
    // works on this sorted-unique token view.
    const std::vector<IdToken> view =
        IdentifierSet::dedupSorted(message.identifiers);

    // Recovery (a), hoisted: a template outside every automaton's Σ can
    // never be consumed. Non-error messages pass through; error
    // messages trigger the error-message criterion.
    if (!templateKnown(message.tpl)) {
        if (logging::isErrorLevel(message.level)) {
            applyErrorCriterion(message, view, events);
        } else {
            ++counters.recoveredPassUnknown;
        }
        return events;
    }

    // --- selection (Algorithm 2 lines 1-3) ----------------------------
    int best_overlap = 0;
    std::vector<GroupId> candidates;
    if (config.identifierRouting && !view.empty()) {
        std::vector<std::uint64_t> sel =
            selectIdSets(view, -1, &best_overlap,
                         config.tieBreakLeastDifference);
        candidates = candidateGroups(sel);
    } else {
        for (const auto &[gid, group] : groups)
            candidates.push_back(gid);
    }

    // --- trial consumption (lines 4-8) --------------------------------
    counters.consumeAttempts += candidates.size();
    std::vector<GroupId> consuming;
    for (GroupId gid : candidates) {
        auto it = groups.find(gid);
        if (it != groups.end() && it->second.canConsume(message.tpl))
            consuming.push_back(gid);
    }

    auto doDecisive = [this, &message, &view, &events](GroupId gid) {
        AutomatonGroup &group = groups.at(gid);
        bool ok =
            group.consume(message.tpl, message.record, message.time);
        CS_ASSERT(ok, "decisive consumption failed after canConsume");
        if (tracer != nullptr)
            tracer->annotate(gid, message.time,
                             obs::ConsumeAnnotation::Decisive);
        applyDecisiveIdUpdate(gid, view);
        harvestAcceptance({gid}, message.time, events);
    };

    auto doAmbiguous = [this, &message, &view,
                        &events](std::vector<GroupId> gids) {
        // Case (2): fork a consuming clone of every contender; all
        // clones share one pooled identifier set (ID1 ∪ ID2 ∪ m.Sv).
        // Bounded fan-out: prefer the most-developed hypotheses.
        if (gids.size() > config.maxForkFanout) {
            std::stable_sort(
                gids.begin(), gids.end(),
                [this](GroupId a, GroupId b) {
                    return groups.at(a).history().size() >
                           groups.at(b).history().size();
                });
            gids.resize(config.maxForkFanout);
        }
        IdentifierSet pooled;
        std::uint64_t rival_set = nextRivalSet++;
        if (rivalBirths != nullptr)
            ++*rivalBirths;
        std::vector<GroupId> touched;
        for (GroupId gid : gids) {
            auto set_it = idsets.find(groupToSet.at(gid));
            if (set_it != idsets.end())
                pooled.unionWith(set_it->second.ids);
        }
        pooled.insert(view);
        std::uint64_t set_id = findOrCreateIdSet(std::move(pooled));
        for (GroupId gid : gids) {
            GroupId clone_id = nextGroupId++;
            if (groupBirths != nullptr)
                groupBirths->push_back(clone_id);
            AutomatonGroup clone = groups.at(gid).cloneAs(clone_id);
            bool ok = clone.consume(message.tpl, message.record,
                                    message.time);
            CS_ASSERT(ok, "clone consumption failed after canConsume");
            clone.setRivalSet(rival_set);
            groups.at(gid).addChild(clone_id);
            idsets.at(set_id).groupIds.push_back(clone_id);
            groupToSet[clone_id] = set_id;
            groups.emplace(clone_id, std::move(clone));
            if (tracer != nullptr) {
                tracer->beginSpan(clone_id, message.time);
                tracer->annotate(clone_id, message.time,
                                 obs::ConsumeAnnotation::Ambiguous);
            }
            touched.push_back(clone_id);
        }
        harvestAcceptance(touched, message.time, events);
    };

    if (consuming.size() == 1) {
        ++counters.decisive;
        doDecisive(consuming.front());
        return events;
    }
    if (consuming.size() > 1) {
        ++counters.ambiguous;
        if (!config.identifierRouting) {
            // Brute-force mode has no identifier sets to pool the
            // alternatives under; forking every contender for every
            // message is exponential. Resolve to the most-developed
            // hypothesis instead — the ablation measures the probing
            // cost the identifier heuristic avoids (paper §5.5).
            GroupId best = consuming.front();
            for (GroupId gid : consuming) {
                if (groups.at(gid).history().size() >
                    groups.at(best).history().size()) {
                    best = gid;
                }
            }
            doDecisive(best);
            return events;
        }
        doAmbiguous(consuming);
        return events;
    }

    // --- divergence recovery (case 3) ----------------------------------
    // (b) the message may start a new sequence.
    {
        AutomatonGroup fresh(nextGroupId, automatonSet);
        if (fresh.canConsume(message.tpl)) {
            ++nextGroupId;
            if (groupBirths != nullptr)
                groupBirths->push_back(fresh.id());
            ++counters.recoveredNewSequence;
            bool ok = fresh.consume(message.tpl, message.record,
                                    message.time);
            CS_ASSERT(ok, "fresh group failed to consume");
            GroupId gid = fresh.id();
            registerGroup(std::move(fresh), IdentifierSet(view));
            if (tracer != nullptr)
                tracer->annotate(
                    gid, message.time,
                    obs::ConsumeAnnotation::RecoveryNewSequence);
            harvestAcceptance({gid}, message.time, events);
            return events;
        }
    }

    // (c) the chosen identifier set may be wrong: first retry the
    // tie-break losers at the best overlap, then walk down the
    // overlap ranks.
    if (config.identifierRouting && !view.empty()) {
        auto tryLevel =
            [this, &message,
             &events](const std::vector<std::uint64_t> &sel,
                      auto &doDecisiveFn, auto &doAmbiguousFn) {
                std::vector<GroupId> level_groups =
                    candidateGroups(sel);
                counters.consumeAttempts += level_groups.size();
                std::vector<GroupId> takers;
                for (GroupId gid : level_groups) {
                    auto it = groups.find(gid);
                    if (it != groups.end() &&
                        it->second.canConsume(message.tpl)) {
                        takers.push_back(gid);
                    }
                }
                if (takers.empty())
                    return false;
                ++counters.recoveredOtherSet;
                if (tracer != nullptr) {
                    for (GroupId gid : takers)
                        tracer->annotate(
                            gid, message.time,
                            obs::ConsumeAnnotation::RecoveryOtherSet);
                }
                if (takers.size() == 1)
                    doDecisiveFn(takers.front());
                else
                    doAmbiguousFn(takers);
                return true;
            };

        if (config.tieBreakLeastDifference && best_overlap > 0) {
            int level = 0;
            std::vector<std::uint64_t> sel =
                selectIdSets(view, -1, &level, /*tie_break=*/false);
            if (tryLevel(sel, doDecisive, doAmbiguous))
                return events;
        }
        int bound = best_overlap;
        while (bound > 1) {
            int level = 0;
            std::vector<std::uint64_t> sel =
                selectIdSets(view, bound, &level,
                             config.tieBreakLeastDifference);
            if (sel.empty() || level == 0)
                break;
            if (tryLevel(sel, doDecisive, doAmbiguous))
                return events;
            bound = level;
        }
    }

    // (d) a modeled dependency may be false: repair on the best-match
    // groups (paper Figure 4). Removed edges feed the refinement loop.
    if (config.falseDependencyRemoval) {
        for (GroupId gid : candidates) {
            auto it = groups.find(gid);
            if (it == groups.end())
                continue;
            std::vector<AutomatonGroup::RepairedEdge> repaired;
            if (it->second.consumeWithRepair(message.tpl, message.record,
                                             message.time, &repaired)) {
                ++counters.recoveredFalseDependency;
                if (tracer != nullptr)
                    tracer->annotate(gid, message.time,
                                     obs::ConsumeAnnotation::
                                         RecoveryFalseDependency);
                for (const AutomatonGroup::RepairedEdge &edge :
                     repaired) {
                    ++removalCounts[edge.automaton->name()]
                                   [{edge.from, edge.to}];
                }
                applyDecisiveIdUpdate(gid, view);
                harvestAcceptance({gid}, message.time, events);
                return events;
            }
        }
    }

    if (logging::isErrorLevel(message.level)) {
        applyErrorCriterion(message, view, events);
        return events;
    }

    ++counters.unmatched;
    return events;
}

bool
InterleavedChecker::lineageCovered(const AutomatonGroup &group,
                                   common::SimTime now,
                                   double timeout) const
{
    auto recent = [now, timeout](const AutomatonGroup &g) {
        return now - g.lastActivity() <= timeout;
    };

    auto parent_it = groups.find(group.parent());
    if (parent_it != groups.end() && recent(parent_it->second))
        return true;

    std::vector<GroupId> descendants;
    collectDescendants(group.id(), descendants);
    for (GroupId gid : descendants) {
        if (recent(groups.at(gid)))
            return true;
    }

    if (group.rivalSet() != 0) {
        for (const auto &[gid, other] : groups) {
            if (gid != group.id() &&
                other.rivalSet() == group.rivalSet() && recent(other)) {
                return true;
            }
        }
    }
    return false;
}

std::vector<CheckEvent>
InterleavedChecker::sweepTimeouts(common::SimTime now, double timeout)
{
    return sweepTimeouts(
        now, [timeout](const std::vector<std::string> &) {
            return timeout;
        });
}

std::vector<CheckEvent>
InterleavedChecker::sweepTimeouts(common::SimTime now,
                                  const TimeoutResolver &resolver)
{
    std::vector<CheckEvent> events;
    traceNow = now;
    std::vector<GroupId> snapshot;
    snapshot.reserve(groups.size());
    for (const auto &[gid, group] : groups)
        snapshot.push_back(gid);

    for (GroupId gid : snapshot) {
        auto it = groups.find(gid);
        if (it == groups.end())
            continue;
        AutomatonGroup &group = it->second;
        double timeout = resolver(group.candidateTaskNames());
        maxResolvedTimeout = std::max(maxResolvedTimeout, timeout);
        if (group.zombie()) {
            // Zombies linger to absorb late messages, then fade.
            if (now - group.lastActivity() > 3.0 * maxResolvedTimeout)
                eraseGroup(gid);
            continue;
        }
        if (now - group.lastActivity() <= timeout)
            continue;
        if (config.timeoutSuppression && lineageCovered(group, now,
                                                        timeout)) {
            ++counters.timeoutsSuppressed;
            eraseGroup(gid);
            continue;
        }
        ++counters.timeoutsReported;
        traceEnd(group, now, obs::SpanEnd::TimedOut);
        events.push_back(makeEvent(CheckEventKind::Timeout, group, now));
        if (config.zombieAbsorption)
            group.markZombie();
        else
            eraseGroup(gid);
    }
    return events;
}

std::vector<CheckEvent>
InterleavedChecker::shedToCap(std::size_t cap, common::SimTime now)
{
    std::vector<CheckEvent> events;
    traceNow = now;
    if (groups.size() <= cap)
        return events;

    // Eviction order: zombies first (already reported; pure state),
    // then least-recently-active. Ties fall back to the older group
    // id, which is deterministic.
    std::vector<GroupId> order;
    order.reserve(groups.size());
    for (const auto &[gid, group] : groups)
        order.push_back(gid);
    std::sort(order.begin(), order.end(),
              [this](GroupId a, GroupId b) {
                  const AutomatonGroup &ga = groups.at(a);
                  const AutomatonGroup &gb = groups.at(b);
                  if (ga.zombie() != gb.zombie())
                      return ga.zombie();
                  if (ga.lastActivity() != gb.lastActivity())
                      return ga.lastActivity() < gb.lastActivity();
                  return a < b;
              });

    std::size_t to_shed = groups.size() - cap;
    for (std::size_t i = 0; i < to_shed && i < order.size(); ++i) {
        auto it = groups.find(order[i]);
        if (it == groups.end())
            continue;
        ++counters.groupsShed;
        traceEnd(it->second, now, obs::SpanEnd::Shed);
        events.push_back(
            makeEvent(CheckEventKind::Degraded, it->second, now));
        eraseGroup(order[i]);
    }
    return events;
}

std::vector<CheckEvent>
InterleavedChecker::finish(common::SimTime now)
{
    std::vector<CheckEvent> events;
    traceNow = now;
    std::vector<GroupId> snapshot;
    for (const auto &[gid, group] : groups)
        snapshot.push_back(gid);
    for (GroupId gid : snapshot) {
        auto it = groups.find(gid);
        if (it == groups.end())
            continue;
        if (!it->second.zombie()) {
            traceEnd(it->second, now, obs::SpanEnd::EndOfStream);
            events.push_back(makeEvent(CheckEventKind::Timeout,
                                       it->second, now));
        }
        eraseGroup(gid);
    }
    idsets.clear();
    groupToSet.clear();
    postings.clear();
    setsByContents.clear();
    return events;
}

const std::vector<std::uint64_t> *
InterleavedChecker::postingsFor(IdToken token) const
{
    auto it = postings.find(token);
    return it == postings.end() ? nullptr : &it->second;
}

bool
InterleavedChecker::indexConsistent() const
{
    // Every live set's tokens each carry exactly one posting entry…
    std::size_t expected_postings = 0;
    for (const auto &[set_id, entry] : idsets) {
        expected_postings += entry.ids.size();
        for (IdToken token : entry.ids.values()) {
            auto it = postings.find(token);
            if (it == postings.end())
                return false;
            if (std::count(it->second.begin(), it->second.end(),
                           set_id) != 1) {
                return false;
            }
        }
        // …the contents map knows the set…
        auto cit = setsByContents.find(entry.ids.values());
        if (cit == setsByContents.end() ||
            std::count(cit->second.begin(), cit->second.end(),
                       set_id) != 1) {
            return false;
        }
        // …and every member group points back at the set.
        for (GroupId gid : entry.groupIds) {
            if (!groups.count(gid))
                return false;
            auto git = groupToSet.find(gid);
            if (git == groupToSet.end() || git->second != set_id)
                return false;
        }
    }
    // …and no posting or contents entry points at a dead set.
    std::size_t actual_postings = 0;
    for (const auto &[token, list] : postings) {
        if (list.empty())
            return false;
        actual_postings += list.size();
        for (std::uint64_t set_id : list) {
            auto it = idsets.find(set_id);
            if (it == idsets.end() || !it->second.ids.contains(token))
                return false;
        }
    }
    if (actual_postings != expected_postings)
        return false;
    std::size_t contents_ids = 0;
    for (const auto &[contents, ids] : setsByContents) {
        if (ids.empty() || !std::is_sorted(ids.begin(), ids.end()))
            return false;
        contents_ids += ids.size();
        for (std::uint64_t set_id : ids) {
            auto it = idsets.find(set_id);
            if (it == idsets.end() ||
                it->second.ids.values() != contents) {
                return false;
            }
        }
    }
    if (contents_ids != idsets.size())
        return false;
    // Every group is reachable from its set.
    for (const auto &[gid, set_id] : groupToSet) {
        auto it = idsets.find(set_id);
        if (it == idsets.end())
            return false;
        const auto &members = it->second.groupIds;
        if (std::count(members.begin(), members.end(), gid) != 1)
            return false;
    }
    return groupToSet.size() == groups.size();
}

std::uint64_t
modelFingerprint(const std::vector<const TaskAutomaton *> &automata)
{
    std::uint64_t hash = 1469598103934665603ULL; // FNV-1a offset basis
    auto mixByte = [&hash](std::uint8_t byte) {
        hash ^= byte;
        hash *= 1099511628211ULL; // FNV-1a prime
    };
    auto mix = [&mixByte](std::uint64_t value) {
        for (int shift = 0; shift < 64; shift += 8)
            mixByte(static_cast<std::uint8_t>(value >> shift));
    };
    auto mixString = [&mixByte, &mix](const std::string &s) {
        mix(s.size());
        for (char c : s)
            mixByte(static_cast<std::uint8_t>(c));
    };
    mix(automata.size());
    for (const TaskAutomaton *automaton : automata) {
        mixString(automaton->name());
        mix(automaton->eventCount());
        for (std::size_t e = 0; e < automaton->eventCount(); ++e) {
            const EventNode &node = automaton->event(static_cast<int>(e));
            mix(node.tpl);
            mix(static_cast<std::uint64_t>(node.occurrence));
        }
        mix(automaton->edges().size());
        for (const DependencyEdge &edge : automaton->edges()) {
            mix(static_cast<std::uint64_t>(edge.from));
            mix(static_cast<std::uint64_t>(edge.to));
            mixByte(edge.strong ? 1 : 0);
        }
    }
    return hash;
}

std::vector<CheckEvent>
InterleavedChecker::shedToMemory(std::size_t max_bytes,
                                 common::SimTime now)
{
    std::vector<CheckEvent> events;
    traceNow = now;
    if (max_bytes == 0)
        return events;
    std::size_t retained = approxRetainedBytes();
    if (retained <= max_bytes)
        return events;

    // Identical eviction order to shedToCap: zombies first, then
    // least-recently-active, ties to the older id — the two shedding
    // paths are one contract, differing only in the stop condition.
    std::vector<GroupId> order;
    order.reserve(groups.size());
    for (const auto &[gid, group] : groups)
        order.push_back(gid);
    std::sort(order.begin(), order.end(),
              [this](GroupId a, GroupId b) {
                  const AutomatonGroup &ga = groups.at(a);
                  const AutomatonGroup &gb = groups.at(b);
                  if (ga.zombie() != gb.zombie())
                      return ga.zombie();
                  if (ga.lastActivity() != gb.lastActivity())
                      return ga.lastActivity() < gb.lastActivity();
                  return a < b;
              });

    for (GroupId gid : order) {
        if (retained <= max_bytes || groups.size() <= 1)
            break;
        auto it = groups.find(gid);
        if (it == groups.end())
            continue;
        std::size_t group_bytes = it->second.approxRetainedBytes();
        ++counters.groupsShed;
        traceEnd(it->second, now, obs::SpanEnd::Shed);
        events.push_back(
            makeEvent(CheckEventKind::Degraded, it->second, now));
        eraseGroup(gid);
        retained -= std::min(retained, group_bytes);
    }
    return events;
}

std::size_t
InterleavedChecker::approxRetainedBytes() const
{
    // Bookkeeping overhead constants are rough node-size guesses; the
    // point is a deterministic, monotone measure over persisted state,
    // not byte-exact accounting.
    std::size_t bytes = 0;
    for (const auto &[gid, group] : groups)
        bytes += group.approxRetainedBytes() + 48;
    for (const auto &[set_id, entry] : idsets) {
        // x2 on tokens: the postings and contents maps mirror every
        // live set's token list.
        bytes += 2 * entry.ids.size() * sizeof(IdToken) +
                 entry.groupIds.size() * sizeof(GroupId) + 96;
    }
    bytes += groupToSet.size() * 48;
    for (const auto &[name, edges] : removalCounts)
        bytes += name.size() + edges.size() * 24 + 64;
    return bytes;
}

void
InterleavedChecker::saveState(common::BinWriter &out) const
{
    out.writeU64(counters.messages);
    out.writeU64(counters.decisive);
    out.writeU64(counters.ambiguous);
    out.writeU64(counters.recoveredPassUnknown);
    out.writeU64(counters.recoveredNewSequence);
    out.writeU64(counters.recoveredOtherSet);
    out.writeU64(counters.recoveredFalseDependency);
    out.writeU64(counters.unmatched);
    out.writeU64(counters.errorsReported);
    out.writeU64(counters.timeoutsReported);
    out.writeU64(counters.timeoutsSuppressed);
    out.writeU64(counters.latencyAnomalies);
    out.writeU64(counters.groupsShed);
    out.writeU64(counters.accepted);
    out.writeU64(counters.consumeAttempts);

    out.writeU64(groups.size());
    for (const auto &[gid, group] : groups)
        group.saveState(out, automatonSet);

    out.writeU64(removalCounts.size());
    for (const auto &[name, edges] : removalCounts) {
        out.writeString(name);
        out.writeU64(edges.size());
        for (const auto &[edge, count] : edges) {
            out.writeI64(edge.first);
            out.writeI64(edge.second);
            out.writeI64(count);
        }
    }

    out.writeU64(idsets.size());
    for (const auto &[set_id, entry] : idsets) {
        out.writeU64(set_id);
        out.writeU32Vector(entry.ids.values());
        out.writeU64Vector(entry.groupIds);
    }

    out.writeU64(groupToSet.size());
    for (const auto &[gid, set_id] : groupToSet) {
        out.writeU64(gid);
        out.writeU64(set_id);
    }

    out.writeU64(nextGroupId);
    out.writeU64(nextIdSetId);
    out.writeU64(nextRivalSet);
    out.writeF64(maxResolvedTimeout);
}

bool
InterleavedChecker::restoreState(common::BinReader &in)
{
    groups.clear();
    removalCounts.clear();
    idsets.clear();
    groupToSet.clear();
    postings.clear();
    setsByContents.clear();

    counters = CheckerStats{};
    counters.messages = in.readU64();
    counters.decisive = in.readU64();
    counters.ambiguous = in.readU64();
    counters.recoveredPassUnknown = in.readU64();
    counters.recoveredNewSequence = in.readU64();
    counters.recoveredOtherSet = in.readU64();
    counters.recoveredFalseDependency = in.readU64();
    counters.unmatched = in.readU64();
    counters.errorsReported = in.readU64();
    counters.timeoutsReported = in.readU64();
    counters.timeoutsSuppressed = in.readU64();
    counters.latencyAnomalies = in.readU64();
    counters.groupsShed = in.readU64();
    counters.accepted = in.readU64();
    counters.consumeAttempts = in.readU64();

    std::uint64_t group_count = in.readU64();
    if (!in.ok())
        return false;
    for (std::uint64_t i = 0; i < group_count; ++i) {
        AutomatonGroup group(0, {});
        if (!group.restoreState(in, automatonSet))
            return false;
        GroupId gid = group.id();
        groups.emplace(gid, std::move(group));
    }

    std::uint64_t removal_tasks = in.readU64();
    if (!in.ok())
        return false;
    for (std::uint64_t i = 0; i < removal_tasks; ++i) {
        std::string name = in.readString();
        std::uint64_t edge_count = in.readU64();
        if (!in.ok())
            return false;
        auto &edges = removalCounts[name];
        for (std::uint64_t e = 0; e < edge_count; ++e) {
            int from = static_cast<int>(in.readI64());
            int to = static_cast<int>(in.readI64());
            int count = static_cast<int>(in.readI64());
            edges[{from, to}] = count;
        }
    }

    std::uint64_t set_count = in.readU64();
    if (!in.ok())
        return false;
    for (std::uint64_t i = 0; i < set_count; ++i) {
        std::uint64_t set_id = in.readU64();
        std::vector<IdToken> tokens = in.readU32Vector();
        std::vector<std::uint64_t> members = in.readU64Vector();
        if (!in.ok())
            return false;
        IdSetEntry entry;
        entry.ids = IdentifierSet(tokens);
        entry.groupIds = std::move(members);
        auto [pos, inserted] = idsets.emplace(set_id, std::move(entry));
        if (!inserted) {
            in.fail();
            return false;
        }
        // Rebuild the derived routing index. Posting lists fill in
        // ascending set-id order (map iteration), which may differ
        // from the incremental insertion order of the live run —
        // selection sorts candidates by set id, so the difference is
        // unobservable.
        indexAddSet(set_id, pos->second);
    }

    std::uint64_t relation_count = in.readU64();
    if (!in.ok())
        return false;
    for (std::uint64_t i = 0; i < relation_count; ++i) {
        GroupId gid = in.readU64();
        std::uint64_t set_id = in.readU64();
        groupToSet[gid] = set_id;
    }

    nextGroupId = in.readU64();
    nextIdSetId = in.readU64();
    nextRivalSet = in.readU64();
    maxResolvedTimeout = in.readF64();
    return in.ok();
}

void
InterleavedChecker::renumber(
    const std::unordered_map<GroupId, GroupId> &gid_map,
    const std::unordered_map<std::uint64_t, std::uint64_t> &set_map,
    const std::unordered_map<std::uint64_t, std::uint64_t> &rival_map)
{
    auto mapped = [](const auto &map, std::uint64_t id) {
        auto it = map.find(id);
        return it == map.end() ? id : it->second;
    };
    auto gid_fn = [&](GroupId gid) { return mapped(gid_map, gid); };
    auto rival_fn = [&](std::uint64_t rival) {
        return mapped(rival_map, rival);
    };

    // Both consolidation (local → serial) and split (serial → local)
    // maps are order-preserving over the ids they cover (DESIGN.md
    // §14), so rebuilding the ordered maps keeps every member list's
    // relative order and every gid comparison's outcome.
    std::map<GroupId, AutomatonGroup> new_groups;
    for (auto &[gid, group] : groups) {
        group.renumberIds(gid_fn, rival_fn);
        GroupId new_gid = group.id();
        auto [pos, inserted] = new_groups.emplace(new_gid,
                                                  std::move(group));
        (void)pos;
        CS_ASSERT(inserted, "renumber gid collision");
    }
    groups = std::move(new_groups);

    std::map<std::uint64_t, IdSetEntry> new_idsets;
    for (auto &[set_id, entry] : idsets) {
        for (GroupId &gid : entry.groupIds)
            gid = gid_fn(gid);
        auto [pos, inserted] = new_idsets.emplace(
            mapped(set_map, set_id), std::move(entry));
        (void)pos;
        CS_ASSERT(inserted, "renumber set-id collision");
    }
    idsets = std::move(new_idsets);

    std::map<GroupId, std::uint64_t> new_relation;
    for (const auto &[gid, set_id] : groupToSet)
        new_relation[gid_fn(gid)] = mapped(set_map, set_id);
    groupToSet = std::move(new_relation);

    // Derived index: rebuild in ascending new-set-id order, same as a
    // restore — selection sorts candidates by set id, so posting-list
    // order is unobservable.
    postings.clear();
    setsByContents.clear();
    for (const auto &[set_id, entry] : idsets)
        indexAddSet(set_id, entry);
}

void
InterleavedChecker::moveGroupsInto(InterleavedChecker &target,
                                   const std::vector<GroupId> &gids)
{
    std::vector<std::uint64_t> moved_sets;
    for (GroupId gid : gids) {
        auto rel = groupToSet.find(gid);
        CS_ASSERT(rel != groupToSet.end(), "moving unknown group");
        moved_sets.push_back(rel->second);
    }
    std::sort(moved_sets.begin(), moved_sets.end());
    moved_sets.erase(std::unique(moved_sets.begin(), moved_sets.end()),
                     moved_sets.end());

    // Component closure: a set travels with *all* its member groups,
    // or gid-order comparisons on the stay-behind members would
    // diverge from serial.
    for (std::uint64_t set_id : moved_sets) {
        const IdSetEntry &entry = idsets.at(set_id);
        for (GroupId member : entry.groupIds) {
            CS_ASSERT(std::find(gids.begin(), gids.end(), member) !=
                          gids.end(),
                      "moveGroupsInto would split an identifier set");
        }
    }

    for (std::uint64_t set_id : moved_sets) {
        auto it = idsets.find(set_id);
        indexRemoveSet(set_id, it->second);
        auto [pos, inserted] =
            target.idsets.emplace(set_id, std::move(it->second));
        CS_ASSERT(inserted, "moveGroupsInto set-id collision");
        target.indexAddSet(set_id, pos->second);
        idsets.erase(it);
    }
    for (GroupId gid : gids) {
        auto git = groups.find(gid);
        CS_ASSERT(git != groups.end(), "moving unknown group");
        bool inserted =
            target.groups.emplace(gid, std::move(git->second)).second;
        CS_ASSERT(inserted, "moveGroupsInto gid collision");
        groups.erase(git);
        auto rel = groupToSet.find(gid);
        target.groupToSet[gid] = rel->second;
        groupToSet.erase(rel);
    }
}

} // namespace cloudseer::core
