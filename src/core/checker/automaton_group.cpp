#include "core/checker/automaton_group.hpp"

#include <algorithm>

namespace cloudseer::core {

AutomatonGroup::AutomatonGroup(
    GroupId id, const std::vector<const TaskAutomaton *> &automata)
    : groupId(id)
{
    candidates.reserve(automata.size());
    for (const TaskAutomaton *automaton : automata)
        candidates.emplace_back(automaton);
}

bool
AutomatonGroup::canConsume(logging::TemplateId tpl) const
{
    return std::any_of(candidates.begin(), candidates.end(),
                       [tpl](const AutomatonInstance &a) {
                           return a.canConsume(tpl);
                       });
}

bool
AutomatonGroup::consume(logging::TemplateId tpl, logging::RecordId record,
                        common::SimTime now)
{
    if (!canConsume(tpl))
        return false;
    // Algorithm 1: keep exactly the consuming instances.
    std::vector<AutomatonInstance> kept;
    kept.reserve(candidates.size());
    for (AutomatonInstance &instance : candidates) {
        if (instance.consume(tpl, now))
            kept.push_back(std::move(instance));
    }
    candidates = std::move(kept);
    signatureValid = false;
    consumedMessages.push_back({record, tpl, now});
    if (!anyConsumed) {
        creationTime = now;
        anyConsumed = true;
    }
    lastActivityTime = now;
    return true;
}

bool
AutomatonGroup::consumeWithRepair(logging::TemplateId tpl,
                                  logging::RecordId record,
                                  common::SimTime now,
                                  std::vector<RepairedEdge> *repaired)
{
    // Only repair instances that are already on a sequence: removing
    // dependencies from a fresh instance would let any message start
    // any task, which is recovery (b)'s job, not (d)'s.
    bool any_repaired = false;
    for (AutomatonInstance &instance : candidates) {
        if (!instance.started() || instance.canConsume(tpl))
            continue;
        std::size_t before = instance.removedDependencyCount();
        if (!instance.removeFalseDependencies(tpl))
            continue;
        any_repaired = true;
        if (repaired != nullptr) {
            const auto &removed = instance.removedDependencies();
            for (std::size_t i = before; i < removed.size(); ++i) {
                repaired->push_back({&instance.automaton(),
                                     removed[i].first,
                                     removed[i].second});
            }
        }
    }
    if (!any_repaired)
        return false;
    return consume(tpl, record, now);
}

const AutomatonInstance *
AutomatonGroup::acceptingInstance() const
{
    for (const AutomatonInstance &instance : candidates) {
        if (instance.accepting())
            return &instance;
    }
    return nullptr;
}

std::vector<std::string>
AutomatonGroup::candidateTaskNames() const
{
    std::vector<std::string> out;
    for (const AutomatonInstance &instance : candidates) {
        const std::string &name = instance.automaton().name();
        if (std::find(out.begin(), out.end(), name) == out.end())
            out.push_back(name);
    }
    return out;
}

bool
AutomatonGroup::equivalentTo(const AutomatonGroup &other) const
{
    return stateSignature() == other.stateSignature();
}

const std::string &
AutomatonGroup::stateSignature() const
{
    if (!signatureValid) {
        signatureCache.clear();
        for (const AutomatonInstance &instance : candidates) {
            const TaskAutomaton *spec = &instance.automaton();
            signatureCache.append(
                reinterpret_cast<const char *>(&spec), sizeof(spec));
            const std::vector<char> &flags = instance.consumedFlags();
            signatureCache.append(flags.data(), flags.size());
        }
        signatureValid = true;
    }
    return signatureCache;
}

AutomatonGroup
AutomatonGroup::cloneAs(GroupId new_id) const
{
    AutomatonGroup copy = *this;
    copy.groupId = new_id;
    copy.childIds.clear();
    copy.rivalSetId = 0;
    copy.parentId = groupId;
    return copy;
}

void
AutomatonGroup::saveState(
    common::BinWriter &out,
    const std::vector<const TaskAutomaton *> &automata) const
{
    out.writeU64(groupId);
    out.writeU64(candidates.size());
    for (const AutomatonInstance &instance : candidates) {
        std::uint32_t index = 0xffffffffu;
        for (std::size_t i = 0; i < automata.size(); ++i) {
            if (automata[i] == &instance.automaton()) {
                index = static_cast<std::uint32_t>(i);
                break;
            }
        }
        out.writeU32(index);
        instance.saveState(out);
    }
    out.writeU64(consumedMessages.size());
    for (const ConsumedMessage &msg : consumedMessages) {
        out.writeU64(msg.record);
        out.writeU32(msg.tpl);
        out.writeF64(msg.time);
    }
    out.writeF64(lastActivityTime);
    out.writeF64(creationTime);
    out.writeBool(anyConsumed);
    out.writeU64(parentId);
    out.writeU64(childIds.size());
    for (GroupId child : childIds)
        out.writeU64(child);
    out.writeU64(rivalSetId);
    out.writeBool(isZombie);
}

bool
AutomatonGroup::restoreState(
    common::BinReader &in,
    const std::vector<const TaskAutomaton *> &automata)
{
    groupId = in.readU64();
    std::uint64_t candidate_count = in.readU64();
    if (!in.ok())
        return false;
    candidates.clear();
    candidates.reserve(static_cast<std::size_t>(candidate_count));
    for (std::uint64_t i = 0; i < candidate_count; ++i) {
        std::uint32_t index = in.readU32();
        if (!in.ok() || index >= automata.size()) {
            in.fail();
            return false;
        }
        AutomatonInstance instance(automata[index]);
        if (!instance.restoreState(in))
            return false;
        candidates.push_back(std::move(instance));
    }
    std::uint64_t message_count = in.readU64();
    if (!in.ok())
        return false;
    consumedMessages.clear();
    consumedMessages.reserve(static_cast<std::size_t>(message_count));
    for (std::uint64_t i = 0; i < message_count; ++i) {
        ConsumedMessage msg;
        msg.record = in.readU64();
        msg.tpl = in.readU32();
        msg.time = in.readF64();
        consumedMessages.push_back(msg);
    }
    lastActivityTime = in.readF64();
    creationTime = in.readF64();
    anyConsumed = in.readBool();
    parentId = in.readU64();
    std::uint64_t child_count = in.readU64();
    if (!in.ok())
        return false;
    childIds.clear();
    childIds.reserve(static_cast<std::size_t>(child_count));
    for (std::uint64_t i = 0; i < child_count; ++i)
        childIds.push_back(in.readU64());
    rivalSetId = in.readU64();
    isZombie = in.readBool();
    signatureValid = false;
    signatureCache.clear();
    return in.ok();
}

std::size_t
AutomatonGroup::approxRetainedBytes() const
{
    std::size_t bytes = sizeof(AutomatonGroup);
    for (const AutomatonInstance &instance : candidates)
        bytes += instance.approxRetainedBytes();
    bytes += consumedMessages.size() * sizeof(ConsumedMessage);
    bytes += childIds.size() * sizeof(GroupId);
    return bytes;
}

} // namespace cloudseer::core
