/**
 * @file
 * Monitoring reports: the administrator-facing rendering of checker
 * events, carrying the workflow context the paper emphasises (task,
 * consumed messages, current states, expected-next messages).
 */

#ifndef CLOUDSEER_CORE_MONITOR_REPORT_HPP
#define CLOUDSEER_CORE_MONITOR_REPORT_HPP

#include <string>

#include "core/checker/check_types.hpp"
#include "logging/template_catalog.hpp"

namespace cloudseer::core {

/** A checker event plus monitor-level context. */
struct MonitorReport
{
    CheckEvent event;

    /** True when emitted by the end-of-stream flush, not live. */
    bool endOfStream = false;

    /** Single-line summary ("TIMEOUT boot @83.21s ..."). */
    std::string summary(const logging::TemplateCatalog &catalog) const;

    /**
     * Multi-line description with the full workflow context: current
     * state frontier and expected-next messages by template label.
     */
    std::string describe(const logging::TemplateCatalog &catalog) const;
};

/** Canonical token for a report kind ("ACCEPTED", ...). */
const char *checkEventKindName(CheckEventKind kind);

} // namespace cloudseer::core

#endif // CLOUDSEER_CORE_MONITOR_REPORT_HPP
