/**
 * @file
 * Per-task timeout estimation from correct executions.
 *
 * The paper fixes one global 10 s timeout and explicitly leaves
 * "determining such values" as future work (§4). This estimator
 * closes that gap: during modeling, it observes the inter-message
 * gaps of every correct run and recommends a per-task timeout of
 * (max observed gap) x safety-factor — tight for chatty tasks like
 * stop, generous for long-running ones like boot, which improves
 * detection latency without raising false positives.
 */

#ifndef CLOUDSEER_CORE_MONITOR_TIMEOUT_ESTIMATOR_HPP
#define CLOUDSEER_CORE_MONITOR_TIMEOUT_ESTIMATOR_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/time_util.hpp"
#include "obs/metrics.hpp"

namespace cloudseer::core {

/** Per-task timeout table with a fallback default. */
struct TimeoutPolicy
{
    double defaultTimeout = 10.0;
    std::map<std::string, double> perTask;

    /**
     * Resolution tallies (seer-scope, DESIGN.md §11): how often the
     * policy was consulted and how often no per-task entry applied —
     * a high fallback share means the estimator never saw the tasks
     * actually in flight. Mutable: resolution is semantically const.
     */
    mutable std::uint64_t resolutions = 0;
    mutable std::uint64_t defaultFallbacks = 0;

    /** Timeout for one task (default when unknown). */
    double timeoutFor(const std::string &task) const;

    /** Serialise the table and tallies (seer-vault, DESIGN.md §13). */
    void saveState(common::BinWriter &out) const;

    /** Replace this policy with a saved one. */
    bool restoreState(common::BinReader &in);

    /**
     * Timeout for a group still tracking several candidate tasks:
     * the most generous candidate wins (never report early just
     * because a short task is also still possible). Counts one
     * resolution (and a fallback when no candidate had an entry).
     */
    double
    timeoutForCandidates(const std::vector<std::string> &tasks) const;
};

/** Learns gap statistics per task from correct executions. */
class TimeoutEstimator
{
  public:
    /**
     * Observe one correct run: message timestamps in arrival order
     * (at least one). Gaps below zero (skewed arrival) count as zero.
     */
    void observeRun(const std::string &task,
                    const std::vector<common::SimTime> &timestamps);

    /** Number of runs observed for a task. */
    std::size_t runsObserved(const std::string &task) const;

    /** Largest gap observed for a task (0 when unseen). */
    double maxGap(const std::string &task) const;

    /**
     * Recommend a policy.
     *
     * @param safety_factor Multiplier over the largest observed gap.
     * @param floor         Minimum timeout, seconds.
     * @param default_timeout Fallback for unobserved tasks.
     */
    TimeoutPolicy estimate(double safety_factor = 3.0,
                           double floor = 2.0,
                           double default_timeout = 10.0) const;

    /**
     * seer-scope hook: publish estimator coverage into a registry
     * (tasks observed, runs ingested, the widest gap seen) so a
     * deployment can see how well-founded its timeout table is.
     */
    void publishTo(obs::MetricsRegistry &registry) const;

    /** Serialise every task's gap samples (seer-vault). */
    void saveState(common::BinWriter &out) const;

    /** Replace this estimator with a saved one. */
    bool restoreState(common::BinReader &in);

  private:
    struct TaskGaps
    {
        common::SampleStats gaps;
        std::size_t runs = 0;
    };
    std::map<std::string, TaskGaps> perTask;
};

} // namespace cloudseer::core

#endif // CLOUDSEER_CORE_MONITOR_TIMEOUT_ESTIMATOR_HPP
