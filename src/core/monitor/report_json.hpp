/**
 * @file
 * JSON rendering of monitor reports for alerting integrations
 * (PagerDuty/Slack webhooks, Elasticsearch alert indices, ...).
 *
 * One report becomes one single-line JSON object:
 *
 *   {"kind":"TIMEOUT","task":"boot","time":83.21,
 *    "endOfStream":false,"messages":9,"records":[1,3,...],
 *    "candidates":["boot"],
 *    "states":["nova-scheduler: ..."],"expected":["nova-compute: ..."]}
 */

#ifndef CLOUDSEER_CORE_MONITOR_REPORT_JSON_HPP
#define CLOUDSEER_CORE_MONITOR_REPORT_JSON_HPP

#include <string>

#include "core/monitor/report.hpp"

namespace cloudseer::core {

struct IngestStats;

/** Escape a string per JSON rules. */
std::string jsonEscape(const std::string &raw);

/** Render one report as a single-line JSON object. */
std::string reportToJson(const MonitorReport &report,
                         const logging::TemplateCatalog &catalog);

/**
 * Final summary record for the report stream: checker and ingest
 * counters as one {"kind":"SUMMARY",...} line, emitted after the last
 * report so a captured run is self-describing — a consumer can score
 * accuracy and audit the ingest guards without attaching a debugger.
 */
std::string statsSummaryJson(const CheckerStats &checker,
                             const IngestStats &ingest, double time);

} // namespace cloudseer::core

#endif // CLOUDSEER_CORE_MONITOR_REPORT_JSON_HPP
