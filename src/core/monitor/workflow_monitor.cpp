#include "core/monitor/workflow_monitor.hpp"

#include "common/error.hpp"
#include "logging/log_codec.hpp"

namespace cloudseer::core {

std::vector<const TaskAutomaton *>
WorkflowMonitor::pointersTo(const std::vector<TaskAutomaton> &automata)
{
    std::vector<const TaskAutomaton *> out;
    out.reserve(automata.size());
    for (const TaskAutomaton &automaton : automata)
        out.push_back(&automaton);
    return out;
}

WorkflowMonitor::WorkflowMonitor(
    const MonitorConfig &config_,
    std::shared_ptr<logging::TemplateCatalog> catalog,
    std::vector<TaskAutomaton> automata)
    : config(config_),
      catalogPtr(std::move(catalog)),
      specs(std::move(automata)),
      engine(config_.checker, pointersTo(specs))
{
    CS_ASSERT(catalogPtr != nullptr, "monitor needs a catalog");
    timeoutPolicy.defaultTimeout = config.timeoutSeconds;
    timeoutPolicy.perTask = config.perTaskTimeouts;
}

std::vector<MonitorReport>
WorkflowMonitor::feed(const logging::LogRecord &record)
{
    std::vector<MonitorReport> reports;

    // The stream can be slightly out of timestamp order (shipping
    // skew); the monitor clock never moves backwards.
    common::SimTime now = std::max(lastTimestamp, record.timestamp);
    lastTimestamp = now;
    anyFed = true;

    for (CheckEvent &event : engine.sweepTimeouts(
             now, [this](const std::vector<std::string> &tasks) {
                 return timeoutPolicy.timeoutForCandidates(tasks);
             })) {
        reports.push_back({std::move(event), false});
    }

    logging::ParsedBody parsed = extractor.parse(record.body);
    CheckMessage message;
    message.tpl = catalogPtr->find(record.service, parsed.templateText);
    for (logging::Variable &var : parsed.variables) {
        if (var.kind == logging::VariableKind::Number &&
            !config.numbersAsIdentifiers) {
            continue;
        }
        message.identifiers.push_back(std::move(var.text));
    }
    message.level = record.level;
    message.record = record.id;
    message.time = record.timestamp;

    for (CheckEvent &event : engine.feed(message))
        reports.push_back({std::move(event), false});
    return reports;
}

std::vector<MonitorReport>
WorkflowMonitor::feedLine(const std::string &line)
{
    auto record = logging::decodeLogLine(line);
    if (!record) {
        ++malformed;
        return {};
    }
    return feed(*record);
}

std::vector<MonitorReport>
WorkflowMonitor::finish()
{
    std::vector<MonitorReport> reports;
    if (!anyFed)
        return reports;

    // Give the timeout criterion one last chance to fire. These are
    // end-of-stream reports: the wall clock stopped with the stream,
    // so "overdue at the horizon" is an artefact of stopping, not a
    // live observation.
    double max_timeout = config.timeoutSeconds;
    for (const auto &[task, value] : timeoutPolicy.perTask)
        max_timeout = std::max(max_timeout, value);
    common::SimTime horizon = lastTimestamp + max_timeout * 1.001;
    for (CheckEvent &event : engine.sweepTimeouts(
             horizon, [this](const std::vector<std::string> &tasks) {
                 return timeoutPolicy.timeoutForCandidates(tasks);
             })) {
        reports.push_back({std::move(event), true});
    }
    for (CheckEvent &event : engine.finish(horizon))
        reports.push_back({std::move(event), true});
    return reports;
}

std::vector<TaskAutomaton>
WorkflowMonitor::refinedAutomata(int min_removals) const
{
    return refineFromRemovals(specs, engine.dependencyRemovals(),
                              min_removals);
}

} // namespace cloudseer::core
