#include "core/monitor/workflow_monitor.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "analysis/interference.hpp"
#include "analysis/model_lint.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"
#include "common/version.hpp"
#include "core/monitor/report_json.hpp"
#include "logging/identifier_interner.hpp"
#include "logging/record_binio.hpp"

namespace cloudseer::core {

IngestConfig
hardenedIngestDefaults()
{
    IngestConfig config;
    config.reorderWindowSeconds = 0.25;
    config.reorderBufferCap = 4096;
    config.clampNonMonotonic = true;
    config.dedupWindowSeconds = 5.0;
    config.maxActiveGroups = 256;
    config.quarantineSampleCap = 16;
    return config;
}

std::vector<const TaskAutomaton *>
WorkflowMonitor::pointersTo(const std::vector<TaskAutomaton> &automata)
{
    std::vector<const TaskAutomaton *> out;
    out.reserve(automata.size());
    for (const TaskAutomaton &automaton : automata)
        out.push_back(&automaton);
    return out;
}

WorkflowMonitor::WorkflowMonitor(
    const MonitorConfig &config_,
    std::shared_ptr<logging::TemplateCatalog> catalog,
    std::vector<TaskAutomaton> automata)
    : config(config_),
      catalogPtr(std::move(catalog)),
      specs(std::move(automata))
{
    CS_ASSERT(catalogPtr != nullptr, "monitor needs a catalog");
    timeoutPolicy.defaultTimeout = config.timeoutSeconds;
    timeoutPolicy.perTask = config.perTaskTimeouts;

    // seer-pulse implies metrics (the /metrics document and the stage
    // histograms live in the registry) and a snapshot heartbeat (the
    // rate engine consumes the health series at snapshot cadence).
    if (config.pulse.enabled) {
        config.observability.metrics = true;
        if (config.observability.snapshotIntervalSeconds <= 0.0) {
            config.observability.snapshotIntervalSeconds =
                std::max(1.0, config.pulse.windowSeconds / 6.0);
        }
    }

    // Engine selection (seer-swarm, DESIGN.md §14). Sharding needs the
    // routing index (the shard key is derived from it) and is pointless
    // under tracing (per-message spans would serialise the shards
    // anyway), so those configurations silently fall back to serial —
    // the two engines are bit-identical, only throughput differs.
    const bool sharded = config.ingest.numShards > 1 &&
                         config.checker.identifierRouting &&
                         !config.observability.tracing;
    if (sharded) {
        ShardedCheckerConfig swarm;
        swarm.numShards = config.ingest.numShards;
        swarm.ringCapacity = config.ingest.shardRingCapacity;
        auto owned = std::make_unique<ShardedChecker>(
            config.checker, pointersTo(specs), swarm);
        swarmEngine = owned.get();
        enginePtr = std::move(owned);
        swarmEngine->setTimeoutPolicy(timeoutPolicy);
    } else {
        enginePtr = std::make_unique<InterleavedChecker>(
            config.checker, pointersTo(specs));
    }

    // seer-scope: only instantiated when some sink is on; the null
    // sink is a null pointer, not a disabled object.
    if (config.observability.enabled()) {
        obsPtr =
            std::make_unique<obs::Observability>(config.observability);
        engine().setTracer(obsPtr->tracer());
    }

    // seer-vault: cap the process-wide interner when asked. Only a
    // non-zero knob touches the singleton — the default leaves other
    // monitors in the process unaffected.
    if (config.ingest.maxInternerEntries > 0) {
        logging::IdentifierInterner::process().setCapacity(
            config.ingest.maxInternerEntries);
    }

    // seer-flight: install the latency criterion when profiles ship
    // with the model. Tasks without a sampled profile stay exempt.
    if (!config.latencyProfiles.empty())
        engine().setLatencyPolicy(config.latencyProfiles,
                                  config.latencyCheck);

    // Load-time model verification (seer-lint): a structurally broken
    // specification produces confidently wrong reports for as long as
    // the deployment runs, so errors refuse to start by default.
    analysis::LintOptions lint;
    lint.maxForkFanout = config.checker.maxForkFanout;
    lint.numbersAsIdentifiers = config.numbersAsIdentifiers;
    lint.defaultTimeout = config.timeoutSeconds;
    lint.perTaskTimeouts = config.perTaskTimeouts;
    loadReport = analysis::lintModels(specs, *catalogPtr, lint);
    if (!config.latencyProfiles.empty()) {
        loadReport.merge(analysis::lintLatencyProfiles(
            specs, config.latencyProfiles));
    }

    // seer-prove (DESIGN.md §15): the interference analysis runs at
    // every load — its SL02x findings belong in the load report — and
    // its certificate arms the checker's provably equivalent fast
    // path unless the deployment opts out.
    analysis::InterferenceOptions prove;
    prove.maxForkFanout = config.checker.maxForkFanout;
    prove.numbersAsIdentifiers = config.numbersAsIdentifiers;
    analysis::InterferenceResult interference =
        analysis::analyzeInterference(specs, *catalogPtr, prove);
    loadReport.merge(std::move(interference.report));
    loadReport.sortStable();
    if (config.proveFastPath) {
        engine().setCertifiedTemplates(
            interference.certificate.certifiedBits(catalogPtr->size()));
    }

    if (config.verifyModelOnLoad && loadReport.hasErrors()) {
        std::string msg = "seer-lint rejected the model bundle:";
        for (const std::string &finding :
             analysis::errorSummaries(loadReport)) {
            msg += "\n  " + finding;
        }
        msg += "\nfix the model or replay with verifyModelOnLoad=false "
               "(--no-verify)";
        common::fatal(msg);
    }

    // seer-pulse (DESIGN.md §16): build identity, the rate + alert
    // engines, sampled stage timers, and — when a port is configured —
    // the scrape endpoint. Placed after the lint gate so a rejected
    // model never opens a socket.
    if (obsPtr != nullptr) {
        std::ostringstream fp;
        fp << std::hex << modelFingerprint();
        obsPtr->setBuildInfo(
            common::kVersion, fp.str(),
            swarmEngine == nullptr ? 0 : config.ingest.numShards);
    }
    if (config.pulse.enabled) {
        pulsePtr = std::make_unique<obs::PulseEngine>(config.pulse);
        stageEvery = config.pulse.stageSampleEvery;
        if (stageEvery > 0) {
            obs::MetricsRegistry &reg = obsPtr->metrics();
            stageSink = &reg.histogram(
                "seer_stage_sink_us",
                "sampled wire-decode stage latency, microseconds", -1,
                6);
            stageParse = &reg.histogram(
                "seer_stage_parse_us",
                "sampled parse+intern stage latency, microseconds", -1,
                6);
            stageRoute = &reg.histogram(
                "seer_stage_route_us",
                "sampled clock-guard+dedup stage latency, microseconds",
                -1, 6);
            stageCheck = &reg.histogram(
                "seer_stage_check_us",
                "sampled checking-engine stage latency, microseconds",
                -1, 6);
            stageVerdict = &reg.histogram(
                "seer_stage_verdict_us",
                "sampled verdict+shedding stage latency, microseconds",
                -1, 6);
            if (swarmEngine != nullptr)
                swarmEngine->enableStageTimers(stageEvery);
        }
        if (config.pulse.httpPort >= 0) {
            pulseServer = std::make_unique<obs::TelemetryServer>(
                config.pulse.httpBindAddress,
                static_cast<std::uint16_t>(config.pulse.httpPort));
            // seer-probe: /profilez?seconds=N pulls a live profile.
            // Registered before start() — the handler table freezes
            // when the server launches.
            pulseServer->setProfileProvider([this](double seconds) {
                return liveProfileJson(seconds);
            });
            if (!pulseServer->start()) {
                common::fatal(
                    "seer-pulse: cannot bind scrape endpoint: " +
                    pulseServer->error());
            }
            publishPulse();
        }
    }

    // seer-probe continuous profiler (DESIGN.md §17): disabled means
    // nothing is constructed — no SIGPROF handler, no timer, reports
    // bit-identical (pinned by tests/profiler_test).
    if (config.profiler.enabled) {
        profPtr = std::make_unique<obs::Profiler>(config.profiler);
        if (!profPtr->start()) {
            common::fatal("seer-probe: cannot start profiler "
                          "(SIGPROF slot already taken or the "
                          "profiling timer failed)");
        }
    }
}

std::vector<MonitorReport>
WorkflowMonitor::feed(const logging::LogRecord &record)
{
    // seer-probe: everything from arrival onward samples as "sink"
    // unless an interior stage (parse/route/check/verdict) re-tags.
    obs::StageScope profScope(obs::ProfStage::Sink);
    std::vector<MonitorReport> reports;

    // Feed-latency timing only exists when metrics are on; the
    // null-sink path never reads a clock.
    const bool timed =
        obsPtr != nullptr && obsPtr->config().metrics;
    std::chrono::steady_clock::time_point before;
    if (timed)
        before = std::chrono::steady_clock::now();

    // seer-flight: capture the raw line at arrival, before reordering
    // — a forensic context must show the stream as it actually came in.
    // Encoded into a reused scratch buffer: this runs per message, and
    // the recorder copies into its own slot anyway.
    if (obsPtr != nullptr && obsPtr->flight() != nullptr) {
        logging::encodeLogLineTo(record, flightScratch);
        obsPtr->flight()->record(record.node, record.timestamp,
                                 flightScratch);
    }

    if (config.ingest.reorderWindowSeconds > 0.0)
        bufferAndRelease(record, reports);
    else
        deliver(record, reports);
    captureBundles(reports);

    if (timed) {
        obsPtr->recordFeedLatency(
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - before)
                .count());
    }
    if (obsPtr != nullptr && obsPtr->snapshotDue(lastTimestamp)) {
        obsPtr->addSnapshot(healthSample());
        pulseStep();
    }
    return reports;
}

void
WorkflowMonitor::bufferAndRelease(const logging::LogRecord &record,
                                  std::vector<MonitorReport> &reports)
{
    highestSeen = std::max(highestSeen, record.timestamp);

    // Keep the buffer sorted by (timestamp, arrival seq). Streams are
    // mostly ordered, so scanning from the back finds the insertion
    // point in O(1) amortized.
    BufferedRecord entry{record, nextSeq++};
    auto pos = reorderBuffer.end();
    while (pos != reorderBuffer.begin()) {
        auto prev = std::prev(pos);
        if (prev->record.timestamp <= entry.record.timestamp)
            break;
        pos = prev;
    }
    reorderBuffer.insert(pos, std::move(entry));
    ingest.reorderBufferPeak =
        std::max(ingest.reorderBufferPeak, reorderBuffer.size());

    // Watermark release: a record is ripe once everything that could
    // still precede it (within the window) must already have arrived.
    common::SimTime watermark =
        highestSeen - config.ingest.reorderWindowSeconds;
    while (!reorderBuffer.empty() &&
           reorderBuffer.front().record.timestamp <= watermark) {
        logging::LogRecord ripe =
            std::move(reorderBuffer.front().record);
        reorderBuffer.pop_front();
        deliver(ripe, reports);
    }
    // Overflow: force the oldest out rather than buffering unboundedly
    // (a stuck node clock must not wedge the monitor).
    while (reorderBuffer.size() > config.ingest.reorderBufferCap) {
        logging::LogRecord forced =
            std::move(reorderBuffer.front().record);
        reorderBuffer.pop_front();
        ++ingest.forcedReleases;
        deliver(forced, reports);
    }
}

void
WorkflowMonitor::deliver(const logging::LogRecord &record,
                         std::vector<MonitorReport> &reports)
{
    ++ingest.recordsDelivered;

    // seer-pulse stage timers (DESIGN.md §16): one-in-N records
    // measure each pipeline stage. Unsampled records (and every record
    // when timers are off) see a single integer test.
    using StageClock = std::chrono::steady_clock;
    const bool staged =
        stageEvery > 0 && (ingest.recordsDelivered - 1) % stageEvery == 0;
    auto stageUs = [](StageClock::time_point from,
                      StageClock::time_point to) {
        return std::chrono::duration<double, std::micro>(to - from)
            .count();
    };
    StageClock::time_point stageT0;
    StageClock::time_point stageT1;
    double routeAccUs = 0.0;
    if (staged)
        stageT0 = StageClock::now();

    // Timestamp guard. The stream can be slightly out of timestamp
    // order (shipping skew); the monitor clock never moves backwards.
    // With the clamp on, the *message* time is pinned to the clock
    // too, so a backwards stamp cannot plant a group in the past and
    // have the next sweep retroactively time it out.
    common::SimTime message_time = record.timestamp;
    common::SimTime now;
    {
        obs::StageScope profScope(obs::ProfStage::Route);
        if (record.timestamp < lastTimestamp) {
            ++ingest.nonMonotonicClamped;
            ingest.maxRegressionSeconds =
                std::max(ingest.maxRegressionSeconds,
                         lastTimestamp - record.timestamp);
            if (config.ingest.clampNonMonotonic)
                message_time = lastTimestamp;
        }
        now = std::max(lastTimestamp, message_time);
        lastTimestamp = now;
        anyFed = true;
    }

    if (staged) {
        stageT1 = StageClock::now();
        routeAccUs += stageUs(stageT0, stageT1);
        stageT0 = stageT1;
    }

    CheckMessage message;
    {
        obs::StageScope profScope(obs::ProfStage::Parse);
        logging::ParsedBody parsed = extractor.parse(record.body);
        message.tpl =
            catalogPtr->find(record.service, parsed.templateText);
        for (logging::Variable &var : parsed.variables) {
            if (var.kind == logging::VariableKind::Number &&
                !config.numbersAsIdentifiers) {
                continue;
            }
            logging::IdToken token =
                logging::IdentifierInterner::process().intern(var.text);
            // A capped interner refuses new identifiers; the message
            // checks on without the refused token (degraded routing
            // precision, bounded memory).
            if (token == logging::kInvalidIdToken)
                continue;
            message.identifiers.push_back(token);
        }
        message.level = record.level;
        message.record = record.id;
        message.time = message_time;
    }

    if (staged) {
        stageT1 = StageClock::now();
        stageParse->record(stageUs(stageT0, stageT1));
        stageT0 = stageT1;
    }

    // Near-duplicate suppression: an at-least-once shipper re-delivers
    // byte-identical lines, so the key is everything the checker would
    // see — keyed on the *original* stamp so a clamped re-delivery
    // still matches its first delivery. The verdict is computed before
    // the engine runs (serial sweeps happen even for records that end
    // up suppressed, so the sharded path must know whether to ship a
    // sweep-only tick or a full step).
    bool suppressed = false;
    if (config.ingest.dedupWindowSeconds > 0.0) {
        obs::StageScope profScope(obs::ProfStage::Route);
        std::string key = record.node;
        key += '\x1f';
        key += record.service;
        key += '\x1f';
        key += std::to_string(message.tpl);
        for (logging::IdToken id : message.identifiers) {
            key += '\x1f';
            key += std::to_string(id);
        }
        key += '\x1f';
        key += std::to_string(record.timestamp);

        double window = config.ingest.dedupWindowSeconds;
        while (!recentOrder.empty() &&
               recentOrder.front().first < now - window) {
            auto it = recentKeys.find(recentOrder.front().second);
            if (it != recentKeys.end() &&
                it->second <= recentOrder.front().first) {
                recentKeys.erase(it);
            }
            recentOrder.pop_front();
        }
        auto [it, inserted] = recentKeys.emplace(key, now);
        it->second = now;
        recentOrder.emplace_back(now, std::move(key));
        if (!inserted) {
            ++ingest.duplicatesSuppressed;
            suppressed = true;
        }
    }

    // Route = clock guard + dedup: the two spans that decide where and
    // whether the message goes, with the parse sandwiched between them.
    if (staged) {
        stageT1 = StageClock::now();
        stageRoute->record(routeAccUs + stageUs(stageT0, stageT1));
        stageT0 = stageT1;
    }

    {
        obs::StageScope profScope(obs::ProfStage::Check);
        if (swarmEngine != nullptr) {
            // seer-swarm: one pipelined step — every shard sweeps at
            // `now` (the serial engine sweeps all groups before each
            // feed), the owner feeds, and flush() reassembles the
            // events in serial order (sweeps first, then the feed).
            // The per-record barrier keeps the cap/memory criteria and
            // checkpoints exact; the parallel win is the sweep and the
            // consume work, not ingest pipelining (bench_throughput
            // drives submitFeed for that).
            if (suppressed)
                swarmEngine->submitSweep(now);
            else
                swarmEngine->submitStep(message, now);
            stepEvents.clear();
            swarmEngine->flush(stepEvents);
            for (CheckEvent &event : stepEvents)
                reports.push_back({std::move(event), false});
        } else {
            for (CheckEvent &event : engine().sweepTimeouts(
                     now,
                     [this](const std::vector<std::string> &tasks) {
                         return timeoutPolicy.timeoutForCandidates(
                             tasks);
                     })) {
                reports.push_back({std::move(event), false});
            }
            if (!suppressed) {
                for (CheckEvent &event : engine().feed(message))
                    reports.push_back({std::move(event), false});
            }
        }
    }
    if (staged) {
        stageT1 = StageClock::now();
        stageCheck->record(stageUs(stageT0, stageT1));
        stageT0 = stageT1;
    }
    if (suppressed)
        return;

    {
        obs::StageScope profScope(obs::ProfStage::Verdict);
        // Group-cap shedding: bound live state, loudly.
        if (config.ingest.maxActiveGroups > 0 &&
            engine().activeGroups() > config.ingest.maxActiveGroups) {
            for (CheckEvent &event : engine().shedToCap(
                     config.ingest.maxActiveGroups, now)) {
                ++ingest.groupsShed;
                reports.push_back({std::move(event), false});
            }
        }

        // Memory ceiling (seer-vault): same Degraded contract, in
        // bytes. Cadence keys off recordsDelivered — serialised state
        // — so a restored monitor re-checks at the same stream
        // positions.
        if (config.ingest.maxResidentBytes > 0) {
            std::uint64_t interval = std::max<std::uint64_t>(
                1, config.ingest.memoryCheckInterval);
            if (ingest.recordsDelivered % interval == 0) {
                for (CheckEvent &event : engine().shedToMemory(
                         config.ingest.maxResidentBytes, now)) {
                    ++ingest.memoryEvictions;
                    reports.push_back({std::move(event), false});
                }
            }
        }
    }

    if (staged)
        stageVerdict->record(stageUs(stageT0, StageClock::now()));
}

std::vector<MonitorReport>
WorkflowMonitor::feedLine(const std::string &line)
{
    obs::StageScope profScope(obs::ProfStage::Sink);
    ++ingest.linesSeen;

    // Sink stage: the wire decode, sampled on the line counter (the
    // record counter has not been assigned yet).
    const bool staged =
        stageEvery > 0 && (ingest.linesSeen - 1) % stageEvery == 0;
    std::chrono::steady_clock::time_point sinkStart;
    if (staged)
        sinkStart = std::chrono::steady_clock::now();

    logging::DecodeFailure why = logging::DecodeFailure::None;
    auto record = logging::decodeLogLine(line, &why);

    if (staged) {
        stageSink->record(std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() -
                              sinkStart)
                              .count());
    }
    if (!record) {
        switch (why) {
          case logging::DecodeFailure::BadTimestamp:
            ++ingest.malformedBadTimestamp;
            break;
          case logging::DecodeFailure::BadHeader:
            ++ingest.malformedBadHeader;
            break;
          case logging::DecodeFailure::TruncatedPayload:
            ++ingest.malformedTruncatedPayload;
            break;
          case logging::DecodeFailure::None:
            ++ingest.malformedBadHeader;
            break;
        }
        if (quarantined.size() < config.ingest.quarantineSampleCap)
            quarantined.push_back({line, why});
        // Malformed lines never reach feed(), so capture them here —
        // garbage on the wire is exactly what a postmortem wants to
        // see. Stamped with the monitor clock; the line's own
        // timestamp is the part that failed to parse.
        if (obsPtr != nullptr && obsPtr->flight() != nullptr)
            obsPtr->flight()->record("<malformed>", lastTimestamp, line);
        return {};
    }
    return feed(*record);
}

std::vector<MonitorReport>
WorkflowMonitor::finish()
{
    std::vector<MonitorReport> reports;

    // Flush the reorder buffer: at end of stream every parked record
    // is ripe by definition.
    while (!reorderBuffer.empty()) {
        logging::LogRecord ripe =
            std::move(reorderBuffer.front().record);
        reorderBuffer.pop_front();
        deliver(ripe, reports);
    }

    if (!anyFed)
        return reports;

    // Give the timeout criterion one last chance to fire. These are
    // end-of-stream reports: the wall clock stopped with the stream,
    // so "overdue at the horizon" is an artefact of stopping, not a
    // live observation.
    double max_timeout = config.timeoutSeconds;
    for (const auto &[task, value] : timeoutPolicy.perTask)
        max_timeout = std::max(max_timeout, value);
    common::SimTime horizon = lastTimestamp + max_timeout * 1.001;
    for (CheckEvent &event : engine().sweepTimeouts(
             horizon, [this](const std::vector<std::string> &tasks) {
                 return timeoutPolicy.timeoutForCandidates(tasks);
             })) {
        reports.push_back({std::move(event), true});
    }
    for (CheckEvent &event : engine().finish(horizon))
        reports.push_back({std::move(event), true});
    captureBundles(reports);

    // Close the health series with a final post-flush observation so
    // the snapshot stream is self-terminating.
    if (obsPtr != nullptr &&
        obsPtr->config().snapshotIntervalSeconds > 0.0) {
        obsPtr->addSnapshot(healthSample());
        pulseStep();
    }
    return reports;
}

std::vector<TaskAutomaton>
WorkflowMonitor::refinedAutomata(int min_removals) const
{
    return refineFromRemovals(specs, engine().dependencyRemovals(),
                              min_removals);
}

obs::HealthSample
WorkflowMonitor::healthSample() const
{
    obs::HealthSample s;
    s.time = lastTimestamp;

    const CheckerStats &c = engine().stats();
    s.messages = c.messages;
    s.decisive = c.decisive;
    s.ambiguous = c.ambiguous;
    s.recoveredPassUnknown = c.recoveredPassUnknown;
    s.recoveredNewSequence = c.recoveredNewSequence;
    s.recoveredOtherSet = c.recoveredOtherSet;
    s.recoveredFalseDependency = c.recoveredFalseDependency;
    s.unmatched = c.unmatched;
    s.accepted = c.accepted;
    s.errorsReported = c.errorsReported;
    s.timeoutsReported = c.timeoutsReported;
    s.timeoutsSuppressed = c.timeoutsSuppressed;
    s.groupsShed = c.groupsShed;
    s.consumeAttempts = c.consumeAttempts;
    s.decisiveFraction = c.decisiveFraction();

    s.activeGroups = engine().activeGroups();
    s.activeIdentifierSets = engine().activeIdentifierSets();

    s.linesSeen = ingest.linesSeen;
    s.recordsDelivered = ingest.recordsDelivered;
    s.malformedLines = ingest.malformed();
    s.nonMonotonicClamped = ingest.nonMonotonicClamped;
    s.duplicatesSuppressed = ingest.duplicatesSuppressed;
    s.forcedReleases = ingest.forcedReleases;
    s.reorderBufferPeak = ingest.reorderBufferPeak;
    s.memoryEvictions = ingest.memoryEvictions;

    logging::InternerStats interner =
        logging::IdentifierInterner::process().stats();
    s.internerSize = interner.size;
    s.internerHits = interner.hits;
    s.internerMisses = interner.misses;
    s.internerCapRejected = interner.capRejected;

    // Sharded sweeps resolve against per-shard policy copies; the
    // monitor's own policy only sees the finish()-time horizon sweep
    // (and checkpoint-restored history), so the totals are the sum.
    s.timeoutResolutions = timeoutPolicy.resolutions;
    s.timeoutDefaultFallbacks = timeoutPolicy.defaultFallbacks;
    if (swarmEngine != nullptr) {
        auto [res, fb] = swarmEngine->timeoutResolutionCounts();
        s.timeoutResolutions += res;
        s.timeoutDefaultFallbacks += fb;
    }

    if (swarmEngine != nullptr) {
        // Exact: the monitor flushes the pipeline every record, so
        // the merge-side counters are not mid-flight samples here.
        const ShardMetrics &m = swarmEngine->metrics();
        s.shardLanes.reserve(m.shards.size());
        for (std::size_t i = 0; i < m.shards.size(); ++i) {
            const ShardMetrics::PerShard &lane = m.shards[i];
            obs::HealthSample::ShardLane out;
            out.routed = lane.messagesRouted;
            out.inputPeak = lane.inputRingPeak;
            out.outputPeak = lane.outputRingPeak;
            out.activeGroups = lane.activeGroups;
            if (const obs::Histogram *check =
                    swarmEngine->shardCheckLatency(i)) {
                out.checkP50us = check->percentile(50.0);
                out.checkP99us = check->percentile(99.0);
            }
            s.shardLanes.push_back(out);
        }
        s.shardReconcilerHits = m.reconcilerHits;
        s.shardCrossUnions = m.crossShardUnions;
        s.shardGlobalFallbacks = m.globalFallbacks;
        s.shardQuiesces = m.quiesces;
        s.shardImbalance = m.imbalance();
    }

    if (obsPtr != nullptr && obsPtr->feedLatency() != nullptr) {
        const obs::Histogram &latency = *obsPtr->feedLatency();
        s.feedP50us = latency.percentile(50.0);
        s.feedP90us = latency.percentile(90.0);
        s.feedP99us = latency.percentile(99.0);
        s.feedMaxUs = latency.maxSeen();
    }
    if (obsPtr != nullptr) {
        if (const obs::Histogram *wal =
                obsPtr->walAppendLatencyIfAny()) {
            s.walAppendP50us = wal->percentile(50.0);
            s.walAppendP99us = wal->percentile(99.0);
        }
    }
    return s;
}

std::string
WorkflowMonitor::prometheusText()
{
    return obsPtr == nullptr ? std::string()
                             : obsPtr->prometheusText(healthSample());
}

std::string
WorkflowMonitor::healthSnapshotJson() const
{
    return obsPtr == nullptr ? std::string()
                             : healthSample().toJson();
}

void
WorkflowMonitor::pulseStep()
{
    if (pulsePtr == nullptr)
        return;
    const std::vector<obs::HealthSample> &series = obsPtr->snapshots();
    if (series.empty())
        return;
    pulsePtr->observe(series.back());
    if (pulseServer != nullptr)
        publishPulse();
}

void
WorkflowMonitor::publishPulse()
{
    if (pulseServer == nullptr || pulsePtr == nullptr)
        return;
    obs::TelemetryServer::Documents docs;
    docs.metrics = prometheusText();
    docs.healthz = pulsePtr->healthzJson();
    docs.alerts = pulsePtr->alertsJson();
    docs.buildz = buildzJson();
    pulseServer->publish(std::move(docs));
}

std::string
WorkflowMonitor::liveProfileJson(double seconds)
{
    auto window = std::chrono::duration<double>(
        std::max(seconds, 0.0));
    if (profPtr != nullptr) {
        // The continuous profiler keeps sampling; let the window pass
        // and hand back everything it holds so far.
        std::this_thread::sleep_for(window);
        return profPtr->collect().toJson();
    }
    obs::ProfilerConfig transient = config.profiler;
    transient.enabled = true;
    obs::Profiler profiler(transient);
    if (!profiler.start())
        return std::string(); // SIGPROF slot held elsewhere
    std::this_thread::sleep_for(window);
    profiler.stop();
    return profiler.collect().toJson();
}

std::vector<std::string>
WorkflowMonitor::drainAlertJson()
{
    return pulsePtr == nullptr ? std::vector<std::string>()
                               : pulsePtr->drainAlertLines();
}

int
WorkflowMonitor::pulsePort() const
{
    return pulseServer == nullptr || !pulseServer->running()
               ? -1
               : static_cast<int>(pulseServer->port());
}

std::string
WorkflowMonitor::healthzJson() const
{
    return pulsePtr == nullptr ? std::string()
                               : pulsePtr->healthzJson();
}

std::string
WorkflowMonitor::buildzJson() const
{
    if (obsPtr == nullptr)
        return std::string();
    return obs::buildInfoJson(
        obsPtr->buildVersion(), obsPtr->modelFingerprint(),
        obsPtr->shardCount(), obsPtr->uptimeSeconds());
}

void
WorkflowMonitor::captureBundles(const std::vector<MonitorReport> &reports)
{
    if (obsPtr == nullptr || obsPtr->flight() == nullptr)
        return;
    for (const MonitorReport &report : reports) {
        switch (report.event.kind) {
          case CheckEventKind::ErrorDetected:
          case CheckEventKind::Timeout:
          case CheckEventKind::LatencyAnomaly:
            obsPtr->flight()->addBundle(forensicBundleJson(report));
            break;
          case CheckEventKind::Accepted:
          case CheckEventKind::Degraded:
            break;
        }
    }
}

std::string
WorkflowMonitor::forensicBundleJson(const MonitorReport &report) const
{
    const logging::IdentifierInterner &interner =
        logging::IdentifierInterner::process();

    std::string out = "{\"kind\":\"BUNDLE\",";
    out += "\"reason\":\"";
    out += checkEventKindName(report.event.kind);
    out += "\",";
    out += "\"task\":\"" + jsonEscape(report.event.taskName) + "\",";
    out += "\"time\":" + common::formatDouble(report.event.time, 3) +
           ",";
    out += "\"group\":" + std::to_string(report.event.group) + ",";

    // The group's accumulated identifier set, resolved to text — the
    // handles an operator greps the wider infrastructure logs for.
    out += "\"identifiers\":[";
    for (std::size_t i = 0; i < report.event.identifiers.size(); ++i) {
        if (i > 0)
            out += ",";
        out += "\"" +
               jsonEscape(interner.text(report.event.identifiers[i])) +
               "\"";
    }
    out += "],";

    // The full report record: group state (states/expected), ambiguity
    // alternatives (candidates), per-edge timings (latency).
    out += "\"report\":" + reportToJson(report, *catalogPtr) + ",";

    // Frozen flight-recorder rings: the raw lines surrounding the
    // failure, merged across nodes in time order.
    out += "\"context\":[";
    bool first = true;
    for (const obs::ContextLine &line :
         obsPtr->flight()->context()) {
        if (!first)
            out += ",";
        first = false;
        out += "{\"node\":\"" + jsonEscape(line.node) + "\",";
        out += "\"time\":" + common::formatDouble(line.time, 3) + ",";
        out += "\"line\":\"" + jsonEscape(line.line) + "\"}";
    }
    out += "]}";
    return out;
}

std::string
WorkflowMonitor::chromeTraceJson() const
{
    return obsPtr == nullptr || obsPtr->tracer() == nullptr
               ? std::string()
               : obsPtr->tracer()->chromeTraceJson();
}

void
WorkflowMonitor::saveState(common::BinWriter &out) const
{
    out.writeF64(lastTimestamp);
    out.writeBool(anyFed);

    out.writeU64(ingest.linesSeen);
    out.writeU64(ingest.recordsDelivered);
    out.writeU64(ingest.malformedBadTimestamp);
    out.writeU64(ingest.malformedBadHeader);
    out.writeU64(ingest.malformedTruncatedPayload);
    out.writeU64(ingest.nonMonotonicClamped);
    out.writeF64(ingest.maxRegressionSeconds);
    out.writeU64(ingest.duplicatesSuppressed);
    out.writeU64(ingest.reorderBufferPeak);
    out.writeU64(ingest.forcedReleases);
    out.writeU64(ingest.groupsShed);
    out.writeU64(ingest.memoryEvictions);

    out.writeU64(quarantined.size());
    for (const QuarantinedLine &entry : quarantined) {
        out.writeString(entry.line);
        out.writeU8(static_cast<std::uint8_t>(entry.cause));
    }

    out.writeU64(reorderBuffer.size());
    for (const BufferedRecord &entry : reorderBuffer) {
        logging::writeLogRecord(out, entry.record);
        out.writeU64(entry.seq);
    }
    out.writeF64(highestSeen);
    out.writeU64(nextSeq);

    out.writeU64(recentOrder.size());
    for (const auto &[time, key] : recentOrder) {
        out.writeF64(time);
        out.writeString(key);
    }

    // Sharded resolution tallies live in per-shard policy copies; fold
    // them in (and back out) so the serialised policy carries the same
    // totals a serial monitor would — checkpoints stay interchangeable
    // between engines.
    if (swarmEngine != nullptr) {
        auto [res, fb] = swarmEngine->timeoutResolutionCounts();
        timeoutPolicy.resolutions += res;
        timeoutPolicy.defaultFallbacks += fb;
        timeoutPolicy.saveState(out);
        timeoutPolicy.resolutions -= res;
        timeoutPolicy.defaultFallbacks -= fb;
    } else {
        timeoutPolicy.saveState(out);
    }
    enginePtr->saveState(out);

    out.writeBool(obsPtr != nullptr);
    if (obsPtr != nullptr)
        obsPtr->saveState(out);
}

bool
WorkflowMonitor::restoreState(common::BinReader &in)
{
    lastTimestamp = in.readF64();
    anyFed = in.readBool();

    ingest = IngestStats{};
    ingest.linesSeen = in.readU64();
    ingest.recordsDelivered = in.readU64();
    ingest.malformedBadTimestamp = in.readU64();
    ingest.malformedBadHeader = in.readU64();
    ingest.malformedTruncatedPayload = in.readU64();
    ingest.nonMonotonicClamped = in.readU64();
    ingest.maxRegressionSeconds = in.readF64();
    ingest.duplicatesSuppressed = in.readU64();
    ingest.reorderBufferPeak =
        static_cast<std::size_t>(in.readU64());
    ingest.forcedReleases = in.readU64();
    ingest.groupsShed = in.readU64();
    ingest.memoryEvictions = in.readU64();

    std::uint64_t quarantine_count = in.readU64();
    if (!in.ok())
        return false;
    quarantined.clear();
    for (std::uint64_t i = 0; i < quarantine_count; ++i) {
        QuarantinedLine entry;
        entry.line = in.readString();
        entry.cause = static_cast<logging::DecodeFailure>(in.readU8());
        if (!in.ok())
            return false;
        quarantined.push_back(std::move(entry));
    }

    std::uint64_t buffered_count = in.readU64();
    if (!in.ok())
        return false;
    reorderBuffer.clear();
    for (std::uint64_t i = 0; i < buffered_count; ++i) {
        BufferedRecord entry;
        if (!logging::readLogRecord(in, entry.record))
            return false;
        entry.seq = in.readU64();
        reorderBuffer.push_back(std::move(entry));
    }
    highestSeen = in.readF64();
    nextSeq = in.readU64();

    std::uint64_t recent_count = in.readU64();
    if (!in.ok())
        return false;
    recentOrder.clear();
    recentKeys.clear();
    for (std::uint64_t i = 0; i < recent_count; ++i) {
        double time = in.readF64();
        std::string key = in.readString();
        if (!in.ok())
            return false;
        // In-order overwrite reproduces the live map exactly: the
        // newest occurrence of a key wins, as in deliver().
        recentKeys[key] = time;
        recentOrder.emplace_back(time, std::move(key));
    }

    if (!timeoutPolicy.restoreState(in))
        return false;
    if (!engine().restoreState(in))
        return false;

    bool has_obs = in.readBool();
    if (!in.ok() || has_obs != (obsPtr != nullptr)) {
        in.fail();
        return false;
    }
    if (has_obs && !obsPtr->restoreState(in))
        return false;
    return in.ok();
}

} // namespace cloudseer::core
