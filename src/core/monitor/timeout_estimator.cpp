#include "core/monitor/timeout_estimator.hpp"

#include <algorithm>

namespace cloudseer::core {

double
TimeoutPolicy::timeoutFor(const std::string &task) const
{
    auto it = perTask.find(task);
    return it == perTask.end() ? defaultTimeout : it->second;
}

double
TimeoutPolicy::timeoutForCandidates(
    const std::vector<std::string> &tasks) const
{
    ++resolutions;
    bool any_entry = false;
    for (const std::string &task : tasks) {
        if (perTask.count(task)) {
            any_entry = true;
            break;
        }
    }
    if (!any_entry)
        ++defaultFallbacks;
    if (tasks.empty())
        return defaultTimeout;
    double best = 0.0;
    for (const std::string &task : tasks)
        best = std::max(best, timeoutFor(task));
    return best;
}

void
TimeoutEstimator::observeRun(
    const std::string &task,
    const std::vector<common::SimTime> &timestamps)
{
    TaskGaps &entry = perTask[task];
    ++entry.runs;
    for (std::size_t i = 1; i < timestamps.size(); ++i) {
        double gap = timestamps[i] - timestamps[i - 1];
        entry.gaps.add(std::max(gap, 0.0));
    }
}

std::size_t
TimeoutEstimator::runsObserved(const std::string &task) const
{
    auto it = perTask.find(task);
    return it == perTask.end() ? 0 : it->second.runs;
}

double
TimeoutEstimator::maxGap(const std::string &task) const
{
    auto it = perTask.find(task);
    return it == perTask.end() ? 0.0 : it->second.gaps.max();
}

TimeoutPolicy
TimeoutEstimator::estimate(double safety_factor, double floor,
                           double default_timeout) const
{
    TimeoutPolicy policy;
    policy.defaultTimeout = default_timeout;
    for (const auto &[task, entry] : perTask) {
        if (entry.gaps.count() == 0)
            continue;
        policy.perTask[task] =
            std::max(entry.gaps.max() * safety_factor, floor);
    }
    return policy;
}

void
TimeoutEstimator::publishTo(obs::MetricsRegistry &registry) const
{
    std::size_t runs = 0;
    double widest = 0.0;
    for (const auto &[task, entry] : perTask) {
        runs += entry.runs;
        widest = std::max(widest, entry.gaps.max());
    }
    registry
        .gauge("seer_timeout_estimator_tasks",
               "tasks with observed gap statistics")
        .set(static_cast<double>(perTask.size()));
    registry
        .gauge("seer_timeout_estimator_runs",
               "correct runs ingested by the estimator")
        .set(static_cast<double>(runs));
    registry
        .gauge("seer_timeout_estimator_max_gap_seconds",
               "widest inter-message gap observed across tasks")
        .set(widest);
}

void
TimeoutPolicy::saveState(common::BinWriter &out) const
{
    out.writeF64(defaultTimeout);
    out.writeU64(perTask.size());
    for (const auto &[task, timeout] : perTask) {
        out.writeString(task);
        out.writeF64(timeout);
    }
    out.writeU64(resolutions);
    out.writeU64(defaultFallbacks);
}

bool
TimeoutPolicy::restoreState(common::BinReader &in)
{
    double fallback = in.readF64();
    std::uint64_t count = in.readU64();
    if (!in.ok())
        return false;
    std::map<std::string, double> table;
    for (std::uint64_t i = 0; i < count; ++i) {
        std::string task = in.readString();
        double timeout = in.readF64();
        if (!in.ok())
            return false;
        table[std::move(task)] = timeout;
    }
    std::uint64_t resolved = in.readU64();
    std::uint64_t fell_back = in.readU64();
    if (!in.ok())
        return false;
    defaultTimeout = fallback;
    perTask = std::move(table);
    resolutions = resolved;
    defaultFallbacks = fell_back;
    return true;
}

void
TimeoutEstimator::saveState(common::BinWriter &out) const
{
    out.writeU64(perTask.size());
    for (const auto &[task, entry] : perTask) {
        out.writeString(task);
        entry.gaps.saveState(out);
        out.writeU64(entry.runs);
    }
}

bool
TimeoutEstimator::restoreState(common::BinReader &in)
{
    std::uint64_t count = in.readU64();
    if (!in.ok())
        return false;
    std::map<std::string, TaskGaps> table;
    for (std::uint64_t i = 0; i < count; ++i) {
        std::string task = in.readString();
        TaskGaps entry;
        if (!entry.gaps.restoreState(in))
            return false;
        entry.runs = static_cast<std::size_t>(in.readU64());
        if (!in.ok())
            return false;
        table.emplace(std::move(task), std::move(entry));
    }
    perTask = std::move(table);
    return true;
}

} // namespace cloudseer::core
