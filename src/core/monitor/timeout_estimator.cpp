#include "core/monitor/timeout_estimator.hpp"

#include <algorithm>

namespace cloudseer::core {

double
TimeoutPolicy::timeoutFor(const std::string &task) const
{
    auto it = perTask.find(task);
    return it == perTask.end() ? defaultTimeout : it->second;
}

double
TimeoutPolicy::timeoutForCandidates(
    const std::vector<std::string> &tasks) const
{
    ++resolutions;
    bool any_entry = false;
    for (const std::string &task : tasks) {
        if (perTask.count(task)) {
            any_entry = true;
            break;
        }
    }
    if (!any_entry)
        ++defaultFallbacks;
    if (tasks.empty())
        return defaultTimeout;
    double best = 0.0;
    for (const std::string &task : tasks)
        best = std::max(best, timeoutFor(task));
    return best;
}

void
TimeoutEstimator::observeRun(
    const std::string &task,
    const std::vector<common::SimTime> &timestamps)
{
    TaskGaps &entry = perTask[task];
    ++entry.runs;
    for (std::size_t i = 1; i < timestamps.size(); ++i) {
        double gap = timestamps[i] - timestamps[i - 1];
        entry.gaps.add(std::max(gap, 0.0));
    }
}

std::size_t
TimeoutEstimator::runsObserved(const std::string &task) const
{
    auto it = perTask.find(task);
    return it == perTask.end() ? 0 : it->second.runs;
}

double
TimeoutEstimator::maxGap(const std::string &task) const
{
    auto it = perTask.find(task);
    return it == perTask.end() ? 0.0 : it->second.gaps.max();
}

TimeoutPolicy
TimeoutEstimator::estimate(double safety_factor, double floor,
                           double default_timeout) const
{
    TimeoutPolicy policy;
    policy.defaultTimeout = default_timeout;
    for (const auto &[task, entry] : perTask) {
        if (entry.gaps.count() == 0)
            continue;
        policy.perTask[task] =
            std::max(entry.gaps.max() * safety_factor, floor);
    }
    return policy;
}

void
TimeoutEstimator::publishTo(obs::MetricsRegistry &registry) const
{
    std::size_t runs = 0;
    double widest = 0.0;
    for (const auto &[task, entry] : perTask) {
        runs += entry.runs;
        widest = std::max(widest, entry.gaps.max());
    }
    registry
        .gauge("seer_timeout_estimator_tasks",
               "tasks with observed gap statistics")
        .set(static_cast<double>(perTask.size()));
    registry
        .gauge("seer_timeout_estimator_runs",
               "correct runs ingested by the estimator")
        .set(static_cast<double>(runs));
    registry
        .gauge("seer_timeout_estimator_max_gap_seconds",
               "widest inter-message gap observed across tasks")
        .set(widest);
}

} // namespace cloudseer::core
