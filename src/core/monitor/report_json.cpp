#include "core/monitor/report_json.hpp"

#include <cstdio>

#include "common/string_util.hpp"
#include "core/monitor/workflow_monitor.hpp"

namespace cloudseer::core {

std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size() + 8);
    for (char c : raw) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

namespace {

std::string
jsonStringArray(const std::vector<std::string> &items)
{
    std::string out = "[";
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0)
            out += ",";
        out += "\"" + jsonEscape(items[i]) + "\"";
    }
    out += "]";
    return out;
}

} // namespace

std::string
reportToJson(const MonitorReport &report,
             const logging::TemplateCatalog &catalog)
{
    const CheckEvent &event = report.event;

    std::vector<std::string> states;
    for (logging::TemplateId tpl : event.frontierTemplates)
        states.push_back(catalog.label(tpl));
    std::vector<std::string> expected;
    for (logging::TemplateId tpl : event.expectedTemplates)
        expected.push_back(catalog.label(tpl));

    std::string out = "{";
    out += "\"kind\":\"" +
           std::string(checkEventKindName(event.kind)) + "\",";
    out += "\"task\":\"" + jsonEscape(event.taskName) + "\",";
    out += "\"time\":" + common::formatDouble(event.time, 3) + ",";
    out += "\"start\":" + common::formatDouble(event.startTime, 3) + ",";
    out += "\"duration\":" +
           common::formatDouble(event.time - event.startTime, 3) + ",";
    out += std::string("\"endOfStream\":") +
           (report.endOfStream ? "true" : "false") + ",";
    out += "\"messages\":" + std::to_string(event.records.size()) + ",";
    out += "\"records\":[";
    for (std::size_t i = 0; i < event.records.size(); ++i) {
        if (i > 0)
            out += ",";
        out += std::to_string(event.records[i]);
    }
    out += "],";
    out += "\"candidates\":" + jsonStringArray(event.candidateTasks) +
           ",";
    out += "\"states\":" + jsonStringArray(states) + ",";
    out += "\"expected\":" + jsonStringArray(expected);
    if (event.totalBudget >= 0.0) {
        out += ",\"latency\":{";
        out += "\"total\":" +
               common::formatDouble(event.totalElapsed, 3) + ",";
        out += "\"budget\":" +
               common::formatDouble(event.totalBudget, 3) + ",";
        out += "\"criticalPath\":[";
        for (std::size_t i = 0; i < event.criticalPath.size(); ++i) {
            if (i > 0)
                out += ",";
            out += std::to_string(event.criticalPath[i]);
        }
        out += "],\"edges\":[";
        for (std::size_t i = 0; i < event.edgeTimings.size(); ++i) {
            const EdgeTiming &timing = event.edgeTimings[i];
            if (i > 0)
                out += ",";
            out += "{\"from\":" + std::to_string(timing.from) +
                   ",\"to\":" + std::to_string(timing.to) +
                   ",\"fromLabel\":\"" +
                   jsonEscape(catalog.label(timing.fromTpl)) +
                   "\",\"toLabel\":\"" +
                   jsonEscape(catalog.label(timing.toTpl)) +
                   "\",\"elapsed\":" +
                   common::formatDouble(timing.elapsed, 3) +
                   ",\"budget\":" +
                   common::formatDouble(timing.budget, 3) +
                   ",\"exceeded\":" +
                   (timing.exceeded ? "true" : "false") + "}";
        }
        out += "]}";
    }
    out += "}";
    return out;
}

std::string
statsSummaryJson(const CheckerStats &checker, const IngestStats &ingest,
                 double time)
{
    std::string out = "{\"kind\":\"SUMMARY\",";
    out += "\"time\":" + common::formatDouble(time, 3) + ",";
    out += "\"checker\":{";
    out += "\"messages\":" + std::to_string(checker.messages) + ",";
    out += "\"decisive\":" + std::to_string(checker.decisive) + ",";
    out += "\"ambiguous\":" + std::to_string(checker.ambiguous) + ",";
    out += "\"recoveries\":{\"a\":" +
           std::to_string(checker.recoveredPassUnknown) + ",\"b\":" +
           std::to_string(checker.recoveredNewSequence) + ",\"c\":" +
           std::to_string(checker.recoveredOtherSet) + ",\"d\":" +
           std::to_string(checker.recoveredFalseDependency) + "},";
    out += "\"unmatched\":" + std::to_string(checker.unmatched) + ",";
    out += "\"accepted\":" + std::to_string(checker.accepted) + ",";
    out += "\"errors\":" + std::to_string(checker.errorsReported) + ",";
    out += "\"timeouts\":" + std::to_string(checker.timeoutsReported) +
           ",";
    out += "\"timeoutsSuppressed\":" +
           std::to_string(checker.timeoutsSuppressed) + ",";
    out += "\"latencyAnomalies\":" +
           std::to_string(checker.latencyAnomalies) + ",";
    out += "\"shed\":" + std::to_string(checker.groupsShed) + ",";
    out += "\"consumeAttempts\":" +
           std::to_string(checker.consumeAttempts) + ",";
    out += "\"decisiveFraction\":" +
           common::formatDouble(checker.decisiveFraction(), 4) + "},";
    out += "\"ingest\":{";
    out += "\"lines\":" + std::to_string(ingest.linesSeen) + ",";
    out += "\"delivered\":" + std::to_string(ingest.recordsDelivered) +
           ",";
    out += "\"malformed\":" + std::to_string(ingest.malformed()) + ",";
    out += "\"clamped\":" + std::to_string(ingest.nonMonotonicClamped) +
           ",";
    out += "\"duplicates\":" +
           std::to_string(ingest.duplicatesSuppressed) + ",";
    out += "\"forcedReleases\":" +
           std::to_string(ingest.forcedReleases) + ",";
    out += "\"reorderPeak\":" +
           std::to_string(ingest.reorderBufferPeak) + "}}";
    return out;
}

} // namespace cloudseer::core
