/**
 * @file
 * The CloudSeer facade: online workflow monitoring over a log stream.
 *
 * Owns the task automata, the template catalog binding, the message
 * parsing front-end, and the interleaved checker; drives the timeout
 * criterion from message timestamps. This is the class a deployment
 * embeds next to its log collector.
 *
 * A configurable ingest-hardening pipeline sits in front of the
 * checker (DESIGN.md §8): reorder buffer → timestamp guard →
 * near-duplicate suppression → checker → group-cap shedding, plus a
 * malformed-line quarantine on the wire path. Every guard is
 * pass-through at its default setting, so a default-configured
 * monitor behaves bit-identically to the unhardened one.
 */

#ifndef CLOUDSEER_CORE_MONITOR_WORKFLOW_MONITOR_HPP
#define CLOUDSEER_CORE_MONITOR_WORKFLOW_MONITOR_HPP

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "core/checker/interleaved_checker.hpp"
#include "core/checker/sharded_checker.hpp"
#include "core/monitor/report.hpp"
#include "core/monitor/timeout_estimator.hpp"
#include "logging/log_codec.hpp"
#include "logging/log_record.hpp"
#include "logging/variable_extractor.hpp"
#include "obs/observability.hpp"
#include "obs/profiler.hpp"
#include "obs/pulse.hpp"

namespace cloudseer::core {

/**
 * Ingest-hardening knobs. Every field's default disables its guard,
 * keeping the monitor bit-identical to the unhardened path; the
 * hardenedIngestDefaults() profile enables all of them at values that
 * absorb moderate transport adversity.
 */
struct IngestConfig
{
    /**
     * Watermark lag of the reorder buffer, seconds. Records are held
     * until the highest timestamp seen exceeds theirs by this much,
     * then released in timestamp order — undoing cross-node shipping
     * and skew inversions at the cost of that much added latency.
     * 0 = no buffering (records flow straight through).
     */
    double reorderWindowSeconds = 0.0;

    /**
     * Hard bound on buffered records. On overflow the oldest records
     * are force-released (counted in IngestStats) so a stalled
     * watermark can never grow the buffer without bound.
     */
    std::size_t reorderBufferCap = 4096;

    /**
     * Clamp non-monotonic message timestamps to the monitor clock
     * instead of letting a backwards stamp plant a group in the past
     * (where the next sweep would retroactively time it out). The
     * clock itself never moves backwards either way.
     */
    bool clampNonMonotonic = false;

    /**
     * Suppress near-duplicate messages — same (node, service,
     * template, identifiers, timestamp) seen within this window,
     * seconds. Catches at-least-once shipper re-deliveries without
     * touching genuine repeats, which carry distinct timestamps.
     * 0 = off.
     */
    double dedupWindowSeconds = 0.0;

    /**
     * Hard cap on checker groups. When a feed pushes the live count
     * past the cap, the oldest-idle groups are shed, each emitting a
     * Degraded report. 0 = unbounded.
     */
    std::size_t maxActiveGroups = 0;

    /** Malformed lines retained verbatim for diagnosis, per monitor. */
    std::size_t quarantineSampleCap = 16;

    /**
     * Memory ceiling over checker state (seer-vault, DESIGN.md §13):
     * when the checker's deterministic size estimate exceeds this many
     * bytes, least-recently-active groups are shed with Degraded
     * reports — the same contract as maxActiveGroups, in bytes. The
     * estimate counts only snapshot-persisted state, so a restored
     * monitor evicts identically to the uninterrupted one. 0 = no
     * ceiling.
     */
    std::size_t maxResidentBytes = 0;

    /**
     * Check the memory ceiling every this many delivered records; the
     * estimate is O(state), so per-record checks would dominate the
     * hot path. Cadence keys off recordsDelivered (serialised state),
     * never wall time. Values below 1 behave as 1.
     */
    std::uint64_t memoryCheckInterval = 64;

    /**
     * Cap on the process-wide identifier interner (seer-vault).
     * Non-zero installs the capacity at monitor construction; new
     * identifiers past the cap are refused (routing precision degrades
     * for them; memory does not grow) and tallied in seer-scope. 0 —
     * the default — leaves the interner untouched and bit-identical.
     */
    std::size_t maxInternerEntries = 0;

    /**
     * Checking engine selection (seer-swarm, DESIGN.md §14): 0 or 1
     * keeps the serial reference engine; N > 1 deploys the sharded
     * engine with N worker shards. Reports are bit-identical either
     * way — sharding is a throughput decision, not a semantic one.
     * Execution tracing pins the engine to serial (a span's identity
     * is engine-internal); the monitor falls back silently.
     */
    std::size_t numShards = 0;

    /** Capacity of each shard's SPSC rings (sharded engine only). */
    std::size_t shardRingCapacity = 512;
};

/** Hardened-profile defaults (all guards on, moderate settings). */
IngestConfig hardenedIngestDefaults();

/** One quarantined wire line. */
struct QuarantinedLine
{
    std::string line;
    logging::DecodeFailure cause = logging::DecodeFailure::None;
};

/** Ingest-pipeline counters (all zero on a clean, ordered stream). */
struct IngestStats
{
    std::uint64_t linesSeen = 0;      ///< feedLine calls
    std::uint64_t recordsDelivered = 0; ///< records reaching the checker

    // Malformed-line quarantine, by cause.
    std::uint64_t malformedBadTimestamp = 0;
    std::uint64_t malformedBadHeader = 0;
    std::uint64_t malformedTruncatedPayload = 0;

    // Timestamp guard.
    std::uint64_t nonMonotonicClamped = 0; ///< backwards stamps seen
    double maxRegressionSeconds = 0.0;     ///< worst backwards jump

    // Near-duplicate suppression.
    std::uint64_t duplicatesSuppressed = 0;

    // Reorder buffer.
    std::size_t reorderBufferPeak = 0;
    std::uint64_t forcedReleases = 0; ///< overflow force-outs

    // Shedding.
    std::uint64_t groupsShed = 0;      ///< group-cap evictions
    std::uint64_t memoryEvictions = 0; ///< memory-ceiling evictions

    /** Total malformed lines across causes. */
    std::uint64_t malformed() const
    {
        return malformedBadTimestamp + malformedBadHeader +
               malformedTruncatedPayload;
    }
};

/** Monitor configuration. */
struct MonitorConfig
{
    /** Timeout criterion threshold, seconds (paper uses 10 s). */
    double timeoutSeconds = 10.0;

    /**
     * Per-task timeout overrides (task name -> seconds), typically
     * from TimeoutEstimator. A group still tracking several tasks
     * gets the most generous candidate's timeout.
     */
    std::map<std::string, double> perTaskTimeouts;

    /** Checker feature toggles (ablations). */
    CheckerConfig checker;

    /** Count bare numbers as identifiers (off by default; noisy). */
    bool numbersAsIdentifiers = false;

    /** Ingest-hardening pipeline (pass-through by default). */
    IngestConfig ingest;

    /**
     * Run the seer-lint passes over the model bundle at construction
     * and refuse (common::fatal) to monitor against a model with
     * error-severity findings — a broken specification produces
     * confidently wrong reports for months. Escape hatch for forensic
     * replays of a historical model: set to false (tools expose it as
     * --no-verify); the report is still computed and kept (loadLint).
     */
    bool verifyModelOnLoad = true;

    /**
     * Run the seer-prove interference analysis at construction and arm
     * the checker's certified-unambiguous fast path (DESIGN.md §15).
     * The analysis findings (SL020-SL023) are merged into loadLint()
     * either way; only the fast-path dispatch is gated by this flag.
     * Reports are bit-identical with the flag on or off — the
     * certificate selects where provably equivalent shortcuts apply,
     * it never changes what Algorithm 2 decides.
     */
    bool proveFastPath = true;

    /**
     * seer-scope observability (DESIGN.md §11). All-off by default —
     * the null sink — in which case no Observability object is even
     * constructed and the monitor is bit-identical to an
     * uninstrumented one. The flight recorder (seer-flight forensics)
     * lives inside this config and follows the same contract.
     */
    obs::ObsConfig observability;

    /**
     * seer-flight latency criterion (DESIGN.md §12): per-task latency
     * profiles mined offline (mineLatencyProfile, or loaded from the
     * model file's tasklat/edgelat directives). Empty — the default —
     * keeps the criterion off and the monitor bit-identical to a
     * pre-flight one. Non-empty profiles are lint-checked (SL010)
     * against the automata under the same verifyModelOnLoad policy.
     */
    std::vector<LatencyProfile> latencyProfiles;

    /** Budget rule applied to the profile quantiles. */
    LatencyCheckConfig latencyCheck;

    /**
     * seer-pulse live telemetry + alerting (DESIGN.md §16). Off by
     * default — the null sink. Enabling it implies metrics and a
     * snapshot cadence (forced to windowSeconds/6 when no interval is
     * configured) so the rate engine has a heartbeat to chew on.
     */
    obs::PulseConfig pulse;

    /**
     * seer-probe sampling profiler (DESIGN.md §17). Off by default —
     * a true null object: nothing is constructed, no SIGPROF handler
     * or timer is installed, and the stage markers degrade to two TLS
     * stores per pipeline section, so reports are bit-identical
     * (pinned by tests/profiler_test). When enabled, samples tag
     * themselves with the active pipeline stage and a live profile
     * can be pulled over `/profilez?seconds=N` when pulse serves.
     */
    obs::ProfilerConfig profiler;
};

/** Online workflow monitor (modeling output in, reports out). */
class WorkflowMonitor
{
  public:
    /**
     * @param config   Monitor configuration.
     * @param catalog  The catalog modeling interned templates into.
     *                 Shared so callers can render labels.
     * @param automata Task automata from the offline modeling stage.
     */
    WorkflowMonitor(const MonitorConfig &config,
                    std::shared_ptr<logging::TemplateCatalog> catalog,
                    std::vector<TaskAutomaton> automata);

    /**
     * Feed one record through the ingest pipeline. Advances the
     * monitor clock to the record's timestamp (sweeping the timeout
     * criterion), then checks the message. Ground-truth fields on
     * the record are never read.
     */
    std::vector<MonitorReport> feed(const logging::LogRecord &record);

    /** Feed one raw log line (the Logstash-wire path). */
    std::vector<MonitorReport> feedLine(const std::string &line);

    /**
     * End of stream: flush the reorder buffer, run one final timeout
     * sweep past the last timestamp, then flush still-open groups as
     * end-of-stream timeouts.
     */
    std::vector<MonitorReport> finish();

    /** Checker counters. */
    const CheckerStats &stats() const { return engine().stats(); }

    /** The checking engine behind the monitor ("serial"/"sharded"). */
    const char *engineName() const { return engine().engineName(); }

    /** Shard/ring/reconciler counters; nullptr on the serial engine. */
    const ShardMetrics *shardMetrics() const
    {
        return swarmEngine == nullptr ? nullptr
                                      : &swarmEngine->metrics();
    }

    /** Ingest-pipeline counters. */
    const IngestStats &ingestStats() const { return ingest; }

    /** Quarantined malformed lines (bounded sample, oldest first). */
    const std::vector<QuarantinedLine> &quarantine() const
    {
        return quarantined;
    }

    /** Monitor clock: highest message timestamp fed so far. */
    common::SimTime lastTime() const { return lastTimestamp; }

    /** Groups currently in flight. */
    std::size_t activeGroups() const { return engine().activeGroups(); }

    /** Identifier sets currently tracked. */
    std::size_t activeIdentifierSets() const
    {
        return engine().activeIdentifierSets();
    }

    /** The shared template catalog. */
    const logging::TemplateCatalog &catalog() const
    {
        return *catalogPtr;
    }

    /** The automata being monitored against. */
    const std::vector<TaskAutomaton> &automata() const
    {
        return specs;
    }

    /** Lines the monitor failed to parse (feedLine only). */
    std::size_t malformedLines() const
    {
        return static_cast<std::size_t>(ingest.malformed());
    }

    /** Dependency-removal tallies from recovery (d). */
    const RemovalCounts &dependencyRemovals() const
    {
        return engine().dependencyRemovals();
    }

    /** The load-time seer-lint report over the model bundle (always
     *  computed, even with verifyModelOnLoad off). */
    const analysis::LintReport &loadLint() const { return loadReport; }

    /**
     * Refined copies of the automata with every dependency removed at
     * least `min_removals` times weakened (Figure 4 at the model
     * level) — feed these into the next monitor generation.
     */
    std::vector<TaskAutomaton> refinedAutomata(int min_removals) const;

    // --- seer-scope (DESIGN.md §11) -----------------------------------

    /** True when any observability sink is configured. */
    bool observabilityEnabled() const { return obsPtr != nullptr; }

    /** The observability bundle, or nullptr in null-sink mode. */
    obs::Observability *observability() { return obsPtr.get(); }
    const obs::Observability *observability() const
    {
        return obsPtr.get();
    }

    /** Flatten the monitor's current state into one health sample. */
    obs::HealthSample healthSample() const;

    /**
     * Prometheus text exposition of the metric catalog, refreshed
     * from live state. Empty string in null-sink mode.
     */
    std::string prometheusText();

    /** One fresh health snapshot as single-line JSON ("" when off). */
    std::string healthSnapshotJson() const;

    /**
     * Chrome trace_event JSON of the recorded execution spans
     * (loads in about:tracing / Perfetto). "" when tracing is off.
     */
    std::string chromeTraceJson() const;

    // --- seer-pulse (DESIGN.md §16) ------------------------------------

    /** True when the pulse plane (rate + alert engines) is armed. */
    bool pulseEnabled() const { return pulsePtr != nullptr; }

    /** The pulse engine, or nullptr when pulse is off. */
    const obs::PulseEngine *pulse() const { return pulsePtr.get(); }

    /**
     * ALERT JSONL records emitted since the last drain, for
     * interleaving into the report stream (the dedicated alert log,
     * when configured, receives them regardless). Empty when pulse
     * is off.
     */
    std::vector<std::string> drainAlertJson();

    /**
     * The scrape endpoint's bound TCP port (resolves an ephemeral
     * pulse.httpPort = 0), or -1 when no endpoint is serving.
     */
    int pulsePort() const;

    /** /healthz body ("" when pulse is off). */
    std::string healthzJson() const;

    /** /buildz body ("" when observability is off). */
    std::string buildzJson() const;

    /**
     * Re-render and publish all four scrape documents to the
     * telemetry server. Runs automatically at snapshot cadence; call
     * explicitly to tighten freshness (e.g. a serve loop). No-op
     * without an endpoint.
     */
    void publishPulse();

    // --- seer-probe (DESIGN.md §17) ------------------------------------

    /** True when the continuous sampling profiler is armed. */
    bool profilerEnabled() const { return profPtr != nullptr; }

    /** The running profiler, or nullptr when profiling is off. */
    obs::Profiler *profiler() { return profPtr.get(); }

    /**
     * Capture a profile over the next `seconds` of wall time and
     * return its JSON — the `/profilez` provider. Uses the armed
     * continuous profiler when there is one (sleeps, then drains what
     * it holds), else spins up a transient profiler for the window.
     * Blocks the calling thread; "" when a competing profiler holds
     * the process-wide SIGPROF slot.
     */
    std::string liveProfileJson(double seconds);

    // --- seer-flight (DESIGN.md §12) -----------------------------------

    /** The flight recorder, or nullptr when it is off. */
    const obs::FlightRecorder *flightRecorder() const
    {
        return obsPtr == nullptr ? nullptr : obsPtr->flight();
    }

    /**
     * Forensic bundles captured so far as newline-separated JSON
     * objects (the seer_postmortem input). "" when the recorder is
     * off or nothing fired.
     */
    std::string forensicBundleJsonLines() const
    {
        return flightRecorder() == nullptr
                   ? std::string()
                   : flightRecorder()->bundleJsonLines();
    }

    // --- seer-vault (DESIGN.md §13) ------------------------------------

    /**
     * Fingerprint of the automata this monitor checks against. A
     * vault checkpoint records it; restore refuses a mismatch.
     */
    std::uint64_t modelFingerprint() const
    {
        return core::modelFingerprint(pointersTo(specs));
    }

    /**
     * Serialise the full mutable monitor state: clock, ingest
     * counters, quarantine, reorder buffer, dedup window, timeout
     * policy, checker engine, and (when configured) observability.
     * Config, catalog, and automata are construction inputs and are
     * the caller's to re-supply; the process-wide interner is
     * snapshotted separately by the vault (it outlives any monitor).
     */
    void saveState(common::BinWriter &out) const;

    /**
     * Overwrite this monitor from a saveState image taken by a
     * monitor with the same config, catalog, automata, and
     * observability shape. After a successful restore, feeding the
     * remaining stream yields reports bit-identical to the
     * uninterrupted run's.
     */
    bool restoreState(common::BinReader &in);

  private:
    /** A record parked in the reorder buffer. */
    struct BufferedRecord
    {
        logging::LogRecord record;
        std::uint64_t seq = 0; ///< arrival order, for stable ties
    };

    MonitorConfig config;
    TimeoutPolicy timeoutPolicy;
    std::shared_ptr<logging::TemplateCatalog> catalogPtr;
    std::vector<TaskAutomaton> specs;
    logging::VariableExtractor extractor;
    analysis::LintReport loadReport;

    /** The checking engine (serial or sharded per IngestConfig). */
    std::unique_ptr<BaseChecker> enginePtr;

    /** Non-null iff enginePtr is the sharded engine (fast probe). */
    ShardedChecker *swarmEngine = nullptr;

    BaseChecker &engine() { return *enginePtr; }
    const BaseChecker &engine() const { return *enginePtr; }

    std::unique_ptr<obs::Observability> obsPtr; ///< null = null sink

    // seer-pulse (DESIGN.md §16); both null when pulse is off.
    std::unique_ptr<obs::PulseEngine> pulsePtr;
    std::unique_ptr<obs::TelemetryServer> pulseServer;

    // seer-probe (DESIGN.md §17); null when profiling is off.
    std::unique_ptr<obs::Profiler> profPtr;

    // Sampled per-stage pipeline timers (sink→parse→route→check→
    // verdict); all null unless pulse.stageSampleEvery > 0.
    obs::Histogram *stageSink = nullptr;
    obs::Histogram *stageParse = nullptr;
    obs::Histogram *stageRoute = nullptr;
    obs::Histogram *stageCheck = nullptr;
    obs::Histogram *stageVerdict = nullptr;
    std::size_t stageEvery = 0;

    common::SimTime lastTimestamp = 0.0;
    bool anyFed = false;
    IngestStats ingest;
    std::vector<QuarantinedLine> quarantined;

    // Reorder buffer state.
    std::deque<BufferedRecord> reorderBuffer; ///< kept timestamp-sorted
    common::SimTime highestSeen = 0.0;
    std::uint64_t nextSeq = 0;

    // Dedup state: key -> newest message time, plus an expiry queue.
    std::unordered_map<std::string, common::SimTime> recentKeys;
    std::deque<std::pair<common::SimTime, std::string>> recentOrder;

    /** Scratch for the sharded per-record flush (avoids reallocating). */
    std::vector<CheckEvent> stepEvents;

    /** Scratch for flight-recorder line encoding (reused per record). */
    std::string flightScratch;

    /** Guarded delivery: clock, dedup, checker, shedding. */
    void deliver(const logging::LogRecord &record,
                 std::vector<MonitorReport> &reports);

    /** Insert into the reorder buffer and release ripe records. */
    void bufferAndRelease(const logging::LogRecord &record,
                          std::vector<MonitorReport> &reports);

    /**
     * Freeze the flight-recorder context into one forensic bundle per
     * problem report (ErrorDetected, Timeout, LatencyAnomaly) in
     * `reports`. No-op without a flight recorder.
     */
    void captureBundles(const std::vector<MonitorReport> &reports);

    /** Render one report's forensic bundle as single-line JSON. */
    std::string forensicBundleJson(const MonitorReport &report) const;

    /** Feed the newest snapshot to the pulse engine and publish. */
    void pulseStep();

    static std::vector<const TaskAutomaton *>
    pointersTo(const std::vector<TaskAutomaton> &automata);
};

} // namespace cloudseer::core

#endif // CLOUDSEER_CORE_MONITOR_WORKFLOW_MONITOR_HPP
