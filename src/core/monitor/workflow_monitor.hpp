/**
 * @file
 * The CloudSeer facade: online workflow monitoring over a log stream.
 *
 * Owns the task automata, the template catalog binding, the message
 * parsing front-end, and the interleaved checker; drives the timeout
 * criterion from message timestamps. This is the class a deployment
 * embeds next to its log collector.
 */

#ifndef CLOUDSEER_CORE_MONITOR_WORKFLOW_MONITOR_HPP
#define CLOUDSEER_CORE_MONITOR_WORKFLOW_MONITOR_HPP

#include <memory>
#include <string>
#include <vector>

#include "core/checker/interleaved_checker.hpp"
#include "core/monitor/report.hpp"
#include "core/monitor/timeout_estimator.hpp"
#include "logging/log_record.hpp"
#include "logging/variable_extractor.hpp"

namespace cloudseer::core {

/** Monitor configuration. */
struct MonitorConfig
{
    /** Timeout criterion threshold, seconds (paper uses 10 s). */
    double timeoutSeconds = 10.0;

    /**
     * Per-task timeout overrides (task name -> seconds), typically
     * from TimeoutEstimator. A group still tracking several tasks
     * gets the most generous candidate's timeout.
     */
    std::map<std::string, double> perTaskTimeouts;

    /** Checker feature toggles (ablations). */
    CheckerConfig checker;

    /** Count bare numbers as identifiers (off by default; noisy). */
    bool numbersAsIdentifiers = false;
};

/** Online workflow monitor (modeling output in, reports out). */
class WorkflowMonitor
{
  public:
    /**
     * @param config   Monitor configuration.
     * @param catalog  The catalog modeling interned templates into.
     *                 Shared so callers can render labels.
     * @param automata Task automata from the offline modeling stage.
     */
    WorkflowMonitor(const MonitorConfig &config,
                    std::shared_ptr<logging::TemplateCatalog> catalog,
                    std::vector<TaskAutomaton> automata);

    /**
     * Feed one record. Advances the monitor clock to the record's
     * timestamp (sweeping the timeout criterion), then checks the
     * message. Ground-truth fields on the record are never read.
     */
    std::vector<MonitorReport> feed(const logging::LogRecord &record);

    /** Feed one raw log line (the Logstash-wire path). */
    std::vector<MonitorReport> feedLine(const std::string &line);

    /**
     * End of stream: run one final timeout sweep past the last
     * timestamp, then flush still-open groups as end-of-stream
     * timeouts.
     */
    std::vector<MonitorReport> finish();

    /** Checker counters. */
    const CheckerStats &stats() const { return engine.stats(); }

    /** Groups currently in flight. */
    std::size_t activeGroups() const { return engine.activeGroups(); }

    /** Identifier sets currently tracked. */
    std::size_t activeIdentifierSets() const
    {
        return engine.activeIdentifierSets();
    }

    /** The shared template catalog. */
    const logging::TemplateCatalog &catalog() const
    {
        return *catalogPtr;
    }

    /** The automata being monitored against. */
    const std::vector<TaskAutomaton> &automata() const
    {
        return specs;
    }

    /** Lines the monitor failed to parse (feedLine only). */
    std::size_t malformedLines() const { return malformed; }

    /** Dependency-removal tallies from recovery (d). */
    const RemovalCounts &dependencyRemovals() const
    {
        return engine.dependencyRemovals();
    }

    /**
     * Refined copies of the automata with every dependency removed at
     * least `min_removals` times weakened (Figure 4 at the model
     * level) — feed these into the next monitor generation.
     */
    std::vector<TaskAutomaton> refinedAutomata(int min_removals) const;

  private:
    MonitorConfig config;
    TimeoutPolicy timeoutPolicy;
    std::shared_ptr<logging::TemplateCatalog> catalogPtr;
    std::vector<TaskAutomaton> specs;
    logging::VariableExtractor extractor;
    InterleavedChecker engine;
    common::SimTime lastTimestamp = 0.0;
    bool anyFed = false;
    std::size_t malformed = 0;

    static std::vector<const TaskAutomaton *>
    pointersTo(const std::vector<TaskAutomaton> &automata);
};

} // namespace cloudseer::core

#endif // CLOUDSEER_CORE_MONITOR_WORKFLOW_MONITOR_HPP
