#include "core/monitor/report.hpp"

#include "common/string_util.hpp"

namespace cloudseer::core {

const char *
checkEventKindName(CheckEventKind kind)
{
    switch (kind) {
      case CheckEventKind::Accepted: return "ACCEPTED";
      case CheckEventKind::ErrorDetected: return "ERROR";
      case CheckEventKind::Timeout: return "TIMEOUT";
      case CheckEventKind::LatencyAnomaly: return "LATENCY";
      case CheckEventKind::Degraded: return "DEGRADED";
    }
    return "UNKNOWN";
}

std::string
MonitorReport::summary(const logging::TemplateCatalog &catalog) const
{
    (void)catalog;
    std::string out = checkEventKindName(event.kind);
    out += " task=";
    out += event.taskName.empty() ? "?" : event.taskName;
    out += " t=" + common::formatDouble(event.time, 2) + "s";
    out += " messages=" + std::to_string(event.records.size());
    if (endOfStream)
        out += " (end-of-stream)";
    return out;
}

std::string
MonitorReport::describe(const logging::TemplateCatalog &catalog) const
{
    std::string out = summary(catalog) + "\n";
    if (event.candidateTasks.size() > 1) {
        out += "  candidate tasks: " +
               common::join(event.candidateTasks, ", ") + "\n";
    }
    if (!event.frontierTemplates.empty()) {
        out += "  current states (last completed steps):\n";
        for (logging::TemplateId tpl : event.frontierTemplates)
            out += "    - " + catalog.label(tpl) + "\n";
    }
    if (event.kind != CheckEventKind::Accepted &&
        !event.expectedTemplates.empty()) {
        out += "  expected next:\n";
        for (logging::TemplateId tpl : event.expectedTemplates)
            out += "    - " + catalog.label(tpl) + "\n";
    }
    if (event.totalBudget >= 0.0) {
        out += "  duration " +
               common::formatDouble(event.totalElapsed, 2) +
               "s vs budget " +
               common::formatDouble(event.totalBudget, 2) + "s\n";
        for (const EdgeTiming &timing : event.edgeTimings) {
            if (!timing.exceeded)
                continue;
            out += "  slow transition " + catalog.label(timing.fromTpl) +
                   " -> " + catalog.label(timing.toTpl) + ": " +
                   common::formatDouble(timing.elapsed, 2) + "s (budget " +
                   common::formatDouble(timing.budget, 2) + "s)\n";
        }
    }
    return out;
}

} // namespace cloudseer::core
