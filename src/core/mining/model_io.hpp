/**
 * @file
 * Persistence for the offline modeling stage's output.
 *
 * A deployment models its tasks once (hours of correct executions)
 * and monitors for months; the models must survive restarts. The
 * format is a line-oriented text file holding the template catalog
 * slice and every automaton:
 *
 *     cloudseer-models 1
 *     template <id> <service> <urlencoded-template>
 *     automaton <name> <events> <edges>
 *     event <id> <template-id> <occurrence>
 *     edge <from> <to> <strong>
 *     end
 *
 * Template text is percent-encoded so embedded spaces and newlines
 * survive the tokenizer.
 */

#ifndef CLOUDSEER_CORE_MINING_MODEL_IO_HPP
#define CLOUDSEER_CORE_MINING_MODEL_IO_HPP

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/automaton/task_automaton.hpp"

namespace cloudseer::core {

/** A catalog plus the automata defined over it. */
struct ModelBundle
{
    std::shared_ptr<logging::TemplateCatalog> catalog;
    std::vector<TaskAutomaton> automata;
};

/** Serialise a bundle to a stream. */
void saveModels(std::ostream &out, const logging::TemplateCatalog &catalog,
                const std::vector<TaskAutomaton> &automata);

/** Serialise a bundle to a string. */
std::string saveModelsToString(const logging::TemplateCatalog &catalog,
                               const std::vector<TaskAutomaton> &automata);

/**
 * Parse a bundle. Returns nullopt on any structural error (bad magic,
 * dangling ids, truncated sections). Template ids are re-interned, so
 * a loaded bundle is self-consistent even if the file shuffled ids.
 */
std::optional<ModelBundle> loadModels(std::istream &in);

/** Parse a bundle from a string. */
std::optional<ModelBundle> loadModelsFromString(const std::string &text);

/** Percent-encode for the model file (exposed for tests). */
std::string encodeModelToken(const std::string &raw);

/** Inverse of encodeModelToken; nullopt on malformed escapes. */
std::optional<std::string> decodeModelToken(const std::string &token);

} // namespace cloudseer::core

#endif // CLOUDSEER_CORE_MINING_MODEL_IO_HPP
