/**
 * @file
 * Persistence for the offline modeling stage's output.
 *
 * A deployment models its tasks once (hours of correct executions)
 * and monitors for months; the models must survive restarts. The
 * format is a line-oriented text file holding the template catalog
 * slice and every automaton:
 *
 *     cloudseer-models 1
 *     template <id> <service> <urlencoded-template>
 *     automaton <name> <events> <edges>
 *     event <id> <template-id> <occurrence>
 *     edge <from> <to> <strong>
 *     tasklat <runs> <count> <p50> <p95> <p99> <max>
 *     edgelat <from> <to> <count> <p50> <p95> <p99> <max>
 *     end
 *     certificate <model-fingerprint>
 *     verdict <template-id> <verdict-word> <automata> <sites>
 *
 * Template text is percent-encoded so embedded spaces and newlines
 * survive the tokenizer.
 *
 * The `tasklat`/`edgelat` directives are the seer-flight latency
 * profile (DESIGN.md §12) and are optional: a pre-flight file without
 * them loads with empty profiles, preserving the version-1 magic.
 * Latency seconds are printed with %.17g so a loaded profile replays
 * bit-identically against the stream it was mined from.
 *
 * The `certificate`/`verdict` directives persist the seer-prove
 * ambiguity certificate (DESIGN.md §15) and are equally optional:
 * they appear after the last automaton section, reference template
 * ids from the same file (re-interned on load), and a pre-seer-prove
 * file simply loads with `certificate.present == false`. The records
 * here are dumb storage; analysis/interference.hpp owns the verdict
 * semantics and re-derivation.
 */

#ifndef CLOUDSEER_CORE_MINING_MODEL_IO_HPP
#define CLOUDSEER_CORE_MINING_MODEL_IO_HPP

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/automaton/task_automaton.hpp"
#include "core/mining/latency_profile.hpp"

namespace cloudseer::core {

/** One template's persisted seer-prove verdict (storage only; the
 *  analysis layer interprets the verdict word). */
struct SignatureVerdictRecord
{
    logging::TemplateId tpl = 0;
    std::string verdict;
    std::uint32_t automata = 0;
    std::uint32_t sites = 0;
};

/** Persisted ambiguity certificate (seer-prove, DESIGN.md §15). */
struct CertificateRecord
{
    /** True when the file carried a `certificate` directive. */
    bool present = false;

    /** Checker model fingerprint of the bundle the certificate was
     *  computed over (guards against stale certificates). */
    std::uint64_t fingerprint = 0;

    /** Per-template verdicts, ascending by re-interned template id. */
    std::vector<SignatureVerdictRecord> verdicts;
};

/** A catalog plus the automata defined over it. */
struct ModelBundle
{
    std::shared_ptr<logging::TemplateCatalog> catalog;
    std::vector<TaskAutomaton> automata;

    /**
     * Latency profiles parallel to `automata` (empty vector when the
     * file predates seer-flight; a profile with no samples when its
     * automaton carried no latency directives).
     */
    std::vector<LatencyProfile> profiles;

    /** Ambiguity certificate, when the file carried one. */
    CertificateRecord certificate;
};

/**
 * Line numbers (1-based) of one automaton's sections in a model file,
 * recorded at parse time so diagnostics can point into the file that
 * was actually loaded.
 */
struct AutomatonSourceMap
{
    /** Line of the "automaton <name> ..." declaration. */
    int declLine = 0;

    /** Line of each "event" directive, indexed by event id. */
    std::vector<int> eventLines;

    /** First line declaring each (from, to) edge; duplicate edge
     *  directives keep the first occurrence. */
    std::map<std::pair<int, int>, int> edgeLines;
};

/** Source locations for a loaded bundle (parallel to its automata). */
struct ModelSourceMap
{
    /** Line of each "template" directive, keyed by re-interned id. */
    std::map<logging::TemplateId, int> templateLines;

    /** Per-automaton maps, same order as ModelBundle::automata. */
    std::vector<AutomatonSourceMap> automata;

    /** Line of event `id` in automaton `index`, or 0 when unknown. */
    int eventLine(std::size_t index, int id) const;

    /** Line of edge (from, to) in automaton `index`, or 0. */
    int edgeLine(std::size_t index, int from, int to) const;

    /** Declaration line of automaton `index`, or 0. */
    int declLine(std::size_t index) const;
};

/** Serialise a bundle to a stream. */
void saveModels(std::ostream &out, const logging::TemplateCatalog &catalog,
                const std::vector<TaskAutomaton> &automata);

/**
 * Serialise a bundle with latency profiles (seer-flight). `profiles`
 * is matched to automata by task name, so it may be shorter, longer,
 * or differently ordered; unmatched profiles are dropped.
 */
void saveModels(std::ostream &out, const logging::TemplateCatalog &catalog,
                const std::vector<TaskAutomaton> &automata,
                const std::vector<LatencyProfile> &profiles);

/**
 * Serialise a bundle with latency profiles and an ambiguity
 * certificate. Verdicts for templates no automaton references are
 * dropped (they could not be re-interned on load); a certificate with
 * `present == false` writes nothing, matching the pre-seer-prove
 * format byte for byte.
 */
void saveModels(std::ostream &out, const logging::TemplateCatalog &catalog,
                const std::vector<TaskAutomaton> &automata,
                const std::vector<LatencyProfile> &profiles,
                const CertificateRecord &certificate);

/** Serialise a bundle to a string. */
std::string saveModelsToString(const logging::TemplateCatalog &catalog,
                               const std::vector<TaskAutomaton> &automata);

/**
 * Parse a bundle. Returns nullopt on any structural error (bad magic,
 * dangling ids, truncated sections). Template ids are re-interned, so
 * a loaded bundle is self-consistent even if the file shuffled ids.
 *
 * @param source_map When non-null, filled with the 1-based line
 *        numbers of every directive so callers (seer-lint) can print
 *        file:line locations for findings.
 */
std::optional<ModelBundle> loadModels(std::istream &in,
                                      ModelSourceMap *source_map = nullptr);

/** Parse a bundle from a string. */
std::optional<ModelBundle> loadModelsFromString(const std::string &text);

/** Percent-encode for the model file (exposed for tests). */
std::string encodeModelToken(const std::string &raw);

/** Inverse of encodeModelToken; nullopt on malformed escapes. */
std::optional<std::string> decodeModelToken(const std::string &token);

} // namespace cloudseer::core

#endif // CLOUDSEER_CORE_MINING_MODEL_IO_HPP
