/**
 * @file
 * End-to-end offline modeling: raw log records of correct executions
 * in, task automata out (paper §3, full pipeline), including the
 * convergence-driven modeling loop the paper uses for Table 2 ("keep
 * running the task ... until logs from any subsequent executions do
 * not change the result automaton").
 */

#ifndef CLOUDSEER_CORE_MINING_MODEL_BUILDER_HPP
#define CLOUDSEER_CORE_MINING_MODEL_BUILDER_HPP

#include <functional>
#include <string>
#include <vector>

#include "core/automaton/task_automaton.hpp"
#include "core/mining/latency_profile.hpp"
#include "core/mining/preprocessor.hpp"
#include "logging/log_record.hpp"
#include "logging/variable_extractor.hpp"

namespace cloudseer::core {

/** Offline modeling front-end. Owns no state besides the catalog ref. */
class TaskModeler
{
  public:
    /**
     * @param catalog Shared template catalog; modeling interns every
     *        template it sees, and checking later resolves against the
     *        same catalog.
     */
    explicit TaskModeler(logging::TemplateCatalog &catalog);

    /**
     * Convert one execution's records (time order) into a template
     * sequence, interning templates as they appear.
     */
    TemplateSequence
    toTemplateSequence(const std::vector<logging::LogRecord> &records);

    /**
     * Like toTemplateSequence, but keep each record's message-clock
     * stamp — the raw material for mineLatencyProfile (seer-flight).
     */
    TimedSequence
    toTimedSequence(const std::vector<logging::LogRecord> &records);

    /**
     * Build the task automaton from many correct runs: preprocess,
     * mine dependencies, transitively reduce, construct.
     */
    TaskAutomaton buildAutomaton(
        const std::string &task_name,
        const std::vector<TemplateSequence> &runs) const;

    /**
     * Post-build verification hook. Receives each freshly built
     * automaton plus the catalog and returns findings (one line each);
     * an empty vector means the automaton is clean. The analysis layer
     * installs seer-lint here (analysis::attachLint) — the miner stays
     * below the analysis library and never depends on it.
     */
    using Verifier = std::function<std::vector<std::string>(
        const TaskAutomaton &, const logging::TemplateCatalog &)>;

    /** Install (or clear, with nullptr) the post-build verifier. */
    void setVerifier(Verifier verifier);

    /** Outcome of the convergence-driven modeling loop. */
    struct ConvergenceResult
    {
        TaskAutomaton automaton;
        std::size_t runsUsed = 0;
        bool converged = false;

        /** Verifier findings on the final automaton (empty = clean or
         *  no verifier installed). */
        std::vector<std::string> lintFindings;
    };

    /**
     * Model with the paper's convergence criterion: keep adding runs
     * until `stable_checks` consecutive rebuilds (every `check_every`
     * runs) leave the automaton structurally unchanged.
     *
     * @param task_name     Name for the result automaton.
     * @param next_run      Produces one more correct-execution sequence.
     * @param min_runs      Runs to collect before the first rebuild.
     * @param check_every   Runs between rebuilds.
     * @param stable_checks Consecutive unchanged rebuilds required.
     * @param max_runs      Hard cap (paper saw 200-800).
     */
    ConvergenceResult modelUntilStable(
        const std::string &task_name,
        const std::function<TemplateSequence()> &next_run,
        std::size_t min_runs = 20, std::size_t check_every = 10,
        std::size_t stable_checks = 3, std::size_t max_runs = 800) const;

  private:
    logging::TemplateCatalog &catalog;
    logging::VariableExtractor extractor;
    Verifier verifier;
};

} // namespace cloudseer::core

#endif // CLOUDSEER_CORE_MINING_MODEL_BUILDER_HPP
