#include "core/mining/preprocessor.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace cloudseer::core {

PreprocessResult
preprocessSequences(const std::vector<TemplateSequence> &sequences)
{
    CS_ASSERT(!sequences.empty(), "preprocess needs at least one run");

    // Per-template occurrence count in each sequence.
    std::map<logging::TemplateId, std::vector<int>> counts;
    for (std::size_t s = 0; s < sequences.size(); ++s) {
        for (logging::TemplateId tpl : sequences[s]) {
            auto [it, inserted] = counts.try_emplace(
                tpl, std::vector<int>(sequences.size(), 0));
            (void)inserted;
            ++it->second[s];
        }
    }

    PreprocessResult out;
    std::vector<char> is_key; // indexed lookup would need max id; map it
    std::map<logging::TemplateId, bool> keep;
    for (const auto &[tpl, per_seq] : counts) {
        bool stable = std::all_of(per_seq.begin(), per_seq.end(),
                                  [&](int c) { return c == per_seq[0]; });
        // A template absent from some sequence has count 0 there while
        // positive elsewhere, so `stable` is false — exactly the
        // paper's "appears the same number of times in every sequence".
        keep[tpl] = stable && per_seq[0] > 0;
        if (keep[tpl])
            out.keyTemplates.emplace_back(tpl, per_seq[0]);
        else
            out.droppedTemplates.push_back(tpl);
    }
    (void)is_key;

    out.sequences.reserve(sequences.size());
    for (const TemplateSequence &seq : sequences) {
        TemplateSequence filtered;
        filtered.reserve(seq.size());
        for (logging::TemplateId tpl : seq) {
            if (keep[tpl])
                filtered.push_back(tpl);
        }
        out.sequences.push_back(std::move(filtered));
    }
    return out;
}

} // namespace cloudseer::core
