/**
 * @file
 * Preprocessing of task log sequences (paper §3.1).
 *
 * Given the template sequences of many correct executions of one task,
 * keep only the *key* templates — those appearing the same number of
 * times in every sequence. This strips loop/poll/background messages
 * whose counts vary, leaving exactly the workflow skeleton.
 */

#ifndef CLOUDSEER_CORE_MINING_PREPROCESSOR_HPP
#define CLOUDSEER_CORE_MINING_PREPROCESSOR_HPP

#include <vector>

#include "logging/template_catalog.hpp"

namespace cloudseer::core {

/** One execution's messages as interned template ids, in time order. */
using TemplateSequence = std::vector<logging::TemplateId>;

/** Result of preprocessing a set of sequences. */
struct PreprocessResult
{
    /** Input sequences restricted to key templates. */
    std::vector<TemplateSequence> sequences;

    /** Key templates (sorted) with their common per-sequence count. */
    std::vector<std::pair<logging::TemplateId, int>> keyTemplates;

    /** Templates that were dropped (unstable counts). */
    std::vector<logging::TemplateId> droppedTemplates;
};

/**
 * Apply the key-message filter.
 *
 * @param sequences Template sequences from multiple correct executions
 *                  of the same task. Must be non-empty.
 */
PreprocessResult
preprocessSequences(const std::vector<TemplateSequence> &sequences);

} // namespace cloudseer::core

#endif // CLOUDSEER_CORE_MINING_PREPROCESSOR_HPP
