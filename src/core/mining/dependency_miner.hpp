/**
 * @file
 * Temporal-dependency mining (paper §3.2).
 *
 * Over preprocessed sequences, classify every ordered pair of event
 * nodes (template occurrences) as a strong dependency (always
 * immediately adjacent), a weak dependency (always before, not always
 * adjacent), or unordered. A transitive reduction then keeps the
 * dependency set minimal; the reduced DAG is the automaton skeleton.
 */

#ifndef CLOUDSEER_CORE_MINING_DEPENDENCY_MINER_HPP
#define CLOUDSEER_CORE_MINING_DEPENDENCY_MINER_HPP

#include <vector>

#include "core/automaton/task_automaton.hpp"
#include "core/mining/preprocessor.hpp"

namespace cloudseer::core {

/** Mined partial order over event nodes. */
struct MinedModel
{
    /** Event nodes (template, occurrence); index = event id. */
    std::vector<EventNode> events;

    /** Transitively-reduced dependency edges (strong flag set). */
    std::vector<DependencyEdge> edges;

    /** Pairs ordered in every sequence, before reduction (by id). */
    std::vector<std::pair<int, int>> fullOrder;
};

/**
 * Mine temporal dependencies from preprocessed sequences.
 *
 * Preconditions: every sequence contains the same multiset of
 * templates (guaranteed by preprocessSequences).
 */
MinedModel
mineDependencies(const std::vector<TemplateSequence> &sequences);

/**
 * Transitive reduction of a DAG given as an ordered-pair relation.
 * Exposed for tests; mineDependencies calls it internally.
 *
 * @param n     Number of nodes.
 * @param order Full partial order as (before, after) pairs.
 * @return Minimal edge set with the same transitive closure.
 */
std::vector<std::pair<int, int>>
transitiveReduction(int n, const std::vector<std::pair<int, int>> &order);

} // namespace cloudseer::core

#endif // CLOUDSEER_CORE_MINING_DEPENDENCY_MINER_HPP
