#include "core/mining/dependency_miner.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace cloudseer::core {

std::vector<std::pair<int, int>>
transitiveReduction(int n, const std::vector<std::pair<int, int>> &order)
{
    // Dense reachability; n is the per-task key-message count (tens).
    std::vector<std::vector<char>> before(
        static_cast<std::size_t>(n),
        std::vector<char>(static_cast<std::size_t>(n), 0));
    for (auto [a, b] : order) {
        CS_ASSERT(a >= 0 && a < n && b >= 0 && b < n && a != b,
                  "bad order pair");
        before[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
            1;
    }

    // The input relation is already transitively closed when it comes
    // from mining (it contains every ordered pair); close it anyway so
    // the helper is safe for hand-built test inputs.
    for (int k = 0; k < n; ++k) {
        for (int i = 0; i < n; ++i) {
            if (!before[static_cast<std::size_t>(i)]
                       [static_cast<std::size_t>(k)]) {
                continue;
            }
            for (int j = 0; j < n; ++j) {
                if (before[static_cast<std::size_t>(k)]
                          [static_cast<std::size_t>(j)]) {
                    before[static_cast<std::size_t>(i)]
                          [static_cast<std::size_t>(j)] = 1;
                }
            }
        }
    }

    // Edge (a, b) is redundant iff some c has a->c and c->b.
    std::vector<std::pair<int, int>> reduced;
    for (int a = 0; a < n; ++a) {
        for (int b = 0; b < n; ++b) {
            if (!before[static_cast<std::size_t>(a)]
                       [static_cast<std::size_t>(b)]) {
                continue;
            }
            bool redundant = false;
            for (int c = 0; c < n && !redundant; ++c) {
                if (c == a || c == b)
                    continue;
                if (before[static_cast<std::size_t>(a)]
                          [static_cast<std::size_t>(c)] &&
                    before[static_cast<std::size_t>(c)]
                          [static_cast<std::size_t>(b)]) {
                    redundant = true;
                }
            }
            if (!redundant)
                reduced.emplace_back(a, b);
        }
    }
    return reduced;
}

MinedModel
mineDependencies(const std::vector<TemplateSequence> &sequences)
{
    CS_ASSERT(!sequences.empty(), "mining needs at least one sequence");

    // Build the event-node table from the first sequence's multiset
    // (all sequences share it after preprocessing).
    std::map<logging::TemplateId, int> multiplicity;
    for (logging::TemplateId tpl : sequences[0])
        ++multiplicity[tpl];

    MinedModel model;
    std::map<std::pair<logging::TemplateId, int>, int> eventId;
    for (const auto &[tpl, count] : multiplicity) {
        for (int occ = 0; occ < count; ++occ) {
            eventId[{tpl, occ}] = static_cast<int>(model.events.size());
            model.events.push_back({tpl, occ});
        }
    }
    int n = static_cast<int>(model.events.size());

    // Position of each event in each sequence.
    // ordered[a][b] stays 1 only if a precedes b in every sequence;
    // adjacent[a][b] stays 1 only if b is always immediately next.
    std::vector<std::vector<char>> ordered(
        static_cast<std::size_t>(n),
        std::vector<char>(static_cast<std::size_t>(n), 1));
    std::vector<std::vector<char>> adjacent(
        static_cast<std::size_t>(n),
        std::vector<char>(static_cast<std::size_t>(n), 1));
    for (int i = 0; i < n; ++i) {
        ordered[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] =
            0;
        adjacent[static_cast<std::size_t>(i)]
                [static_cast<std::size_t>(i)] = 0;
    }

    std::vector<int> position(static_cast<std::size_t>(n));
    for (const TemplateSequence &seq : sequences) {
        CS_ASSERT(static_cast<int>(seq.size()) == n,
                  "sequences must share one template multiset "
                  "(run preprocessSequences first)");
        std::map<logging::TemplateId, int> seen;
        for (int pos = 0; pos < n; ++pos) {
            logging::TemplateId tpl = seq[static_cast<std::size_t>(pos)];
            int occ = seen[tpl]++;
            auto it = eventId.find({tpl, occ});
            CS_ASSERT(it != eventId.end(),
                      "sequence contains an unknown event occurrence");
            position[static_cast<std::size_t>(it->second)] = pos;
        }
        for (int a = 0; a < n; ++a) {
            for (int b = 0; b < n; ++b) {
                if (a == b)
                    continue;
                int pa = position[static_cast<std::size_t>(a)];
                int pb = position[static_cast<std::size_t>(b)];
                if (pa >= pb) {
                    ordered[static_cast<std::size_t>(a)]
                           [static_cast<std::size_t>(b)] = 0;
                }
                if (pb != pa + 1) {
                    adjacent[static_cast<std::size_t>(a)]
                            [static_cast<std::size_t>(b)] = 0;
                }
            }
        }
    }

    for (int a = 0; a < n; ++a) {
        for (int b = 0; b < n; ++b) {
            if (ordered[static_cast<std::size_t>(a)]
                       [static_cast<std::size_t>(b)]) {
                model.fullOrder.emplace_back(a, b);
            }
        }
    }

    std::vector<std::pair<int, int>> reduced =
        transitiveReduction(n, model.fullOrder);
    std::sort(reduced.begin(), reduced.end());
    for (auto [a, b] : reduced) {
        bool strong = adjacent[static_cast<std::size_t>(a)]
                              [static_cast<std::size_t>(b)] != 0;
        model.edges.push_back({a, b, strong});
    }
    return model;
}

} // namespace cloudseer::core
