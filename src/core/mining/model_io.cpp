#include "core/mining/model_io.hpp"

#include <cctype>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "common/string_util.hpp"

namespace cloudseer::core {

namespace {

constexpr const char *kMagic = "cloudseer-models";
constexpr int kVersion = 1;

bool
needsEscape(char c)
{
    return c == '%' || std::isspace(static_cast<unsigned char>(c)) ||
           !std::isprint(static_cast<unsigned char>(c));
}

int
hexValue(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

} // namespace

std::string
encodeModelToken(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        if (needsEscape(c)) {
            char buf[4];
            std::snprintf(buf, sizeof(buf), "%%%02x",
                          static_cast<unsigned char>(c));
            out += buf;
        } else {
            out.push_back(c);
        }
    }
    if (out.empty())
        out = "%00"; // keep empty fields tokenizable
    return out;
}

std::optional<std::string>
decodeModelToken(const std::string &token)
{
    std::string out;
    out.reserve(token.size());
    for (std::size_t i = 0; i < token.size(); ++i) {
        if (token[i] != '%') {
            out.push_back(token[i]);
            continue;
        }
        if (i + 2 >= token.size())
            return std::nullopt;
        int hi = hexValue(token[i + 1]);
        int lo = hexValue(token[i + 2]);
        if (hi < 0 || lo < 0)
            return std::nullopt;
        char c = static_cast<char>(hi * 16 + lo);
        if (c != '\0')
            out.push_back(c);
        i += 2;
    }
    return out;
}

namespace {

/** Shortest decimal that round-trips the double exactly. */
std::string
formatLatency(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

void
writeLatencyStats(std::ostream &out, const LatencyStats &stats)
{
    out << stats.count << " " << formatLatency(stats.p50) << " "
        << formatLatency(stats.p95) << " " << formatLatency(stats.p99)
        << " " << formatLatency(stats.maxSeen);
}

bool
parseLatencyStats(const std::vector<std::string> &fields,
                  std::size_t offset, LatencyStats &stats)
{
    if (fields.size() != offset + 5)
        return false;
    try {
        stats.count = std::stoull(fields[offset]);
        stats.p50 = std::stod(fields[offset + 1]);
        stats.p95 = std::stod(fields[offset + 2]);
        stats.p99 = std::stod(fields[offset + 3]);
        stats.maxSeen = std::stod(fields[offset + 4]);
    } catch (...) {
        return false;
    }
    return true;
}

} // namespace

void
saveModels(std::ostream &out, const logging::TemplateCatalog &catalog,
           const std::vector<TaskAutomaton> &automata)
{
    saveModels(out, catalog, automata, {});
}

void
saveModels(std::ostream &out, const logging::TemplateCatalog &catalog,
           const std::vector<TaskAutomaton> &automata,
           const std::vector<LatencyProfile> &profiles)
{
    saveModels(out, catalog, automata, profiles, {});
}

void
saveModels(std::ostream &out, const logging::TemplateCatalog &catalog,
           const std::vector<TaskAutomaton> &automata,
           const std::vector<LatencyProfile> &profiles,
           const CertificateRecord &certificate)
{
    out << kMagic << " " << kVersion << "\n";

    std::map<std::string, const LatencyProfile *> profile_of;
    for (const LatencyProfile &profile : profiles)
        profile_of.emplace(profile.task, &profile);

    // Persist only the templates the automata actually reference.
    std::set<logging::TemplateId> used;
    for (const TaskAutomaton &automaton : automata) {
        for (std::size_t e = 0; e < automaton.eventCount(); ++e)
            used.insert(automaton.event(static_cast<int>(e)).tpl);
    }
    for (logging::TemplateId tpl : used) {
        out << "template " << tpl << " "
            << encodeModelToken(catalog.service(tpl)) << " "
            << encodeModelToken(catalog.text(tpl)) << "\n";
    }

    for (const TaskAutomaton &automaton : automata) {
        out << "automaton " << encodeModelToken(automaton.name()) << " "
            << automaton.eventCount() << " " << automaton.edgeCount()
            << "\n";
        for (std::size_t e = 0; e < automaton.eventCount(); ++e) {
            const EventNode &node =
                automaton.event(static_cast<int>(e));
            out << "event " << e << " " << node.tpl << " "
                << node.occurrence << "\n";
        }
        for (const DependencyEdge &edge : automaton.edges()) {
            out << "edge " << edge.from << " " << edge.to << " "
                << (edge.strong ? 1 : 0) << "\n";
        }
        auto pit = profile_of.find(automaton.name());
        if (pit != profile_of.end() && pit->second->hasSamples()) {
            const LatencyProfile &profile = *pit->second;
            out << "tasklat " << profile.runs << " ";
            writeLatencyStats(out, profile.total);
            out << "\n";
            for (const auto &[edge, stats] : profile.edges) {
                out << "edgelat " << edge.first << " " << edge.second
                    << " ";
                writeLatencyStats(out, stats);
                out << "\n";
            }
        }
        out << "end\n";
    }

    if (certificate.present) {
        out << "certificate " << certificate.fingerprint << "\n";
        for (const SignatureVerdictRecord &record : certificate.verdicts) {
            if (!used.count(record.tpl))
                continue; // unresolvable on load; drop
            out << "verdict " << record.tpl << " "
                << encodeModelToken(record.verdict) << " "
                << record.automata << " " << record.sites << "\n";
        }
    }
}

std::string
saveModelsToString(const logging::TemplateCatalog &catalog,
                   const std::vector<TaskAutomaton> &automata)
{
    std::ostringstream out;
    saveModels(out, catalog, automata);
    return out.str();
}

int
ModelSourceMap::eventLine(std::size_t index, int id) const
{
    if (index >= automata.size() || id < 0 ||
        static_cast<std::size_t>(id) >= automata[index].eventLines.size())
        return 0;
    return automata[index].eventLines[static_cast<std::size_t>(id)];
}

int
ModelSourceMap::edgeLine(std::size_t index, int from, int to) const
{
    if (index >= automata.size())
        return 0;
    auto it = automata[index].edgeLines.find({from, to});
    return it == automata[index].edgeLines.end() ? 0 : it->second;
}

int
ModelSourceMap::declLine(std::size_t index) const
{
    return index < automata.size() ? automata[index].declLine : 0;
}

std::optional<ModelBundle>
loadModels(std::istream &in, ModelSourceMap *source_map)
{
    std::string line;
    if (!std::getline(in, line))
        return std::nullopt;
    {
        auto header = common::splitWhitespace(line);
        if (header.size() != 2 || header[0] != kMagic ||
            header[1] != std::to_string(kVersion)) {
            return std::nullopt;
        }
    }

    ModelBundle bundle;
    bundle.catalog = std::make_shared<logging::TemplateCatalog>();
    ModelSourceMap locations;
    // File template id -> re-interned id.
    std::map<logging::TemplateId, logging::TemplateId> remap;

    struct PendingAutomaton
    {
        std::string name;
        std::size_t event_count = 0;
        std::size_t edge_count = 0;
        std::vector<EventNode> events;
        std::vector<DependencyEdge> edges;
        LatencyProfile profile;
        bool open = false;
        AutomatonSourceMap lines;
    };
    PendingAutomaton pending;

    auto finishAutomaton = [&]() -> bool {
        if (pending.events.size() != pending.event_count ||
            pending.edges.size() != pending.edge_count) {
            return false;
        }
        for (const DependencyEdge &edge : pending.edges) {
            if (edge.from < 0 ||
                edge.from >= static_cast<int>(pending.events.size()) ||
                edge.to < 0 ||
                edge.to >= static_cast<int>(pending.events.size())) {
                return false;
            }
        }
        for (const auto &[edge, stats] : pending.profile.edges) {
            (void)stats;
            if (edge.first < 0 ||
                edge.first >= static_cast<int>(pending.events.size()) ||
                edge.second < 0 ||
                edge.second >= static_cast<int>(pending.events.size())) {
                return false;
            }
        }
        pending.profile.task = pending.name;
        bundle.automata.emplace_back(pending.name,
                                     std::move(pending.events),
                                     std::move(pending.edges));
        bundle.profiles.push_back(std::move(pending.profile));
        locations.automata.push_back(std::move(pending.lines));
        pending = PendingAutomaton{};
        return true;
    };

    int line_no = 1; // the header was line 1
    while (std::getline(in, line)) {
        ++line_no;
        auto fields = common::splitWhitespace(line);
        if (fields.empty())
            continue;
        const std::string &kind = fields[0];
        if (kind == "template") {
            if (fields.size() != 4 || pending.open)
                return std::nullopt;
            auto service = decodeModelToken(fields[2]);
            auto text = decodeModelToken(fields[3]);
            if (!service || !text)
                return std::nullopt;
            logging::TemplateId file_id = static_cast<logging::TemplateId>(
                std::stoul(fields[1]));
            logging::TemplateId interned =
                bundle.catalog->intern(*service, *text);
            remap[file_id] = interned;
            locations.templateLines.try_emplace(interned, line_no);
        } else if (kind == "automaton") {
            if (fields.size() != 4 || pending.open)
                return std::nullopt;
            auto name = decodeModelToken(fields[1]);
            if (!name)
                return std::nullopt;
            pending.name = *name;
            pending.event_count = std::stoul(fields[2]);
            pending.edge_count = std::stoul(fields[3]);
            pending.open = true;
            pending.lines.declLine = line_no;
        } else if (kind == "event") {
            if (fields.size() != 4 || !pending.open)
                return std::nullopt;
            std::size_t index = std::stoul(fields[1]);
            if (index != pending.events.size())
                return std::nullopt;
            logging::TemplateId file_id = static_cast<logging::TemplateId>(
                std::stoul(fields[2]));
            auto it = remap.find(file_id);
            if (it == remap.end())
                return std::nullopt;
            pending.events.push_back(
                {it->second, std::stoi(fields[3])});
            pending.lines.eventLines.push_back(line_no);
        } else if (kind == "edge") {
            if (fields.size() != 4 || !pending.open)
                return std::nullopt;
            pending.edges.push_back({std::stoi(fields[1]),
                                     std::stoi(fields[2]),
                                     fields[3] == "1"});
            pending.lines.edgeLines.try_emplace(
                {pending.edges.back().from, pending.edges.back().to},
                line_no);
        } else if (kind == "tasklat") {
            if (fields.size() != 7 || !pending.open)
                return std::nullopt;
            try {
                pending.profile.runs = std::stoull(fields[1]);
            } catch (...) {
                return std::nullopt;
            }
            if (!parseLatencyStats(fields, 2, pending.profile.total))
                return std::nullopt;
        } else if (kind == "edgelat") {
            if (fields.size() != 8 || !pending.open)
                return std::nullopt;
            std::pair<int, int> edge;
            LatencyStats stats;
            try {
                edge.first = std::stoi(fields[1]);
                edge.second = std::stoi(fields[2]);
            } catch (...) {
                return std::nullopt;
            }
            if (!parseLatencyStats(
                    {fields.begin() + 3, fields.end()}, 0, stats))
                return std::nullopt;
            pending.profile.edges[edge] = stats;
        } else if (kind == "end") {
            if (!pending.open || !finishAutomaton())
                return std::nullopt;
        } else if (kind == "certificate") {
            if (fields.size() != 2 || pending.open ||
                bundle.certificate.present) {
                return std::nullopt;
            }
            try {
                bundle.certificate.fingerprint = std::stoull(fields[1]);
            } catch (...) {
                return std::nullopt;
            }
            bundle.certificate.present = true;
        } else if (kind == "verdict") {
            if (fields.size() != 5 || pending.open ||
                !bundle.certificate.present) {
                return std::nullopt;
            }
            SignatureVerdictRecord record;
            logging::TemplateId file_id = 0;
            auto word = decodeModelToken(fields[2]);
            if (!word)
                return std::nullopt;
            try {
                file_id = static_cast<logging::TemplateId>(
                    std::stoul(fields[1]));
                record.automata =
                    static_cast<std::uint32_t>(std::stoul(fields[3]));
                record.sites =
                    static_cast<std::uint32_t>(std::stoul(fields[4]));
            } catch (...) {
                return std::nullopt;
            }
            auto it = remap.find(file_id);
            if (it == remap.end())
                return std::nullopt; // verdict on an unknown template
            record.tpl = it->second;
            record.verdict = *word;
            bundle.certificate.verdicts.push_back(std::move(record));
        } else {
            return std::nullopt; // unknown directive
        }
    }
    if (pending.open)
        return std::nullopt; // truncated automaton section
    // A pre-seer-flight file has no latency directives at all: hand
    // back an empty profile vector (the documented "no profiles"
    // signal) rather than one placeholder per automaton.
    bool any_samples = false;
    for (const LatencyProfile &profile : bundle.profiles)
        any_samples = any_samples || profile.hasSamples();
    if (!any_samples)
        bundle.profiles.clear();
    if (source_map)
        *source_map = std::move(locations);
    return bundle;
}

std::optional<ModelBundle>
loadModelsFromString(const std::string &text)
{
    std::istringstream in(text);
    return loadModels(in);
}

} // namespace cloudseer::core
