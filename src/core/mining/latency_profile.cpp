#include "core/mining/latency_profile.hpp"

#include <algorithm>
#include <cmath>

#include "core/automaton/automaton_instance.hpp"

namespace cloudseer::core {

namespace {

/** Nearest-rank quantile over an ascending-sorted sample vector. */
double
nearestRank(const std::vector<double> &sorted, int quantile)
{
    if (sorted.empty())
        return 0.0;
    double rank = std::ceil(static_cast<double>(quantile) / 100.0 *
                            static_cast<double>(sorted.size()));
    std::size_t index = rank < 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
    if (index >= sorted.size())
        index = sorted.size() - 1;
    return sorted[index];
}

} // namespace

double
LatencyStats::at(int quantile) const
{
    if (quantile <= 50)
        return p50;
    if (quantile <= 95)
        return p95;
    if (quantile <= 99)
        return p99;
    return maxSeen;
}

bool
LatencyStats::wellFormed() const
{
    if (count == 0)
        return p50 == 0.0 && p95 == 0.0 && p99 == 0.0 && maxSeen == 0.0;
    return p50 >= 0.0 && p50 <= p95 && p95 <= p99 && p99 <= maxSeen;
}

LatencyStats
summarizeLatencies(std::vector<double> samples)
{
    LatencyStats stats;
    if (samples.empty())
        return stats;
    std::sort(samples.begin(), samples.end());
    stats.count = samples.size();
    stats.p50 = nearestRank(samples, 50);
    stats.p95 = nearestRank(samples, 95);
    stats.p99 = nearestRank(samples, 99);
    stats.maxSeen = samples.back();
    return stats;
}

LatencyProfile
mineLatencyProfile(const TaskAutomaton &automaton,
                   const std::vector<TimedSequence> &runs)
{
    LatencyProfile profile;
    profile.task = automaton.name();

    std::map<std::pair<int, int>, std::vector<double>> edge_samples;
    std::vector<double> total_samples;

    for (const TimedSequence &run : runs) {
        AutomatonInstance instance(&automaton);
        for (const TimedTemplate &message : run) {
            if (instance.canConsume(message.tpl))
                instance.consume(message.tpl, message.time);
        }
        if (!instance.accepting())
            continue; // truncated run: its missing edges never fired
        ++profile.runs;

        const std::vector<common::SimTime> &when =
            instance.consumeTimes();
        for (const DependencyEdge &edge : automaton.edges()) {
            double dt = when[static_cast<std::size_t>(edge.to)] -
                        when[static_cast<std::size_t>(edge.from)];
            edge_samples[{edge.from, edge.to}].push_back(
                std::max(0.0, dt));
        }
        auto [lo, hi] = std::minmax_element(when.begin(), when.end());
        total_samples.push_back(std::max(0.0, *hi - *lo));
    }

    for (auto &[edge, samples] : edge_samples)
        profile.edges[edge] = summarizeLatencies(std::move(samples));
    profile.total = summarizeLatencies(std::move(total_samples));
    return profile;
}

double
latencyBudget(const LatencyStats &stats, const LatencyCheckConfig &config)
{
    if (stats.count == 0)
        return -1.0;
    return stats.at(config.quantile) * config.factor +
           config.slackSeconds;
}

} // namespace cloudseer::core
