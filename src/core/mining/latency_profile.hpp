/**
 * @file
 * Per-transition latency profiles mined from correct executions
 * (seer-flight, DESIGN.md §12).
 *
 * The paper's only temporal criterion is a whole-task timeout; its
 * case studies, however, feature executions that are *slow but
 * logically correct* — every message arrives, in a legal order, just
 * late. A latency profile captures what "on time" means per automaton
 * edge: for each dependency edge (u, v) the message-clock quantiles of
 * t(v) - t(u) over many correct training runs, plus the whole-task
 * duration quantiles. Fork branches profile naturally — each in-edge
 * of a join carries its own distribution, so a slow branch is
 * attributed to its own edges rather than smeared over the task.
 *
 * Profiles are mined offline (TaskModeler::toTimedSequence +
 * mineLatencyProfile), persisted alongside the model (model_io
 * `edgelat`/`tasklat` directives), lint-checked for edge coverage
 * (SL010), and consumed online by the checker's latency criterion.
 */

#ifndef CLOUDSEER_CORE_MINING_LATENCY_PROFILE_HPP
#define CLOUDSEER_CORE_MINING_LATENCY_PROFILE_HPP

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/time_util.hpp"
#include "core/automaton/task_automaton.hpp"

namespace cloudseer::core {

/** Quantile summary of one latency distribution (seconds). */
struct LatencyStats
{
    std::uint64_t count = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double maxSeen = 0.0;

    /**
     * Value at a supported quantile: 50, 95, 99, or 100 (= maxSeen).
     * Unsupported quantiles resolve to the next one up, so a caller
     * asking for "p90" gets the conservative p95.
     */
    double at(int quantile) const;

    /** Quantiles are mutually consistent (p50 <= p95 <= ... <= max). */
    bool wellFormed() const;

    bool operator==(const LatencyStats &other) const = default;
};

/** Summarise a sample set (empty input yields count == 0). */
LatencyStats summarizeLatencies(std::vector<double> samples);

/** One timed message: interned template plus message-clock stamp. */
struct TimedTemplate
{
    logging::TemplateId tpl = logging::kInvalidTemplate;
    common::SimTime time = 0.0;
};

/** One execution's messages with timestamps, in time order. */
using TimedSequence = std::vector<TimedTemplate>;

/** Latency expectations for one task automaton. */
struct LatencyProfile
{
    /** Task name; matches TaskAutomaton::name(). */
    std::string task;

    /** Per-edge stats, keyed by (from, to) event ids. */
    std::map<std::pair<int, int>, LatencyStats> edges;

    /** Whole-task duration (first to last consumed message). */
    LatencyStats total;

    /** Accepting training runs the profile was mined from. */
    std::uint64_t runs = 0;

    /** True when some edge or the total carries samples. */
    bool
    hasSamples() const
    {
        return total.count > 0 || !edges.empty();
    }

    bool operator==(const LatencyProfile &other) const = default;
};

/**
 * Mine a latency profile for one automaton from timed training runs.
 *
 * Each run is replayed through a fresh AutomatonInstance; messages the
 * instance cannot consume (noise, unstable templates stripped by the
 * key-message filter) are skipped, mirroring how checking routes them
 * away. Only runs that reach the accepting state contribute samples —
 * a truncated run would fabricate infinite latencies for the edges it
 * never crossed. Negative deltas (shipping reorder within an edge) are
 * clamped to zero.
 */
LatencyProfile
mineLatencyProfile(const TaskAutomaton &automaton,
                   const std::vector<TimedSequence> &runs);

// --- online policy -----------------------------------------------------

/** How the checker turns a profile into an anomaly threshold. */
struct LatencyCheckConfig
{
    /** Quantile compared against: 50, 95, 99 (default), or 100. */
    int quantile = 99;

    /** Multiplicative headroom over the quantile. */
    double factor = 1.5;

    /** Additive headroom, seconds (absorbs tiny-quantile edges). */
    double slackSeconds = 0.5;
};

/**
 * The budget an observation must exceed (strictly) to be anomalous:
 * quantile * factor + slack. Stats with no samples have no budget —
 * callers must skip them (returns -1.0 as a guard).
 */
double latencyBudget(const LatencyStats &stats,
                     const LatencyCheckConfig &config);

} // namespace cloudseer::core

#endif // CLOUDSEER_CORE_MINING_LATENCY_PROFILE_HPP
