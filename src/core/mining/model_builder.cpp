#include "core/mining/model_builder.hpp"

#include <memory>

#include "common/error.hpp"
#include "core/mining/dependency_miner.hpp"

namespace cloudseer::core {

TaskModeler::TaskModeler(logging::TemplateCatalog &catalog_)
    : catalog(catalog_)
{
}

void
TaskModeler::setVerifier(Verifier verifier_)
{
    verifier = std::move(verifier_);
}

TemplateSequence
TaskModeler::toTemplateSequence(
    const std::vector<logging::LogRecord> &records)
{
    TemplateSequence out;
    out.reserve(records.size());
    for (const logging::LogRecord &record : records) {
        logging::ParsedBody parsed = extractor.parse(record.body);
        out.push_back(catalog.intern(record.service, parsed.templateText));
    }
    return out;
}

TimedSequence
TaskModeler::toTimedSequence(
    const std::vector<logging::LogRecord> &records)
{
    TimedSequence out;
    out.reserve(records.size());
    for (const logging::LogRecord &record : records) {
        logging::ParsedBody parsed = extractor.parse(record.body);
        out.push_back({catalog.intern(record.service,
                                      parsed.templateText),
                       record.timestamp});
    }
    return out;
}

TaskAutomaton
TaskModeler::buildAutomaton(const std::string &task_name,
                            const std::vector<TemplateSequence> &runs) const
{
    PreprocessResult pre = preprocessSequences(runs);
    MinedModel mined = mineDependencies(pre.sequences);
    TaskAutomaton automaton(task_name, std::move(mined.events),
                            std::move(mined.edges));
    if (verifier) {
        for (const std::string &finding : verifier(automaton, catalog))
            common::warn("modeler: " + finding);
    }
    return automaton;
}

TaskModeler::ConvergenceResult
TaskModeler::modelUntilStable(
    const std::string &task_name,
    const std::function<TemplateSequence()> &next_run,
    std::size_t min_runs, std::size_t check_every,
    std::size_t stable_checks, std::size_t max_runs) const
{
    std::vector<TemplateSequence> runs;
    std::unique_ptr<TaskAutomaton> current;
    std::size_t unchanged = 0;

    while (runs.size() < max_runs) {
        runs.push_back(next_run());
        bool rebuild = runs.size() >= min_runs &&
                       (runs.size() - min_runs) % check_every == 0;
        if (!rebuild)
            continue;
        TaskAutomaton candidate = buildAutomaton(task_name, runs);
        if (current && candidate.sameStructure(*current)) {
            ++unchanged;
            if (unchanged >= stable_checks) {
                std::vector<std::string> findings =
                    verifier ? verifier(candidate, catalog)
                             : std::vector<std::string>{};
                return {std::move(candidate), runs.size(), true,
                        std::move(findings)};
            }
        } else {
            unchanged = 0;
        }
        current = std::make_unique<TaskAutomaton>(std::move(candidate));
    }

    // Cap reached: return the best model so far (not converged).
    if (!current)
        current = std::make_unique<TaskAutomaton>(
            buildAutomaton(task_name, runs));
    std::vector<std::string> findings =
        verifier ? verifier(*current, catalog)
                 : std::vector<std::string>{};
    return {std::move(*current), runs.size(), false, std::move(findings)};
}

} // namespace cloudseer::core
