#include "core/mining/model_builder.hpp"

#include <memory>

#include "core/mining/dependency_miner.hpp"

namespace cloudseer::core {

TaskModeler::TaskModeler(logging::TemplateCatalog &catalog_)
    : catalog(catalog_)
{
}

TemplateSequence
TaskModeler::toTemplateSequence(
    const std::vector<logging::LogRecord> &records)
{
    TemplateSequence out;
    out.reserve(records.size());
    for (const logging::LogRecord &record : records) {
        logging::ParsedBody parsed = extractor.parse(record.body);
        out.push_back(catalog.intern(record.service, parsed.templateText));
    }
    return out;
}

TaskAutomaton
TaskModeler::buildAutomaton(const std::string &task_name,
                            const std::vector<TemplateSequence> &runs) const
{
    PreprocessResult pre = preprocessSequences(runs);
    MinedModel mined = mineDependencies(pre.sequences);
    return TaskAutomaton(task_name, std::move(mined.events),
                         std::move(mined.edges));
}

TaskModeler::ConvergenceResult
TaskModeler::modelUntilStable(
    const std::string &task_name,
    const std::function<TemplateSequence()> &next_run,
    std::size_t min_runs, std::size_t check_every,
    std::size_t stable_checks, std::size_t max_runs) const
{
    std::vector<TemplateSequence> runs;
    std::unique_ptr<TaskAutomaton> current;
    std::size_t unchanged = 0;

    while (runs.size() < max_runs) {
        runs.push_back(next_run());
        bool rebuild = runs.size() >= min_runs &&
                       (runs.size() - min_runs) % check_every == 0;
        if (!rebuild)
            continue;
        TaskAutomaton candidate = buildAutomaton(task_name, runs);
        if (current && candidate.sameStructure(*current)) {
            ++unchanged;
            if (unchanged >= stable_checks) {
                return {std::move(candidate), runs.size(), true};
            }
        } else {
            unchanged = 0;
        }
        current = std::make_unique<TaskAutomaton>(std::move(candidate));
    }

    // Cap reached: return the best model so far (not converged).
    if (!current) {
        TaskAutomaton automaton = buildAutomaton(task_name, runs);
        return {std::move(automaton), runs.size(), false};
    }
    return {std::move(*current), runs.size(), false};
}

} // namespace cloudseer::core
