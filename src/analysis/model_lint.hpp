/**
 * @file
 * seer-lint: static verification of mined task automata.
 *
 * CloudSeer's online checker inherits every defect of the offline
 * model: an unbalanced fork/join, a dead state, or a template shared
 * across task automata surfaces at runtime as ambiguity explosions,
 * false divergences, or unroutable messages. These passes prove
 * well-formedness properties *before* a model is deployed — at mine
 * time (TaskModeler verifier hook), at load time (WorkflowMonitor),
 * and in CI (the seer-lint CLI over the golden models).
 *
 * The pass set (stable IDs, DESIGN.md §10):
 *   SL001  fork/join balance and nesting
 *   SL002  dead / orphan / disconnected states
 *   SL003  dependency cycles containing a weak edge
 *   SL004  transitive-reduction violations (redundant edges)
 *   SL005  cross-automaton template collisions vs. the fork-fanout cap
 *   SL006  identifier coverage (unroutable templates)
 *   SL007  state-signature determinism (aliasing)
 *   SL008  timeout consistency
 *   SL009  all-strong cycles that survive weak refinement
 *   SL010  latency profile / edge coverage mismatch (seer-flight)
 */

#ifndef CLOUDSEER_ANALYSIS_MODEL_LINT_HPP
#define CLOUDSEER_ANALYSIS_MODEL_LINT_HPP

#include <map>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "core/automaton/task_automaton.hpp"
#include "core/mining/model_builder.hpp"
#include "logging/template_catalog.hpp"

namespace cloudseer::analysis {

/** Deployment context the passes verify the model against. */
struct LintOptions
{
    /**
     * The checker's hypothesis cap (CheckerConfig::maxForkFanout) for
     * SL005's bound check. 0 = unknown cap: collisions are still
     * reported, at info severity.
     */
    std::size_t maxForkFanout = 0;

    /** Whether <num> placeholders count as routable (SL006), matching
     *  MonitorConfig::numbersAsIdentifiers. */
    bool numbersAsIdentifiers = false;

    /** Deployment timeout criterion for SL008. */
    double defaultTimeout = 10.0;

    /** Per-task timeout overrides (task -> seconds), for SL008. */
    std::map<std::string, double> perTaskTimeouts;

    /**
     * Largest quiet gap observed per task in correct executions
     * (TimeoutEstimator::maxGap), for SL008's lower-bound check.
     * Tasks absent from the map skip that check.
     */
    std::map<std::string, double> expectedTaskGaps;
};

/**
 * Run the per-automaton passes (SL001-SL004, SL006-SL009) on one
 * automaton. Cross-automaton passes need lintModels.
 */
LintReport lintAutomaton(const core::TaskAutomaton &automaton,
                         const logging::TemplateCatalog &catalog,
                         const LintOptions &options = {});

/**
 * Run every pass over a full model bundle: the per-automaton passes
 * plus the cross-automaton ones (SL005 collisions, SL007 duplicate
 * names / indistinguishable specifications). The report is in stable
 * order.
 */
LintReport lintModels(const std::vector<core::TaskAutomaton> &automata,
                      const logging::TemplateCatalog &catalog,
                      const LintOptions &options = {});

/**
 * SL010: verify latency profiles against the automata they ship with
 * (seer-flight). Errors: a profile naming no automaton, edge timings
 * for nonexistent edges, non-monotone quantiles. Warnings: automata
 * deployed without a sampled profile, profiles covering only part of
 * the dependency edges. Run it only when latency monitoring is in
 * play — a bundle mined before seer-flight is not a defect.
 */
LintReport
lintLatencyProfiles(const std::vector<core::TaskAutomaton> &automata,
                    const std::vector<core::LatencyProfile> &profiles);

/** Error-severity findings as one-line strings (enforcement paths). */
std::vector<std::string> errorSummaries(const LintReport &report);

/**
 * Verifier for TaskModeler::setVerifier: runs the per-automaton
 * passes on every freshly built automaton and returns error-severity
 * findings (mining a structurally broken automaton is a miner bug).
 */
core::TaskModeler::Verifier makeLintVerifier(LintOptions options = {});

/** Install makeLintVerifier's hook on a modeler. */
void attachLint(core::TaskModeler &modeler, LintOptions options = {});

} // namespace cloudseer::analysis

#endif // CLOUDSEER_ANALYSIS_MODEL_LINT_HPP
