#include "analysis/interference.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <unordered_set>

#include "analysis/model_lint.hpp"
#include "logging/variable_extractor.hpp"

namespace cloudseer::analysis {

namespace {

using core::TaskAutomaton;
using logging::TemplateId;

/** Minimal JSON string escaping (template text can carry anything). */
std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size() + 2);
    for (char c : raw) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

void
add(LintReport &report, const char *id, Severity severity,
    std::string automaton, std::string message, int event_a = -1,
    int event_b = -1, std::map<std::string, double> metrics = {})
{
    Diagnostic diagnostic;
    diagnostic.id = id;
    diagnostic.severity = severity;
    diagnostic.automaton = std::move(automaton);
    diagnostic.message = std::move(message);
    diagnostic.eventA = event_a;
    diagnostic.eventB = event_b;
    diagnostic.metrics = std::move(metrics);
    report.diagnostics.push_back(std::move(diagnostic));
}

/** Static facts about one template across the whole model set. */
struct TemplateFacts
{
    std::uint32_t owners = 0; ///< automata with a consumption site
    std::uint32_t sites = 0;  ///< total consumption sites
    SignatureIdClass idClass = SignatureIdClass::None;
};

/**
 * The consumable-adjacency relation of one automaton: (t, u) is in
 * `pairs` iff some reachable consumed-prefix can consume a t-event and
 * then immediately a u-event. Computed by exact enumeration of the
 * reachable downsets (subsets of events closed under dependencies);
 * `truncated` degrades to "assume everything adjacent".
 */
struct Adjacency
{
    bool truncated = false;
    std::set<std::pair<TemplateId, TemplateId>> pairs;
};

Adjacency
consumableAdjacency(const TaskAutomaton &automaton, std::size_t cap)
{
    Adjacency out;
    std::size_t n = automaton.eventCount();
    if (n == 0)
        return out;
    if (n > 64) { // downsets are 64-bit masks
        out.truncated = true;
        return out;
    }
    std::vector<std::uint64_t> need(n, 0);
    for (std::size_t e = 0; e < n; ++e) {
        for (int pred : automaton.preds(static_cast<int>(e)))
            need[e] |= std::uint64_t{1} << pred;
    }
    auto enabled = [&](std::uint64_t consumed, std::size_t e) {
        return ((consumed >> e) & 1) == 0 && (need[e] & ~consumed) == 0;
    };
    std::unordered_set<std::uint64_t> seen{0};
    std::vector<std::uint64_t> work{0};
    while (!work.empty()) {
        std::uint64_t state = work.back();
        work.pop_back();
        for (std::size_t e = 0; e < n; ++e) {
            if (!enabled(state, e))
                continue;
            std::uint64_t next = state | (std::uint64_t{1} << e);
            for (std::size_t f = 0; f < n; ++f) {
                if (enabled(next, f)) {
                    out.pairs.insert(
                        {automaton.event(static_cast<int>(e)).tpl,
                         automaton.event(static_cast<int>(f)).tpl});
                }
            }
            if (seen.insert(next).second) {
                if (seen.size() > cap) {
                    out.truncated = true;
                    return out;
                }
                work.push_back(next);
            }
        }
    }
    return out;
}

/**
 * Longest walk through a joint-adjacency graph, counted in messages.
 * Returns 0 for "unbounded" (the graph has a cycle, so the two
 * automata can trade shared templates forever).
 */
int
longestJointRun(const std::set<std::pair<TemplateId, TemplateId>> &edges)
{
    std::map<TemplateId, std::vector<TemplateId>> succs;
    std::set<TemplateId> nodes;
    for (const auto &[t, u] : edges) {
        succs[t].push_back(u);
        nodes.insert(t);
        nodes.insert(u);
    }
    std::map<TemplateId, int> memo;
    std::set<TemplateId> on_stack;
    bool unbounded = false;
    std::function<int(TemplateId)> visit = [&](TemplateId node) -> int {
        auto it = memo.find(node);
        if (it != memo.end())
            return it->second;
        if (!on_stack.insert(node).second) {
            unbounded = true;
            return 1;
        }
        int best = 1;
        auto sit = succs.find(node);
        if (sit != succs.end()) {
            for (TemplateId next : sit->second)
                best = std::max(best, 1 + visit(next));
        }
        on_stack.erase(node);
        memo[node] = best;
        return best;
    };
    int best = 0;
    for (TemplateId node : nodes)
        best = std::max(best, visit(node));
    return unbounded ? 0 : best;
}

std::string
tplLabel(const logging::TemplateCatalog &catalog, TemplateId tpl)
{
    return "'" + catalog.label(tpl) + "'";
}

const char *
classWord(SignatureIdClass id_class)
{
    switch (id_class) {
      case SignatureIdClass::None: return "no identifier";
      case SignatureIdClass::SharedOnly:
        return "only shared-class identifiers";
      case SignatureIdClass::Instance: return "an instance identifier";
    }
    return "?";
}

} // namespace

SignatureIdClass
classifyTemplate(const std::string &text, bool numbers_as_identifiers)
{
    using logging::VariableExtractor;
    using logging::VariableKind;
    bool uuid = text.find(VariableExtractor::placeholder(
                    VariableKind::Uuid)) != std::string::npos;
    bool number = text.find(VariableExtractor::placeholder(
                      VariableKind::Number)) != std::string::npos;
    if (uuid || (numbers_as_identifiers && number))
        return SignatureIdClass::Instance;
    bool ip = text.find(VariableExtractor::placeholder(
                  VariableKind::Ip)) != std::string::npos;
    return ip ? SignatureIdClass::SharedOnly : SignatureIdClass::None;
}

const char *
verdictName(SignatureVerdictKind kind)
{
    switch (kind) {
      case SignatureVerdictKind::CertifiedUnambiguous: return "certified";
      case SignatureVerdictKind::SoleOwnerUnidentified:
        return "sole-unidentified";
      case SignatureVerdictKind::SharedIdentified:
        return "shared-identified";
      case SignatureVerdictKind::SharedInseparable:
        return "shared-inseparable";
    }
    return "?";
}

std::optional<SignatureVerdictKind>
verdictFromName(const std::string &word)
{
    for (SignatureVerdictKind kind :
         {SignatureVerdictKind::CertifiedUnambiguous,
          SignatureVerdictKind::SoleOwnerUnidentified,
          SignatureVerdictKind::SharedIdentified,
          SignatureVerdictKind::SharedInseparable}) {
        if (word == verdictName(kind))
            return kind;
    }
    return std::nullopt;
}

bool
AmbiguityCertificate::certified(TemplateId tpl) const
{
    auto it = std::lower_bound(
        verdicts.begin(), verdicts.end(), tpl,
        [](const SignatureVerdict &v, TemplateId id) { return v.tpl < id; });
    return it != verdicts.end() && it->tpl == tpl &&
           it->kind == SignatureVerdictKind::CertifiedUnambiguous;
}

std::size_t
AmbiguityCertificate::certifiedCount() const
{
    std::size_t n = 0;
    for (const SignatureVerdict &verdict : verdicts) {
        if (verdict.kind == SignatureVerdictKind::CertifiedUnambiguous)
            ++n;
    }
    return n;
}

std::vector<char>
AmbiguityCertificate::certifiedBits(std::size_t catalog_size) const
{
    std::vector<char> bits(catalog_size, 0);
    for (const SignatureVerdict &verdict : verdicts) {
        if (verdict.kind == SignatureVerdictKind::CertifiedUnambiguous &&
            verdict.tpl < catalog_size) {
            bits[verdict.tpl] = 1;
        }
    }
    return bits;
}

core::CertificateRecord
AmbiguityCertificate::toRecord() const
{
    core::CertificateRecord record;
    record.present = true;
    record.fingerprint = modelFingerprint;
    for (const SignatureVerdict &verdict : verdicts) {
        record.verdicts.push_back({verdict.tpl, verdictName(verdict.kind),
                                   verdict.automata, verdict.sites});
    }
    return record;
}

std::optional<AmbiguityCertificate>
AmbiguityCertificate::fromRecord(const core::CertificateRecord &record)
{
    if (!record.present)
        return std::nullopt;
    AmbiguityCertificate certificate;
    certificate.modelFingerprint = record.fingerprint;
    for (const core::SignatureVerdictRecord &raw : record.verdicts) {
        auto kind = verdictFromName(raw.verdict);
        if (!kind)
            return std::nullopt;
        certificate.verdicts.push_back(
            {raw.tpl, *kind, raw.automata, raw.sites});
    }
    std::sort(certificate.verdicts.begin(), certificate.verdicts.end(),
              [](const SignatureVerdict &a, const SignatureVerdict &b) {
                  return a.tpl < b.tpl;
              });
    return certificate;
}

InterferenceResult
analyzeInterference(const std::vector<TaskAutomaton> &automata,
                    const logging::TemplateCatalog &catalog,
                    const InterferenceOptions &options)
{
    InterferenceResult result;
    result.report.automataChecked = automata.size();

    // --- whole-set template facts -------------------------------------
    std::map<TemplateId, TemplateFacts> facts;
    std::vector<std::set<TemplateId>> alphabet(automata.size());
    for (std::size_t a = 0; a < automata.size(); ++a) {
        const TaskAutomaton &automaton = automata[a];
        for (std::size_t e = 0; e < automaton.eventCount(); ++e)
            alphabet[a].insert(automaton.event(static_cast<int>(e)).tpl);
        for (TemplateId tpl : alphabet[a]) {
            TemplateFacts &fact = facts[tpl];
            fact.owners += 1;
            fact.sites += static_cast<std::uint32_t>(
                automaton.eventsForTemplate(tpl).size());
        }
    }
    for (auto &[tpl, fact] : facts) {
        fact.idClass = classifyTemplate(catalog.text(tpl),
                                        options.numbersAsIdentifiers);
    }

    // --- the verdict table (certificate) ------------------------------
    for (const auto &[tpl, fact] : facts) {
        SignatureVerdictKind kind;
        if (fact.owners <= 1) {
            kind = fact.idClass == SignatureIdClass::Instance
                       ? SignatureVerdictKind::CertifiedUnambiguous
                       : SignatureVerdictKind::SoleOwnerUnidentified;
        } else {
            kind = fact.idClass == SignatureIdClass::Instance
                       ? SignatureVerdictKind::SharedIdentified
                       : SignatureVerdictKind::SharedInseparable;
        }
        result.certificate.verdicts.push_back(
            {tpl, kind, fact.owners, fact.sites});
    }

    // --- SL021: identifier-inseparable collisions ---------------------
    for (const auto &[tpl, fact] : facts) {
        if (fact.owners < 2 || fact.idClass == SignatureIdClass::Instance)
            continue;
        Severity severity = fact.idClass == SignatureIdClass::None
                                ? Severity::Warning
                                : Severity::Info;
        std::ostringstream message;
        message << "template " << tplLabel(catalog, tpl) << " is shared by "
                << fact.owners << " automata (" << fact.sites
                << " sites) and extracts " << classWord(fact.idClass)
                << "; its messages cannot be attributed to one execution";
        add(result.report, "SL021", severity, "", message.str(), -1, -1,
            {{"automata", static_cast<double>(fact.owners)},
             {"sites", static_cast<double>(fact.sites)}});
    }

    // --- SL020: pairwise product walks --------------------------------
    std::vector<Adjacency> adjacency(automata.size());
    for (std::size_t a = 0; a < automata.size(); ++a)
        adjacency[a] =
            consumableAdjacency(automata[a], options.maxDownsetStates);

    auto adjacent = [&](std::size_t a, TemplateId t, TemplateId u) {
        return adjacency[a].truncated ||
               adjacency[a].pairs.count({t, u}) != 0;
    };

    for (std::size_t a = 0; a < automata.size(); ++a) {
        for (std::size_t b = a + 1; b < automata.size(); ++b) {
            std::vector<TemplateId> shared;
            std::set_intersection(alphabet[a].begin(), alphabet[a].end(),
                                  alphabet[b].begin(), alphabet[b].end(),
                                  std::back_inserter(shared));
            if (shared.empty())
                continue;
            std::set<std::pair<TemplateId, TemplateId>> joint;
            bool inseparable_run = false;
            std::pair<TemplateId, TemplateId> witness{0, 0};
            bool have_witness = false;
            for (TemplateId t : shared) {
                for (TemplateId u : shared) {
                    if (!adjacent(a, t, u) || !adjacent(b, t, u))
                        continue;
                    joint.insert({t, u});
                    bool pair_inseparable =
                        facts[t].idClass != SignatureIdClass::Instance &&
                        facts[u].idClass != SignatureIdClass::Instance;
                    // Prefer an inseparable witness; else the first
                    // (smallest, shared is sorted) joint pair.
                    if (!have_witness ||
                        (pair_inseparable && !inseparable_run)) {
                        witness = {t, u};
                        have_witness = true;
                    }
                    inseparable_run |= pair_inseparable;
                }
            }
            if (joint.empty())
                continue;
            int run = longestJointRun(joint);
            bool truncated =
                adjacency[a].truncated || adjacency[b].truncated;
            std::ostringstream message;
            message << "automata '" << automata[a].name() << "' and '"
                    << automata[b].name()
                    << "' can both consume shared-template runs of "
                    << (run == 0 ? std::string("unbounded length")
                                 : std::to_string(run) +
                                       " messages back to back")
                    << " (e.g. " << tplLabel(catalog, witness.first)
                    << " -> " << tplLabel(catalog, witness.second) << ")"
                    << (inseparable_run
                            ? "; the run's identifiers cannot separate "
                              "the rival hypotheses"
                            : "; instance identifiers can still split "
                              "the rivals")
                    << (truncated ? " [downset exploration truncated: "
                                    "adjacency over-approximated]"
                                  : "");
            std::map<std::string, double> metrics{
                {"adjacent_pairs", static_cast<double>(joint.size())},
                {"run_messages", static_cast<double>(run)}};
            if (truncated)
                metrics["truncated"] = 1.0;
            add(result.report, "SL020",
                inseparable_run ? Severity::Warning : Severity::Info, "",
                message.str(), -1, -1, std::move(metrics));
        }
    }

    // --- SL022: super-linear pending-set growth -----------------------
    for (std::size_t a = 0; a < automata.size(); ++a) {
        const TaskAutomaton &automaton = automata[a];
        std::size_t n = automaton.eventCount();
        std::vector<int> marked; // events with inseparable shared tpl
        for (std::size_t e = 0; e < n; ++e) {
            const TemplateFacts &fact =
                facts[automaton.event(static_cast<int>(e)).tpl];
            if (fact.owners >= 2 &&
                fact.idClass != SignatureIdClass::Instance)
                marked.push_back(static_cast<int>(e));
        }
        if (marked.size() < 2)
            continue;
        // Reachability from each marked event (forward BFS).
        std::map<int, std::set<int>> reaches;
        for (int e : marked) {
            std::set<int> &seen = reaches[e];
            std::vector<int> work{e};
            while (!work.empty()) {
                int node = work.back();
                work.pop_back();
                for (int next : automaton.succs(node)) {
                    if (seen.insert(next).second)
                        work.push_back(next);
                }
            }
        }
        // Longest chain of marked events under reachability. Cyclic
        // models (a lint error anyway) are cut at the back edge.
        std::map<int, int> memo;
        std::map<int, int> best_next;
        std::set<int> on_stack;
        std::function<int(int)> chain = [&](int e) -> int {
            auto it = memo.find(e);
            if (it != memo.end())
                return it->second;
            if (!on_stack.insert(e).second)
                return 1;
            int best = 1;
            for (int f : marked) {
                if (f == e || !reaches[e].count(f))
                    continue;
                int candidate = 1 + chain(f);
                if (candidate > best) {
                    best = candidate;
                    best_next[e] = f;
                }
            }
            on_stack.erase(e);
            memo[e] = best;
            return best;
        };
        int start = marked.front();
        int depth = 0;
        for (int e : marked) {
            int candidate = chain(e);
            if (candidate > depth) {
                depth = candidate;
                start = e;
            }
        }
        if (depth < 2)
            continue;
        // Multiplicative fan-out bound: product of the cross-automaton
        // site counts of the distinct templates along the chain.
        double bound = 1.0;
        std::set<TemplateId> counted;
        int last = start;
        for (int e = start;;) {
            TemplateId tpl = automaton.event(e).tpl;
            if (counted.insert(tpl).second)
                bound *= static_cast<double>(facts[tpl].sites);
            last = e;
            auto next = best_next.find(e);
            if (next == best_next.end())
                break;
            e = next->second;
        }
        std::ostringstream message;
        message << "one directed path consumes " << depth
                << " inseparable shared templates ("
                << tplLabel(catalog, automaton.event(start).tpl) << " ... "
                << tplLabel(catalog, automaton.event(last).tpl)
                << "): worst-case rival fan-out multiplies to ~" << bound
                << " hypotheses per in-flight execution";
        if (options.maxForkFanout > 0)
            message << " (checker cap " << options.maxForkFanout << ")";
        std::map<std::string, double> metrics{
            {"chain", static_cast<double>(depth)}, {"bound", bound}};
        if (options.maxForkFanout > 0)
            metrics["cap"] = static_cast<double>(options.maxForkFanout);
        add(result.report, "SL022", Severity::Warning,
            automaton.name(), message.str(), start, last,
            std::move(metrics));
    }

    // --- SL023: dead-end divergence anchors ---------------------------
    std::map<TemplateId, std::vector<std::string>> starters;
    for (const TaskAutomaton &automaton : automata) {
        for (int e : automaton.initialEvents())
            starters[automaton.event(e).tpl].push_back(automaton.name());
    }
    for (std::size_t a = 0; a < automata.size(); ++a) {
        const TaskAutomaton &automaton = automata[a];
        std::vector<int> initial = automaton.initialEvents();
        std::set<int> initial_set(initial.begin(), initial.end());
        for (std::size_t e = 0; e < automaton.eventCount(); ++e) {
            int event = static_cast<int>(e);
            if (initial_set.count(event))
                continue;
            TemplateId tpl = automaton.event(event).tpl;
            auto sit = starters.find(tpl);
            if (sit == starters.end())
                continue;
            const TemplateFacts &fact = facts[tpl];
            Severity severity = fact.idClass == SignatureIdClass::Instance
                                    ? Severity::Info
                                    : Severity::Warning;
            std::ostringstream message;
            message << "event e" << event << " "
                    << tplLabel(catalog, tpl)
                    << " is mid-sequence here but its template starts "
                       "automaton '"
                    << sit->second.front() << "'";
            if (sit->second.size() > 1)
                message << " and " << sit->second.size() - 1 << " other(s)";
            message << ": a diverged message re-anchors as a bogus fresh "
                       "execution that can never accept";
            add(result.report, "SL023", severity, automaton.name(),
                message.str(), event, -1,
                {{"starters",
                  static_cast<double>(sit->second.size())}});
        }
    }

    result.report.sortStable();
    return result;
}

std::string
proveReportJson(const LintReport &report,
                const AmbiguityCertificate &certificate,
                const logging::TemplateCatalog &catalog)
{
    std::ostringstream out;
    out << "{\n  \"tool\": \"seer-prove\",\n  \"version\": 1,\n"
        << "  \"automata\": " << report.automataChecked << ",\n"
        << "  \"errors\": " << report.count(Severity::Error) << ",\n"
        << "  \"warnings\": " << report.count(Severity::Warning) << ",\n"
        << "  \"infos\": " << report.count(Severity::Info) << ",\n"
        << "  \"certificate\": {\n"
        << "    \"fingerprint\": " << certificate.modelFingerprint << ",\n"
        << "    \"templates\": " << certificate.verdicts.size() << ",\n"
        << "    \"certified\": " << certificate.certifiedCount() << ",\n"
        << "    \"signatures\": [\n";
    for (std::size_t i = 0; i < certificate.verdicts.size(); ++i) {
        const SignatureVerdict &verdict = certificate.verdicts[i];
        out << "      {\"template\": " << verdict.tpl << ", \"label\": \""
            << jsonEscape(catalog.label(verdict.tpl))
            << "\", \"verdict\": \"" << verdictName(verdict.kind)
            << "\", \"automata\": " << verdict.automata
            << ", \"sites\": " << verdict.sites << "}"
            << (i + 1 < certificate.verdicts.size() ? "," : "") << "\n";
    }
    out << "    ]\n  },\n  \"diagnostics\": [\n";
    for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
        const Diagnostic &diagnostic = report.diagnostics[i];
        out << "    {\"id\": \"" << diagnostic.id << "\", \"severity\": \""
            << severityName(diagnostic.severity) << "\", \"automaton\": \""
            << jsonEscape(diagnostic.automaton) << "\", \"message\": \""
            << jsonEscape(diagnostic.message) << "\"";
        if (diagnostic.eventA >= 0)
            out << ", \"event\": " << diagnostic.eventA;
        if (diagnostic.eventB >= 0)
            out << ", \"event2\": " << diagnostic.eventB;
        if (!diagnostic.metrics.empty()) {
            out << ", \"metrics\": {";
            bool first = true;
            for (const auto &[key, value] : diagnostic.metrics) {
                out << (first ? "" : ", ") << "\"" << jsonEscape(key)
                    << "\": " << value;
                first = false;
            }
            out << "}";
        }
        out << "}" << (i + 1 < report.diagnostics.size() ? "," : "")
            << "\n";
    }
    out << "  ]\n}\n";
    return out.str();
}

core::TaskModeler::Verifier
makeInterferenceVerifier(InterferenceOptions options)
{
    auto accepted = std::make_shared<std::vector<TaskAutomaton>>();
    return [accepted, options](const TaskAutomaton &automaton,
                               const logging::TemplateCatalog &catalog) {
        std::vector<TaskAutomaton> bundle = *accepted;
        bundle.push_back(automaton);
        InterferenceResult result =
            analyzeInterference(bundle, catalog, options);
        std::vector<std::string> findings;
        for (const Diagnostic &diagnostic : result.report.diagnostics) {
            if (diagnostic.severity < Severity::Warning)
                continue;
            std::string line = std::string(severityName(
                                   diagnostic.severity)) +
                               ": [" + diagnostic.id + "] ";
            if (!diagnostic.automaton.empty())
                line += diagnostic.automaton + ": ";
            line += diagnostic.message;
            findings.push_back(std::move(line));
        }
        accepted->push_back(automaton);
        return findings;
    };
}

void
attachProve(core::TaskModeler &modeler, LintOptions lint,
            InterferenceOptions prove)
{
    auto lint_verifier = makeLintVerifier(std::move(lint));
    auto prove_verifier = makeInterferenceVerifier(prove);
    modeler.setVerifier(
        [lint_verifier, prove_verifier](
            const TaskAutomaton &automaton,
            const logging::TemplateCatalog &catalog) {
            std::vector<std::string> findings =
                lint_verifier(automaton, catalog);
            std::vector<std::string> more =
                prove_verifier(automaton, catalog);
            findings.insert(findings.end(),
                            std::make_move_iterator(more.begin()),
                            std::make_move_iterator(more.end()));
            return findings;
        });
}

} // namespace cloudseer::analysis
