#include "analysis/diagnostics.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace cloudseer::analysis {

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Info: return "info";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "unknown";
}

const std::vector<DiagnosticInfo> &
diagnosticCatalog()
{
    static const std::vector<DiagnosticInfo> catalog = {
        {"SL001", Severity::Error, "fork/join imbalance",
         "Duplicate parallel edges double-count a join's branches "
         "(error); a join that merges some but not all branches of an "
         "upstream fork is improperly nested (warning). Either way the "
         "frontier-token semantics of Algorithm 1 no longer mirror the "
         "mined concurrency."},
        {"SL002", Severity::Error, "dead or orphan state",
         "An automaton with no events, or an event depending on "
         "itself, can never fire or accept (error). An event with no "
         "ordering at all (orphan), or a specification split into "
         "disconnected components, is usually a mining artifact "
         "(warning/info)."},
        {"SL003", Severity::Error, "dependency cycle (weak member)",
         "Dependency edges must form a DAG; a cycle makes every "
         "member state unreachable and the automaton unacceptable. "
         "This cycle contains at least one weak edge, so refinement "
         "could in principle break it — the model is still invalid."},
        {"SL004", Severity::Warning, "redundant dependency edge",
         "The edge is implied by another path, violating the "
         "transitive reduction DependencyMiner guarantees. Semantics "
         "are unchanged but the model is bloated and the miner (or a "
         "hand edit) is suspect."},
        {"SL005", Severity::Warning, "cross-automaton template collision",
         "A template shared by several task automata lets one message "
         "match groups of different tasks, firing Algorithm 2 case "
         "(2). The static per-interleaving fan-out bound (consumption "
         "sites across automata) is checked against the checker's "
         "hypothesis cap; above the cap, correct hypotheses can be "
         "dropped."},
        {"SL006", Severity::Warning, "unroutable template",
         "The template extracts no routable identifier (no UUID/IP "
         "placeholder), so its messages carry an empty identifier "
         "view: identifier-set selection cannot route them and every "
         "occurrence costs a recovery walk."},
        {"SL007", Severity::Error, "state-signature aliasing",
         "Two distinct states must never alias one routing signature: "
         "duplicate (template, occurrence) events in one automaton or "
         "duplicate task names make states indistinguishable (error); "
         "structurally identical automata under different names fork "
         "permanently ambiguous hypotheses (warning)."},
        {"SL008", Severity::Error, "timeout inconsistency",
         "A non-positive timeout reports every group instantly "
         "(error); a timeout below the largest quiet gap observed in "
         "correct executions reports every slow-but-correct run "
         "(warning)."},
        {"SL009", Severity::Error, "strong-dependency cycle",
         "A cycle built entirely of strong (always-adjacent) edges "
         "contradicts its own training evidence and survives the "
         "false-dependency refinement loop, which only weakens "
         "reorder-induced weak orderings."},
        {"SL010", Severity::Error, "latency profile mismatch",
         "A latency profile must describe the automaton it ships "
         "with: edge timings for edges the automaton does not have, "
         "or non-monotone quantiles (p50 > p95 > p99 > max), poison "
         "the online latency-anomaly criterion (error). A profile "
         "that covers only part of the dependency edges, or an "
         "automaton deployed with no profile at all, leaves "
         "transitions unbudgeted and silently unmonitored (warning)."},
        {"SL020", Severity::Warning, "ambiguous interleaving",
         "Two task automata can both consume a run of two or more "
         "shared templates back to back (a joint walk of the pairwise "
         "product), so one interleaved stream sustains rival "
         "hypotheses across several messages instead of resolving at "
         "the first divergence. When the templates on the joint run "
         "carry no instance identifier the rivals are provably "
         "inseparable (warning); with a UUID-class identifier the "
         "runtime identifier sets can still split them (info)."},
        {"SL021", Severity::Warning, "identifier-inseparable collision",
         "A template shared by several automata extracts no "
         "identifier at all, so Algorithm 2 cannot ever separate the "
         "executions its messages could belong to (warning). A shared "
         "template whose only identifiers are shared-class values "
         "such as node IPs routes, but the values repeat across "
         "concurrent executions on one node and do not disambiguate "
         "(info)."},
        {"SL022", Severity::Warning, "super-linear pending-set growth",
         "One directed path of an automaton consumes two or more "
         "inseparable shared templates, so every in-flight execution "
         "multiplies its rival fan-out at each such step: the "
         "worst-case pending-set size grows super-linearly in the "
         "number of concurrent executions (the product of the "
         "cross-automaton site counts bounds one execution's "
         "hypotheses)."},
        {"SL023", Severity::Warning, "dead-end divergence anchor",
         "A non-initial event's template also starts some automaton, "
         "so a message that diverges from its true group re-anchors "
         "as a fresh bogus execution (recovery (b)) that can never "
         "accept — a dead end that survives until timeout. Without an "
         "instance identifier the bogus group also captures follow-up "
         "messages (warning); with one it times out quietly (info)."},
    };
    return catalog;
}

const DiagnosticInfo *
diagnosticInfo(const std::string &id)
{
    for (const DiagnosticInfo &info : diagnosticCatalog()) {
        if (id == info.id)
            return &info;
    }
    return nullptr;
}

std::size_t
LintReport::count(Severity severity) const
{
    std::size_t n = 0;
    for (const Diagnostic &diagnostic : diagnostics) {
        if (diagnostic.severity == severity)
            ++n;
    }
    return n;
}

bool
LintReport::hasErrors() const
{
    return count(Severity::Error) > 0;
}

std::vector<const Diagnostic *>
LintReport::withId(const std::string &id) const
{
    std::vector<const Diagnostic *> out;
    for (const Diagnostic &diagnostic : diagnostics) {
        if (diagnostic.id == id)
            out.push_back(&diagnostic);
    }
    return out;
}

void
LintReport::merge(LintReport &&other)
{
    diagnostics.insert(diagnostics.end(),
                       std::make_move_iterator(other.diagnostics.begin()),
                       std::make_move_iterator(other.diagnostics.end()));
}

void
LintReport::sortStable()
{
    std::stable_sort(diagnostics.begin(), diagnostics.end(),
                     [](const Diagnostic &a, const Diagnostic &b) {
                         if (a.automaton != b.automaton)
                             return a.automaton < b.automaton;
                         if (a.id != b.id)
                             return a.id < b.id;
                         if (a.eventA != b.eventA)
                             return a.eventA < b.eventA;
                         return a.eventB < b.eventB;
                     });
}

std::string
LintReport::toText() const
{
    std::ostringstream out;
    for (const Diagnostic &diagnostic : diagnostics) {
        out << severityName(diagnostic.severity) << ": ["
            << diagnostic.id << "] ";
        if (!diagnostic.automaton.empty())
            out << diagnostic.automaton << ": ";
        out << diagnostic.message << "\n";
    }
    out << automataChecked << " automata checked: "
        << count(Severity::Error) << " error(s), "
        << count(Severity::Warning) << " warning(s), "
        << count(Severity::Info) << " info(s)";
    return out.str();
}

namespace {

/** Minimal JSON string escaping (template text can carry anything). */
std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size() + 2);
    for (char c : raw) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

} // namespace

std::string
LintReport::toJson() const
{
    std::ostringstream out;
    out << "{\n  \"tool\": \"seer-lint\",\n  \"version\": 1,\n"
        << "  \"automata\": " << automataChecked << ",\n"
        << "  \"errors\": " << count(Severity::Error) << ",\n"
        << "  \"warnings\": " << count(Severity::Warning) << ",\n"
        << "  \"infos\": " << count(Severity::Info) << ",\n"
        << "  \"diagnostics\": [\n";
    for (std::size_t i = 0; i < diagnostics.size(); ++i) {
        const Diagnostic &diagnostic = diagnostics[i];
        out << "    {\"id\": \"" << diagnostic.id << "\", \"severity\": \""
            << severityName(diagnostic.severity) << "\", \"automaton\": \""
            << jsonEscape(diagnostic.automaton) << "\", \"message\": \""
            << jsonEscape(diagnostic.message) << "\"";
        if (diagnostic.eventA >= 0)
            out << ", \"event\": " << diagnostic.eventA;
        if (diagnostic.eventB >= 0)
            out << ", \"event2\": " << diagnostic.eventB;
        if (diagnostic.isEdge)
            out << ", \"edge\": true";
        if (!diagnostic.metrics.empty()) {
            out << ", \"metrics\": {";
            bool first = true;
            for (const auto &[key, value] : diagnostic.metrics) {
                out << (first ? "" : ", ") << "\"" << jsonEscape(key)
                    << "\": " << value;
                first = false;
            }
            out << "}";
        }
        out << "}" << (i + 1 < diagnostics.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return out.str();
}

} // namespace cloudseer::analysis
