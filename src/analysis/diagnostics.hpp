/**
 * @file
 * Diagnostic value types of the seer-lint static model verifier.
 *
 * Every defect the analysis passes can find carries a stable ID
 * (SL001..SL010 from seer-lint, SL020..SL023 from the seer-prove
 * interference analysis), a severity, and enough structure (automaton,
 * event ids, edge flag) for a caller with a model-file source map to
 * print file:line locations. The catalog below is the authoritative
 * list; DESIGN.md §10 and §15 document each entry with rationale and
 * an example.
 */

#ifndef CLOUDSEER_ANALYSIS_DIAGNOSTICS_HPP
#define CLOUDSEER_ANALYSIS_DIAGNOSTICS_HPP

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace cloudseer::analysis {

/** Severity ranks; Error blocks deployment, the rest inform. */
enum class Severity
{
    Info,
    Warning,
    Error,
};

/** "info" / "warning" / "error". */
const char *severityName(Severity severity);

/** One finding of the static model verifier. */
struct Diagnostic
{
    /** Stable catalog ID ("SL003"); never renumbered across releases. */
    std::string id;

    Severity severity = Severity::Info;

    /** Task name of the automaton involved; empty for bundle-level
     *  findings (cross-automaton collisions, duplicate names). */
    std::string automaton;

    /** Human-readable description, self-contained. */
    std::string message;

    /** Primary event id involved, -1 when not event-scoped. */
    int eventA = -1;

    /** Secondary event id (edge target, rival event), -1 when unused. */
    int eventB = -1;

    /** True when (eventA, eventB) names a dependency edge. */
    bool isEdge = false;

    /** Machine-readable payload (e.g. SL005's fan-out bound). */
    std::map<std::string, double> metrics;
};

/** Catalog entry describing one diagnostic ID. */
struct DiagnosticInfo
{
    const char *id;
    Severity maxSeverity; ///< worst severity this ID can carry
    const char *title;
    const char *rationale;
};

/** The full diagnostic catalog, in ID order. */
const std::vector<DiagnosticInfo> &diagnosticCatalog();

/** Catalog entry for an ID, or nullptr when unknown. */
const DiagnosticInfo *diagnosticInfo(const std::string &id);

/** Result of one lint run. */
struct LintReport
{
    std::vector<Diagnostic> diagnostics;
    std::size_t automataChecked = 0;

    /** Findings at exactly the given severity. */
    std::size_t count(Severity severity) const;

    /** True when any error-severity finding exists. */
    bool hasErrors() const;

    /** All findings with the given ID (tests, gating). */
    std::vector<const Diagnostic *> withId(const std::string &id) const;

    /** Merge another report's findings into this one. */
    void merge(LintReport &&other);

    /** Deterministic order: automaton, id, events (CI-diffable). */
    void sortStable();

    /** Human-readable multi-line report (no trailing newline). */
    std::string toText() const;

    /** Machine-readable JSON document (for CI gating). */
    std::string toJson() const;
};

} // namespace cloudseer::analysis

#endif // CLOUDSEER_ANALYSIS_DIAGNOSTICS_HPP
