/**
 * @file
 * seer-prove: static interference & ambiguity analysis over a whole
 * model set (DESIGN.md §15).
 *
 * Where seer-lint checks each automaton's internal structure, this
 * pass asks the cross-automaton question Algorithm 2 pays for at run
 * time: can two task automata both accept a run of shared templates,
 * and do the templates' identifiers separate the executions when they
 * do? Four diagnostics come out of it:
 *
 *   SL020 ambiguous interleaving      — a pairwise product walk finds
 *         a run of >= 2 shared templates both automata can consume
 *         back to back, so rival hypotheses survive several messages.
 *   SL021 identifier-inseparable collision — a shared template whose
 *         extracted identifiers can never split the rival executions.
 *   SL022 super-linear pending-set growth — one directed path consumes
 *         several inseparable shared templates; the worst-case rival
 *         fan-out multiplies at each, so pending-set size is
 *         super-linear in concurrent executions.
 *   SL023 dead-end divergence anchor  — a non-initial event's template
 *         also starts some automaton, so divergence recovery (b)
 *         re-anchors lost messages as bogus executions that can never
 *         accept.
 *
 * Alongside the report, the analysis emits an AmbiguityCertificate:
 * a per-template verdict table whose "certified unambiguous" entries
 * (sole-owner templates carrying an instance identifier) the checker
 * consumes as a fast-path bit — see
 * InterleavedChecker::setCertifiedTemplates. The certificate gates
 * *where* the cheap dispatch applies; each skip it enables is
 * semantics-preserving on its own, so reports stay bit-identical even
 * on streams that violate the certificate's statistical assumptions.
 */

#ifndef CLOUDSEER_ANALYSIS_INTERFERENCE_HPP
#define CLOUDSEER_ANALYSIS_INTERFERENCE_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/model_lint.hpp"
#include "core/automaton/task_automaton.hpp"
#include "core/mining/model_builder.hpp"
#include "core/mining/model_io.hpp"
#include "logging/template_catalog.hpp"

namespace cloudseer::analysis {

/** Tuning knobs for the interference analysis. */
struct InterferenceOptions
{
    /** Checker fork-fanout cap, reported as context in SL022 metrics
     *  (0 = unknown/uncapped). */
    int maxForkFanout = 0;

    /** Treat <num> placeholders as routable instance identifiers,
     *  mirroring CheckerConfig/LintOptions. */
    bool numbersAsIdentifiers = false;

    /**
     * Cap on the per-automaton downset (consumed-prefix) enumeration
     * behind the SL020 adjacency relation. Within the cap the
     * adjacency is exact; past it the analysis degrades soundly by
     * assuming every shared-template pair adjacent (a conservative
     * over-approximation, never a missed warning).
     */
    std::size_t maxDownsetStates = 1u << 16;
};

/** Identifier class a template's placeholders can extract. */
enum class SignatureIdClass
{
    None,       ///< no placeholder at all: unroutable and inseparable
    SharedOnly, ///< only shared-class values (node IPs): routes, but
                ///< repeats across concurrent executions
    Instance,   ///< carries a UUID-class (or opted-in number) value
};

/** Per-template verdict kinds, from best to worst. */
enum class SignatureVerdictKind
{
    /** Exactly one automaton consumes it and it carries an instance
     *  identifier: the fast-path bit. */
    CertifiedUnambiguous,

    /** Sole owner, but no instance identifier extractable. */
    SoleOwnerUnidentified,

    /** Shared across automata, instance identifier present: runtime
     *  identifier sets can separate the executions. */
    SharedIdentified,

    /** Shared and identifier-inseparable: the SL021 case. */
    SharedInseparable,
};

/** Stable wire name ("certified", "sole-unidentified", ...). */
const char *verdictName(SignatureVerdictKind kind);

/** Inverse of verdictName; nullopt on an unknown word. */
std::optional<SignatureVerdictKind> verdictFromName(const std::string &word);

/** One template's verdict. */
struct SignatureVerdict
{
    logging::TemplateId tpl = logging::kInvalidTemplate;
    SignatureVerdictKind kind = SignatureVerdictKind::SharedInseparable;

    /** Number of automata with a consumption site for the template. */
    std::uint32_t automata = 0;

    /** Total consumption sites across the model set. */
    std::uint32_t sites = 0;
};

/**
 * The per-signature verdict table the analysis proves. Persisted
 * alongside the model (core::CertificateRecord) and installed on the
 * checker as a bitmap.
 */
struct AmbiguityCertificate
{
    /** Checker model fingerprint of the analysed bundle; stamped by
     *  callers that link cloudseer_core (this layer sits below it). */
    std::uint64_t modelFingerprint = 0;

    /** Ascending by template id; covers every template the model set
     *  references. */
    std::vector<SignatureVerdict> verdicts;

    /** True when tpl is certified unambiguous. */
    bool certified(logging::TemplateId tpl) const;

    /** Number of certified templates. */
    std::size_t certifiedCount() const;

    /**
     * Dense bitmap sized for a catalog of `catalog_size` templates
     * (the shape InterleavedChecker::setCertifiedTemplates takes).
     */
    std::vector<char> certifiedBits(std::size_t catalog_size) const;

    /** Convert to the model_io persistence record. */
    core::CertificateRecord toRecord() const;

    /** Parse a persisted record; nullopt on an unknown verdict word. */
    static std::optional<AmbiguityCertificate>
    fromRecord(const core::CertificateRecord &record);
};

/** Report plus certificate: one analysis run's full output. */
struct InterferenceResult
{
    LintReport report;
    AmbiguityCertificate certificate;
};

/** Identifier class of one template's text. */
SignatureIdClass classifyTemplate(const std::string &text,
                                  bool numbers_as_identifiers);

/** Run the whole-model-set interference analysis. */
InterferenceResult
analyzeInterference(const std::vector<core::TaskAutomaton> &automata,
                    const logging::TemplateCatalog &catalog,
                    const InterferenceOptions &options = {});

/**
 * seer-prove JSON document: the finding list plus the certificate
 * verdict table (machine-readable, golden-pinned by tests).
 */
std::string proveReportJson(const LintReport &report,
                            const AmbiguityCertificate &certificate,
                            const logging::TemplateCatalog &catalog);

/**
 * Mine-time hook, shaped like makeLintVerifier: each verified
 * automaton is analysed against the ones already accepted through the
 * same verifier, and warning-or-worse interference findings come back
 * as summaries. Stateful: one verifier instance accumulates the
 * bundle it has seen.
 */
core::TaskModeler::Verifier
makeInterferenceVerifier(InterferenceOptions options = {});

/**
 * Install a combined lint + interference verifier on a modeler
 * (replaces any verifier already set; TaskModeler holds one slot).
 */
void attachProve(core::TaskModeler &modeler, LintOptions lint = {},
                 InterferenceOptions prove = {});

} // namespace cloudseer::analysis

#endif // CLOUDSEER_ANALYSIS_INTERFERENCE_HPP
