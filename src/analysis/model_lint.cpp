#include "analysis/model_lint.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "logging/variable_extractor.hpp"

namespace cloudseer::analysis {

namespace {

using core::DependencyEdge;
using core::TaskAutomaton;

/** Graph view of one automaton, self-loops and duplicates separated
 *  out so the structural passes see a simple directed graph. */
struct GraphView
{
    int n = 0;
    std::vector<std::vector<int>> succs;   ///< deduped, no self-loops
    std::vector<std::pair<int, int>> selfLoops;
    std::vector<std::pair<int, int>> duplicates; ///< one entry per extra copy
    /** Strength of each simple edge (true = strong). */
    std::map<std::pair<int, int>, bool> strength;

    explicit GraphView(const TaskAutomaton &automaton)
        : n(static_cast<int>(automaton.eventCount())), succs(automaton.eventCount())
    {
        std::set<std::pair<int, int>> seen;
        for (const DependencyEdge &edge : automaton.edges()) {
            if (edge.from == edge.to) {
                selfLoops.emplace_back(edge.from, edge.to);
                continue;
            }
            std::pair<int, int> key{edge.from, edge.to};
            if (!seen.insert(key).second) {
                duplicates.push_back(key);
                continue;
            }
            succs[static_cast<std::size_t>(edge.from)].push_back(edge.to);
            strength[key] = edge.strong;
        }
    }
};

/** Tarjan strongly-connected components; returns SCCs of size >= 2. */
std::vector<std::vector<int>>
cyclicComponents(const GraphView &graph)
{
    struct State
    {
        const GraphView &g;
        std::vector<int> index, low, stack;
        std::vector<char> onStack;
        std::vector<std::vector<int>> out;
        int next = 0;

        explicit State(const GraphView &graph)
            : g(graph),
              index(static_cast<std::size_t>(graph.n), -1),
              low(static_cast<std::size_t>(graph.n), 0),
              onStack(static_cast<std::size_t>(graph.n), 0)
        {
        }

        void
        visit(int v)
        {
            // Iterative Tarjan: (node, next-successor-position) frames.
            std::vector<std::pair<int, std::size_t>> frames{{v, 0}};
            while (!frames.empty()) {
                auto &[node, pos] = frames.back();
                std::size_t u = static_cast<std::size_t>(node);
                if (pos == 0) {
                    index[u] = low[u] = next++;
                    stack.push_back(node);
                    onStack[u] = 1;
                }
                bool descended = false;
                while (pos < g.succs[u].size()) {
                    int w = g.succs[u][pos++];
                    std::size_t wi = static_cast<std::size_t>(w);
                    if (index[wi] == -1) {
                        frames.emplace_back(w, 0);
                        descended = true;
                        break;
                    }
                    if (onStack[wi])
                        low[u] = std::min(low[u], index[wi]);
                }
                if (descended)
                    continue;
                if (low[u] == index[u]) {
                    std::vector<int> component;
                    int popped;
                    do {
                        popped = stack.back();
                        stack.pop_back();
                        onStack[static_cast<std::size_t>(popped)] = 0;
                        component.push_back(popped);
                    } while (popped != node);
                    if (component.size() >= 2) {
                        std::sort(component.begin(), component.end());
                        out.push_back(std::move(component));
                    }
                }
                frames.pop_back();
                if (!frames.empty()) {
                    std::size_t p = static_cast<std::size_t>(
                        frames.back().first);
                    low[p] = std::min(low[p], low[u]);
                }
            }
        }
    };

    State state(graph);
    for (int v = 0; v < graph.n; ++v) {
        if (state.index[static_cast<std::size_t>(v)] == -1)
            state.visit(v);
    }
    std::sort(state.out.begin(), state.out.end());
    return state.out;
}

/** Reachability matrix over the simple graph (models are small). */
std::vector<std::vector<char>>
reachability(const GraphView &graph)
{
    std::vector<std::vector<char>> reach(
        static_cast<std::size_t>(graph.n),
        std::vector<char>(static_cast<std::size_t>(graph.n), 0));
    for (int s = 0; s < graph.n; ++s) {
        std::vector<int> work{s};
        while (!work.empty()) {
            int u = work.back();
            work.pop_back();
            for (int w : graph.succs[static_cast<std::size_t>(u)]) {
                if (!reach[static_cast<std::size_t>(s)]
                          [static_cast<std::size_t>(w)]) {
                    reach[static_cast<std::size_t>(s)]
                         [static_cast<std::size_t>(w)] = 1;
                    work.push_back(w);
                }
            }
        }
    }
    return reach;
}

std::string
eventLabel(const TaskAutomaton &automaton,
           const logging::TemplateCatalog &catalog, int event)
{
    const core::EventNode &node = automaton.event(event);
    std::string label =
        "e" + std::to_string(event) + " '" + catalog.label(node.tpl) + "'";
    if (node.occurrence > 0)
        label += " (#" + std::to_string(node.occurrence + 1) + ")";
    return label;
}

std::string
joinEvents(const std::vector<int> &events, std::size_t cap = 8)
{
    std::string out;
    for (std::size_t i = 0; i < events.size() && i < cap; ++i) {
        if (i > 0)
            out += " -> ";
        out += "e" + std::to_string(events[i]);
    }
    if (events.size() > cap)
        out += " -> ...";
    return out;
}

void
add(LintReport &report, const char *id, Severity severity,
    const std::string &automaton, std::string message, int event_a = -1,
    int event_b = -1, bool is_edge = false,
    std::map<std::string, double> metrics = {})
{
    Diagnostic diagnostic;
    diagnostic.id = id;
    diagnostic.severity = severity;
    diagnostic.automaton = automaton;
    diagnostic.message = std::move(message);
    diagnostic.eventA = event_a;
    diagnostic.eventB = event_b;
    diagnostic.isEdge = is_edge;
    diagnostic.metrics = std::move(metrics);
    report.diagnostics.push_back(std::move(diagnostic));
}

// --- SL001: fork/join balance and nesting ------------------------------

void
checkForkJoin(const TaskAutomaton &automaton,
              const logging::TemplateCatalog &catalog,
              const GraphView &graph, bool acyclic,
              const std::vector<std::vector<char>> &reach,
              LintReport &report)
{
    const std::string &name = automaton.name();

    std::set<std::pair<int, int>> reported;
    for (const auto &[from, to] : graph.duplicates) {
        if (!reported.insert({from, to}).second)
            continue;
        add(report, "SL001", Severity::Error, name,
            "duplicate dependency edge e" + std::to_string(from) +
                " -> e" + std::to_string(to) +
                " double-counts a branch of join " +
                eventLabel(automaton, catalog, to),
            from, to, true);
    }

    if (!acyclic)
        return; // nesting analysis needs a DAG

    // Partial join: a join merging some but not all branches of an
    // upstream fork — concurrency that neither fully syncs nor stays
    // independent, which the mined series-parallel shapes never
    // produce on their own.
    for (int fork = 0; fork < graph.n; ++fork) {
        const std::vector<int> &branches =
            graph.succs[static_cast<std::size_t>(fork)];
        if (branches.size() < 2)
            continue;
        for (int join = 0; join < graph.n; ++join) {
            std::size_t indegree = 0;
            for (int v = 0; v < graph.n; ++v) {
                const auto &sv = graph.succs[static_cast<std::size_t>(v)];
                if (std::find(sv.begin(), sv.end(), join) != sv.end())
                    ++indegree;
            }
            if (indegree < 2)
                continue;
            std::size_t covering = 0;
            for (int branch : branches) {
                if (branch == join ||
                    reach[static_cast<std::size_t>(branch)]
                         [static_cast<std::size_t>(join)]) {
                    ++covering;
                }
            }
            if (covering >= 2 && covering < branches.size()) {
                add(report, "SL001", Severity::Warning, name,
                    "join " + eventLabel(automaton, catalog, join) +
                        " merges " + std::to_string(covering) + " of " +
                        std::to_string(branches.size()) +
                        " branches of fork " +
                        eventLabel(automaton, catalog, fork) +
                        " (improper nesting)",
                    fork, join);
            }
        }
    }
}

// --- SL002: dead, orphan, disconnected states --------------------------

void
checkReachability(const TaskAutomaton &automaton,
                  const logging::TemplateCatalog &catalog,
                  const GraphView &graph, LintReport &report)
{
    const std::string &name = automaton.name();

    for (const auto &[from, to] : graph.selfLoops) {
        add(report, "SL002", Severity::Error, name,
            "event " + eventLabel(automaton, catalog, from) +
                " depends on itself and can never fire",
            from, to, true);
    }

    if (graph.n > 1) {
        for (int v = 0; v < graph.n; ++v) {
            if (automaton.preds(v).empty() && automaton.succs(v).empty()) {
                add(report, "SL002", Severity::Warning, name,
                    "orphan event " + eventLabel(automaton, catalog, v) +
                        " participates in no ordering (mining artifact?)",
                    v);
            }
        }

        // Weakly-connected components over non-orphan nodes.
        std::vector<int> component(static_cast<std::size_t>(graph.n), -1);
        int components = 0;
        for (int s = 0; s < graph.n; ++s) {
            if (component[static_cast<std::size_t>(s)] != -1 ||
                (automaton.preds(s).empty() && automaton.succs(s).empty()))
                continue;
            std::vector<int> work{s};
            component[static_cast<std::size_t>(s)] = components;
            while (!work.empty()) {
                int u = work.back();
                work.pop_back();
                auto follow = [&](int w) {
                    if (component[static_cast<std::size_t>(w)] == -1) {
                        component[static_cast<std::size_t>(w)] =
                            components;
                        work.push_back(w);
                    }
                };
                for (int w : automaton.succs(u))
                    follow(w);
                for (int w : automaton.preds(u))
                    follow(w);
            }
            ++components;
        }
        if (components > 1) {
            add(report, "SL002", Severity::Info, name,
                "specification splits into " +
                    std::to_string(components) +
                    " disconnected components — the task is really " +
                    "several independent workflows");
        }
    }
}

// --- SL003 / SL009: dependency cycles ----------------------------------

void
checkCycles(const TaskAutomaton &automaton, const GraphView &graph,
            const std::vector<std::vector<int>> &cycles,
            LintReport &report)
{
    const std::string &name = automaton.name();
    for (const std::vector<int> &component : cycles) {
        std::set<int> members(component.begin(), component.end());
        bool all_strong = true;
        for (int u : component) {
            for (int w : graph.succs[static_cast<std::size_t>(u)]) {
                if (members.count(w) && !graph.strength.at({u, w}))
                    all_strong = false;
            }
        }
        std::string cycle_text = joinEvents(component);
        if (all_strong) {
            add(report, "SL009", Severity::Error, name,
                "strong-dependency cycle {" + cycle_text +
                    "}: contradicts its own always-adjacent training "
                    "evidence and survives weak refinement",
                component.front(), component.back());
        } else {
            add(report, "SL003", Severity::Error, name,
                "dependency cycle {" + cycle_text +
                    "}: member states can never fire; the automaton "
                    "can never accept",
                component.front(), component.back());
        }
    }
}

// --- SL004: transitive-reduction violations ----------------------------

void
checkRedundantEdges(const TaskAutomaton &automaton,
                    const GraphView &graph, bool acyclic,
                    LintReport &report)
{
    if (!acyclic)
        return; // reachability is meaningless inside a cycle
    const std::string &name = automaton.name();
    for (int u = 0; u < graph.n; ++u) {
        for (int w : graph.succs[static_cast<std::size_t>(u)]) {
            // Path u -> w avoiding the direct edge?
            std::vector<char> seen(static_cast<std::size_t>(graph.n), 0);
            std::vector<int> work;
            for (int v : graph.succs[static_cast<std::size_t>(u)]) {
                if (v != w && !seen[static_cast<std::size_t>(v)]) {
                    seen[static_cast<std::size_t>(v)] = 1;
                    work.push_back(v);
                }
            }
            bool redundant = false;
            while (!work.empty() && !redundant) {
                int v = work.back();
                work.pop_back();
                for (int x : graph.succs[static_cast<std::size_t>(v)]) {
                    if (x == w) {
                        redundant = true;
                        break;
                    }
                    if (!seen[static_cast<std::size_t>(x)]) {
                        seen[static_cast<std::size_t>(x)] = 1;
                        work.push_back(x);
                    }
                }
            }
            if (redundant) {
                add(report, "SL004", Severity::Warning, name,
                    "edge e" + std::to_string(u) + " -> e" +
                        std::to_string(w) +
                        " is implied by a longer path (transitive "
                        "reduction violated)",
                    u, w, true);
            }
        }
    }
}

// --- SL006: identifier coverage ----------------------------------------

bool
routableTemplate(const std::string &text, bool numbers_as_identifiers)
{
    using logging::VariableExtractor;
    using logging::VariableKind;
    if (text.find(VariableExtractor::placeholder(VariableKind::Uuid)) !=
            std::string::npos ||
        text.find(VariableExtractor::placeholder(VariableKind::Ip)) !=
            std::string::npos) {
        return true;
    }
    return numbers_as_identifiers &&
           text.find(VariableExtractor::placeholder(
               VariableKind::Number)) != std::string::npos;
}

void
checkIdentifierCoverage(const TaskAutomaton &automaton,
                        const logging::TemplateCatalog &catalog,
                        const LintOptions &options, LintReport &report)
{
    const std::string &name = automaton.name();
    std::set<logging::TemplateId> seen;
    for (std::size_t e = 0; e < automaton.eventCount(); ++e) {
        logging::TemplateId tpl =
            automaton.event(static_cast<int>(e)).tpl;
        if (!seen.insert(tpl).second)
            continue;
        if (!routableTemplate(catalog.text(tpl),
                              options.numbersAsIdentifiers)) {
            add(report, "SL006", Severity::Warning, name,
                "template '" + catalog.label(tpl) +
                    "' extracts no routable identifier; its messages "
                    "bypass identifier-set selection and cost a "
                    "recovery walk each",
                static_cast<int>(e));
        }
    }
}

// --- SL007 (per automaton): event aliasing -----------------------------

void
checkEventAliasing(const TaskAutomaton &automaton,
                   const logging::TemplateCatalog &catalog,
                   LintReport &report)
{
    const std::string &name = automaton.name();
    std::map<std::pair<logging::TemplateId, int>, int> first;
    std::map<logging::TemplateId, std::vector<int>> occurrences;
    for (std::size_t e = 0; e < automaton.eventCount(); ++e) {
        const core::EventNode &node =
            automaton.event(static_cast<int>(e));
        auto [it, fresh] = first.try_emplace(
            {node.tpl, node.occurrence}, static_cast<int>(e));
        if (!fresh) {
            add(report, "SL007", Severity::Error, name,
                "events e" + std::to_string(it->second) + " and e" +
                    std::to_string(e) + " alias the same (template '" +
                    catalog.label(node.tpl) + "', occurrence " +
                    std::to_string(node.occurrence) +
                    ") state — consumption is non-deterministic",
                it->second, static_cast<int>(e));
        }
        occurrences[node.tpl].push_back(node.occurrence);
    }
    for (auto &[tpl, occs] : occurrences) {
        std::sort(occs.begin(), occs.end());
        occs.erase(std::unique(occs.begin(), occs.end()), occs.end());
        for (std::size_t i = 0; i < occs.size(); ++i) {
            if (occs[i] != static_cast<int>(i)) {
                add(report, "SL007", Severity::Warning, name,
                    "occurrence indices of template '" +
                        catalog.label(tpl) +
                        "' are not contiguous from 0 — occurrence " +
                        std::to_string(i) + " is missing");
                break;
            }
        }
    }
}

// --- SL008: timeout consistency ----------------------------------------

void
checkTimeouts(const TaskAutomaton &automaton, const LintOptions &options,
              LintReport &report)
{
    const std::string &name = automaton.name();
    auto it = options.perTaskTimeouts.find(name);
    double timeout = it != options.perTaskTimeouts.end()
                         ? it->second
                         : options.defaultTimeout;
    if (timeout <= 0.0) {
        add(report, "SL008", Severity::Error, name,
            "timeout " + std::to_string(timeout) +
                "s is not positive — every group times out instantly",
            -1, -1, false, {{"timeout_s", timeout}});
        return;
    }
    auto gap = options.expectedTaskGaps.find(name);
    if (gap != options.expectedTaskGaps.end() && gap->second > timeout) {
        add(report, "SL008", Severity::Warning, name,
            "timeout " + std::to_string(timeout) +
                "s is below the largest quiet gap " +
                std::to_string(gap->second) +
                "s seen in correct executions — slow-but-correct runs "
                "will be reported",
            -1, -1, false,
            {{"timeout_s", timeout}, {"max_gap_s", gap->second}});
    }
}

// --- SL005 (bundle): cross-automaton template collisions ---------------

void
checkTemplateCollisions(const std::vector<TaskAutomaton> &automata,
                        const logging::TemplateCatalog &catalog,
                        const LintOptions &options, LintReport &report)
{
    struct Collision
    {
        std::vector<std::string> tasks;
        std::size_t sites = 0;
    };
    std::map<logging::TemplateId, Collision> shared;
    for (const TaskAutomaton &automaton : automata) {
        std::set<logging::TemplateId> seen;
        for (std::size_t e = 0; e < automaton.eventCount(); ++e)
            seen.insert(automaton.event(static_cast<int>(e)).tpl);
        for (logging::TemplateId tpl : seen) {
            Collision &entry = shared[tpl];
            entry.tasks.push_back(automaton.name());
            entry.sites += automaton.eventsForTemplate(tpl).size();
        }
    }
    for (const auto &[tpl, entry] : shared) {
        if (entry.tasks.size() < 2)
            continue;
        std::string tasks;
        for (const std::string &task : entry.tasks)
            tasks += (tasks.empty() ? "" : ", ") + task;
        double sites = static_cast<double>(entry.sites);
        bool over_cap = options.maxForkFanout > 0 &&
                        entry.sites > options.maxForkFanout;
        std::string message =
            "template '" + catalog.label(tpl) + "' is shared by " +
            std::to_string(entry.tasks.size()) + " automata (" + tasks +
            "); one colliding message can fork up to " +
            std::to_string(entry.sites) +
            " hypotheses per indistinguishable interleaving";
        if (over_cap) {
            message += ", exceeding the checker's fork-fanout cap of " +
                       std::to_string(options.maxForkFanout) +
                       " — correct hypotheses can be dropped";
        }
        add(report, "SL005", over_cap ? Severity::Warning : Severity::Info,
            "", std::move(message), -1, -1, false,
            {{"sites", sites},
             {"automata", static_cast<double>(entry.tasks.size())},
             {"cap", static_cast<double>(options.maxForkFanout)}});
    }
}

// --- SL007 (bundle): specification aliasing ----------------------------

void
checkSpecificationAliasing(const std::vector<TaskAutomaton> &automata,
                           LintReport &report)
{
    std::map<std::string, std::size_t> byName;
    for (std::size_t i = 0; i < automata.size(); ++i) {
        auto [it, fresh] = byName.try_emplace(automata[i].name(), i);
        if (!fresh) {
            add(report, "SL007", Severity::Error, automata[i].name(),
                "two automata share the task name '" +
                    automata[i].name() +
                    "' — reports and timeout policy cannot tell them "
                    "apart");
        }
    }
    for (std::size_t i = 0; i < automata.size(); ++i) {
        for (std::size_t j = i + 1; j < automata.size(); ++j) {
            if (automata[i].name() != automata[j].name() &&
                automata[i].sameStructure(automata[j])) {
                add(report, "SL007", Severity::Warning,
                    automata[i].name(),
                    "automata '" + automata[i].name() + "' and '" +
                        automata[j].name() +
                        "' are structurally identical — every message "
                        "they match forks permanently ambiguous "
                        "hypotheses");
            }
        }
    }
}

} // namespace

LintReport
lintAutomaton(const TaskAutomaton &automaton,
              const logging::TemplateCatalog &catalog,
              const LintOptions &options)
{
    LintReport report;
    report.automataChecked = 1;

    if (automaton.eventCount() == 0) {
        add(report, "SL002", Severity::Error, automaton.name(),
            "automaton has no events — it accepts nothing and matches "
            "nothing");
        return report;
    }

    GraphView graph(automaton);
    std::vector<std::vector<int>> cycles = cyclicComponents(graph);
    bool acyclic = cycles.empty() && graph.selfLoops.empty();
    std::vector<std::vector<char>> reach;
    if (acyclic)
        reach = reachability(graph);

    checkForkJoin(automaton, catalog, graph, acyclic, reach, report);
    checkReachability(automaton, catalog, graph, report);
    checkCycles(automaton, graph, cycles, report);
    checkRedundantEdges(automaton, graph, acyclic, report);
    checkIdentifierCoverage(automaton, catalog, options, report);
    checkEventAliasing(automaton, catalog, report);
    checkTimeouts(automaton, options, report);
    return report;
}

LintReport
lintModels(const std::vector<TaskAutomaton> &automata,
           const logging::TemplateCatalog &catalog,
           const LintOptions &options)
{
    LintReport report;
    report.automataChecked = automata.size();
    for (const TaskAutomaton &automaton : automata) {
        LintReport sub = lintAutomaton(automaton, catalog, options);
        report.merge(std::move(sub));
    }
    checkTemplateCollisions(automata, catalog, options, report);
    checkSpecificationAliasing(automata, report);
    report.sortStable();
    return report;
}

LintReport
lintLatencyProfiles(const std::vector<TaskAutomaton> &automata,
                    const std::vector<core::LatencyProfile> &profiles)
{
    LintReport report;
    report.automataChecked = automata.size();

    std::map<std::string, const TaskAutomaton *> by_name;
    for (const TaskAutomaton &automaton : automata)
        by_name.emplace(automaton.name(), &automaton);

    std::set<std::string> profiled;
    for (const core::LatencyProfile &profile : profiles) {
        auto it = by_name.find(profile.task);
        if (it == by_name.end()) {
            add(report, "SL010", Severity::Error, profile.task,
                "latency profile names no automaton in the bundle — a "
                "stale or misassembled deployment");
            continue;
        }
        if (!profile.hasSamples())
            continue;
        profiled.insert(profile.task);
        const TaskAutomaton &automaton = *it->second;

        if (!profile.total.wellFormed()) {
            add(report, "SL010", Severity::Error, profile.task,
                "task-level latency quantiles are non-monotone "
                "(expect p50 <= p95 <= p99 <= max)");
        }
        std::set<std::pair<int, int>> spec_edges;
        for (const DependencyEdge &edge : automaton.edges())
            spec_edges.insert({edge.from, edge.to});
        std::size_t covered = 0;
        for (const auto &[edge, stats] : profile.edges) {
            if (spec_edges.count(edge) == 0) {
                add(report, "SL010", Severity::Error, profile.task,
                    "edge timing for (" + std::to_string(edge.first) +
                        " -> " + std::to_string(edge.second) +
                        ") but the automaton has no such dependency "
                        "edge",
                    edge.first, edge.second, true);
                continue;
            }
            if (!stats.wellFormed()) {
                add(report, "SL010", Severity::Error, profile.task,
                    "edge (" + std::to_string(edge.first) + " -> " +
                        std::to_string(edge.second) +
                        ") latency quantiles are non-monotone",
                    edge.first, edge.second, true);
            }
            if (stats.count > 0)
                ++covered;
        }
        if (covered < spec_edges.size()) {
            add(report, "SL010", Severity::Warning, profile.task,
                "latency profile covers " + std::to_string(covered) +
                    " of " + std::to_string(spec_edges.size()) +
                    " dependency edges — uncovered transitions have "
                    "no budget and go unmonitored",
                -1, -1, false,
                {{"covered", static_cast<double>(covered)},
                 {"edges", static_cast<double>(spec_edges.size())}});
        }
    }

    for (const TaskAutomaton &automaton : automata) {
        if (profiled.count(automaton.name()) == 0) {
            add(report, "SL010", Severity::Warning, automaton.name(),
                "automaton deployed with no sampled latency profile — "
                "its executions are exempt from the latency-anomaly "
                "criterion");
        }
    }
    report.sortStable();
    return report;
}

std::vector<std::string>
errorSummaries(const LintReport &report)
{
    std::vector<std::string> out;
    for (const Diagnostic &diagnostic : report.diagnostics) {
        if (diagnostic.severity != Severity::Error)
            continue;
        std::string line = "[" + diagnostic.id + "] ";
        if (!diagnostic.automaton.empty())
            line += diagnostic.automaton + ": ";
        line += diagnostic.message;
        out.push_back(std::move(line));
    }
    return out;
}

core::TaskModeler::Verifier
makeLintVerifier(LintOptions options)
{
    return [options = std::move(options)](
               const TaskAutomaton &automaton,
               const logging::TemplateCatalog &catalog) {
        return errorSummaries(lintAutomaton(automaton, catalog, options));
    };
}

void
attachLint(core::TaskModeler &modeler, LintOptions options)
{
    modeler.setVerifier(makeLintVerifier(std::move(options)));
}

} // namespace cloudseer::analysis
