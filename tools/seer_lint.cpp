/**
 * @file
 * seer-lint: the static model verifier as a command-line tool.
 *
 * Runs every analysis pass over one or more serialized model bundles
 * and prints findings with file:line locations (via the loader's
 * source map). Exit status is CI-friendly: 0 clean, 1 findings at or
 * above the gating severity, 2 usage or I/O failure.
 *
 *     seer-lint [options] model-file...
 *     seer-lint --list            # print the diagnostic catalog
 *     seer-lint --explain SL005   # one entry in detail
 *
 * Options:
 *     --json                    machine-readable report on stdout
 *     --werror                  gate on warnings as well as errors
 *     --max-fanout N            checker hypothesis cap for SL005
 *                               (default: the checker's deployed cap)
 *     --numbers-as-identifiers  <num> placeholders count as routable
 *     --timeout S               deployment timeout for SL008
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/model_lint.hpp"
#include "core/checker/check_types.hpp"
#include "core/mining/model_io.hpp"

namespace {

using namespace cloudseer;

int
usage(std::ostream &out, int status)
{
    out << "usage: seer-lint [options] model-file...\n"
           "       seer-lint --list | --explain <ID>\n"
           "options:\n"
           "  --json                    JSON report on stdout\n"
           "  --werror                  nonzero exit on warnings too\n"
           "  --max-fanout N            checker hypothesis cap (SL005)\n"
           "  --numbers-as-identifiers  <num> counts as routable (SL006)\n"
           "  --timeout S               deployment timeout (SL008)\n";
    return status;
}

int
listCatalog()
{
    for (const analysis::DiagnosticInfo &info :
         analysis::diagnosticCatalog()) {
        std::cout << info.id << "  ["
                  << analysis::severityName(info.maxSeverity) << "]  "
                  << info.title << "\n";
    }
    return 0;
}

int
explainDiagnostic(const std::string &id)
{
    const analysis::DiagnosticInfo *info = analysis::diagnosticInfo(id);
    if (!info) {
        std::cerr << "seer-lint: unknown diagnostic '" << id
                  << "' (try --list)\n";
        return 2;
    }
    std::cout << info->id << ": " << info->title << " (max severity "
              << analysis::severityName(info->maxSeverity) << ")\n\n"
              << info->rationale << "\n";
    return 0;
}

/** file:line prefix for a finding, best-effort via the source map. */
std::string
location(const std::string &file, const core::ModelBundle &bundle,
         const core::ModelSourceMap &sources,
         const analysis::Diagnostic &diagnostic)
{
    int line = 0;
    for (std::size_t i = 0; i < bundle.automata.size(); ++i) {
        if (bundle.automata[i].name() != diagnostic.automaton)
            continue;
        if (diagnostic.isEdge)
            line = sources.edgeLine(i, diagnostic.eventA,
                                    diagnostic.eventB);
        if (line == 0 && diagnostic.eventA >= 0)
            line = sources.eventLine(i, diagnostic.eventA);
        if (line == 0)
            line = sources.declLine(i);
        break;
    }
    if (line == 0)
        return file;
    return file + ":" + std::to_string(line);
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> files;
    analysis::LintOptions options;
    options.maxForkFanout = core::kDefaultMaxForkFanout;
    bool json = false;
    bool werror = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "seer-lint: " << flag
                          << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            return usage(std::cout, 0);
        } else if (arg == "--list") {
            return listCatalog();
        } else if (arg == "--explain") {
            return explainDiagnostic(next("--explain"));
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--werror") {
            werror = true;
        } else if (arg == "--max-fanout") {
            options.maxForkFanout = std::stoul(next("--max-fanout"));
        } else if (arg == "--numbers-as-identifiers") {
            options.numbersAsIdentifiers = true;
        } else if (arg == "--timeout") {
            options.defaultTimeout = std::stod(next("--timeout"));
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "seer-lint: unknown option " << arg << "\n";
            return usage(std::cerr, 2);
        } else {
            files.push_back(arg);
        }
    }
    if (files.empty())
        return usage(std::cerr, 2);

    bool gate = false;
    for (const std::string &file : files) {
        std::ifstream in(file);
        if (!in) {
            std::cerr << "seer-lint: cannot open " << file << "\n";
            return 2;
        }
        core::ModelSourceMap sources;
        auto bundle = core::loadModels(in, &sources);
        if (!bundle) {
            std::cerr << "seer-lint: " << file
                      << ": not a valid model bundle\n";
            return 2;
        }
        analysis::LintReport report = analysis::lintModels(
            bundle->automata, *bundle->catalog, options);
        if (json) {
            std::cout << report.toJson();
        } else {
            for (const analysis::Diagnostic &diagnostic :
                 report.diagnostics) {
                std::cout
                    << location(file, *bundle, sources, diagnostic)
                    << ": " << analysis::severityName(diagnostic.severity)
                    << ": [" << diagnostic.id << "] ";
                if (!diagnostic.automaton.empty())
                    std::cout << diagnostic.automaton << ": ";
                std::cout << diagnostic.message << "\n";
            }
            std::cout << file << ": " << report.automataChecked
                      << " automata, "
                      << report.count(analysis::Severity::Error)
                      << " error(s), "
                      << report.count(analysis::Severity::Warning)
                      << " warning(s), "
                      << report.count(analysis::Severity::Info)
                      << " info(s)\n";
        }
        gate = gate || report.hasErrors() ||
               (werror && report.count(analysis::Severity::Warning) > 0);
    }
    return gate ? 1 : 0;
}
