/**
 * @file
 * seer-pulse: operator CLI for the live telemetry plane (DESIGN.md
 * §16). Four commands:
 *
 *     seer-pulse scrape HOST:PORT [PATH]      # GET one endpoint
 *     seer-pulse watch HOST:PORT [options]    # poll /healthz
 *     seer-pulse rules-check RULES_FILE       # validate a rule pack
 *     seer-pulse replay HEALTH_JSONL [opts]   # offline alert replay
 *
 * `scrape` fetches one document (default /metrics) from a monitor's
 * embedded endpoint and prints the body; non-200 exits nonzero, so it
 * doubles as a smoke probe in CI. `watch` polls /healthz, printing one
 * status line per poll, and exits nonzero while the monitor reports
 * degraded (--count bounds the polls for scripting). `rules-check`
 * parses an alert-rules file with exactly the parser the monitor uses
 * and prints the normalized pack. `replay` runs the rate + alert
 * engines over a recorded health-snapshot stream (the JSONL the
 * monitor writes) and prints the ALERT records a live run with those
 * rules would have emitted — rule packs can be rehearsed against
 * yesterday's incident before they page anyone.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/http_server.hpp"
#include "obs/pulse.hpp"

namespace {

using namespace cloudseer;

int
usage(std::ostream &out, int status)
{
    out << "usage:\n"
           "  seer-pulse scrape HOST:PORT [PATH]\n"
           "      GET PATH (default /metrics) and print the body;\n"
           "      exits 1 on a non-200 status, 2 on connect failure\n"
           "  seer-pulse watch HOST:PORT [--interval SEC] [--count N]\n"
           "      poll /healthz, one line per poll; with --count,\n"
           "      exits 1 when the final poll reported degraded\n"
           "  seer-pulse rules-check RULES_FILE\n"
           "      parse an alert-rules file and print the pack\n"
           "  seer-pulse replay HEALTH_JSONL [--rules FILE] "
           "[--window SEC] [--alpha A]\n"
           "      run the alert engine over recorded snapshots and\n"
           "      print the ALERT records it emits\n";
    return status;
}

/** Split "host:port"; false on a malformed endpoint. */
bool
splitEndpoint(const std::string &arg, std::string &host, int &port)
{
    std::size_t colon = arg.rfind(':');
    if (colon == std::string::npos || colon + 1 >= arg.size())
        return false;
    host = arg.substr(0, colon);
    port = std::atoi(arg.c_str() + colon + 1);
    return !host.empty() && port > 0 && port <= 65535;
}

int
cmdScrape(const std::vector<std::string> &args)
{
    if (args.empty() || args.size() > 2)
        return usage(std::cerr, 2);
    std::string host;
    int port = 0;
    if (!splitEndpoint(args[0], host, port)) {
        std::cerr << "seer-pulse: bad endpoint '" << args[0]
                  << "' (want HOST:PORT)\n";
        return 2;
    }
    std::string path = args.size() == 2 ? args[1] : "/metrics";
    int status = 0;
    std::string body;
    if (!common::httpGet(host, static_cast<std::uint16_t>(port), path,
                         status, body)) {
        std::cerr << "seer-pulse: cannot reach " << args[0] << path
                  << "\n";
        return 2;
    }
    std::fputs(body.c_str(), stdout);
    if (status != 200) {
        std::cerr << "seer-pulse: " << path << " returned " << status
                  << "\n";
        return 1;
    }
    return 0;
}

int
cmdWatch(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage(std::cerr, 2);
    std::string host;
    int port = 0;
    if (!splitEndpoint(args[0], host, port)) {
        std::cerr << "seer-pulse: bad endpoint '" << args[0]
                  << "' (want HOST:PORT)\n";
        return 2;
    }
    double interval = 2.0;
    long count = 0; // 0 = forever
    for (std::size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--interval" && i + 1 < args.size())
            interval = std::atof(args[++i].c_str());
        else if (args[i] == "--count" && i + 1 < args.size())
            count = std::atol(args[++i].c_str());
        else
            return usage(std::cerr, 2);
    }

    bool lastDegraded = false;
    double lastTime = -1.0;
    bool warnedStale = false;
    for (long polls = 0; count == 0 || polls < count; ++polls) {
        if (polls > 0) {
            std::this_thread::sleep_for(std::chrono::duration<double>(
                std::max(interval, 0.01)));
        }
        int status = 0;
        std::string body;
        if (!common::httpGet(host, static_cast<std::uint16_t>(port),
                             "/healthz", status, body)) {
            std::printf("unreachable %s\n", args[0].c_str());
            std::fflush(stdout);
            lastDegraded = true;
            continue;
        }
        // The snapshot clock freezing across a full poll interval
        // means the monitor answered but published nothing new — an
        // idle or wedged pipeline looks exactly like a healthy quiet
        // one otherwise. Say so once per stale stretch (stderr, so
        // scripted consumers of the poll lines are untouched).
        double time = 0.0;
        std::size_t at = body.find("\"time\":");
        if (at != std::string::npos)
            time = std::atof(body.c_str() + at + 7);
        if (polls > 0 && time == lastTime) {
            if (!warnedStale) {
                std::fprintf(stderr,
                             "seer-pulse: /healthz time stuck at %g "
                             "for a full poll interval; monitor is "
                             "idle or wedged\n",
                             time);
                warnedStale = true;
            }
        } else {
            warnedStale = false;
        }
        lastTime = time;
        bool degraded =
            body.find("\"status\":\"degraded\"") != std::string::npos;
        lastDegraded = degraded;
        // One compact line per poll: verdict plus the raw body (the
        // window counters embedded in it are the interesting part).
        std::printf("%s %s\n", degraded ? "DEGRADED" : "ok",
                    body.c_str());
        std::fflush(stdout);
    }
    return lastDegraded ? 1 : 0;
}

int
cmdRulesCheck(const std::vector<std::string> &args)
{
    if (args.size() != 1)
        return usage(std::cerr, 2);
    std::ifstream in(args[0]);
    if (!in) {
        std::cerr << "seer-pulse: cannot open " << args[0] << "\n";
        return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::vector<obs::AlertRule> rules;
    std::string error;
    if (!obs::parseAlertRules(text.str(), rules, error)) {
        std::cerr << "seer-pulse: " << args[0] << ": " << error << "\n";
        return 1;
    }
    std::printf("%zu rule%s ok\n", rules.size(),
                rules.size() == 1 ? "" : "s");
    for (const obs::AlertRule &rule : rules) {
        std::printf(
            "  %-24s %s%s > %g pending=%gs hold=%gs resolve=%g\n",
            rule.name.c_str(), obs::pulseSignalName(rule.signal),
            rule.useEwma ? " (ewma)" : "", rule.threshold,
            rule.pendingSeconds, rule.holdSeconds, rule.resolveRatio);
    }
    return 0;
}

// --- replay: HEALTH JSONL → HealthSample → alert engine ---------------

/** Numeric value after `"key":` at or past `from` (0 when absent). */
double
numberValue(const std::string &line, const std::string &key,
            std::size_t from = 0)
{
    std::string needle = "\"" + key + "\":";
    std::size_t at = line.find(needle, from);
    if (at == std::string::npos)
        return 0.0;
    return std::atof(line.c_str() + at + needle.size());
}

/**
 * Rehydrate the HealthSample fields the rate engine consumes from one
 * {"kind":"HEALTH"} line (HealthSample::toJson key layout).
 */
obs::HealthSample
sampleFromJson(const std::string &line)
{
    auto u64 = [&](const char *key, std::size_t from = 0) {
        return static_cast<std::uint64_t>(numberValue(line, key, from));
    };
    obs::HealthSample s;
    s.time = numberValue(line, "time");
    s.messages = u64("messages");
    std::size_t rec = line.find("\"recoveries\":{");
    s.recoveredPassUnknown = u64("a", rec);
    s.recoveredOtherSet = u64("c", rec);
    s.recoveredFalseDependency = u64("d", rec);
    s.errorsReported = u64("errors");
    s.timeoutsReported = u64("timeouts");
    s.groupsShed = u64("shed");
    std::size_t ing = line.find("\"ingest\":{");
    s.forcedReleases = u64("forced", ing);
    std::size_t mem = line.find("\"memory\":{");
    s.memoryEvictions = u64("evictions", mem);
    s.internerCapRejected = u64("internerCapRejected", mem);
    std::size_t feed = line.find("\"feedLatencyUs\":{");
    s.feedP99us = numberValue(line, "p99", feed);
    std::size_t wal = line.find("\"walAppendUs\":{");
    s.walAppendP99us = numberValue(line, "p99", wal);
    return s;
}

int
cmdReplay(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage(std::cerr, 2);
    obs::PulseConfig config;
    config.enabled = true;
    std::string path = args[0];
    for (std::size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--rules" && i + 1 < args.size()) {
            std::ifstream rules_in(args[++i]);
            if (!rules_in) {
                std::cerr << "seer-pulse: cannot open " << args[i]
                          << "\n";
                return 2;
            }
            std::ostringstream text;
            text << rules_in.rdbuf();
            std::string error;
            if (!obs::parseAlertRules(text.str(), config.rules,
                                      error)) {
                std::cerr << "seer-pulse: " << args[i] << ": " << error
                          << "\n";
                return 1;
            }
        } else if (args[i] == "--window" && i + 1 < args.size()) {
            config.windowSeconds = std::atof(args[++i].c_str());
        } else if (args[i] == "--alpha" && i + 1 < args.size()) {
            config.ewmaAlpha = std::atof(args[++i].c_str());
        } else {
            return usage(std::cerr, 2);
        }
    }
    std::ifstream in(path);
    if (!in) {
        std::cerr << "seer-pulse: cannot open " << path << "\n";
        return 2;
    }

    obs::PulseEngine engine(config);
    std::string line;
    std::size_t snapshots = 0;
    std::size_t alerts = 0;
    while (std::getline(in, line)) {
        if (line.find("\"kind\":\"HEALTH\"") == std::string::npos)
            continue;
        ++snapshots;
        engine.observe(sampleFromJson(line));
        for (const std::string &alert : engine.drainAlertLines()) {
            ++alerts;
            std::printf("%s\n", alert.c_str());
        }
    }
    if (snapshots == 0) {
        std::cerr << "seer-pulse: no HEALTH records in " << path
                  << "\n";
        return 1;
    }
    std::fprintf(stderr, "replayed %zu snapshots, %zu alert records\n",
                 snapshots, alerts);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(std::cerr, 2);
    std::string command = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    if (command == "--help" || command == "-h")
        return usage(std::cout, 0);
    if (command == "scrape")
        return cmdScrape(args);
    if (command == "watch")
        return cmdWatch(args);
    if (command == "rules-check")
        return cmdRulesCheck(args);
    if (command == "replay")
        return cmdReplay(args);
    std::cerr << "seer-pulse: unknown command '" << command << "'\n";
    return usage(std::cerr, 2);
}
