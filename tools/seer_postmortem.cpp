/**
 * @file
 * seer-postmortem: offline renderer for seer-flight forensic bundles
 * (DESIGN.md §12).
 *
 * Consumes the bundle stream the monitor's flight recorder emits (one
 * {"kind":"BUNDLE",...} object per line — forensicBundleJsonLines, or
 * bench_resilience --bundles-out) and renders each failure with its
 * raw-log context for a terminal. Three modes:
 *
 *     seer-postmortem bundles.jsonl            # render every bundle
 *     seer-postmortem --list bundles.jsonl     # one line per bundle
 *     seer-postmortem --index 2 bundles.jsonl  # render bundle 2 only
 *
 * Non-BUNDLE lines are skipped, so the tool can be pointed at a mixed
 * report stream. Truncated bundle lines — a crashed writer or partial
 * copy leaves unbalanced JSON — are diagnosed on stderr and skipped,
 * and the exit status goes nonzero, rather than rendered as if whole.
 * Empty input gets its own distinct diagnostic. Reads stdin when no
 * file is given. The parser is a
 * purpose-built scanner for the bundle schema (strings with JSON
 * escapes, one level of nesting plus the report object), not a general
 * JSON parser — the monitor is the only producer.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace {

/** Position just past `"key":` at or after `from`, or npos. */
std::size_t
afterKey(const std::string &s, const std::string &key, std::size_t from = 0)
{
    std::string needle = "\"" + key + "\":";
    std::size_t at = s.find(needle, from);
    return at == std::string::npos ? std::string::npos
                                   : at + needle.size();
}

/**
 * Decode the JSON string starting at `pos` (which must point at the
 * opening quote). Advances `pos` past the closing quote. Handles the
 * escapes the monitor emits (\" \\ \n \r \t \uXXXX).
 */
std::string
parseString(const std::string &s, std::size_t &pos)
{
    std::string out;
    if (pos >= s.size() || s[pos] != '"')
        return out;
    ++pos;
    while (pos < s.size() && s[pos] != '"') {
        char c = s[pos];
        if (c == '\\' && pos + 1 < s.size()) {
            char esc = s[pos + 1];
            pos += 2;
            switch (esc) {
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u':
                if (pos + 4 <= s.size()) {
                    unsigned code = static_cast<unsigned>(
                        std::strtoul(s.substr(pos, 4).c_str(), nullptr,
                                     16));
                    out += static_cast<char>(code & 0xff);
                    pos += 4;
                }
                break;
              default: out += esc; break;
            }
        } else {
            out += c;
            ++pos;
        }
    }
    if (pos < s.size())
        ++pos; // closing quote
    return out;
}

/** String value of `"key":"..."` at or after `from` ("" if absent). */
std::string
stringValue(const std::string &s, const std::string &key,
            std::size_t from = 0)
{
    std::size_t pos = afterKey(s, key, from);
    if (pos == std::string::npos)
        return "";
    return parseString(s, pos);
}

/** Numeric value of `"key":N` at or after `from` (0.0 if absent). */
double
numberValue(const std::string &s, const std::string &key,
            std::size_t from = 0)
{
    std::size_t pos = afterKey(s, key, from);
    if (pos == std::string::npos)
        return 0.0;
    return std::atof(s.c_str() + pos);
}

/**
 * The balanced {...} or [...] starting at `pos`, respecting strings.
 * Returns "" when `pos` does not point at the opening bracket.
 */
std::string
extractBalanced(const std::string &s, std::size_t pos)
{
    if (pos >= s.size() || (s[pos] != '{' && s[pos] != '['))
        return "";
    char open = s[pos];
    char close = open == '{' ? '}' : ']';
    int depth = 0;
    bool inString = false;
    for (std::size_t i = pos; i < s.size(); ++i) {
        char c = s[i];
        if (inString) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                inString = false;
            continue;
        }
        if (c == '"')
            inString = true;
        else if (c == open)
            ++depth;
        else if (c == close && --depth == 0)
            return s.substr(pos, i - pos + 1);
    }
    return "";
}

/** Items of a flat string array `"key":["a","b"]` after `from`. */
std::vector<std::string>
stringArray(const std::string &s, const std::string &key,
            std::size_t from = 0)
{
    std::vector<std::string> out;
    std::size_t pos = afterKey(s, key, from);
    if (pos == std::string::npos || pos >= s.size() || s[pos] != '[')
        return out;
    ++pos;
    while (pos < s.size() && s[pos] != ']') {
        if (s[pos] == '"')
            out.push_back(parseString(s, pos));
        else
            ++pos;
    }
    return out;
}

bool
isBundleLine(const std::string &line)
{
    return line.find("\"kind\":\"BUNDLE\"") != std::string::npos;
}

/**
 * A bundle line cut short — by a crashed writer, a partial copy, or a
 * filled disk — has unbalanced braces (or an unterminated string,
 * which reads as the same thing). Rendering such a line produces
 * confidently wrong output: every field after the cut silently parses
 * as absent or garbage. Detect it up front so it can be diagnosed and
 * skipped instead.
 */
bool
isTruncatedBundle(const std::string &line)
{
    std::size_t open = line.find('{');
    return open == std::string::npos ||
           extractBalanced(line, open).empty();
}

/** One context-array entry, pre-parsed for rendering. */
struct Context
{
    std::string node;
    double time = 0.0;
    std::string line;
};

std::vector<Context>
parseContext(const std::string &bundle)
{
    std::vector<Context> out;
    std::size_t pos = afterKey(bundle, "context");
    if (pos == std::string::npos)
        return out;
    std::string array = extractBalanced(bundle, pos);
    std::size_t at = 0;
    while ((at = array.find('{', at)) != std::string::npos) {
        std::string object = extractBalanced(array, at);
        if (object.empty())
            break;
        Context entry;
        entry.node = stringValue(object, "node");
        entry.time = numberValue(object, "time");
        entry.line = stringValue(object, "line");
        out.push_back(std::move(entry));
        at += object.size();
    }
    return out;
}

std::string
joined(const std::vector<std::string> &items)
{
    std::string out;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += items[i];
    }
    return out;
}

void
printListRow(std::size_t index, const std::string &bundle)
{
    std::printf("%4zu  %-8s %-14s t=%9.3f  context=%zu\n", index,
                stringValue(bundle, "reason").c_str(),
                stringValue(bundle, "task").c_str(),
                numberValue(bundle, "time"),
                parseContext(bundle).size());
}

void
printBundle(std::size_t index, const std::string &bundle)
{
    std::printf("bundle %zu: %s task=%s @ t=%.3f (group %.0f)\n", index,
                stringValue(bundle, "reason").c_str(),
                stringValue(bundle, "task").c_str(),
                numberValue(bundle, "time"),
                numberValue(bundle, "group"));

    std::vector<std::string> ids = stringArray(bundle, "identifiers");
    if (!ids.empty())
        std::printf("  identifiers: %s\n", joined(ids).c_str());

    std::size_t reportAt = afterKey(bundle, "report");
    std::string report = reportAt == std::string::npos
                             ? std::string()
                             : extractBalanced(bundle, reportAt);
    if (!report.empty()) {
        std::printf("  duration %.3fs (start %.3fs, %.0f messages%s)\n",
                    numberValue(report, "duration"),
                    numberValue(report, "start"),
                    numberValue(report, "messages"),
                    report.find("\"endOfStream\":true") !=
                            std::string::npos
                        ? ", end of stream"
                        : "");
        std::vector<std::string> candidates =
            stringArray(report, "candidates");
        if (candidates.size() > 1) {
            std::printf("  ambiguity alternatives: %s\n",
                        joined(candidates).c_str());
        }
        std::vector<std::string> states = stringArray(report, "states");
        if (!states.empty())
            std::printf("  at state: %s\n", joined(states).c_str());
        std::vector<std::string> expected =
            stringArray(report, "expected");
        if (!expected.empty())
            std::printf("  expected next: %s\n",
                        joined(expected).c_str());

        std::size_t latencyAt = afterKey(report, "latency");
        if (latencyAt != std::string::npos) {
            std::string latency = extractBalanced(report, latencyAt);
            std::printf("  latency: total %.3fs vs budget %.3fs\n",
                        numberValue(latency, "total"),
                        numberValue(latency, "budget"));
            // Per-edge rows, slowest story first: only the edges that
            // ran over their own budget are worth terminal space.
            std::size_t edgesAt = afterKey(latency, "edges");
            std::string edges =
                edgesAt == std::string::npos
                    ? std::string()
                    : extractBalanced(latency, edgesAt);
            std::size_t at = 0;
            while ((at = edges.find('{', at)) != std::string::npos) {
                std::string edge = extractBalanced(edges, at);
                if (edge.empty())
                    break;
                if (edge.find("\"exceeded\":true") !=
                    std::string::npos) {
                    std::printf("    slow: %s -> %s  %.3fs (budget "
                                "%.3fs)\n",
                                stringValue(edge, "fromLabel").c_str(),
                                stringValue(edge, "toLabel").c_str(),
                                numberValue(edge, "elapsed"),
                                numberValue(edge, "budget"));
                }
                at += edge.size();
            }
        }
    }

    std::vector<Context> context = parseContext(bundle);
    std::printf("  context (%zu lines):\n", context.size());
    for (const Context &entry : context) {
        std::printf("    [%9.3f] %-12s %s\n", entry.time,
                    entry.node.c_str(), entry.line.c_str());
    }
}

int
usage(std::ostream &out, int status)
{
    out << "usage: seer-postmortem [--list | --index N] "
           "[bundles.jsonl]\n"
           "  (default) render every forensic bundle\n"
           "  --list    one summary line per bundle\n"
           "  --index N render only bundle N (0-based)\n"
           "reads stdin when no file is given\n";
    return status;
}

} // namespace

int
main(int argc, char **argv)
{
    bool listMode = false;
    long index = -1;
    std::string path;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list") {
            listMode = true;
        } else if (arg == "--index") {
            if (i + 1 >= argc)
                return usage(std::cerr, 2);
            index = std::atol(argv[++i]);
        } else if (arg == "--help" || arg == "-h") {
            return usage(std::cout, 0);
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(std::cerr, 2);
        } else if (path.empty()) {
            path = arg;
        } else {
            return usage(std::cerr, 2);
        }
    }
    if (listMode && index >= 0)
        return usage(std::cerr, 2);

    std::istream *in = &std::cin;
    std::ifstream file;
    if (!path.empty()) {
        file.open(path);
        if (!file) {
            std::cerr << "seer-postmortem: cannot open " << path
                      << "\n";
            return 2;
        }
        in = &file;
    }

    std::vector<std::string> bundles;
    std::string line;
    std::size_t linesSeen = 0;
    std::size_t truncated = 0;
    while (std::getline(*in, line)) {
        ++linesSeen;
        if (!isBundleLine(line))
            continue;
        if (isTruncatedBundle(line)) {
            // Skip rather than render: a half-written bundle parses
            // into confidently wrong fields. The nonzero exit below
            // keeps scripted pipelines from trusting partial output.
            std::cerr << "seer-postmortem: line " << linesSeen
                      << " is a truncated BUNDLE record; skipping\n";
            ++truncated;
            continue;
        }
        bundles.push_back(line);
    }
    if (bundles.empty()) {
        if (linesSeen == 0)
            std::cerr << "seer-postmortem: input is empty\n";
        else if (truncated > 0)
            std::cerr << "seer-postmortem: every BUNDLE record was "
                         "truncated ("
                      << truncated << " skipped)\n";
        else
            std::cerr << "seer-postmortem: no BUNDLE records found\n";
        return 1;
    }
    // Render what survived, but do not report success over a damaged
    // stream.
    int status = truncated > 0 ? 1 : 0;

    if (index >= 0) {
        if (static_cast<std::size_t>(index) >= bundles.size()) {
            std::cerr << "seer-postmortem: index " << index
                      << " out of range (have " << bundles.size()
                      << " bundles)\n";
            return 2;
        }
        printBundle(static_cast<std::size_t>(index),
                    bundles[static_cast<std::size_t>(index)]);
        return status;
    }
    if (listMode) {
        for (std::size_t i = 0; i < bundles.size(); ++i)
            printListRow(i, bundles[i]);
        return status;
    }
    for (std::size_t i = 0; i < bundles.size(); ++i) {
        if (i > 0)
            std::printf("\n");
        printBundle(i, bundles[i]);
    }
    return status;
}
