/**
 * @file
 * seer-stats: pretty-printer for seer-scope health snapshots.
 *
 * Consumes the health-JSON-lines stream the monitor emits (one
 * {"kind":"HEALTH",...} object per line, DESIGN.md §11) and renders
 * it for a terminal. Three modes:
 *
 *     seer-stats health.jsonl            # one table row per snapshot
 *     seer-stats --last health.jsonl     # detailed view, final sample
 *     seer-stats --follow health.jsonl   # tail the file as it grows
 *     seer-stats --summary report.jsonl  # final {"kind":"SUMMARY"}
 *
 * The first three modes read HEALTH snapshots (the table and --follow
 * views also surface seer-pulse {"kind":"ALERT"} records interleaved
 * where the stream carries them) and skip everything else; --summary
 * reads the trailing checker+ingest SUMMARY record a wire_replay /
 * monitor_cloud report stream closes with, so those runs are
 * self-describing without a debugger. Reads stdin when no file is
 * given (not with --follow).
 *
 * --follow survives log rotation: when the path starts naming a new
 * inode (rename-and-recreate rotation) or the file shrinks below the
 * consumed offset (truncate-in-place), the tool reopens and resumes
 * from the top of the new contents instead of waiting forever on the
 * old file's EOF.
 */

#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

/**
 * Extract the value after `"key":` at or past `from`, as raw text up
 * to the next delimiter. Returns "" when absent. The health schema is
 * flat numbers inside at most one level of nesting, so substring
 * search keyed on the quoted name is unambiguous.
 */
std::string
rawValue(const std::string &line, const std::string &key,
         std::size_t from = 0)
{
    std::string needle = "\"" + key + "\":";
    std::size_t at = line.find(needle, from);
    if (at == std::string::npos)
        return "";
    std::size_t start = at + needle.size();
    std::size_t end = line.find_first_of(",}", start);
    if (end == std::string::npos)
        end = line.size();
    return line.substr(start, end - start);
}

double
numberValue(const std::string &line, const std::string &key,
            std::size_t from = 0)
{
    std::string raw = rawValue(line, key, from);
    if (raw.empty())
        return 0.0;
    try {
        return std::stod(raw);
    } catch (...) {
        return 0.0;
    }
}

/** Offset of a nested section like "ingest":{...}, or npos. */
std::size_t
sectionStart(const std::string &line, const std::string &name)
{
    return line.find("\"" + name + "\":{");
}

bool
isHealthLine(const std::string &line)
{
    return line.find("\"kind\":\"HEALTH\"") != std::string::npos;
}

bool
isSummaryLine(const std::string &line)
{
    return line.find("\"kind\":\"SUMMARY\"") != std::string::npos;
}

bool
isAlertLine(const std::string &line)
{
    return line.find("\"kind\":\"ALERT\"") != std::string::npos;
}

/** The value after `"key":"` up to the closing quote ("" if absent). */
std::string
stringValue(const std::string &line, const std::string &key)
{
    std::string needle = "\"" + key + "\":\"";
    std::size_t at = line.find(needle);
    if (at == std::string::npos)
        return "";
    std::size_t start = at + needle.size();
    std::size_t end = line.find('"', start);
    if (end == std::string::npos)
        return "";
    return line.substr(start, end - start);
}

/**
 * One {"kind":"ALERT"} lifecycle record (seer-pulse, DESIGN.md §16),
 * rendered as a full-width callout so it stands out between table
 * rows in the default and --follow views.
 */
void
printAlert(const std::string &line)
{
    std::printf("%10.2f ALERT %-8s %s: %s=%.6g threshold=%.6g "
                "(since t=%.2f)\n",
                numberValue(line, "time"),
                stringValue(line, "state").c_str(),
                stringValue(line, "rule").c_str(),
                stringValue(line, "signal").c_str(),
                numberValue(line, "value"),
                numberValue(line, "threshold"),
                numberValue(line, "since"));
}

/** Detailed view of one {"kind":"SUMMARY"} checker+ingest record. */
void
printSummary(const std::string &line)
{
    auto row = [](const char *label, double value) {
        std::printf("  %-28s %.6g\n", label, value);
    };
    std::printf("run summary @ t=%.3f\n", numberValue(line, "time"));
    std::printf("checker:\n");
    row("messages", numberValue(line, "messages"));
    row("decisive", numberValue(line, "decisive"));
    row("ambiguous", numberValue(line, "ambiguous"));
    std::size_t rec = sectionStart(line, "recoveries");
    row("recovery a (pass unknown)", numberValue(line, "a", rec));
    row("recovery b (new sequence)", numberValue(line, "b", rec));
    row("recovery c (other set)", numberValue(line, "c", rec));
    row("recovery d (false dep)", numberValue(line, "d", rec));
    row("unmatched", numberValue(line, "unmatched"));
    row("accepted", numberValue(line, "accepted"));
    row("errors reported", numberValue(line, "errors"));
    row("timeouts reported", numberValue(line, "timeouts"));
    row("timeouts suppressed",
        numberValue(line, "timeoutsSuppressed"));
    row("latency anomalies", numberValue(line, "latencyAnomalies"));
    row("groups shed", numberValue(line, "shed"));
    row("consume attempts", numberValue(line, "consumeAttempts"));
    row("decisive fraction", numberValue(line, "decisiveFraction"));
    std::printf("ingest:\n");
    std::size_t ing = sectionStart(line, "ingest");
    row("lines", numberValue(line, "lines", ing));
    row("delivered", numberValue(line, "delivered", ing));
    row("malformed", numberValue(line, "malformed", ing));
    row("clamped", numberValue(line, "clamped", ing));
    row("duplicates suppressed", numberValue(line, "duplicates", ing));
    row("forced releases", numberValue(line, "forcedReleases", ing));
    row("reorder-buffer peak", numberValue(line, "reorderPeak", ing));
}

void
printHeader()
{
    std::printf("%10s %10s %8s %8s %9s %7s %7s %6s %9s\n", "time",
                "messages", "groups", "idsets", "decisive%", "errors",
                "timeout", "shed", "p99us");
}

void
printRow(const std::string &line)
{
    std::printf("%10.2f %10.0f %8.0f %8.0f %8.1f%% %7.0f %7.0f %6.0f "
                "%9.1f\n",
                numberValue(line, "time"),
                numberValue(line, "messages"),
                numberValue(line, "activeGroups"),
                numberValue(line, "idsets"),
                numberValue(line, "decisiveFraction") * 100.0,
                numberValue(line, "errors"),
                numberValue(line, "timeouts"),
                numberValue(line, "shed"),
                numberValue(line, "p99",
                            sectionStart(line, "feedLatencyUs")));
}

void
printDetail(const std::string &line)
{
    auto row = [](const char *label, double value) {
        std::printf("  %-28s %.6g\n", label, value);
    };
    std::printf("health snapshot @ t=%.3f\n", numberValue(line, "time"));
    std::printf("checker:\n");
    row("messages", numberValue(line, "messages"));
    row("decisive", numberValue(line, "decisive"));
    row("ambiguous", numberValue(line, "ambiguous"));
    std::size_t rec = sectionStart(line, "recoveries");
    row("recovery a (pass unknown)", numberValue(line, "a", rec));
    row("recovery b (new sequence)", numberValue(line, "b", rec));
    row("recovery c (other set)", numberValue(line, "c", rec));
    row("recovery d (false dep)", numberValue(line, "d", rec));
    row("unmatched", numberValue(line, "unmatched"));
    row("accepted", numberValue(line, "accepted"));
    row("errors reported", numberValue(line, "errors"));
    row("timeouts reported", numberValue(line, "timeouts"));
    row("timeouts suppressed", numberValue(line, "suppressed"));
    row("groups shed", numberValue(line, "shed"));
    row("decisive fraction",
        numberValue(line, "decisiveFraction"));
    row("active groups", numberValue(line, "activeGroups"));
    row("identifier sets", numberValue(line, "idsets"));
    std::printf("ingest:\n");
    std::size_t ing = sectionStart(line, "ingest");
    row("lines", numberValue(line, "lines", ing));
    row("malformed", numberValue(line, "malformed", ing));
    row("clamped", numberValue(line, "clamped", ing));
    row("duplicates suppressed", numberValue(line, "duplicates", ing));
    row("forced releases", numberValue(line, "forced", ing));
    row("reorder-buffer peak", numberValue(line, "reorderPeak", ing));
    std::printf("interner:\n");
    std::size_t intr = sectionStart(line, "interner");
    double hits = numberValue(line, "hits", intr);
    double misses = numberValue(line, "misses", intr);
    row("size", numberValue(line, "size", intr));
    row("hit rate", hits + misses > 0.0 ? hits / (hits + misses) : 0.0);
    std::printf("timeout policy:\n");
    std::size_t pol = sectionStart(line, "timeoutPolicy");
    row("resolutions", numberValue(line, "resolutions", pol));
    row("default fallbacks", numberValue(line, "fallbacks", pol));
    std::printf("feed latency (us):\n");
    std::size_t lat = sectionStart(line, "feedLatencyUs");
    row("p50", numberValue(line, "p50", lat));
    row("p90", numberValue(line, "p90", lat));
    row("p99", numberValue(line, "p99", lat));
    row("max", numberValue(line, "max", lat));
}

/**
 * Per-shard view of the final snapshot (seer-swarm, DESIGN.md §14):
 * ring depth, throughput share and reconciler activity from the
 * "shards" section the sharded engine adds to HEALTH records.
 * Returns false (a nonzero exit for the caller) when the snapshot
 * came from the serial engine — nothing to render is a usage error
 * worth failing scripts over, not an empty table.
 */
bool
printShards(const std::string &line)
{
    std::size_t sec = sectionStart(line, "shards");
    if (sec == std::string::npos) {
        std::fprintf(stderr,
                     "serial engine: snapshot has no shard section "
                     "(set ingest.numShards > 1)\n");
        return false;
    }
    std::printf("sharded engine @ t=%.3f\n", numberValue(line, "time"));

    // Collect the lanes first: the throughput share needs the total.
    struct Lane
    {
        double routed, inPeak, outPeak, groups;
    };
    std::vector<Lane> lanes;
    double total = 0.0;
    std::size_t cursor = line.find("\"lanes\":[", sec);
    int count = static_cast<int>(numberValue(line, "count", sec));
    for (int i = 0; i < count && cursor != std::string::npos; ++i) {
        cursor = line.find("{\"routed\":", cursor);
        if (cursor == std::string::npos)
            break;
        Lane lane = {numberValue(line, "routed", cursor),
                     numberValue(line, "inPeak", cursor),
                     numberValue(line, "outPeak", cursor),
                     numberValue(line, "groups", cursor)};
        total += lane.routed;
        lanes.push_back(lane);
        ++cursor;
    }

    std::printf("%6s %10s %7s %8s %8s %8s\n", "shard", "routed",
                "share", "inPeak", "outPeak", "groups");
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        std::printf("%6zu %10.0f %6.1f%% %8.0f %8.0f %8.0f\n", i,
                    lanes[i].routed,
                    total > 0.0 ? 100.0 * lanes[i].routed / total : 0.0,
                    lanes[i].inPeak, lanes[i].outPeak, lanes[i].groups);
    }
    auto row = [](const char *label, double value) {
        std::printf("  %-28s %.6g\n", label, value);
    };
    std::printf("reconciler:\n");
    row("slow-path reconciles", numberValue(line, "reconciles", sec));
    row("cross-shard unions", numberValue(line, "crossUnions", sec));
    row("global fallbacks", numberValue(line, "globalFallbacks", sec));
    row("pipeline quiesces", numberValue(line, "quiesces", sec));
    row("routing imbalance", numberValue(line, "imbalance", sec));
    return true;
}

int
usage(std::ostream &out, int status)
{
    out << "usage: seer-stats [--last | --follow | --summary | "
           "--shards] [stream.jsonl]\n"
           "  (default) one table row per HEALTH snapshot, ALERT\n"
           "            records interleaved where they occurred\n"
           "  --last    detailed view of the final snapshot\n"
           "  --follow  tail the file, printing rows as they appear\n"
           "  --summary detailed view of the trailing SUMMARY record\n"
           "  --shards  per-shard view of the final snapshot "
           "(sharded engine)\n"
           "  --poll-limit N  with --follow: exit after N idle polls\n"
           "reads stdin when no file is given (except --follow)\n";
    return status;
}

int
follow(const std::string &path, long poll_limit)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "seer-stats: cannot open " << path << "\n";
        return 2;
    }
    // One full second of 250ms polls with nothing new = one warning.
    constexpr long kIdleWarnPolls = 4;
    long idle_polls = 0;
    bool warned_idle = false;
    struct stat st = {};
    ino_t inode = 0;
    dev_t device = 0;
    if (::stat(path.c_str(), &st) == 0) {
        inode = st.st_ino;
        device = st.st_dev;
    }
    printHeader();
    std::string line;
    std::streamoff consumed = 0;
    while (true) {
        if (std::getline(in, line)) {
            std::streamoff at = in.tellg();
            if (at >= 0)
                consumed = at;
            idle_polls = 0;
            warned_idle = false;
            if (isHealthLine(line))
                printRow(line);
            else if (isAlertLine(line))
                printAlert(line);
            continue;
        }
        if (!in.eof())
            break;
        // Wait for the writer to append more, then retry from the
        // current offset. A follow that sees nothing for a full
        // stretch says so once (stderr, so piped tables stay clean)
        // instead of sitting silently on a dead or mistargeted file;
        // the counter re-arms as soon as data flows again.
        // poll_limit bounds the idle polls (testing knob;
        // 0 = follow forever).
        ++idle_polls;
        if (!warned_idle && idle_polls >= kIdleWarnPolls) {
            std::cerr << "seer-stats: no records from " << path
                      << " for "
                      << 0.25 * static_cast<double>(idle_polls)
                      << "s; still waiting\n";
            warned_idle = true;
        }
        if (poll_limit > 0 && idle_polls >= poll_limit)
            return 0;
        in.clear();
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
        // Log rotation leaves us holding the old file (the path now
        // names a different inode); truncate-in-place leaves the same
        // inode but a size below our read offset. Either way the next
        // appends land where we are not looking — reopen and resume
        // from the top of the new file. A stat failure means the file
        // is mid-rotation (renamed away, not yet recreated): keep
        // polling until it reappears.
        if (::stat(path.c_str(), &st) != 0)
            continue;
        bool rotated = st.st_ino != inode || st.st_dev != device;
        bool truncated =
            static_cast<std::streamoff>(st.st_size) < consumed;
        if (rotated || truncated) {
            in.close();
            in.open(path);
            if (!in) {
                in.clear();
                continue;
            }
            inode = st.st_ino;
            device = st.st_dev;
            consumed = 0;
            std::cerr << "seer-stats: " << path
                      << (rotated ? " rotated" : " truncated")
                      << "; following the new contents\n";
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool lastOnly = false;
    bool tailMode = false;
    bool summaryMode = false;
    bool shardsMode = false;
    long pollLimit = 0;
    std::string path;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--last") {
            lastOnly = true;
        } else if (arg == "--follow" || arg == "-f") {
            tailMode = true;
        } else if (arg == "--summary") {
            summaryMode = true;
        } else if (arg == "--shards") {
            shardsMode = true;
        } else if (arg == "--poll-limit" && i + 1 < argc) {
            pollLimit = std::atol(argv[++i]);
        } else if (arg == "--help" || arg == "-h") {
            return usage(std::cout, 0);
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(std::cerr, 2);
        } else if (path.empty()) {
            path = arg;
        } else {
            return usage(std::cerr, 2);
        }
    }
    if (tailMode) {
        if (lastOnly || summaryMode || shardsMode || path.empty())
            return usage(std::cerr, 2);
        return follow(path, pollLimit);
    }
    if ((summaryMode && lastOnly) || (shardsMode && summaryMode) ||
        (shardsMode && lastOnly)) {
        return usage(std::cerr, 2);
    }

    std::istream *in = &std::cin;
    std::ifstream file;
    if (!path.empty()) {
        file.open(path);
        if (!file) {
            std::cerr << "seer-stats: cannot open " << path << "\n";
            return 2;
        }
        in = &file;
    }

    // The table view interleaves ALERT records where the stream
    // carries them; every other mode keys off HEALTH/SUMMARY only.
    const bool tableMode = !summaryMode && !lastOnly && !shardsMode;
    std::vector<std::string> samples;
    std::string line;
    while (std::getline(*in, line)) {
        if (summaryMode ? isSummaryLine(line)
                        : (isHealthLine(line) ||
                           (tableMode && isAlertLine(line)))) {
            samples.push_back(line);
        }
    }
    if (samples.empty()) {
        std::cerr << "seer-stats: no "
                  << (summaryMode ? "SUMMARY" : "HEALTH")
                  << " records found\n";
        return 1;
    }
    if (summaryMode) {
        printSummary(samples.back());
        return 0;
    }
    if (shardsMode) {
        return printShards(samples.back()) ? 0 : 1;
    }
    if (lastOnly) {
        printDetail(samples.back());
    } else {
        printHeader();
        for (const std::string &sample : samples) {
            if (isAlertLine(sample))
                printAlert(sample);
            else
                printRow(sample);
        }
    }
    return 0;
}
