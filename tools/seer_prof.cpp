/**
 * @file
 * seer-prof: offline viewer for seer-probe profiles (DESIGN.md §17).
 * Three commands over the self-describing JSON that `/profilez`,
 * `bench_throughput --profile-out` and Profile::toJson() emit:
 *
 *     seer-prof top PROFILE.json [--limit N] [--cumulative]
 *                                [--min-tagged F]
 *     seer-prof folded PROFILE.json
 *     seer-prof diff BASE.json FRESH.json [--limit N]
 *
 * `top` prints the per-stage attribution table and the hottest frames
 * by self samples (leaf of each stack) — or by cumulative samples
 * (frame appears anywhere on the stack) with --cumulative. With
 * --min-tagged F it exits 1 when the tagged fraction falls below F,
 * which is how CI pins "the profiler attributes the bench's CPU to
 * stages" as an invariant instead of a demo.
 *
 * `folded` reprints the profile as flamegraph.pl-ready collapsed
 * stacks — the .folded artifact regenerated from the JSON, so only
 * one file needs to be archived.
 *
 * `diff` compares two profiles by per-frame cumulative share (the
 * fraction of samples a frame appears in — shares, not raw counts, so
 * profiles of different lengths compare cleanly) and prints frames
 * ranked by regression: what grew claims the top of the table. Stage
 * shares are diffed the same way above the frame table.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/profiler.hpp"

namespace {

using namespace cloudseer;

int
usage(std::ostream &out, int status)
{
    out << "usage:\n"
           "  seer-prof top PROFILE.json [--limit N] [--cumulative] "
           "[--min-tagged F]\n"
           "      per-stage attribution and the hottest frames; with\n"
           "      --min-tagged, exits 1 when the tagged fraction of\n"
           "      samples falls below F (e.g. 0.9)\n"
           "  seer-prof folded PROFILE.json\n"
           "      reprint as flamegraph.pl-ready collapsed stacks\n"
           "  seer-prof diff BASE.json FRESH.json [--limit N]\n"
           "      frames ranked by cumulative-share regression\n";
    return status;
}

bool
loadProfile(const std::string &path, obs::Profile &out)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "seer-prof: cannot open " << path << "\n";
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    if (!obs::parseProfileJson(text.str(), out)) {
        std::cerr << "seer-prof: " << path
                  << " is not a PROFILE document\n";
        return false;
    }
    return true;
}

/** Self samples per frame: each stack's leaf claims its full count. */
std::map<std::string, std::uint64_t>
selfCounts(const obs::Profile &profile)
{
    std::map<std::string, std::uint64_t> counts;
    for (const obs::ProfileStack &stack : profile.stacks) {
        if (!stack.frames.empty())
            counts[stack.frames.back()] += stack.count;
    }
    return counts;
}

/** Cumulative samples per frame: a frame claims a stack's count once
 *  no matter how often recursion repeats it on that stack. */
std::map<std::string, std::uint64_t>
cumulativeCounts(const obs::Profile &profile)
{
    std::map<std::string, std::uint64_t> counts;
    for (const obs::ProfileStack &stack : profile.stacks) {
        std::set<std::string> seen(stack.frames.begin(),
                                   stack.frames.end());
        for (const std::string &frame : seen)
            counts[frame] += stack.count;
    }
    return counts;
}

/** Count-desc, name-asc: deterministic output for golden tests. */
std::vector<std::pair<std::string, std::uint64_t>>
ranked(const std::map<std::string, std::uint64_t> &counts)
{
    std::vector<std::pair<std::string, std::uint64_t>> rows(
        counts.begin(), counts.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first;
              });
    return rows;
}

int
cmdTop(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage(std::cerr, 2);
    std::size_t limit = 10;
    bool cumulative = false;
    double min_tagged = -1.0;
    for (std::size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--limit" && i + 1 < args.size())
            limit = static_cast<std::size_t>(
                std::atol(args[++i].c_str()));
        else if (args[i] == "--cumulative")
            cumulative = true;
        else if (args[i] == "--min-tagged" && i + 1 < args.size())
            min_tagged = std::atof(args[++i].c_str());
        else
            return usage(std::cerr, 2);
    }
    obs::Profile profile;
    if (!loadProfile(args[0], profile))
        return 2;

    std::printf("profile: %llu samples at %d Hz over %.3fs "
                "(%llu dropped), %.1f%% tagged\n",
                static_cast<unsigned long long>(profile.samples),
                profile.hz, profile.durationSeconds,
                static_cast<unsigned long long>(profile.dropped),
                100.0 * profile.taggedFraction());
    std::printf("  %-16s %10s %8s\n", "stage", "samples", "share");
    for (int s = 0; s < obs::kProfStageCount; ++s) {
        std::uint64_t count =
            profile.stageSamples[static_cast<std::size_t>(s)];
        if (count == 0)
            continue;
        std::printf("  %-16s %10llu %7.1f%%\n",
                    obs::profStageName(
                        static_cast<obs::ProfStage>(s)),
                    static_cast<unsigned long long>(count),
                    profile.samples > 0
                        ? 100.0 * static_cast<double>(count) /
                              static_cast<double>(profile.samples)
                        : 0.0);
    }
    if (profile.allocTracked) {
        std::printf("  %-16s %14s %10s\n", "alloc by stage", "bytes",
                    "count");
        for (int s = 0; s < obs::kProfStageCount; ++s) {
            auto idx = static_cast<std::size_t>(s);
            if (profile.allocCounts[idx] == 0)
                continue;
            std::printf("  %-16s %14llu %10llu\n",
                        obs::profStageName(
                            static_cast<obs::ProfStage>(s)),
                        static_cast<unsigned long long>(
                            profile.allocBytes[idx]),
                        static_cast<unsigned long long>(
                            profile.allocCounts[idx]));
        }
    }

    auto rows = ranked(cumulative ? cumulativeCounts(profile)
                                  : selfCounts(profile));
    std::printf("top %zu frames by %s samples:\n",
                std::min(limit, rows.size()),
                cumulative ? "cumulative" : "self");
    std::printf("  %10s %8s  %s\n", "samples", "share", "frame");
    for (std::size_t i = 0; i < rows.size() && i < limit; ++i) {
        std::printf("  %10llu %7.1f%%  %s\n",
                    static_cast<unsigned long long>(rows[i].second),
                    profile.samples > 0
                        ? 100.0 * static_cast<double>(rows[i].second) /
                              static_cast<double>(profile.samples)
                        : 0.0,
                    rows[i].first.c_str());
    }

    if (min_tagged >= 0.0 && profile.taggedFraction() < min_tagged) {
        std::fprintf(stderr,
                     "FAIL: tagged fraction %.3f below the %.3f "
                     "floor\n",
                     profile.taggedFraction(), min_tagged);
        return 1;
    }
    return 0;
}

int
cmdFolded(const std::vector<std::string> &args)
{
    if (args.size() != 1)
        return usage(std::cerr, 2);
    obs::Profile profile;
    if (!loadProfile(args[0], profile))
        return 2;
    std::fputs(profile.toFolded().c_str(), stdout);
    return 0;
}

int
cmdDiff(const std::vector<std::string> &args)
{
    if (args.size() < 2)
        return usage(std::cerr, 2);
    std::size_t limit = 15;
    for (std::size_t i = 2; i < args.size(); ++i) {
        if (args[i] == "--limit" && i + 1 < args.size())
            limit = static_cast<std::size_t>(
                std::atol(args[++i].c_str()));
        else
            return usage(std::cerr, 2);
    }
    obs::Profile base;
    obs::Profile fresh;
    if (!loadProfile(args[0], base) || !loadProfile(args[1], fresh))
        return 2;
    if (base.samples == 0 || fresh.samples == 0) {
        std::cerr << "seer-prof: cannot diff an empty profile\n";
        return 2;
    }

    std::printf("diff: base %llu samples vs fresh %llu samples\n",
                static_cast<unsigned long long>(base.samples),
                static_cast<unsigned long long>(fresh.samples));
    std::printf("  %-16s %8s %8s %8s\n", "stage", "base", "fresh",
                "delta");
    for (int s = 0; s < obs::kProfStageCount; ++s) {
        auto idx = static_cast<std::size_t>(s);
        double base_share = static_cast<double>(base.stageSamples[idx]) /
                            static_cast<double>(base.samples);
        double fresh_share =
            static_cast<double>(fresh.stageSamples[idx]) /
            static_cast<double>(fresh.samples);
        if (base_share == 0.0 && fresh_share == 0.0)
            continue;
        std::printf("  %-16s %7.1f%% %7.1f%% %+7.1f%%\n",
                    obs::profStageName(
                        static_cast<obs::ProfStage>(s)),
                    100.0 * base_share, 100.0 * fresh_share,
                    100.0 * (fresh_share - base_share));
    }

    // Per-frame cumulative shares; every frame either side saw gets a
    // row, ranked by how much it regressed (grew) in the fresh run.
    std::map<std::string, std::uint64_t> base_counts =
        cumulativeCounts(base);
    std::map<std::string, std::uint64_t> fresh_counts =
        cumulativeCounts(fresh);
    struct Row
    {
        std::string frame;
        double baseShare = 0.0;
        double freshShare = 0.0;
    };
    std::map<std::string, Row> merged;
    for (const auto &[frame, count] : base_counts) {
        merged[frame].frame = frame;
        merged[frame].baseShare = static_cast<double>(count) /
                                  static_cast<double>(base.samples);
    }
    for (const auto &[frame, count] : fresh_counts) {
        merged[frame].frame = frame;
        merged[frame].freshShare = static_cast<double>(count) /
                                   static_cast<double>(fresh.samples);
    }
    std::vector<Row> rows;
    rows.reserve(merged.size());
    for (auto &[frame, row] : merged)
        rows.push_back(std::move(row));
    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        double da = a.freshShare - a.baseShare;
        double db = b.freshShare - b.baseShare;
        if (da != db)
            return da > db;
        return a.frame < b.frame;
    });
    std::printf("top %zu regressed frames (cumulative share):\n",
                std::min(limit, rows.size()));
    std::printf("  %8s %8s %8s  %s\n", "base", "fresh", "delta",
                "frame");
    for (std::size_t i = 0; i < rows.size() && i < limit; ++i) {
        const Row &row = rows[i];
        std::printf("  %7.1f%% %7.1f%% %+7.1f%%  %s\n",
                    100.0 * row.baseShare, 100.0 * row.freshShare,
                    100.0 * (row.freshShare - row.baseShare),
                    row.frame.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(std::cerr, 2);
    std::string command = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    if (command == "--help" || command == "-h")
        return usage(std::cout, 0);
    if (command == "top")
        return cmdTop(args);
    if (command == "folded")
        return cmdFolded(args);
    if (command == "diff")
        return cmdDiff(args);
    std::cerr << "seer-prof: unknown command '" << command << "'\n";
    return usage(std::cerr, 2);
}
