/**
 * @file
 * seer-vault: operator CLI for vault directories (DESIGN.md §13).
 *
 * Inspects the durability state a VaultedMonitor leaves on disk —
 * `checkpoint.ckpt` and `ledger.wal` — without needing the model or a
 * running monitor. Three commands:
 *
 *     seer-vault inspect DIR           # what is in the vault?
 *     seer-vault verify DIR            # is it structurally sound?
 *     seer-vault diff DIR_A DIR_B      # did the state change?
 *
 * `inspect` prints the checkpoint header, Meta fields, per-section
 * sizes, and the ledger's frame count, seq range, and torn-tail flag.
 * `verify` re-derives every structural invariant (magic, version,
 * frame CRCs, section set, End terminator, ledger decode, seq
 * monotonicity) and exits 0 only when all hold — the same checks
 * recovery applies, minus the model-dependent ones (the monitor
 * section cannot be decoded without the automata, so verification
 * stops at frame and section structure for it). `diff` compares two
 * checkpoints by Meta fields and per-section size/checksum, for
 * answering "did anything change between these two snapshots?".
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/binio.hpp"
#include "vault/vault.hpp"

namespace {

using namespace cloudseer;

const char *
sectionName(vault::CheckpointSection kind)
{
    switch (kind) {
      case vault::CheckpointSection::Meta: return "meta";
      case vault::CheckpointSection::Interner: return "interner";
      case vault::CheckpointSection::Monitor: return "monitor";
      case vault::CheckpointSection::End: return "end";
    }
    return "unknown";
}

/** Ledger facts shared by inspect and verify. */
struct LedgerSummary
{
    bool headerOk = false;
    bool torn = false;
    bool seqMonotonic = true;
    std::size_t entries = 0;
    std::uint64_t firstSeq = 0;
    std::uint64_t lastSeq = 0;
};

LedgerSummary
summarizeLedger(const std::string &directory)
{
    LedgerSummary out;
    vault::LedgerScan scan =
        vault::readLedger(vault::ledgerPath(directory));
    out.headerOk = scan.headerOk;
    out.torn = scan.torn;
    out.entries = scan.inputs.size();
    std::uint64_t previous = 0;
    for (std::size_t i = 0; i < scan.inputs.size(); ++i) {
        std::uint64_t seq = scan.inputs[i].seq;
        if (i == 0)
            out.firstSeq = seq;
        else if (seq <= previous)
            out.seqMonotonic = false;
        out.lastSeq = seq;
        previous = seq;
    }
    return out;
}

int
inspect(const std::string &directory)
{
    vault::CheckpointScan ckpt =
        vault::readCheckpoint(vault::checkpointPath(directory));
    std::printf("checkpoint: %s\n",
                vault::checkpointPath(directory).c_str());
    if (!ckpt.headerOk) {
        std::printf("  (missing or unreadable)\n");
    } else {
        std::printf("  complete: %s\n", ckpt.complete ? "yes" : "no");
        if (ckpt.hasMeta) {
            std::printf("  model fingerprint: %016llx\n",
                        static_cast<unsigned long long>(
                            ckpt.meta.modelFingerprint));
            std::printf("  covered ledger seq: %llu\n",
                        static_cast<unsigned long long>(
                            ckpt.meta.coveredSeq));
            std::printf("  monitor clock: %.3f\n",
                        ckpt.meta.monitorTime);
        }
        for (const auto &[kind, body] : ckpt.sections) {
            std::printf("  section %-8s %8zu bytes  crc %08x\n",
                        sectionName(kind), body.size(),
                        common::crc32(body));
        }
    }

    LedgerSummary ledger = summarizeLedger(directory);
    std::printf("ledger: %s\n", vault::ledgerPath(directory).c_str());
    if (!ledger.headerOk) {
        std::printf("  (missing or unreadable)\n");
        return 0;
    }
    std::printf("  entries: %zu\n", ledger.entries);
    if (ledger.entries > 0) {
        std::printf("  seq range: %llu..%llu\n",
                    static_cast<unsigned long long>(ledger.firstSeq),
                    static_cast<unsigned long long>(ledger.lastSeq));
    }
    std::printf("  torn tail: %s\n", ledger.torn ? "yes" : "no");
    return 0;
}

int
verify(const std::string &directory)
{
    int failures = 0;
    auto check = [&failures](bool ok, const char *what) {
        std::printf("  %-44s %s\n", what, ok ? "ok" : "FAIL");
        if (!ok)
            ++failures;
    };

    vault::CheckpointScan ckpt =
        vault::readCheckpoint(vault::checkpointPath(directory));
    std::printf("checkpoint:\n");
    check(ckpt.headerOk, "magic and version");
    check(ckpt.complete, "End terminator present");
    check(ckpt.hasMeta, "Meta section decodes");
    bool has_interner = false;
    bool has_monitor = false;
    for (const auto &[kind, body] : ckpt.sections) {
        if (kind == vault::CheckpointSection::Interner)
            has_interner = true;
        else if (kind == vault::CheckpointSection::Monitor)
            has_monitor = true;
    }
    check(has_interner, "Interner section present");
    check(has_monitor, "Monitor section present");
    if (has_interner) {
        // The interner image is model-independent, so its framing can
        // be walked fully: token count, then count strings.
        const std::string *body = nullptr;
        for (const auto &[kind, section_body] : ckpt.sections)
            if (kind == vault::CheckpointSection::Interner)
                body = &section_body;
        common::BinReader in(*body);
        std::uint64_t count = in.readU64();
        for (std::uint64_t i = 0; in.ok() && i < count; ++i)
            in.readString();
        in.readU64(); // hits
        in.readU64(); // misses
        in.readU64(); // capacity
        in.readU64(); // cap rejections
        check(in.ok(), "Interner section well-formed");
    }

    LedgerSummary ledger = summarizeLedger(directory);
    std::printf("ledger:\n");
    check(ledger.headerOk, "magic and version");
    check(!ledger.torn, "no torn tail");
    check(ledger.seqMonotonic, "seqs strictly increasing");
    if (ckpt.hasMeta && ledger.entries > 0) {
        // After a clean checkpoint the ledger is empty; entries at or
        // below the covered seq mean a crash interrupted the
        // checkpoint/rotate pair (harmless — replay skips them) but
        // are worth surfacing.
        check(ledger.firstSeq > ckpt.meta.coveredSeq,
              "ledger starts past the checkpoint");
    }

    std::printf(failures == 0 ? "vault is sound\n"
                              : "vault has %d problem(s)\n",
                failures);
    return failures == 0 ? 0 : 1;
}

int
diff(const std::string &dir_a, const std::string &dir_b)
{
    vault::CheckpointScan a =
        vault::readCheckpoint(vault::checkpointPath(dir_a));
    vault::CheckpointScan b =
        vault::readCheckpoint(vault::checkpointPath(dir_b));
    if (!a.headerOk || !b.headerOk) {
        std::cerr << "seer-vault: cannot read both checkpoints\n";
        return 2;
    }
    int differences = 0;
    auto field = [&differences](const char *name, double va,
                                double vb) {
        bool same = va == vb;
        if (!same)
            ++differences;
        std::printf("  %-20s %14.3f %14.3f  %s\n", name, va, vb,
                    same ? "" : "DIFFERS");
    };
    std::printf("meta:                %14s %14s\n", "A", "B");
    field("fingerprint",
          static_cast<double>(a.meta.modelFingerprint),
          static_cast<double>(b.meta.modelFingerprint));
    field("covered seq", static_cast<double>(a.meta.coveredSeq),
          static_cast<double>(b.meta.coveredSeq));
    field("monitor clock", a.meta.monitorTime, b.meta.monitorTime);

    std::printf("sections:\n");
    for (auto kind :
         {vault::CheckpointSection::Interner,
          vault::CheckpointSection::Monitor}) {
        const std::string *body_a = nullptr;
        const std::string *body_b = nullptr;
        for (const auto &[k, body] : a.sections)
            if (k == kind)
                body_a = &body;
        for (const auto &[k, body] : b.sections)
            if (k == kind)
                body_b = &body;
        bool same = body_a != nullptr && body_b != nullptr &&
                    body_a->size() == body_b->size() &&
                    common::crc32(*body_a) == common::crc32(*body_b);
        if (!same)
            ++differences;
        std::printf("  %-8s A=%zu bytes  B=%zu bytes  %s\n",
                    sectionName(kind),
                    body_a == nullptr ? 0 : body_a->size(),
                    body_b == nullptr ? 0 : body_b->size(),
                    same ? "identical" : "DIFFERS");
    }
    std::printf(differences == 0 ? "checkpoints are identical\n"
                                 : "%d field(s) differ\n",
                differences);
    return differences == 0 ? 0 : 1;
}

int
usage(std::ostream &out, int status)
{
    out << "usage: seer-vault <command> ...\n"
           "  inspect DIR       print checkpoint and ledger contents\n"
           "  verify DIR        structural soundness checks (exit 0 = "
           "sound)\n"
           "  diff DIR_A DIR_B  compare two checkpoints\n";
    return status;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty() || args[0] == "--help" || args[0] == "-h")
        return usage(args.empty() ? std::cerr : std::cout,
                     args.empty() ? 2 : 0);
    const std::string &command = args[0];
    if (command == "inspect" && args.size() == 2)
        return inspect(args[1]);
    if (command == "verify" && args.size() == 2)
        return verify(args[1]);
    if (command == "diff" && args.size() == 3)
        return diff(args[1], args[2]);
    return usage(std::cerr, 2);
}
